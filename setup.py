"""Setuptools shim.

All metadata lives in ``pyproject.toml``.  This file exists so environments
without the ``wheel`` package (where PEP 660 editable builds fail with
``invalid command 'bdist_wheel'``) can still do a legacy editable install::

    pip install -e . --no-use-pep517 --no-build-isolation
"""

from setuptools import setup

setup()
