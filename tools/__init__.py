"""Repository tooling (``python -m tools.reprolint``, bench compare...).

This package exists so the static-analysis framework under
``tools/reprolint`` is importable as a module from the repository root —
the standalone scripts (``bench_compare.py``, the ``check_obs_gating.py``
shim) keep working as plain files.
"""
