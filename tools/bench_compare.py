#!/usr/bin/env python3
"""Compare the latest benchmark session against a baseline; fail on regression.

Reads the ``BENCH_HISTORY.json`` time series that ``benchmarks/conftest.py``
appends to (schema in ``benchmarks/history.py``) and diffs the **latest**
session's per-test minimum times against a baseline:

* ``--baseline FILE`` — an explicit baseline written earlier with
  ``--write-baseline`` (what CI pins per branch), else
* the **previous** session in the same history file (local workflow:
  run the suite twice, compare).

A test regresses when::

    cur_min > base_min * (1 + --tolerance) + --abs-floor

Both knobs exist because benchmark noise is multiplicative *and* the tiny
CI tier runs in milliseconds where a scheduler blip outweighs any real
change: the default 25% relative tolerance plus a 5 ms absolute floor
keeps the tiny tier quiet while still catching the 2-3× cliffs that a
broken rule pin or a lost fast path produces.  Sessions are only compared
within one size tier — a ``tiny`` baseline says nothing about ``small``.

Exit status: 0 (clean / nothing comparable), 1 (regressions — listed on
stdout), 2 (usage errors).  ``--inject-slowdown X`` multiplies the current
times by ``X`` first; CI uses it as a self-test that the detector actually
fires before trusting its green.

Usage::

    python tools/bench_compare.py BENCH_HISTORY.json --write-baseline base.json
    python tools/bench_compare.py BENCH_HISTORY.json --baseline base.json
    python tools/bench_compare.py BENCH_HISTORY.json --baseline base.json \
        --inject-slowdown 3.0        # must exit 1
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
from pathlib import Path

_HISTORY_PY = Path(__file__).resolve().parents[1] / "benchmarks" / "history.py"


def _load_history_module():
    spec = importlib.util.spec_from_file_location("bench_history", _HISTORY_PY)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def baseline_from_session(session: dict) -> dict:
    """A pinned baseline document distilled from one session record."""
    return {
        "schema": session.get("schema", 1),
        "git_sha": session.get("git_sha", "unknown"),
        "size": session.get("size", "unknown"),
        "recorded_at": session.get("recorded_at"),
        "entries": {e["id"]: e["min_s"] for e in session.get("entries", ())},
    }


def compare(current: dict, baseline: dict, *, tolerance: float,
            abs_floor: float, slowdown: float = 1.0) -> dict:
    """``{"regressions": [...], "improved": [...], "new": [...],
    "missing": [...], "checked": int}`` for the session/baseline pair."""
    base_entries = baseline.get("entries", {})
    out = {"regressions": [], "improved": [], "new": [], "missing": [],
           "checked": 0}
    seen = set()
    for entry in current.get("entries", ()):
        tid = entry["id"]
        seen.add(tid)
        cur = float(entry["min_s"]) * slowdown
        base = base_entries.get(tid)
        if base is None:
            out["new"].append(tid)
            continue
        base = float(base)
        out["checked"] += 1
        budget = base * (1.0 + tolerance) + abs_floor
        row = {"id": tid, "base_s": base, "cur_s": cur,
               "ratio": (cur / base) if base else float("inf")}
        if cur > budget:
            out["regressions"].append(row)
        elif cur < base * (1.0 - tolerance) - abs_floor:
            out["improved"].append(row)
    out["missing"] = sorted(set(base_entries) - seen)
    out["regressions"].sort(key=lambda r: r["ratio"], reverse=True)
    return out


def _report(result: dict, *, tolerance: float, abs_floor: float) -> None:
    print(f"bench_compare: {result['checked']} tests compared "
          f"(tolerance {tolerance:.0%} + {abs_floor * 1e3:.1f}ms floor), "
          f"{len(result['new'])} new, {len(result['missing'])} missing")
    for row in result["improved"]:
        print(f"  improved   {row['id']}: {row['base_s']:.4f}s -> "
              f"{row['cur_s']:.4f}s ({row['ratio']:.2f}x)")
    for row in result["regressions"]:
        print(f"  REGRESSED  {row['id']}: {row['base_s']:.4f}s -> "
              f"{row['cur_s']:.4f}s ({row['ratio']:.2f}x)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff the latest benchmark session against a baseline.")
    parser.add_argument("history", help="BENCH_HISTORY.json time series")
    parser.add_argument("--baseline", help="pinned baseline JSON to compare "
                        "against (default: previous session in the history)")
    parser.add_argument("--write-baseline", metavar="PATH",
                        help="distil the latest session into a baseline "
                        "file and exit")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="relative slowdown tolerated (default 0.25)")
    parser.add_argument("--abs-floor", type=float, default=0.005,
                        help="absolute seconds of slack on top (default "
                        "0.005)")
    parser.add_argument("--inject-slowdown", type=float, default=1.0,
                        metavar="X", help="multiply current times by X "
                        "(detector self-test)")
    args = parser.parse_args(argv)

    hist = _load_history_module()
    try:
        sessions = hist.load(args.history)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"bench_compare: cannot read {args.history}: {exc}")
        return 2
    if not sessions:
        print(f"bench_compare: {args.history} holds no sessions")
        return 2
    current = sessions[-1]

    if args.write_baseline:
        doc = baseline_from_session(current)
        with open(args.write_baseline, "w") as fh:
            json.dump(doc, fh, indent=1)
            fh.write("\n")
        print(f"bench_compare: baseline ({len(doc['entries'])} tests, "
              f"size={doc['size']}) written to {args.write_baseline}")
        return 0

    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
    elif len(sessions) >= 2:
        baseline = baseline_from_session(sessions[-2])
    else:
        print("bench_compare: single session and no --baseline; "
              "nothing to compare")
        return 0

    if baseline.get("size") != current.get("size"):
        print(f"bench_compare: size tier mismatch (baseline "
              f"{baseline.get('size')!r} vs current "
              f"{current.get('size')!r}); refusing to compare")
        return 2

    result = compare(current, baseline, tolerance=args.tolerance,
                     abs_floor=args.abs_floor,
                     slowdown=args.inject_slowdown)
    _report(result, tolerance=args.tolerance, abs_floor=args.abs_floor)
    if result["regressions"]:
        print(f"bench_compare: {len(result['regressions'])} regression(s)")
        return 1
    print("bench_compare: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
