#!/usr/bin/env python3
"""Legacy entry point for the observability gating check.

The actual logic lives in :mod:`tools.reprolint.checkers.obs_gating`
(the ``obs-gating`` rule); this script is a compatibility shim kept so
``python tools/check_obs_gating.py`` and the historical module API
(:func:`check_file`, :func:`iter_default_files`, :func:`main`) keep
working for CI scripts and tests that load it standalone.  New call
sites should run ``python -m tools.reprolint`` instead — it checks this
contract plus the rest of the engine/serve/pool invariants
(docs/LINTING.md).

Run from the repository root::

    python tools/check_obs_gating.py            # checks src/repro
    python tools/check_obs_gating.py FILE...    # explicit file list
"""

from __future__ import annotations

import sys
from pathlib import Path

# the shim is loaded standalone (``spec_from_file_location`` in tests,
# ``python tools/check_obs_gating.py`` in CI) — no package context, so
# resolve the repository root onto sys.path before importing reprolint
_REPO_ROOT = Path(__file__).resolve().parents[1]
if str(_REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT))

from tools.reprolint.checkers.obs_gating import ObsGating  # noqa: E402
from tools.reprolint.core import FileContext  # noqa: E402

PRAGMA = ObsGating.pragma


def check_file(path: Path) -> list:
    """``[(lineno, label), ...]`` of ungated observability calls."""
    return ObsGating().violations(FileContext.parse(Path(path)))


def iter_default_files(root: Path):
    src = root / "src" / "repro"
    for path in sorted(src.rglob("*.py")):
        if "obs" in path.relative_to(src).parts[:1]:
            continue                     # the guard implementation itself
        yield path


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        files = [Path(a) for a in argv]
    else:
        files = list(iter_default_files(_REPO_ROOT))
    bad = 0
    for path in files:
        for lineno, label in check_file(path):
            bad += 1
            print(f"{path}:{lineno}: ungated observability call {label} "
                  f"(guard on active()/ENABLED or add '# {PRAGMA}')")
    if bad:
        print(f"check_obs_gating: {bad} violation(s) in {len(files)} files")
        return 1
    print(f"check_obs_gating: OK ({len(files)} files)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
