#!/usr/bin/env python3
"""Static check: observability call sites must gate on the cheap guards.

The observability layer's cost contract (docs/OBSERVABILITY.md) is that
the *disabled* paths cost at most one flag/ContextVar read — which only
holds if call sites never compute event dicts, span attributes, or metric
label values before checking the guard.  This script walks the source AST
and requires every

* ``telemetry.record(...)`` call,
* ``trace.instant(...)`` / ``_trace.instant(...)`` call,
* bump (``inc``/``dec``/``set``/``observe``) on a module-level metric
  handle (ALL_CAPS root name, e.g. ``_REQUESTS.labels(...).inc()``), and
* delta-writer helper call handed a module-level metric handle
  (``_bump(SHM_BYTES, n)`` — the pool/footprint idiom that writes
  ``child.value`` directly instead of going through ``inc``/``dec``)

to sit under an ``if`` whose test calls ``active()`` / ``deep_active()``
or reads an ``ENABLED`` flag.  A site whose gating is structural rather
than lexical (e.g. the serve answer path, which captures the sink only
while tracing was active) opts out with a pragma comment::

    # obs: gated-by-caller (reason)

placed on the call or between the enclosing ``def`` and the call.  The
:mod:`repro.obs` package itself is exempt — it implements the guards.

Run from the repository root (CI lint job)::

    python tools/check_obs_gating.py            # checks src/repro
    python tools/check_obs_gating.py FILE...    # explicit file list
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

PRAGMA = "obs: gated-by-caller"
GUARD_CALLS = {"active", "deep_active"}
GUARD_FLAGS = {"ENABLED"}
BUMPS = {"inc", "dec", "set", "observe"}
#: bare functions that mutate a metric handle passed as their first
#: argument (``_bump(SHM_BYTES, n)`` writes ``child.value`` directly)
DELTA_HELPERS = {"_bump"}


def _root_name(node):
    """The leftmost Name of an attribute/call chain, or None."""
    while isinstance(node, (ast.Attribute, ast.Call)):
        node = node.func if isinstance(node, ast.Call) else node.value
    return node.id if isinstance(node, ast.Name) else None


def _is_guard_test(test) -> bool:
    """Does an ``if`` test consult one of the cheap observability guards?"""
    for n in ast.walk(test):
        if isinstance(n, ast.Call):
            f = n.func
            name = f.attr if isinstance(f, ast.Attribute) else getattr(
                f, "id", None)
            if name in GUARD_CALLS:
                return True
        elif isinstance(n, ast.Attribute) and n.attr in GUARD_FLAGS:
            return True
        elif isinstance(n, ast.Name) and n.id in GUARD_FLAGS:
            return True
    return False


def _classify(call: ast.Call):
    """The violation label for an observability call, or None."""
    f = call.func
    if isinstance(f, ast.Name) and f.id in DELTA_HELPERS and call.args:
        handle = _root_name(call.args[0])
        if handle is not None and handle.isupper():
            return f"{f.id}({handle}, ...)"
        return None
    if not isinstance(f, ast.Attribute):
        return None
    root = _root_name(f.value)
    if root is None:
        return None
    if f.attr == "record" and "telemetry" in root:
        return f"{root}.record"
    if f.attr == "instant" and "trace" in root:
        return f"{root}.instant"
    if f.attr == "account" and "mem" in root.lower():
        return f"{root}.account"
    if f.attr in BUMPS and root.isupper():
        return f"{root}...{f.attr}"
    return None


def check_file(path: Path) -> list:
    """``[(lineno, label), ...]`` of ungated observability calls."""
    source = path.read_text()
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))

    parents = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node

    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        label = _classify(node)
        if label is None:
            continue
        # gated: any ancestor ``if`` consulting a guard
        anc, gated, func_def = node, False, None
        while anc in parents:
            anc = parents[anc]
            if isinstance(anc, ast.If) and _is_guard_test(anc.test):
                gated = True
                break
            if (func_def is None
                    and isinstance(anc, (ast.FunctionDef,
                                         ast.AsyncFunctionDef))):
                func_def = anc
        if gated:
            continue
        # pragma: on the call's lines, or between the enclosing def and it
        start = (func_def.lineno if func_def is not None else node.lineno)
        end = getattr(node, "end_lineno", node.lineno)
        if any(PRAGMA in lines[i] for i in range(start - 1, end)):
            continue
        violations.append((node.lineno, label))
    return violations


def iter_default_files(root: Path):
    src = root / "src" / "repro"
    for path in sorted(src.rglob("*.py")):
        if "obs" in path.relative_to(src).parts[:1]:
            continue                     # the guard implementation itself
        yield path


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        files = [Path(a) for a in argv]
    else:
        files = list(iter_default_files(Path(__file__).resolve().parents[1]))
    bad = 0
    for path in files:
        for lineno, label in check_file(path):
            bad += 1
            print(f"{path}:{lineno}: ungated observability call {label} "
                  f"(guard on active()/ENABLED or add '# {PRAGMA}')")
    if bad:
        print(f"check_obs_gating: {bad} violation(s) in {len(files)} files")
        return 1
    print(f"check_obs_gating: OK ({len(files)} files)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
