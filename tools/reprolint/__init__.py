"""``tools.reprolint`` — pluggable AST invariant checker (docs/LINTING.md).

The framework (:mod:`.core`) owns parsing, parent links, guard/scope
helpers, pragma opt-outs, and diagnostic rendering; each enforced
invariant is a :class:`~tools.reprolint.core.Checker` plugin under
:mod:`.checkers`.  CI runs ``python -m tools.reprolint src/repro`` and
gates merges on a clean report.
"""

from __future__ import annotations

from .checkers import all_checkers, checkers_by_id
from .cli import main
from .core import (Checker, Diagnostic, FileContext, LintError,
                   iter_python_files, run_files)

__all__ = [
    "Checker", "Diagnostic", "FileContext", "LintError",
    "all_checkers", "checkers_by_id", "iter_python_files", "run_files",
    "main",
]
