"""``pool-pickle``: worker task specs are built from picklable pieces.

Every task dict handed to :meth:`repro.grb.pool.pool.WorkerPool.run_tasks`
(or sent down a worker pipe) crosses a process boundary by pickle.  The
sanctioned building blocks are constants, numpy arrays and slices of
them, tuples/dicts/lists of those, operand references from
``pool.matrix_ref`` / ``publish_graph`` (inline buffers or ``Placement``
descriptors), and compiled fault specs — all picklable by construction
(``docs/PARALLEL.md``).

What reliably is *not* picklable — and what this rule detects inside the
argument expressions that flow into a task submission (one level of
local-variable resolution deep):

* ``lambda`` expressions,
* references to locally-defined (closure) functions,
* generator expressions (pickle refuses generators), and
* ``open(...)`` handles.

A spec that smuggles one of these in fails at submission time on the
first pool-enabled run — which tests with ``REPRO_POOL_WORKERS`` unset
never exercise; this rule fails it at lint time instead.

Opt-out: ``# pool: pickle-safe (reason)``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set

from ..core import Checker, Diagnostic, FileContext, dotted_tail

#: call names whose arguments are (or contain) task specs.
SUBMIT_CALLS = {"run_tasks"}
#: attribute sends on a pipe-ish receiver (``worker.conn.send(task)``).
SEND_RECEIVERS = ("conn",)
#: calls that yield unpicklable handles.
FORBIDDEN_CALLS = {"open"}


class PoolPickle(Checker):
    rule_id = "pool-pickle"
    pragma = "pool: pickle-safe"
    description = ("pool task specs must be built from picklable pieces — "
                   "no lambdas, closures, generators, or open handles")
    doc_anchor = "docs/LINTING.md#pool-pickle"

    def interested(self, posix_path: str) -> bool:
        return ("/pool/" in posix_path
                or posix_path.endswith("engine/pool_rules.py"))

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        out: List[Diagnostic] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            tail = dotted_tail(node.func)
            if tail in SUBMIT_CALLS:
                pass
            elif (tail == "send" and isinstance(node.func, ast.Attribute)
                    and (dotted_tail(node.func.value) or "") in
                    SEND_RECEIVERS):
                pass
            else:
                continue
            out.extend(self._check_spec_args(ctx, node))
        return out

    def _check_spec_args(self, ctx: FileContext,
                         site: ast.Call) -> List[Diagnostic]:
        fn = ctx.enclosing_function(site)
        local_defs = self._local_defs(fn)
        assigns = self._local_assigns(fn)
        out = []
        seen_lines: Set[int] = set()
        for arg in list(site.args) + [kw.value for kw in site.keywords]:
            for bad, why in self._forbidden(arg, local_defs, assigns):
                if bad.lineno in seen_lines:
                    continue
                seen_lines.add(bad.lineno)
                if self.waived(ctx, bad, anchor=fn or bad):
                    continue
                out.append(self.diag(
                    ctx, bad,
                    f"{why} in a pool task spec — workers unpickle specs "
                    f"in another process; build them from picklable "
                    f"pieces (docs/PARALLEL.md) or add "
                    f"'# {self.pragma} (reason)'",
                    detail=why))
        return out

    def _local_defs(self, fn) -> Set[str]:
        """Names of functions defined inside ``fn`` (closures)."""
        if fn is None:
            return set()
        return {n.name for n in ast.walk(fn)
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                and n is not fn}

    def _local_assigns(self, fn) -> Dict[str, List[ast.AST]]:
        """name → assigned value expressions within ``fn``."""
        if fn is None:
            return {}
        out: Dict[str, List[ast.AST]] = {}
        for n in ast.walk(fn):
            if isinstance(n, ast.Assign):
                for t in n.targets:
                    if isinstance(t, ast.Name):
                        out.setdefault(t.id, []).append(n.value)
            elif isinstance(n, ast.AnnAssign) and n.value is not None \
                    and isinstance(n.target, ast.Name):
                out.setdefault(n.target.id, []).append(n.value)
        return out

    def _forbidden(self, expr: ast.AST, local_defs: Set[str],
                   assigns: Dict[str, List[ast.AST]], *,
                   depth: int = 1) -> Iterable:
        for n in ast.walk(expr):
            if isinstance(n, ast.Lambda):
                yield n, "lambda"
            elif isinstance(n, ast.GeneratorExp):
                yield n, "generator expression"
            elif isinstance(n, ast.Call):
                name = dotted_tail(n.func)
                if name in FORBIDDEN_CALLS:
                    yield n, f"{name}() handle"
            elif isinstance(n, ast.Name):
                if n.id in local_defs and isinstance(n.ctx, ast.Load):
                    yield n, f"closure function '{n.id}'"
                elif depth > 0 and isinstance(n.ctx, ast.Load):
                    for value in assigns.get(n.id, ()):
                        yield from self._forbidden(
                            value, local_defs, assigns, depth=depth - 1)
