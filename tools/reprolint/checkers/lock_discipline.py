"""``lock-discipline``: lock bodies stay small; GC/exit paths stay lock-free.

Two hazards the PR-8/9 postmortem notes hand-audited:

**Hot-lock bodies** — ``self._lock`` in ``serve/`` and ``pool/`` guards
bookkeeping (stats, maps, queues).  A kernel dispatch, a blocking
``Condition.wait`` on some *other* object, or a pool submission inside a
``with self._lock`` body turns every concurrent submitter into a convoy
(and ``wait`` while holding a foreign mutex is a deadlock waiting for its
second participant).  The rule flags, lexically inside any ``with``
whose context expression names a ``*lock*`` attribute, calls named like
kernel dispatch / pool submission (:data:`DISPATCH_CALLS`) and any
``.wait(...)`` call.

**GC / exit callbacks** — a ``weakref.finalize`` callback may run on any
thread mid-GC: taking *any* lock there can self-deadlock against the
very thread that triggered collection (the obs memory accounting and the
shm arena both enqueue to a lock-free deque instead — that is the
contract).  An ``atexit`` callback runs while daemon threads are frozen
at arbitrary points, so it may only take a lock with a bounded
``acquire(timeout=...)`` — never ``with lock:`` or a bare ``acquire()``.
The rule resolves callbacks registered in the same module (plain
functions and ``self._method`` bound methods, one level of same-module
callees deep) and flags offending acquisitions inside them.

Opt-out: ``# lock: discipline-exempt (reason)``.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from ..core import Checker, Diagnostic, FileContext, dotted_tail

#: call names that mean "kernel dispatch or pool submission" — work that
#: must never run while holding a serve/pool bookkeeping lock.
DISPATCH_CALLS = {
    "dispatch", "execute", "run_tasks", "submit", "submit_many",
    "query", "query_many", "_run_one", "_run_batch", "_run_unit",
}


def _names_a_lock(expr: ast.AST) -> bool:
    tail = dotted_tail(expr)
    return tail is not None and "lock" in tail.lower()


def _lock_with_items(node: ast.With) -> bool:
    return any(_names_a_lock(item.context_expr) for item in node.items)


def _is_bounded_acquire(call: ast.Call) -> bool:
    """``lock.acquire(False)`` / ``acquire(timeout=...)`` — cannot hang."""
    return bool(call.args) or any(kw.arg in ("timeout", "blocking")
                                  for kw in call.keywords)


class LockDiscipline(Checker):
    rule_id = "lock-discipline"
    pragma = "lock: discipline-exempt"
    description = ("no dispatch/wait/pool-submission under serve/pool "
                   "locks; no lock acquisition in weakref.finalize "
                   "callbacks; only bounded acquires at atexit")
    doc_anchor = "docs/LINTING.md#lock-discipline"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        out: List[Diagnostic] = []
        if "/serve/" in ctx.display_path or "/pool/" in ctx.display_path:
            out.extend(self._check_lock_bodies(ctx))
        out.extend(self._check_gc_exit_callbacks(ctx))
        return out

    # -- hot-lock bodies ---------------------------------------------------

    def _check_lock_bodies(self, ctx: FileContext) -> List[Diagnostic]:
        out = []
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.With) and _lock_with_items(node)):
                continue
            for call in self._body_calls(node.body):
                name = dotted_tail(call.func)
                if name in DISPATCH_CALLS:
                    kind = "kernel dispatch / pool submission"
                elif name == "wait":
                    kind = "blocking wait"
                else:
                    continue
                if self.waived(ctx, call,
                               anchor=ctx.enclosing_function(call) or call):
                    continue
                out.append(self.diag(
                    ctx, call,
                    f"{kind} ({name}(...)) inside a 'with ...lock' body — "
                    f"move it outside the critical section or add "
                    f"'# {self.pragma} (reason)'",
                    detail=f"with-lock:{name}"))
        return out

    def _body_calls(self, body: List[ast.stmt]) -> Iterable[ast.Call]:
        """Calls in a statement list, not descending into nested defs
        (deferred code does not run under the lock)."""
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            if isinstance(node, ast.Call):
                yield node
            stack.extend(ast.iter_child_nodes(node))

    # -- GC / exit callbacks -----------------------------------------------

    def _check_gc_exit_callbacks(self, ctx: FileContext) -> List[Diagnostic]:
        out = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            tail = dotted_tail(node.func)
            if tail == "finalize" and len(node.args) >= 2:
                cb, strict = node.args[1], True
                origin = "weakref.finalize callback"
            elif tail == "register" and "atexit" in (
                    dotted_tail(getattr(node.func, "value", None)) or ""):
                if not node.args:
                    continue
                cb, strict = node.args[0], False
                origin = "atexit callback"
            else:
                continue
            fn = self._resolve_callback(ctx, node, cb)
            if fn is None:
                continue
            for call_fn, acq in self._lock_acquisitions(ctx, fn):
                if not strict and isinstance(acq, ast.Call) \
                        and _is_bounded_acquire(acq):
                    continue
                if self.waived(ctx, acq, anchor=call_fn):
                    continue
                spelling = ("with-statement" if isinstance(acq, ast.With)
                            else "acquire()")
                out.append(self.diag(
                    ctx, acq,
                    f"lock {spelling} reachable from {origin} "
                    f"'{fn.name}' — GC/exit context must stay lock-free "
                    f"(enqueue to a lock-free structure"
                    + ("" if strict else
                       ", or use a bounded acquire(timeout=...)")
                    + f") or add '# {self.pragma} (reason)'",
                    detail=f"{origin.split()[0]}:{fn.name}"))
        return out

    def _resolve_callback(self, ctx: FileContext, site: ast.Call,
                          cb: ast.AST) -> Optional[ast.FunctionDef]:
        if isinstance(cb, ast.Name):
            return self._module_function(ctx, cb.id)
        if (isinstance(cb, ast.Attribute)
                and isinstance(cb.value, ast.Name)
                and cb.value.id == "self"):
            for anc in ctx.ancestors(site):
                if isinstance(anc, ast.ClassDef):
                    for stmt in anc.body:
                        if isinstance(stmt, (ast.FunctionDef,
                                             ast.AsyncFunctionDef)) \
                                and stmt.name == cb.attr:
                            return stmt
        return None

    def _module_function(self, ctx: FileContext,
                         name: str) -> Optional[ast.FunctionDef]:
        for stmt in getattr(ctx.tree, "body", []):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and stmt.name == name:
                return stmt
        return None

    def _lock_acquisitions(self, ctx: FileContext, fn: ast.FunctionDef,
                           depth: int = 2
                           ) -> List[Tuple[ast.FunctionDef, ast.AST]]:
        """``(owner_fn, with_or_acquire_node)`` in ``fn`` and one level of
        same-module callees."""
        found: List[Tuple[ast.FunctionDef, ast.AST]] = []
        seen = {fn.name}
        frontier = [(fn, depth)]
        while frontier:
            cur, d = frontier.pop()
            for node in ast.walk(cur):
                if isinstance(node, ast.With) and _lock_with_items(node):
                    found.append((cur, node))
                elif isinstance(node, ast.Call):
                    tail = dotted_tail(node.func)
                    if tail == "acquire" and _names_a_lock(
                            getattr(node.func, "value", node.func)):
                        found.append((cur, node))
                    elif d > 1 and isinstance(node.func, ast.Name) \
                            and node.func.id not in seen:
                        callee = self._module_function(ctx, node.func.id)
                        if callee is not None:
                            seen.add(callee.name)
                            frontier.append((callee, d - 1))
        return found
