"""``cancel-checkpoint``: algorithm loops stay cooperatively cancellable.

The serve layer's latency contract (``docs/RESILIENCE.md``) relies on
every potentially-long kernel loop reaching :func:`repro.grb.cancel.
checkpoint` at iteration boundaries — a deadline-carrying request must
unwind instead of computing a result nobody is waiting for.  The reaper
resolves the *future* on time regardless, but only the checkpoint stops
the wasted compute, and a new algorithm that forgets it silently erodes
the deadline story PR 8 hand-audited.

The rule: inside the algorithm tiers (``lagraph/algorithms/``,
``lagraph/experimental/``) and the engine's multiplan stepping
(``engine/multiplan.py``), every ``while`` loop and every ``for`` loop
over a data-dependent iterable, inside a function body, must lexically
contain a ``checkpoint()`` call (its own or an inner loop's).  Loops over
compile-time-bounded iterables — ``range()`` of literals, literal
collections — are exempt: they cannot scale with the input.

Deliberate exceptions carry ``# cancel: checkpoint-exempt (reason)`` on
the loop header (or the line above it) — e.g. a pointer-jumping loop
whose trip count is bounded by construction.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..core import Checker, Diagnostic, FileContext, dotted_tail

#: call names that satisfy the rule inside a loop body.
CHECKPOINT_CALLS = ("checkpoint",)


def _is_bounded_iterable(node: ast.AST) -> bool:
    """Can this ``for`` iterable be proven small at compile time?"""
    if isinstance(node, (ast.List, ast.Tuple, ast.Set, ast.Dict)):
        return True
    if isinstance(node, ast.Constant):           # strings / bytes
        return True
    if isinstance(node, ast.Call):
        name = dotted_tail(node.func)
        if name in ("range", "enumerate", "zip", "reversed", "sorted"):
            return all(_is_bounded_iterable(a) or _is_literal(a)
                       for a in node.args)
    return False


def _is_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_literal(node.operand)
    if isinstance(node, ast.BinOp):
        return _is_literal(node.left) and _is_literal(node.right)
    return False


def _contains_checkpoint(loop: ast.AST) -> bool:
    for n in ast.walk(loop):
        if isinstance(n, ast.Call) and dotted_tail(
                n.func) in CHECKPOINT_CALLS:
            return True
    return False


class CancelCheckpoint(Checker):
    rule_id = "cancel-checkpoint"
    pragma = "cancel: checkpoint-exempt"
    description = ("algorithm/multiplan loops must call cancel.checkpoint() "
                   "at an iteration boundary")
    doc_anchor = "docs/LINTING.md#cancel-checkpoint"

    def interested(self, posix_path: str) -> bool:
        return ("lagraph/algorithms/" in posix_path
                or "lagraph/experimental/" in posix_path
                or posix_path.endswith("engine/multiplan.py"))

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        out = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.While, ast.For, ast.AsyncFor)):
                continue
            if ctx.enclosing_function(node) is None:
                continue                      # import-time table building
            if (isinstance(node, (ast.For, ast.AsyncFor))
                    and _is_bounded_iterable(node.iter)):
                continue
            if _contains_checkpoint(node):
                continue
            header_end = node.body[0].lineno - 1 if node.body else node.lineno
            if self.waived(ctx, node, end_line=max(header_end, node.lineno)):
                continue
            kind = ("while" if isinstance(node, ast.While) else "for")
            out.append(self.diag(
                ctx, node,
                f"{kind} loop without a cancel checkpoint — call "
                f"cancel.checkpoint() at the iteration boundary or add "
                f"'# {self.pragma} (reason)' "
                f"(deadline contract, docs/RESILIENCE.md)",
                detail=kind))
        return out
