"""``cost-constants``: tunables are defined in the cost model, not inline.

PR 4's engine refactor put every chooser threshold behind ONE module
(``engine/cost.py``; storage-format thresholds in ``storage/policy.py``)
so a monkeypatch there re-routes every call that consults it — the
forcing idiom the planner-parity and ablation suites rely on.  A numeric
ALL-CAPS tunable defined inline in a rule, kernel, or the operations
façade silently escapes that contract: tests can no longer force the
path it gates, and the "constants live in one place" layering erodes one
convenience constant at a time.

The rule: inside ``grb/engine/`` (except ``cost.py``), ``grb/_kernels/``,
``grb/storage/`` (except ``policy.py``) and ``grb/operations.py``, a
module-level ``ALL_CAPS = <number>`` assignment is a violation.  Strings,
tuples of names, compiled regexes etc. are not tunables and pass.

Kernel *mechanism* caps — constants that tune how a chosen kernel
executes rather than which kernel is chosen (see the ``engine/cost.py``
docstring) — are the sanctioned exception: annotate with
``# cost: mechanism-cap (reason)`` on the assignment.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..core import Checker, Diagnostic, FileContext


def _is_numeric_expr(node: ast.AST) -> bool:
    """A literal number, or arithmetic over literal numbers (``1 << 26``)."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float)) and not isinstance(
            node.value, bool)
    if isinstance(node, ast.UnaryOp):
        return _is_numeric_expr(node.operand)
    if isinstance(node, ast.BinOp):
        return _is_numeric_expr(node.left) and _is_numeric_expr(node.right)
    return False


class CostConstants(Checker):
    rule_id = "cost-constants"
    pragma = "cost: mechanism-cap"
    description = ("numeric ALL-CAPS tunables may only be defined in "
                   "engine/cost.py / storage/policy.py")
    doc_anchor = "docs/LINTING.md#cost-constants"

    def interested(self, posix_path: str) -> bool:
        if posix_path.endswith(("engine/cost.py", "storage/policy.py")):
            return False
        return ("grb/engine/" in posix_path
                or "grb/_kernels/" in posix_path
                or "grb/storage/" in posix_path
                or posix_path.endswith("grb/operations.py"))

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        out = []
        body = getattr(ctx.tree, "body", [])
        for stmt in body:
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            if not _is_numeric_expr(value):
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if not (name.isupper() and len(name) > 1):
                    continue
                if self.waived(ctx, stmt):
                    continue
                out.append(self.diag(
                    ctx, stmt,
                    f"inline numeric tunable {name} — chooser constants "
                    f"belong in engine/cost.py (or storage/policy.py); a "
                    f"kernel mechanism cap may stay with "
                    f"'# {self.pragma} (reason)'",
                    detail=name))
        return out
