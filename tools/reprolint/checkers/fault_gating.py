"""``fault-gating``: fault-injection hooks are free when idle.

The chaos harness (``repro.testing.faults``, ``docs/RESILIENCE.md``)
promises that a compiled hook site costs one module-global bool read
when no injector is installed::

    if _faults.ACTIVE:
        _faults.fire("kernel", op=plan.op)

``fire`` itself takes the injector lock and builds an info dict — an
ungated call site pays that on *every* dispatch, breaking the ≤2%
no-fault overhead budget the chaos suite's tripwire pins dynamically.
This rule pins it statically: every ``*faults*.fire(...)`` call must sit
under an ``if`` (or conditional expression) that reads an ``ACTIVE``
flag.  The harness implementation itself (``repro/testing/``) is exempt.

Opt-out: ``# faults: gated-by-caller (reason)``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..core import Checker, Diagnostic, FileContext, guarded_by, root_name

GUARD_FLAGS = ("ACTIVE",)


class FaultGating(Checker):
    rule_id = "fault-gating"
    pragma = "faults: gated-by-caller"
    description = ("every faults.fire(...) site must sit under "
                   "'if faults.ACTIVE' (one bool read when idle)")
    doc_anchor = "docs/LINTING.md#fault-gating"

    def interested(self, posix_path: str) -> bool:
        # the harness implements fire(); its own internals are exempt
        return "repro/testing/" not in posix_path

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        out = []
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "fire"):
                continue
            root = root_name(node.func.value)
            if root is None or "faults" not in root:
                continue
            if guarded_by(ctx, node, flags=GUARD_FLAGS):
                continue
            if self.waived(ctx, node,
                           anchor=ctx.enclosing_function(node) or node):
                continue
            out.append(self.diag(
                ctx, node,
                f"ungated fault-injection site {root}.fire(...) — wrap in "
                f"'if {root}.ACTIVE:' or add '# {self.pragma} (reason)' "
                f"(idle-cost contract, docs/RESILIENCE.md)",
                detail=f"{root}.fire"))
        return out
