"""``obs-gating``: observability call sites gate on the cheap guards.

The observability cost contract (``docs/OBSERVABILITY.md``) is that the
*disabled* paths cost at most one flag/ContextVar read — which only holds
if call sites never compute event dicts, span attributes, or metric label
values before checking the guard.  Every

* ``telemetry.record(...)`` call,
* ``trace.instant(...)`` / ``_trace.instant(...)`` call,
* ``*mem*.account(...)`` footprint-accounting call,
* bump (``inc``/``dec``/``set``/``observe``) on a module-level metric
  handle (ALL-CAPS root name, e.g. ``_REQUESTS.labels(...).inc()``), and
* delta-writer helper call handed a module-level metric handle
  (``_bump(SHM_BYTES, n)`` — the pool/footprint idiom)

must sit under an ``if`` whose test calls ``active()``/``deep_active()``
or reads an ``ENABLED`` flag.  Structurally-gated sites opt out with
``# obs: gated-by-caller (reason)``.  The :mod:`repro.obs` package itself
is exempt — it implements the guards.

This is the original ``tools/check_obs_gating.py`` logic rehosted as a
reprolint checker; the legacy script remains as a shim over this module.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from ..core import Checker, Diagnostic, FileContext, guarded_by, root_name

GUARD_CALLS = ("active", "deep_active")
GUARD_FLAGS = ("ENABLED",)
BUMPS = {"inc", "dec", "set", "observe"}
#: bare functions that mutate a metric handle passed as their first
#: argument (``_bump(SHM_BYTES, n)`` writes ``child.value`` directly)
DELTA_HELPERS = {"_bump"}


def classify(call: ast.Call) -> Optional[str]:
    """The violation label for an observability call, or ``None``."""
    f = call.func
    if isinstance(f, ast.Name) and f.id in DELTA_HELPERS and call.args:
        handle = root_name(call.args[0])
        if handle is not None and handle.isupper():
            return f"{f.id}({handle}, ...)"
        return None
    if not isinstance(f, ast.Attribute):
        return None
    root = root_name(f.value)
    if root is None:
        return None
    if f.attr == "record" and "telemetry" in root:
        return f"{root}.record"
    if f.attr == "instant" and "trace" in root:
        return f"{root}.instant"
    if f.attr == "account" and "mem" in root.lower():
        return f"{root}.account"
    if f.attr in BUMPS and root.isupper():
        return f"{root}...{f.attr}"
    return None


class ObsGating(Checker):
    rule_id = "obs-gating"
    pragma = "obs: gated-by-caller"
    description = ("telemetry/span/metric call sites must gate on "
                   "active()/deep_active()/ENABLED (one flag read when "
                   "disabled)")
    doc_anchor = "docs/LINTING.md#obs-gating"

    def interested(self, posix_path: str) -> bool:
        # the guard implementation itself is exempt
        return "repro/obs/" not in posix_path

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        out = []
        for lineno, label in self.violations(ctx):
            out.append(Diagnostic(
                rule=self.rule_id, path=ctx.display_path, line=lineno,
                col=0, detail=label,
                message=(f"ungated observability call {label} (guard on "
                         f"active()/ENABLED or add '# {self.pragma} "
                         f"(reason)')")))
        return out

    def violations(self, ctx: FileContext) -> List[Tuple[int, str]]:
        """``[(lineno, label), ...]`` — the legacy shim's return shape."""
        found = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            label = classify(node)
            if label is None:
                continue
            if guarded_by(ctx, node, calls=GUARD_CALLS, flags=GUARD_FLAGS):
                continue
            # pragma on the call's lines, or anywhere between the
            # enclosing ``def`` and the call
            anchor = ctx.enclosing_function(node) or node
            if self.waived(ctx, node, anchor=anchor):
                continue
            found.append((node.lineno, label))
        return found
