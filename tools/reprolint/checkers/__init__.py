"""The shipped checker registry, in stable diagnostic order."""

from __future__ import annotations

from typing import Dict, List

from ..core import Checker
from .obs_gating import ObsGating
from .cancel_checkpoint import CancelCheckpoint
from .cost_constants import CostConstants
from .lock_discipline import LockDiscipline
from .fault_gating import FaultGating
from .pool_pickle import PoolPickle

__all__ = ["all_checkers", "checkers_by_id",
           "ObsGating", "CancelCheckpoint", "CostConstants",
           "LockDiscipline", "FaultGating", "PoolPickle"]


def all_checkers() -> List[Checker]:
    """Fresh instances of every shipped checker (registration order)."""
    return [ObsGating(), CancelCheckpoint(), CostConstants(),
            LockDiscipline(), FaultGating(), PoolPickle()]


def checkers_by_id() -> Dict[str, Checker]:
    return {c.rule_id: c for c in all_checkers()}
