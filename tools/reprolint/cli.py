"""``python -m tools.reprolint`` — the CI entry point.

Usage::

    python -m tools.reprolint                       # checks src/repro
    python -m tools.reprolint src/repro --format=json
    python -m tools.reprolint PATH... --rules=obs-gating,cancel-checkpoint
    python -m tools.reprolint --list-rules

Exit codes: ``0`` clean, ``1`` violations found, ``2`` usage or analysis
error (unknown rule, unreadable/syntax-error file).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .checkers import all_checkers
from .core import (LintError, iter_python_files, render_human, render_json,
                   run_files)

#: repository root (``tools/reprolint/cli.py`` → two parents up).
REPO_ROOT = Path(__file__).resolve().parents[2]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="reprolint",
        description="Pluggable AST invariant checker for the engine/serve/"
                    "pool contracts (docs/LINTING.md).")
    p.add_argument("paths", nargs="*",
                   help="files or directories to check "
                        "(default: src/repro under the repository root)")
    p.add_argument("--format", choices=("human", "json"), default="human",
                   help="diagnostic output format (default: human)")
    p.add_argument("--output", metavar="FILE",
                   help="also write the report to FILE (same format)")
    p.add_argument("--rules", metavar="ID[,ID...]",
                   help="comma-separated rule ids to run (default: all)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the registered rules and exit")
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    checkers = all_checkers()
    if args.list_rules:
        for c in checkers:
            print(f"{c.rule_id:18} {c.description}")
            print(f"{'':18} pragma: '# {c.pragma} (reason)'  "
                  f"[{c.doc_anchor}]")
        return 0
    if args.rules:
        wanted = [r.strip() for r in args.rules.split(",") if r.strip()]
        by_id = {c.rule_id: c for c in checkers}
        unknown = [r for r in wanted if r not in by_id]
        if unknown:
            print(f"reprolint: unknown rule(s): {', '.join(unknown)} "
                  f"(try --list-rules)", file=sys.stderr)
            return 2
        checkers = [by_id[r] for r in wanted]

    if args.paths:
        paths = [Path(p) for p in args.paths]
        missing = [p for p in paths if not p.exists()]
        if missing:
            print(f"reprolint: no such path: "
                  f"{', '.join(map(str, missing))}", file=sys.stderr)
            return 2
    else:
        paths = [REPO_ROOT / "src" / "repro"]

    files = iter_python_files(paths)
    try:
        diags = run_files(files, checkers, relative_to=REPO_ROOT)
    except LintError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2

    rules = [c.rule_id for c in checkers]
    render = render_json if args.format == "json" else render_human
    report = render(diags, len(files), rules)
    print(report)
    if args.output:
        Path(args.output).write_text(report + "\n")
    return 1 if diags else 0
