"""The reprolint core: one AST pass, pluggable checkers, pragma opt-outs.

``reprolint`` enforces the cross-cutting invariants the test suite cannot
economically pin — the contracts that hold the layered design together
(disabled observability costs one flag read, algorithm loops stay
cancellable, chooser constants live in one module, lock bodies stay
small, fault hooks are free when idle, pool task specs stay picklable).
Each invariant is a :class:`Checker` plugin; the framework owns parsing,
parent links, guard/scope helpers, pragma handling, and diagnostics.

Diagnostics are stable strings — ``RULE-ID:path:line: message`` — so CI
logs diff cleanly across runs; ``--format=json`` emits the same records
as a machine-readable report (schema in ``docs/LINTING.md``).

Opt-outs are per-rule pragma comments with a reason string, e.g.::

    while parent[s] != s:   # cancel: checkpoint-exempt (bounded pointer chase)

plus the universal form ``# reprolint: disable=<rule-id> (reason)``.  A
pragma without a parenthesised reason does not waive anything — deliberate
exceptions must say why (the same way ``# obs: gated-by-caller (…)``
always has).
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

__all__ = [
    "Diagnostic", "FileContext", "Checker", "LintError",
    "run_files", "iter_python_files", "render_human", "render_json",
    "JSON_SCHEMA_VERSION",
]

#: Bumped whenever the JSON report layout changes shape.
JSON_SCHEMA_VERSION = 1

#: Universal opt-out: ``# reprolint: disable=<rule-id> (reason)``.
_DISABLE_RE = re.compile(
    r"reprolint:\s*disable=(?P<rules>[a-z0-9,-]+)\s*\((?P<reason>[^)]+)\)")


class LintError(RuntimeError):
    """A file reprolint could not analyse (syntax error, unreadable)."""


@dataclass(frozen=True)
class Diagnostic:
    """One violation: where, which rule, and what to do about it."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: Short machine label for the flagged construct (e.g. the metric
    #: bump spelling) — the legacy ``check_obs_gating`` tuple rides here.
    detail: str = ""

    def render(self) -> str:
        return f"{self.rule}:{self.path}:{self.line}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule, "path": self.path, "line": self.line,
            "col": self.col, "message": self.message, "detail": self.detail,
        }


@dataclass
class FileContext:
    """One parsed file plus the shared lookups every checker needs."""

    path: Path
    display_path: str
    source: str
    lines: List[str]
    tree: ast.AST
    parents: dict = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, display_path: Optional[str] = None
              ) -> "FileContext":
        try:
            source = path.read_text()
        except OSError as exc:
            raise LintError(f"{path}: unreadable ({exc})") from exc
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise LintError(f"{path}:{exc.lineno}: syntax error: {exc.msg}")
        ctx = cls(path=path,
                  display_path=display_path or path.as_posix(),
                  source=source, lines=source.splitlines(), tree=tree)
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                ctx.parents[child] = node
        return ctx

    # -- tree navigation ---------------------------------------------------

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        """Parents of ``node``, innermost first."""
        while node in self.parents:
            node = self.parents[node]
            yield node

    def enclosing_function(self, node: ast.AST):
        """The nearest enclosing def/async-def, or ``None`` at module level."""
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    # -- pragma handling ---------------------------------------------------

    def _line_has_waiver(self, text: str, rule: str,
                         tokens: Sequence[str]) -> bool:
        for tok in tokens:
            # the token must open a non-empty parenthesised reason (the
            # close may sit on a continuation comment line)
            if tok in text and re.search(
                    re.escape(tok) + r"\s*\([^)\s]", text):
                return True
        m = _DISABLE_RE.search(text)
        return bool(m) and rule in m.group("rules").split(",")

    def waived(self, node: ast.AST, rule: str, tokens: Sequence[str], *,
               anchor: Optional[ast.AST] = None,
               end_line: Optional[int] = None) -> bool:
        """Is ``node`` opted out of ``rule`` by a pragma comment?

        Scans the source lines from ``anchor`` (default: the line above
        ``node``, so a pragma comment can sit on its own line) through
        ``node``'s last line — the same placement contract the original
        obs-gating checker established (pragma on the call, or between
        the enclosing ``def`` and the call, when the def is the anchor).
        Compound statements (loops, ``with`` bodies) pass ``end_line`` to
        stop the scan at their header instead of covering the whole body.
        """
        start = (anchor.lineno if anchor is not None
                 else max(node.lineno - 1, 1))
        end = (end_line if end_line is not None
               else getattr(node, "end_lineno", node.lineno))
        for i in range(start - 1, min(end, len(self.lines))):
            if self._line_has_waiver(self.lines[i], rule, tokens):
                return True
        return False


class Checker:
    """One invariant: a rule id, a pragma token, and a ``check`` pass.

    Subclasses set:

    ``rule_id``
        stable kebab-case identifier (appears in diagnostics and in the
        universal ``# reprolint: disable=<rule-id> (...)`` pragma);
    ``pragma``
        the rule's own opt-out comment token (``# <pragma> (reason)``);
    ``description``
        one line for ``--list-rules``;
    ``doc_anchor``
        the ``docs/LINTING.md`` section stating the contract.

    and implement :meth:`interested` (path scope, matched against the
    POSIX path string so fixture corpora can opt in by directory layout)
    and :meth:`check`.
    """

    rule_id: str = ""
    pragma: str = ""
    description: str = ""
    doc_anchor: str = "docs/LINTING.md"

    #: extra accepted pragma spellings (legacy aliases).
    pragma_aliases: Sequence[str] = ()

    def interested(self, posix_path: str) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        raise NotImplementedError

    # -- helpers for subclasses -------------------------------------------

    def pragma_tokens(self) -> List[str]:
        return [self.pragma, *self.pragma_aliases]

    def waived(self, ctx: FileContext, node: ast.AST, *,
               anchor: Optional[ast.AST] = None,
               end_line: Optional[int] = None) -> bool:
        return ctx.waived(node, self.rule_id, self.pragma_tokens(),
                          anchor=anchor, end_line=end_line)

    def diag(self, ctx: FileContext, node: ast.AST, message: str,
             detail: str = "") -> Diagnostic:
        return Diagnostic(rule=self.rule_id, path=ctx.display_path,
                          line=node.lineno,
                          col=getattr(node, "col_offset", 0),
                          message=message, detail=detail)


# ---------------------------------------------------------------------------
# shared AST predicates (guard / scope tracking used by several checkers)
# ---------------------------------------------------------------------------

def root_name(node: ast.AST) -> Optional[str]:
    """The leftmost ``Name`` of an attribute/call chain, or ``None``."""
    while isinstance(node, (ast.Attribute, ast.Call)):
        node = node.func if isinstance(node, ast.Call) else node.value
    return node.id if isinstance(node, ast.Name) else None


def dotted_tail(node: ast.AST) -> Optional[str]:
    """``a.b.c`` → ``"c"`` for attribute chains; bare names pass through."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def test_consults(test: ast.AST, *, calls: Sequence[str] = (),
                  flags: Sequence[str] = ()) -> bool:
    """Does an ``if`` test call one of ``calls`` or read one of ``flags``?"""
    for n in ast.walk(test):
        if isinstance(n, ast.Call):
            name = dotted_tail(n.func)
            if name in calls:
                return True
        elif isinstance(n, ast.Attribute) and n.attr in flags:
            return True
        elif isinstance(n, ast.Name) and n.id in flags:
            return True
    return False


def guarded_by(ctx: FileContext, node: ast.AST, *,
               calls: Sequence[str] = (),
               flags: Sequence[str] = ()) -> bool:
    """Is ``node`` under an ``if`` whose test consults a guard?

    Also recognises the conditional-expression form
    (``x() if GUARD else default``) — the same one-flag-read contract.
    """
    prev = node
    for anc in ctx.ancestors(node):
        if isinstance(anc, ast.If) and test_consults(
                anc.test, calls=calls, flags=flags):
            return True
        if (isinstance(anc, ast.IfExp) and prev is not anc.test
                and test_consults(anc.test, calls=calls, flags=flags)):
            return True
        prev = anc
    return False


# ---------------------------------------------------------------------------
# the runner
# ---------------------------------------------------------------------------

def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted ``*.py`` list."""
    out: List[Path] = []
    for p in paths:
        if p.is_dir():
            out.extend(sorted(p.rglob("*.py")))
        else:
            out.append(p)
    return out


def run_files(files: Sequence[Path], checkers: Sequence[Checker], *,
              relative_to: Optional[Path] = None
              ) -> List[Diagnostic]:
    """Run every interested checker over every file; sorted diagnostics."""
    diags: List[Diagnostic] = []
    for path in files:
        display = path.as_posix()
        if relative_to is not None:
            try:
                display = path.resolve().relative_to(
                    relative_to.resolve()).as_posix()
            except ValueError:
                pass
        active = [c for c in checkers if c.interested(display)]
        if not active:
            continue
        ctx = FileContext.parse(path, display)
        for checker in active:
            diags.extend(checker.check(ctx))
    diags.sort(key=lambda d: (d.path, d.line, d.rule))
    return diags


def render_human(diags: Sequence[Diagnostic], files_checked: int,
                 rules: Sequence[str]) -> str:
    lines = [d.render() for d in diags]
    if diags:
        lines.append(f"reprolint: {len(diags)} violation(s) in "
                     f"{files_checked} files ({', '.join(rules)})")
    else:
        lines.append(f"reprolint: OK ({files_checked} files, "
                     f"{len(rules)} rules)")
    return "\n".join(lines)


def render_json(diags: Sequence[Diagnostic], files_checked: int,
                rules: Sequence[str]) -> str:
    counts: dict = {}
    for d in diags:
        counts[d.rule] = counts.get(d.rule, 0) + 1
    return json.dumps({
        "schema": JSON_SCHEMA_VERSION,
        "tool": "reprolint",
        "rules": list(rules),
        "files_checked": files_checked,
        "violations": len(diags),
        "counts_by_rule": counts,
        "diagnostics": [d.to_dict() for d in diags],
    }, indent=2, sort_keys=False)
