"""Registry of the benchmark graph suite (Table IV, scaled down).

``SUITE`` maps each Table IV graph name to its generator configuration at
three sizes — ``tiny`` (unit tests), ``small`` (default benchmarks) and
``medium`` (longer runs).  The paper's graphs hold 58 M – 4.2 B entries; the
``small`` tier holds 10⁴–10⁵, preserving the structural contrasts that
drive Table III (see :mod:`repro.gap.generators.graphs`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from ..lagraph.graph import Graph
from . import generators

__all__ = ["GraphSpec", "SUITE", "SIZES", "build", "suite_table"]

SIZES = ("tiny", "small", "medium")


@dataclass(frozen=True)
class GraphSpec:
    """One Table IV row: a named graph at several scales."""

    name: str
    kind: str                      # "directed" | "undirected"
    builder: Callable[..., Graph]
    params: Dict[str, Dict]        # size -> builder kwargs

    def build(self, size: str = "small", weighted: bool = False) -> Graph:
        if size not in self.params:
            raise KeyError(f"{self.name}: unknown size {size!r}")
        kw = dict(self.params[size])
        if self.name == "road":
            kw["weighted"] = True if weighted or kw.get("weighted") else False
        else:
            kw["weighted"] = weighted
        return self.builder(**kw)


SUITE: Dict[str, GraphSpec] = {
    "kron": GraphSpec(
        "kron", "undirected", generators.kron,
        {"tiny": {"scale": 8}, "small": {"scale": 12}, "medium": {"scale": 14}},
    ),
    "urand": GraphSpec(
        "urand", "undirected", generators.urand,
        {"tiny": {"scale": 8}, "small": {"scale": 12}, "medium": {"scale": 14}},
    ),
    "twitter": GraphSpec(
        "twitter", "directed", generators.twitter,
        {"tiny": {"scale": 8}, "small": {"scale": 12}, "medium": {"scale": 14}},
    ),
    "web": GraphSpec(
        "web", "directed", generators.web,
        {"tiny": {"scale": 8}, "small": {"scale": 12}, "medium": {"scale": 14}},
    ),
    "road": GraphSpec(
        "road", "directed", generators.road,
        {"tiny": {"side": 24}, "small": {"side": 72}, "medium": {"side": 160}},
    ),
}


def build(name: str, size: str = "small", weighted: bool = False) -> Graph:
    """Build a suite graph by Table IV name."""
    try:
        spec = SUITE[name.lower()]
    except KeyError:
        raise ValueError(f"unknown graph {name!r}; one of {sorted(SUITE)}") \
            from None
    return spec.build(size, weighted=weighted)


def suite_table(size: str = "small"):
    """Table IV rows for the generated graphs: (name, nodes, entries, kind)."""
    rows = []
    for name, spec in SUITE.items():
        g = spec.build(size)
        rows.append((name, g.n, g.nvals, spec.kind))
    return rows
