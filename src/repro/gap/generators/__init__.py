"""Synthetic generators for the GAP benchmark graphs (Table IV)."""

from .graphs import kron, make_graph, road, twitter, urand, web
from .rmat import GRAPH500_ABCD, rmat_edges

__all__ = ["kron", "urand", "twitter", "web", "road", "make_graph",
           "rmat_edges", "GRAPH500_ABCD"]
