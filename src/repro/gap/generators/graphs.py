"""Scaled-down synthetic stand-ins for the five GAP benchmark graphs.

Table IV of the paper lists Kron, Urand, Twitter, Web and Road.  The real
graphs hold up to 4.2 billion edges; these generators reproduce the
*structural character* that drives every performance effect in Table III —
degree skew, direction, diameter, clustering — at laptop scale:

==========  =========  ==============================================
graph       kind       character preserved
==========  =========  ==============================================
``kron``    undirected heavy-tail RMAT degrees (Graph500 params)
``urand``   undirected Erdős–Rényi: flat degrees, no locality
``twitter`` directed   skewed RMAT, asymmetric in/out degrees
``web``     directed   RMAT + host-locality loop, higher clustering
``road``    directed   2-D grid + diagonals: tiny degrees, huge diameter
==========  =========  ==============================================

Every generator returns an :class:`repro.lagraph.Graph`.  Pass
``weighted=True`` for the SSSP variants (uniform integer weights in
``[1, 255]``, as the GAP weighted graphs use).
"""

from __future__ import annotations

import numpy as np

from ... import grb
from ...grb.matrix import Matrix
from ...lagraph.graph import Graph
from ...lagraph.kinds import Kind
from .rmat import GRAPH500_ABCD, rmat_edges

__all__ = ["kron", "urand", "twitter", "web", "road", "make_graph"]

_W_LOW, _W_HIGH = 1, 255


def _finalize(src, dst, n, kind: Kind, weighted: bool, seed: int,
              symmetrize: bool) -> Graph:
    """De-dup, drop self-loops, optionally mirror, attach weights."""
    keep = src != dst
    src, dst = src[keep], dst[keep]
    if symmetrize:
        src, dst = np.concatenate((src, dst)), np.concatenate((dst, src))
    if weighted:
        rng = np.random.default_rng(seed + 0x5EED)
        vals = rng.integers(_W_LOW, _W_HIGH + 1, size=src.size).astype(np.float64)
        a = Matrix.from_coo(src, dst, vals, n, n, dup_op=grb.binary.MIN)
        if symmetrize:
            # make weights symmetric: W = min(W, Wᵀ) on the union
            a = a.ewise_add(a.T, grb.binary.MIN)
    else:
        vals = np.ones(src.size, dtype=np.bool_)
        a = Matrix.from_coo(src, dst, vals, n, n, dup_op=grb.binary.LOR)
    return Graph(a, kind)


def kron(scale: int = 12, edge_factor: int = 16, weighted: bool = False,
         seed: int = 1) -> Graph:
    """Graph500 Kronecker graph (undirected, heavy-tail degrees)."""
    src, dst = rmat_edges(scale, edge_factor, GRAPH500_ABCD, seed=seed)
    return _finalize(src, dst, 1 << scale, Kind.ADJACENCY_UNDIRECTED,
                     weighted, seed, symmetrize=True)


def urand(scale: int = 12, edge_factor: int = 16, weighted: bool = False,
          seed: int = 2) -> Graph:
    """Uniform-random graph with the same node/edge budget as ``kron``."""
    n = 1 << scale
    n_edges = edge_factor * n
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=n_edges).astype(np.int64)
    dst = rng.integers(0, n, size=n_edges).astype(np.int64)
    return _finalize(src, dst, n, Kind.ADJACENCY_UNDIRECTED,
                     weighted, seed, symmetrize=True)


def twitter(scale: int = 12, edge_factor: int = 24, weighted: bool = False,
            seed: int = 3) -> Graph:
    """Twitter-like directed graph: strongly skewed RMAT, kept directed."""
    src, dst = rmat_edges(scale, edge_factor, (0.50, 0.20, 0.15, 0.15),
                          seed=seed)
    return _finalize(src, dst, 1 << scale, Kind.ADJACENCY_DIRECTED,
                     weighted, seed, symmetrize=False)


def web(scale: int = 12, edge_factor: int = 38, weighted: bool = False,
        seed: int = 4) -> Graph:
    """Web-crawl-like directed graph.

    RMAT base plus a "host locality" pass linking id-adjacent nodes, which
    raises clustering and reciprocity the way site-internal links do — the
    property that makes the Web graph TC-heavy in Table III.
    """
    n = 1 << scale
    src, dst = rmat_edges(scale, edge_factor - 4, (0.45, 0.22, 0.22, 0.11),
                          seed=seed)
    rng = np.random.default_rng(seed + 99)
    # local links: each node points to a few nearby ids (same-host pages)
    loc_src = np.repeat(np.arange(n, dtype=np.int64), 4)
    loc_dst = loc_src + rng.integers(-8, 9, size=loc_src.size)
    ok = (loc_dst >= 0) & (loc_dst < n)
    src = np.concatenate((src, loc_src[ok]))
    dst = np.concatenate((dst, loc_dst[ok]))
    return _finalize(src, dst, n, Kind.ADJACENCY_DIRECTED,
                     weighted, seed, symmetrize=False)


def road(side: int = 64, weighted: bool = True, seed: int = 5,
         diag_fraction: float = 0.05) -> Graph:
    """Road-network-like graph: ``side × side`` grid plus sparse diagonals.

    Average degree ≈ 4 and diameter Θ(side) — the high-diameter regime that
    makes every per-iteration overhead visible (the paper's Road-graph
    discussion in Sec. VI-B).  Edges are bidirectional but the graph is
    *directed*, matching Table IV.  Weighted by default (road lengths).
    """
    n = side * side
    ids = np.arange(n, dtype=np.int64)
    right = ids[(ids % side) < side - 1]
    down = ids[ids < n - side]
    src = np.concatenate((right, down))
    dst = np.concatenate((right + 1, down + side))
    rng = np.random.default_rng(seed)
    n_diag = int(diag_fraction * n)
    if n_diag:
        cand = ids[(ids % side < side - 1) & (ids < n - side)]
        pick = rng.choice(cand, size=min(n_diag, cand.size), replace=False)
        src = np.concatenate((src, pick))
        dst = np.concatenate((dst, pick + side + 1))
    return _finalize(src, dst, n, Kind.ADJACENCY_DIRECTED,
                     weighted, seed, symmetrize=True)


_BUILDERS = {
    "kron": kron,
    "urand": urand,
    "twitter": twitter,
    "web": web,
    "road": road,
}


def make_graph(name: str, **kw) -> Graph:
    """Build a GAP stand-in graph by its Table IV name (case-insensitive)."""
    try:
        builder = _BUILDERS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown GAP graph {name!r}; one of {sorted(_BUILDERS)}") from None
    return builder(**kw)
