"""RMAT / Kronecker edge generator (Graph500 style).

The GAP benchmark's ``Kron`` and ``Twitter``-like graphs come from the
recursive-matrix model: each edge picks one quadrant per bit of the node id
with probabilities ``(a, b, c, d)``.  Fully vectorised: one pass per scale
bit over the whole edge batch.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rmat_edges", "GRAPH500_ABCD"]

#: Graph500 / GAP Kron parameters.
GRAPH500_ABCD = (0.57, 0.19, 0.19, 0.05)


def rmat_edges(scale: int, edge_factor: int, abcd=GRAPH500_ABCD,
               seed: int = 0, noise: float = 0.1):
    """Sample ``edge_factor · 2**scale`` RMAT edges over ``2**scale`` nodes.

    Returns ``(src, dst)`` int64 arrays (duplicates and self-loops are *not*
    removed — the caller decides, as the GAP generator does).  ``noise``
    perturbs the quadrant probabilities per bit level, the standard trick to
    avoid artefactual degree ties.
    """
    a, b, c, d = abcd
    if not np.isclose(a + b + c + d, 1.0):
        raise ValueError(f"RMAT probabilities must sum to 1, got {abcd}")
    n_edges = edge_factor << scale
    rng = np.random.default_rng(seed)
    src = np.zeros(n_edges, dtype=np.int64)
    dst = np.zeros(n_edges, dtype=np.int64)
    for bit in range(scale):
        if noise:
            jitter = 1.0 + noise * (rng.random(4) - 0.5)
            pa, pb, pc, pd = np.array([a, b, c, d]) * jitter
            s = pa + pb + pc + pd
            pa, pb, pc, pd = pa / s, pb / s, pc / s, pd / s
        else:
            pa, pb, pc, pd = a, b, c, d
        r = rng.random(n_edges)
        qa = r < pa
        qb = (r >= pa) & (r < pa + pb)
        qc = (r >= pa + pb) & (r < pa + pb + pc)
        qd = ~(qa | qb | qc)
        src |= (qc | qd).astype(np.int64) << bit   # quadrant C or D: src high
        dst |= (qb | qd).astype(np.int64) << bit   # quadrant B or D: dst high
    # permute vertex labels so degree does not correlate with id
    perm = rng.permutation(1 << scale).astype(np.int64)
    return perm[src], perm[dst]
