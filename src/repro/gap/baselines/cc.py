"""Reference connected components (the role of GAP's ``cc.cc``).

Two implementations:

* :func:`connected_components` — SciPy's compiled union algorithm
  (``csgraph.connected_components``), the tuned-native stand-in;
* :func:`connected_components_afforest` — a pure-NumPy Shiloach-Vishkin
  style hook-and-compress loop (GAP's actual kernel is Afforest, a
  sampling variant of the same family), used to cross-check FastSV.

Both return labels normalised to the minimum node id per component so
results compare exactly against :func:`repro.lagraph.fastsv`.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse.csgraph import connected_components as _scipy_cc

from ...lagraph.graph import Graph
from ...lagraph.kinds import Kind

__all__ = ["connected_components", "connected_components_afforest"]


def _min_normalise(labels: np.ndarray) -> np.ndarray:
    """Relabel components by their minimum member id."""
    n = labels.size
    rep = np.full(int(labels.max()) + 1 if n else 0, np.iinfo(np.int64).max,
                  dtype=np.int64)
    np.minimum.at(rep, labels, np.arange(n, dtype=np.int64))
    return rep[labels]


def connected_components(g: Graph) -> np.ndarray:
    """Weak components via SciPy; labels = min node id per component."""
    _, labels = _scipy_cc(g.A.to_scipy(), directed=True, connection="weak")
    return _min_normalise(labels.astype(np.int64))


def connected_components_afforest(g: Graph) -> np.ndarray:
    """Hook-and-compress components on raw edge arrays."""
    a = g.A
    rows, cols, _ = a.to_coo()
    if g.kind is not Kind.ADJACENCY_UNDIRECTED:
        rows, cols = np.concatenate((rows, cols)), np.concatenate((cols, rows))
    n = g.n
    parent = np.arange(n, dtype=np.int64)
    while True:
        # hook: point each endpoint's root at the smaller neighbour root
        pr, pc = parent[rows], parent[cols]
        lo = np.minimum(pr, pc)
        changed_any = False
        upd = lo < parent[pr]
        if upd.any():
            np.minimum.at(parent, pr[upd], lo[upd])
            changed_any = True
        upd = lo < parent[pc]
        if upd.any():
            np.minimum.at(parent, pc[upd], lo[upd])
            changed_any = True
        # compress
        while True:
            pp = parent[parent]
            if np.array_equal(pp, parent):
                break
            parent = pp
        if not changed_any:
            break
    return parent
