"""Reference SSSP (the role of GAP's ``sssp.cc``).

Uses SciPy's compiled Dijkstra (``scipy.sparse.csgraph``) — the natural
"tuned native code" stand-in — plus a pure-NumPy delta-stepping for
cross-checking bucket logic without GraphBLAS objects.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse.csgraph import dijkstra

from ...lagraph.graph import Graph

__all__ = ["sssp_dijkstra", "sssp_delta_numpy"]


def sssp_dijkstra(g: Graph, source: int) -> np.ndarray:
    """Distance array (``inf`` for unreachable) via compiled Dijkstra."""
    return dijkstra(g.A.to_scipy().astype(np.float64), directed=True,
                    indices=source)


def sssp_delta_numpy(g: Graph, source: int, delta: float = 2.0) -> np.ndarray:
    """Plain-array delta-stepping (no GraphBLAS), for bucket-logic checks."""
    indptr, indices = g.A.indptr, g.A.indices
    weights = g.A.values.astype(np.float64)
    n = g.n
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    light = weights <= delta

    def relax(nodes: np.ndarray, mask: np.ndarray) -> np.ndarray:
        if nodes.size == 0:
            return nodes
        starts = indptr[nodes]
        counts = indptr[nodes + 1] - starts
        flat = np.repeat(starts - np.concatenate(([0], np.cumsum(counts)[:-1])),
                         counts) + np.arange(int(counts.sum()))
        sel = mask[flat]
        flat = flat[sel]
        tgt = indices[flat]
        cand = np.repeat(dist[nodes], counts)[sel] + weights[flat]
        order = np.argsort(tgt, kind="stable")
        tgt, cand = tgt[order], cand[order]
        uniq, start_pos = np.unique(tgt, return_index=True)
        best = np.minimum.reduceat(cand, start_pos)
        improved = best < dist[uniq]
        dist[uniq[improved]] = best[improved]
        return uniq[improved]

    i = 0
    while True:
        unsettled = np.flatnonzero(np.isfinite(dist) & (dist >= i * delta))
        if unsettled.size == 0:
            break
        i = int(dist[unsettled].min() // delta)
        lo, hi = i * delta, (i + 1) * delta
        bucket = unsettled[(dist[unsettled] >= lo) & (dist[unsettled] < hi)]
        ever = np.zeros(n, dtype=bool)
        while bucket.size:
            ever[bucket] = True
            changed = relax(bucket, light)
            bucket = changed[(dist[changed] >= lo) & (dist[changed] < hi)]
        relax(np.flatnonzero(ever), ~light)
        i += 1
    return dist
