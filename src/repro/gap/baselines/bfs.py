"""Reference BFS (the role of GAP's ``bfs.cc``).

A direct array implementation with the same direction-optimising structure
as Beamer's code: push from a worklist while the frontier is small, pull
over unvisited rows when it is large.  No GraphBLAS objects — raw CSR
arrays and NumPy, standing in for the hand-tuned native baseline of
Table III.
"""

from __future__ import annotations

import numpy as np

from ...lagraph.graph import Graph

__all__ = ["bfs_parent", "bfs_level"]

_ALPHA = 15.0
_BETA = 18.0


def _csr(g: Graph):
    a = g.A
    return a.indptr, a.indices


def bfs_parent(g: Graph, source: int) -> np.ndarray:
    """Parent array (−1 for unreached; ``parent[source] == source``)."""
    indptr, indices = _csr(g)
    at = g.A if g.kind.value == "undirected" else g.A.T
    t_indptr, t_indices = at.indptr, at.indices
    n = g.n
    out_deg = np.diff(indptr)
    total_edges = float(out_deg.sum())

    parent = np.full(n, -1, dtype=np.int64)
    parent[source] = source
    frontier = np.array([source], dtype=np.int64)
    scanned = float(out_deg[source])
    while frontier.size:
        frontier_edges = float(out_deg[frontier].sum())
        unexplored = max(total_edges - scanned, 0.0)
        if frontier_edges * _ALPHA < unexplored or frontier.size < n / _BETA:
            # push: expand the worklist
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            flat = np.repeat(starts - np.concatenate(([0], np.cumsum(counts)[:-1])),
                             counts) + np.arange(int(counts.sum()))
            nbr = indices[flat]
            par = np.repeat(frontier, counts)
            new = parent[nbr] == -1
            nbr, par = nbr[new], par[new]
            # first writer wins (benign race in the native code; here: first)
            uniq, first = np.unique(nbr, return_index=True)
            parent[uniq] = par[first]
            frontier = uniq
        else:
            # pull: scan unvisited rows of the transpose
            unvisited = np.flatnonzero(parent == -1)
            in_frontier = np.zeros(n, dtype=bool)
            in_frontier[frontier] = True
            starts = t_indptr[unvisited]
            counts = t_indptr[unvisited + 1] - starts
            flat = np.repeat(starts - np.concatenate(([0], np.cumsum(counts)[:-1])),
                             counts) + np.arange(int(counts.sum()))
            nbr = t_indices[flat]
            row = np.repeat(unvisited, counts)
            hit = in_frontier[nbr]
            row, nbr = row[hit], nbr[hit]
            uniq, first = np.unique(row, return_index=True)
            parent[uniq] = nbr[first]
            frontier = uniq
        scanned += float(out_deg[frontier].sum()) if frontier.size else 0.0
    return parent


def bfs_level(g: Graph, source: int) -> np.ndarray:
    """Level array (−1 for unreached)."""
    indptr, indices = _csr(g)
    n = g.n
    level = np.full(n, -1, dtype=np.int64)
    level[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while frontier.size:
        depth += 1
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        flat = np.repeat(starts - np.concatenate(([0], np.cumsum(counts)[:-1])),
                         counts) + np.arange(int(counts.sum()))
        nbr = np.unique(indices[flat])
        nbr = nbr[level[nbr] == -1]
        level[nbr] = depth
        frontier = nbr
    return level
