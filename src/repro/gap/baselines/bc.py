"""Reference betweenness centrality (the role of GAP's ``bc.cc``).

Brandes' algorithm source-by-source with array frontiers — the classical
formulation, no GraphBLAS objects.  Deliberately processes one source at a
time (GAP does the same) so it also serves as an independent check of the
batched linear-algebra version.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...lagraph.graph import Graph

__all__ = ["betweenness_centrality"]


def _expand(indptr, indices, nodes):
    starts = indptr[nodes]
    counts = indptr[nodes + 1] - starts
    flat = np.repeat(starts - np.concatenate(([0], np.cumsum(counts)[:-1])),
                     counts) + np.arange(int(counts.sum()))
    return np.repeat(nodes, counts), indices[flat]


def betweenness_centrality(g: Graph, sources: Sequence[int]) -> np.ndarray:
    """Σ_s δ_s(v) over the given sources (unnormalised, Brandes)."""
    indptr, indices = g.A.indptr, g.A.indices
    at = g.A if g.kind.value == "undirected" else g.A.T
    t_indptr, t_indices = at.indptr, at.indices
    n = g.n
    centrality = np.zeros(n)

    for s in np.asarray(sources, dtype=np.int64):
        sigma = np.zeros(n)         # shortest-path counts
        depth = np.full(n, -1, dtype=np.int64)
        sigma[s] = 1.0
        depth[s] = 0
        frontier = np.array([s], dtype=np.int64)
        levels = [frontier]
        d = 0
        while True:
            d += 1
            src, dst = _expand(indptr, indices, frontier)
            new = depth[dst] == -1
            fresh = np.unique(dst[new])
            # path counts: sum sigma over tree edges into the new level
            cross = (depth[src] == d - 1) & (depth[dst] == -1)
            np.add.at(sigma, dst[cross], sigma[src[cross]])
            if fresh.size == 0:
                break
            depth[fresh] = d
            levels.append(fresh)
            frontier = fresh
        delta = np.zeros(n)
        for lev in range(len(levels) - 1, 0, -1):
            nodes = levels[lev]
            # pull contributions back along in-edges from depth-1 nodes
            row, nbr = _expand(t_indptr, t_indices, nodes)
            ok = depth[nbr] == lev - 1
            row, nbr = row[ok], nbr[ok]
            contrib = sigma[nbr] / sigma[row] * (1.0 + delta[row])
            np.add.at(delta, nbr, contrib)
        delta[s] = 0.0
        centrality += delta
    return centrality
