"""Reference (non-GraphBLAS) kernels playing the role of the GAP C++ code.

Each module documents its correspondence to a ``*.cc`` kernel of the GAP
benchmark suite.  These serve two purposes: the "native tuned" side of the
Table III comparison, and independent correctness oracles for the LAGraph
implementations.
"""

from .bc import betweenness_centrality
from .bfs import bfs_level, bfs_parent
from .cc import connected_components, connected_components_afforest
from .pr import pagerank
from .sssp import sssp_delta_numpy, sssp_dijkstra
from .tc import triangle_count, triangle_count_node_iterator

__all__ = [
    "betweenness_centrality", "bfs_level", "bfs_parent",
    "connected_components", "connected_components_afforest",
    "pagerank", "sssp_delta_numpy", "sssp_dijkstra", "triangle_count",
    "triangle_count_node_iterator",
]
