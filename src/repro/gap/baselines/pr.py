"""Reference PageRank (the role of GAP's ``pr.cc``).

Dense power iteration with a compiled SciPy CSR matvec — the tightest
"native" formulation available to a Python harness.  Semantics match the
GAP spec (and therefore :func:`repro.lagraph.pagerank_gap`): dangling-node
mass is dropped, scores are scaled contributions pulled through Aᵀ.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ...lagraph.graph import Graph

__all__ = ["pagerank"]


def pagerank(g: Graph, damping: float = 0.85, tol: float = 1e-4,
             itermax: int = 100) -> Tuple[np.ndarray, int]:
    """Return ``(rank, iterations)``; GAP-spec semantics."""
    n = g.n
    at = g.A.T.to_scipy().astype(np.float64)
    out_deg = np.diff(g.A.indptr).astype(np.float64)
    nonzero = out_deg > 0
    teleport = (1.0 - damping) / n

    r = np.full(n, 1.0 / n)
    iters = 0
    for _ in range(itermax):
        iters += 1
        w = np.zeros(n)
        w[nonzero] = damping * r[nonzero] / out_deg[nonzero]
        r_new = teleport + at @ w
        delta = float(np.abs(r_new - r).sum())
        r = r_new
        if delta < tol:
            break
    return r, iters
