"""Reference triangle count (the role of GAP's ``tc.cc``).

Two variants:

* :func:`triangle_count` — the tuned-native stand-in: an end-to-end
  compiled pipeline (SciPy CSR product of the ordered lower/upper
  triangles, masked by the edge set).  This is what a hand-optimised C++
  kernel looks like from Python: no per-step driver overhead.
* :func:`triangle_count_node_iterator` — the classic node-iterator with
  sorted-adjacency intersections (GAP's algorithmic strategy), kept as a
  slow, obviously-correct oracle for cross-checks.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ...lagraph.graph import Graph
from ...lagraph.kinds import Kind

__all__ = ["triangle_count", "triangle_count_node_iterator"]


def _sym_pattern(g: Graph) -> sp.csr_matrix:
    s = g.A.to_scipy().astype(np.int64)
    s.data[:] = 1
    if g.kind is not Kind.ADJACENCY_UNDIRECTED:
        s = s + s.T
        s.data[:] = 1
    s.setdiag(0)
    s.eliminate_zeros()
    return s.tocsr()


def triangle_count(g: Graph) -> int:
    """Exact triangle count; compiled SciPy pipeline (native stand-in)."""
    s = _sym_pattern(g)
    l = sp.tril(s, -1, format="csr")
    u = sp.triu(s, 1, format="csc")  # CSC of U == CSR of Uᵀ: dot formulation
    prod = (l @ u.T).multiply(l)
    return int(prod.sum())


def triangle_count_node_iterator(g: Graph, presort: bool = True) -> int:
    """Exact triangle count of the (symmetrised, loop-free) pattern."""
    s = _sym_pattern(g)
    indptr, indices = s.indptr.astype(np.int64), s.indices.astype(np.int64)
    n = s.shape[0]

    deg = np.diff(indptr)
    if presort:
        # relabel ascending by degree: heavy hubs become high ids, so the
        # "only count upward" rule gives them short candidate lists
        order = np.argsort(deg, kind="stable")
        rank = np.empty(n, dtype=np.int64)
        rank[order] = np.arange(n)
    else:
        rank = np.arange(n, dtype=np.int64)

    # forward adjacency: neighbours with higher rank, sorted
    rows = np.repeat(np.arange(n), deg)
    cols = indices
    keep = (rank[cols] > rank[rows]) & (rows != cols)
    fr, fc = rank[rows[keep]], rank[cols[keep]]
    order2 = np.lexsort((fc, fr))
    fr, fc = fr[order2], fc[order2]
    fptr = np.concatenate(([0], np.cumsum(np.bincount(fr, minlength=n)))).astype(np.int64)

    total = 0
    for u in range(n):
        nbrs = fc[fptr[u]:fptr[u + 1]]
        if nbrs.size < 2:
            continue
        for v in nbrs:
            total += np.intersect1d(
                nbrs, fc[fptr[v]:fptr[v + 1]], assume_unique=True).size
    return int(total)
