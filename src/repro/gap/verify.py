"""GAP-style output verifiers.

The GAP benchmark validates every trial's output with an independent
checker; these functions do the same for each kernel.  They raise
``AssertionError`` with a diagnostic on the first violation and return
``True`` otherwise, so they can be used both in tests and in the harness.
"""

from __future__ import annotations

import numpy as np

from ..grb.vector import Vector
from ..lagraph.graph import Graph
from . import baselines

__all__ = [
    "verify_bfs_parent", "verify_bfs_level", "verify_sssp", "verify_cc",
    "verify_pr", "verify_tc", "verify_bc",
]


def _edge_exists(g: Graph, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Vectorised membership test for edges (u[k] → v[k])."""
    a = g.A
    keys = a.keys()
    q = u * np.int64(a.ncols) + v
    pos = np.searchsorted(keys, q)
    pos = np.minimum(pos, max(keys.size - 1, 0))
    return (keys.size > 0) & (keys[pos] == q)


def verify_bfs_parent(g: Graph, source: int, parent: Vector) -> bool:
    """A parent vector is valid iff it encodes *some* BFS tree.

    Checks (GAP's verifier logic): the source is its own parent; every
    parent edge exists in the graph; the set of reached nodes matches a
    reference BFS; tree depths equal true BFS levels.
    """
    idx, par = parent.to_coo()
    assert parent.get(source) == source, "source must be its own parent"
    nonroot = idx != source
    assert _edge_exists(g, par[nonroot], idx[nonroot]).all(), \
        "parent edge missing from graph"
    level = baselines.bfs_level(g, source)
    reached = np.flatnonzero(level >= 0)
    assert np.array_equal(np.sort(idx), reached), "reached set mismatch"
    # each non-root node's parent must sit exactly one level above
    assert (level[par[nonroot]] == level[idx[nonroot]] - 1).all(), \
        "parent not one BFS level above child"
    return True


def verify_bfs_level(g: Graph, source: int, level_vec: Vector) -> bool:
    """Levels must match the reference BFS exactly."""
    ref = baselines.bfs_level(g, source)
    idx, lv = level_vec.to_coo()
    assert np.array_equal(np.sort(idx), np.flatnonzero(ref >= 0)), \
        "reached set mismatch"
    assert np.array_equal(lv, ref[idx]), "level values mismatch"
    return True


def verify_sssp(g: Graph, source: int, dist: Vector, tol: float = 1e-9) -> bool:
    """Distances must match Dijkstra on every reached node."""
    ref = baselines.sssp_dijkstra(g, source)
    idx, dv = dist.to_coo()
    assert np.array_equal(np.sort(idx), np.flatnonzero(np.isfinite(ref))), \
        "reached set mismatch"
    assert np.allclose(dv, ref[idx], atol=tol), "distance mismatch"
    return True


def verify_cc(g: Graph, comp: Vector) -> bool:
    """Labels must induce the same partition as the reference, and be
    normalised to the component's minimum node id."""
    ref = baselines.connected_components(g)
    ours = comp.to_dense()
    assert np.array_equal(ours, ref), "component labels mismatch"
    return True


def verify_pr(g: Graph, rank: Vector, tol: float = 1e-6, **kw) -> bool:
    """Ranks must agree with the reference power iteration."""
    ref, _ = baselines.pagerank(g, **kw)
    ours = rank.to_dense()
    assert np.abs(ours - ref).max() < tol, \
        f"pagerank mismatch: max diff {np.abs(ours - ref).max():g}"
    return True


def verify_tc(g: Graph, count: int) -> bool:
    ref = baselines.triangle_count(g)
    assert count == ref, f"triangle count {count} != reference {ref}"
    return True


def verify_bc(g: Graph, sources, centrality: Vector, tol: float = 1e-6) -> bool:
    ref = baselines.betweenness_centrality(g, sources)
    ours = centrality.to_dense()
    assert np.abs(ours - ref).max() < tol, \
        f"bc mismatch: max diff {np.abs(ours - ref).max():g}"
    return True
