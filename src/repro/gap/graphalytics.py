"""LDBC Graphalytics end-to-end workflow (the paper's Sec. VII direction).

The paper names Graphalytics as its next evaluation target beyond GAP:
end-to-end workflows where data ingestion counts.  This module runs the
six Graphalytics kernels — BFS (levels), PageRank (dangling-safe), WCC,
CDLP, LCC, SSSP — over the synthetic suite, timing the *full* pipeline:

    generate/load  →  build Graph + cache properties  →  kernel  →  verify

`run_workflow` returns per-stage timings, so the ingestion-vs-compute
split the paper cares about is visible directly.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..lagraph import algorithms as alg
from ..lagraph import experimental as exp
from ..lagraph.graph import Graph
from ..lagraph.utils.timer import Timer
from . import baselines, datasets

__all__ = ["KERNELS", "run_kernel", "run_workflow", "format_workflow"]

KERNELS = ("BFS", "PR", "WCC", "CDLP", "LCC", "SSSP")


def run_kernel(kernel: str, g: Graph, gw: Optional[Graph] = None,
               source: int = 0, check: bool = True):
    """Run one Graphalytics kernel; returns its result object."""
    if kernel == "BFS":
        _, level = alg.bfs(g, source, parent=False, level=True)
        if check:
            ref = baselines.bfs_level(g, source)
            idx, lv = level.to_coo()
            assert np.array_equal(np.sort(idx), np.flatnonzero(ref >= 0))
            assert np.array_equal(lv, ref[idx])
        return level
    if kernel == "PR":
        rank, _ = alg.pagerank(g, variant="graphalytics", tol=1e-8,
                               itermax=200)
        if check:
            total = float(rank.to_dense().sum())
            assert abs(total - 1.0) < 1e-6, f"PR mass {total}"
        return rank
    if kernel == "WCC":
        comp = alg.connected_components(g)
        if check:
            ref = baselines.connected_components(g)
            assert np.array_equal(comp.to_dense(), ref)
        return comp
    if kernel == "CDLP":
        labels = exp.cdlp(g, iterations=10)
        if check:
            lv = labels.to_dense()
            assert ((lv >= 0) & (lv < g.n)).all()
        return labels
    if kernel == "LCC":
        lcc = exp.local_clustering_coefficient(g)
        if check:
            vals = lcc.to_dense()
            assert ((vals >= 0) & (vals <= 1 + 1e-12)).all()
        return lcc
    if kernel == "SSSP":
        target = gw if gw is not None else g
        dist = alg.sssp(target, source)
        if check:
            ref = baselines.sssp_dijkstra(target, source)
            idx, dv = dist.to_coo()
            assert np.allclose(dv, ref[idx])
        return dist
    raise ValueError(f"unknown Graphalytics kernel {kernel!r}")


def run_workflow(graph_name: str = "kron", size: str = "tiny",
                 kernels: Sequence[str] = KERNELS,
                 check: bool = True) -> Dict[str, Dict[str, float]]:
    """Full end-to-end run on one suite graph; returns per-stage seconds.

    ``result["_ingest"]`` holds the load/build/property-cache timings;
    each kernel key holds ``{"run": seconds}``.
    """
    t = Timer()
    out: Dict[str, Dict[str, float]] = {}

    t.tic()
    g = datasets.build(graph_name, size)
    gen_time = t.toc()
    t.tic()
    gw = datasets.build(graph_name, size, weighted=True)
    gen_w_time = t.toc()
    t.tic()
    g.cache_all()
    gw.cache_all()
    prop_time = t.toc()
    out["_ingest"] = {"generate": gen_time, "generate_weighted": gen_w_time,
                      "properties": prop_time}

    deg = np.diff(g.A.indptr)
    source = int(np.flatnonzero(deg > 0)[0]) if (deg > 0).any() else 0
    for kernel in kernels:
        t.tic()
        run_kernel(kernel, g, gw, source=source, check=check)
        out[kernel] = {"run": t.toc()}
    return out


def format_workflow(graph_name: str, results: Dict) -> str:
    """Human-readable end-to-end report."""
    ingest = results["_ingest"]
    total_ingest = sum(ingest.values())
    kernel_rows = [(k, v["run"]) for k, v in results.items()
                   if not k.startswith("_")]
    total_run = sum(s for _, s in kernel_rows)
    lines = [
        f"Graphalytics workflow on '{graph_name}'",
        f"  ingestion: {total_ingest:.3f}s "
        f"(generate {ingest['generate']:.3f}s, weighted "
        f"{ingest['generate_weighted']:.3f}s, properties "
        f"{ingest['properties']:.3f}s)",
    ]
    for k, s in kernel_rows:
        lines.append(f"  {k:<5} {s:>8.3f}s")
    lines.append(f"  total kernels: {total_run:.3f}s — ingestion is "
                 f"{100 * total_ingest / max(total_ingest + total_run, 1e-12):.0f}% "
                 f"of end-to-end")
    return "\n".join(lines)
