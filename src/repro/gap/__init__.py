"""``repro.gap`` — the evaluation substrate (Sec. VI of the paper).

* :mod:`~repro.gap.generators` — scaled synthetic stand-ins for the five
  GAP benchmark graphs (Table IV);
* :mod:`~repro.gap.baselines` — reference kernels playing the GAP C++
  role in Table III (and doubling as correctness oracles);
* :mod:`~repro.gap.verify` — GAP-style output verifiers;
* :mod:`~repro.gap.datasets` — the suite registry at three sizes;
* :mod:`~repro.gap.harness` — regenerates Tables III and IV
  (``python -m repro.gap.harness``).
"""

from . import baselines, datasets, generators, graphalytics, harness, verify
from .datasets import SUITE, build, suite_table

__all__ = ["baselines", "datasets", "generators", "graphalytics", "harness", "verify",
           "SUITE", "build", "suite_table"]
