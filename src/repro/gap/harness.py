"""The Table III / Table IV harness.

``run_table3`` runs all six GAP kernels on the five suite graphs, timing
both the reference ("GAP" column of Table III) and the LAGraph
implementation ("SS" column), verifying every LAGraph output against its
oracle, and printing rows in the paper's layout::

    Algorithm : graph, with run time in seconds
    package      Kron   Urand  Twitter   Web    Road
    BC : GAP     ...
    BC : LAGr    ...

``run_table4`` prints the benchmark-matrix inventory (Table IV).

The module is import-light so ``python -m repro.gap.harness`` works as a
command-line entry point (``--size tiny|small|medium``).
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Sequence

import numpy as np

from ..lagraph import algorithms as alg
from ..lagraph.utils.timer import Timer
from . import baselines, datasets, verify

__all__ = ["run_table3", "run_table4", "format_table3", "format_table4",
           "ALGORITHMS", "GRAPHS"]

GRAPHS = ("kron", "urand", "twitter", "web", "road")
ALGORITHMS = ("BC", "BFS", "PR", "CC", "SSSP", "TC")

#: GAP trial counts (scaled: GAP uses 16 BFS trials etc.; we use fewer).
_N_SOURCES = 4


def _sources(g, k: int = _N_SOURCES, seed: int = 0) -> np.ndarray:
    """GAP-style random non-isolated source nodes."""
    deg = np.diff(g.A.indptr)
    candidates = np.flatnonzero(deg > 0)
    rng = np.random.default_rng(seed)
    if candidates.size == 0:
        return np.zeros(k, dtype=np.int64)
    return rng.choice(candidates, size=min(k, candidates.size), replace=False)


def _run_one(algo: str, g, gw, check: bool) -> Dict[str, float]:
    """Time one kernel on one graph; returns {'gap': s, 'lagraph': s}."""
    t = Timer()
    srcs = _sources(g)
    out: Dict[str, float] = {}

    if algo == "BFS":
        g.cache_at()
        g.cache_row_degree()
        t.tic()
        for s in srcs:
            baselines.bfs_parent(g, int(s))
        out["gap"] = t.toc() / srcs.size
        t.tic()
        for s in srcs:
            parent = alg.bfs_parent_do(g, int(s))
        out["lagraph"] = t.toc() / srcs.size
        if check:
            verify.verify_bfs_parent(g, int(srcs[-1]), parent)
    elif algo == "BC":
        g.cache_at()
        t.tic()
        baselines.betweenness_centrality(g, srcs)
        out["gap"] = t.toc()
        t.tic()
        cent = alg.betweenness_centrality_batch(g, srcs)
        out["lagraph"] = t.toc()
        if check:
            verify.verify_bc(g, srcs, cent)
    elif algo == "PR":
        g.cache_at()
        g.cache_row_degree()
        t.tic()
        baselines.pagerank(g)
        out["gap"] = t.toc()
        t.tic()
        rank, _ = alg.pagerank_gap(g)
        out["lagraph"] = t.toc()
        if check:
            verify.verify_pr(g, rank, tol=1e-4)
    elif algo == "CC":
        t.tic()
        baselines.connected_components(g)
        out["gap"] = t.toc()
        t.tic()
        comp = alg.connected_components(g)
        out["lagraph"] = t.toc()
        if check:
            verify.verify_cc(g, comp)
    elif algo == "SSSP":
        t.tic()
        for s in srcs:
            baselines.sssp_dijkstra(gw, int(s))
        out["gap"] = t.toc() / srcs.size
        delta = max(float(gw.A.values.mean()), 1.0) if gw.A.nvals else 1.0
        t.tic()
        for s in srcs:
            dist = alg.sssp_delta_stepping(gw, int(s), delta=delta)
        out["lagraph"] = t.toc() / srcs.size
        if check:
            verify.verify_sssp(gw, int(srcs[-1]), dist)
    elif algo == "TC":
        t.tic()
        ref = baselines.triangle_count(g)
        out["gap"] = t.toc()
        t.tic()
        count = alg.triangle_count_basic(g)
        out["lagraph"] = t.toc()
        if check:
            assert count == ref, f"TC mismatch: {count} vs {ref}"
    else:
        raise ValueError(f"unknown algorithm {algo!r}")
    return out


def run_table3(size: str = "small", algorithms: Sequence[str] = ALGORITHMS,
               graphs: Sequence[str] = GRAPHS, check: bool = True) -> Dict:
    """Run the Table III experiment; returns nested results in seconds.

    ``results[algo][graph] = {"gap": seconds, "lagraph": seconds}``.
    Every LAGraph output is verified against its oracle unless
    ``check=False``.
    """
    built = {}
    built_w = {}
    for name in graphs:
        built[name] = datasets.build(name, size)
        built_w[name] = datasets.build(name, size, weighted=True)
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for algo in algorithms:
        results[algo] = {}
        for name in graphs:
            results[algo][name] = _run_one(algo, built[name], built_w[name],
                                           check)
    return results


def format_table3(results: Dict, graphs: Sequence[str] = GRAPHS) -> str:
    """Render results in the paper's Table III layout."""
    header = ["Algorithm : graph, with run time in seconds"]
    cols = "".join(f"{g.capitalize():>10}" for g in graphs)
    header.append(f"{'package':<14}{cols}")
    lines = header
    for algo, per_graph in results.items():
        for package, label in (("gap", "GAP"), ("lagraph", "LAGr")):
            cells = "".join(
                f"{per_graph[g][package]:>10.3f}" if g in per_graph else
                f"{'-':>10}"
                for g in graphs)
            lines.append(f"{algo + ' : ' + label:<14}{cells}")
    return "\n".join(lines)


def run_table4(size: str = "small") -> List[tuple]:
    """The Table IV inventory rows for the generated suite."""
    return datasets.suite_table(size)


def format_table4(rows: List[tuple]) -> str:
    lines = [f"{'graph':<10}{'nodes':>12}{'entries in A':>16}  graph kind"]
    for name, n, nvals, kind in rows:
        lines.append(f"{name:<10}{n:>12,}{nvals:>16,}  {kind}")
    return "\n".join(lines)


def main(argv=None):  # pragma: no cover - CLI convenience
    ap = argparse.ArgumentParser(description="GAP benchmark harness")
    ap.add_argument("--size", default="small", choices=datasets.SIZES)
    ap.add_argument("--algorithms", nargs="*", default=list(ALGORITHMS))
    ap.add_argument("--no-check", action="store_true")
    args = ap.parse_args(argv)
    print(format_table4(run_table4(args.size)))
    print()
    results = run_table3(args.size, algorithms=args.algorithms,
                         check=not args.no_check)
    print(format_table3(results))


if __name__ == "__main__":  # pragma: no cover
    main()
