"""Thread-safe LRU result cache.

Entries are keyed by ``(graph_name, epoch, version, query)`` — see
:meth:`repro.serve.registry.GraphRegistry.key`.  Because the graph version
is part of the key, invalidation needs no explicit purge: a mutated graph
simply stops producing hits, and its stale entries age out of the LRU
order.  ``purge_below`` exists for callers who want the memory back
eagerly.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable

__all__ = ["LRUCache", "CacheStats"]

_MISSING = object()


@dataclass
class CacheStats:
    """Counters for one cache instance (snapshot copies are returned)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    ``capacity <= 0`` disables caching entirely (every ``get`` misses,
    ``put`` is a no-op) — handy for benchmarking the uncached path.
    """

    def __init__(self, capacity: int = 1024):
        self.capacity = int(capacity)
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: Hashable, default=None):
        """Look up ``key``, refreshing its recency on a hit."""
        with self._lock:
            val = self._data.get(key, _MISSING)
            if val is _MISSING:
                self._stats.misses += 1
                return default
            self._data.move_to_end(key)
            self._stats.hits += 1
            return val

    def peek(self, key: Hashable, default=None):
        """Look up without touching recency or stats."""
        with self._lock:
            val = self._data.get(key, _MISSING)
            return default if val is _MISSING else val

    def put(self, key: Hashable, value) -> None:
        """Insert/overwrite ``key``, evicting the LRU entry when full."""
        if self.capacity <= 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self._stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def stale_get(self, graph_name: str, query):
        """The freshest memoized answer for ``(graph_name, query)`` at
        *any* version — degraded-mode lookup for an open circuit breaker.

        Scans keys in the service layout ``(name, epoch, version, query)``
        and returns ``(value, epoch, version)`` for the highest
        ``(epoch, version)`` found, or ``None``.  Recency and stats are
        untouched: a degraded answer should not keep a stale entry alive.
        """
        best = None
        with self._lock:
            for k, v in self._data.items():
                if (isinstance(k, tuple) and len(k) == 4
                        and k[0] == graph_name and k[3] == query):
                    if best is None or (k[1], k[2]) > (best[1], best[2]):
                        best = (v, k[1], k[2])
        return best

    def purge_below(self, graph_name: str, version: int) -> int:
        """Eagerly drop entries for ``graph_name`` older than ``version``.

        Keys are expected in the service layout
        ``(name, epoch, version, query)``; foreign keys are left alone.
        Returns the number of entries removed.
        """
        removed = 0
        with self._lock:
            for key in [k for k in self._data
                        if isinstance(k, tuple) and len(k) == 4
                        and k[0] == graph_name and k[2] < version]:
                del self._data[key]
                removed += 1
        return removed

    def stats(self) -> CacheStats:
        """A point-in-time copy of the hit/miss/eviction counters."""
        with self._lock:
            return CacheStats(self._stats.hits, self._stats.misses,
                              self._stats.evictions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (f"LRUCache(len={len(self)}, capacity={self.capacity}, "
                f"hits={s.hits}, misses={s.misses})")
