"""Request coalescing: turning a stream of queries into batched kernel work.

The queue collects pending requests from any number of submitting threads;
a drain empties it atomically and plans the work:

* requests for the same ``(graph, coalesce-group)`` collapse into one
  *batch* answered by a single multi-source kernel call (split into chunks
  of ``max_batch`` sources);
* duplicate queries inside a batch share one kernel row — every duplicate
  future is fanned the same result;
* non-coalescible queries become singleton batches (deduplicated too).

Planning is pure bookkeeping over immutable query objects, so it is
trivially testable without a service or an executor.
"""

from __future__ import annotations

import contextvars
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..obs import metrics as _metrics
from .requests import Query, _SingleSource
from .resilience import (
    ADMISSION_POLICIES,
    POLICY_BLOCK,
    POLICY_DROP_OLDEST,
    POLICY_REJECT,
    ServiceOverloaded,
)

__all__ = ["PendingRequest", "Batch", "CoalescingQueue", "plan_batches"]

#: Always-on gauge tracking the accumulation buffer's depth — process-wide
#: (services share the metric; per-service peaks live in
#: :class:`repro.serve.service.ServiceStats`).
_QUEUE_DEPTH = _metrics.gauge(
    "serve_queue_depth", "Requests waiting in the coalescing queue")


@dataclass
class PendingRequest:
    """One submitted query waiting for a result.

    ``ctx`` is the submitter's :mod:`contextvars` snapshot: drain workers
    execute kernels under it, so context-local state — in particular the
    :mod:`repro.grb.telemetry` hook — follows the request onto the pool
    instead of leaking between concurrent submissions.
    """

    graph_name: str
    query: Query
    future: Future = field(default_factory=Future)
    ctx: Optional[contextvars.Context] = None
    #: Absolute :func:`time.monotonic` deadline, or ``None`` (no budget).
    #: The service's reaper resolves the future with ``DeadlineExceeded``
    #: once this passes; drain workers skip already-expired requests.
    deadline: Optional[float] = None


@dataclass
class Batch:
    """A unit of kernel work: one graph, one coalesce group (or a single
    non-coalescible query), plus the requests it will answer.

    ``requests_by_query`` preserves submission order of first appearance;
    duplicates of a query ride along in its request list.
    """

    graph_name: str
    group: Optional[str]                       # None → not coalescible
    requests_by_query: "Dict[Query, List[PendingRequest]]"

    @property
    def queries(self) -> List[Query]:
        return list(self.requests_by_query)

    @property
    def requests(self) -> List[PendingRequest]:
        return [r for rs in self.requests_by_query.values() for r in rs]

    @property
    def sources(self) -> List[int]:
        """Distinct source vertices, in first-appearance order."""
        return [int(q.source) for q in self.requests_by_query
                if isinstance(q, _SingleSource)]


def plan_batches(requests: List[PendingRequest],
                 max_batch: int = 64) -> List[Batch]:
    """Group drained requests into batches of at most ``max_batch`` queries.

    Coalescible queries group by ``(graph, COALESCE)``; everything else
    gets a singleton batch per *distinct* query (duplicates still share).
    """
    grouped: "Dict[Tuple, Dict[Query, List[PendingRequest]]]" = {}
    order: List[Tuple] = []
    for req in requests:
        tag = req.query.COALESCE
        if tag is None:
            gkey = (req.graph_name, None, req.query)
        else:
            gkey = (req.graph_name, tag)
        bucket = grouped.get(gkey)
        if bucket is None:
            bucket = grouped[gkey] = {}
            order.append(gkey)
        bucket.setdefault(req.query, []).append(req)

    batches: List[Batch] = []
    for gkey in order:
        name, tag = gkey[0], gkey[1]
        bucket = grouped[gkey]
        if tag is None:
            batches.append(Batch(name, None, bucket))
            continue
        items = list(bucket.items())
        for lo in range(0, len(items), max_batch):
            batches.append(Batch(name, tag, dict(items[lo:lo + max_batch])))
    return batches


class CoalescingQueue:
    """A thread-safe accumulation buffer for pending requests.

    With ``maxsize=None`` (the default) the buffer is unbounded and
    :meth:`put` always succeeds — the seed behaviour.  A bounded queue
    applies one of three admission policies when full:

    * ``"reject"`` — :meth:`put` raises :class:`ServiceOverloaded`; the
      service resolves the *new* request's future with it.
    * ``"drop-oldest"`` — the oldest queued request is shed (returned to
      the caller, who resolves its future with :class:`ServiceOverloaded`)
      and the new one is admitted.
    * ``"block"`` — :meth:`put` waits for a drain to make space, up to
      ``timeout`` seconds, then raises :class:`ServiceOverloaded`.
    """

    def __init__(self, maxsize: Optional[int] = None,
                 policy: str = POLICY_REJECT):
        if policy not in ADMISSION_POLICIES:
            raise ValueError(f"unknown admission policy {policy!r}; "
                             f"one of {ADMISSION_POLICIES}")
        if maxsize is not None and maxsize < 1:
            raise ValueError("maxsize must be >= 1 (or None for unbounded)")
        self.maxsize = maxsize
        self.policy = policy
        self._cond = threading.Condition()
        self._pending: List[PendingRequest] = []

    def put(self, request: PendingRequest, *,
            timeout: Optional[float] = None
            ) -> "Tuple[int, List[PendingRequest]]":
        """Admit ``request``; returns ``(depth, shed)``.

        ``depth`` is the queue depth after insertion; ``shed`` is the
        list of requests dropped to make room (non-empty only under the
        ``drop-oldest`` policy).  Raises :class:`ServiceOverloaded` when
        admission is denied (``reject`` at capacity, ``block`` timeout).
        """
        shed: List[PendingRequest] = []
        with self._cond:
            if self.maxsize is not None and len(self._pending) >= self.maxsize:
                if self.policy == POLICY_REJECT:
                    raise ServiceOverloaded(
                        f"queue full ({len(self._pending)}/{self.maxsize}); "
                        f"request rejected")
                if self.policy == POLICY_DROP_OLDEST:
                    while len(self._pending) >= self.maxsize:
                        shed.append(self._pending.pop(0))
                elif self.policy == POLICY_BLOCK:
                    ok = self._cond.wait_for(
                        lambda: len(self._pending) < self.maxsize,
                        timeout=timeout)
                    if not ok:
                        raise ServiceOverloaded(
                            f"queue full ({self.maxsize}); timed out after "
                            f"{timeout}s waiting for space")
            self._pending.append(request)
            depth = len(self._pending)
        if _metrics.ENABLED:
            _QUEUE_DEPTH.set(depth)
        return depth, shed

    def drain(self) -> List[PendingRequest]:
        """Atomically take everything currently queued (FIFO order)."""
        with self._cond:
            out, self._pending = self._pending, []
            if out:
                self._cond.notify_all()
        if _metrics.ENABLED and out:
            _QUEUE_DEPTH.set(0)
        return out

    def __len__(self) -> int:
        with self._cond:
            return len(self._pending)
