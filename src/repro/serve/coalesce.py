"""Request coalescing: turning a stream of queries into batched kernel work.

The queue collects pending requests from any number of submitting threads;
a drain empties it atomically and plans the work:

* requests for the same ``(graph, coalesce-group)`` collapse into one
  *batch* answered by a single multi-source kernel call (split into chunks
  of ``max_batch`` sources);
* duplicate queries inside a batch share one kernel row — every duplicate
  future is fanned the same result;
* non-coalescible queries become singleton batches (deduplicated too).

Planning is pure bookkeeping over immutable query objects, so it is
trivially testable without a service or an executor.
"""

from __future__ import annotations

import contextvars
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..obs import metrics as _metrics
from .requests import Query, _SingleSource

__all__ = ["PendingRequest", "Batch", "CoalescingQueue", "plan_batches"]

#: Always-on gauge tracking the accumulation buffer's depth — process-wide
#: (services share the metric; per-service peaks live in
#: :class:`repro.serve.service.ServiceStats`).
_QUEUE_DEPTH = _metrics.gauge(
    "serve_queue_depth", "Requests waiting in the coalescing queue")


@dataclass
class PendingRequest:
    """One submitted query waiting for a result.

    ``ctx`` is the submitter's :mod:`contextvars` snapshot: drain workers
    execute kernels under it, so context-local state — in particular the
    :mod:`repro.grb.telemetry` hook — follows the request onto the pool
    instead of leaking between concurrent submissions.
    """

    graph_name: str
    query: Query
    future: Future = field(default_factory=Future)
    ctx: Optional[contextvars.Context] = None


@dataclass
class Batch:
    """A unit of kernel work: one graph, one coalesce group (or a single
    non-coalescible query), plus the requests it will answer.

    ``requests_by_query`` preserves submission order of first appearance;
    duplicates of a query ride along in its request list.
    """

    graph_name: str
    group: Optional[str]                       # None → not coalescible
    requests_by_query: "Dict[Query, List[PendingRequest]]"

    @property
    def queries(self) -> List[Query]:
        return list(self.requests_by_query)

    @property
    def requests(self) -> List[PendingRequest]:
        return [r for rs in self.requests_by_query.values() for r in rs]

    @property
    def sources(self) -> List[int]:
        """Distinct source vertices, in first-appearance order."""
        return [int(q.source) for q in self.requests_by_query
                if isinstance(q, _SingleSource)]


def plan_batches(requests: List[PendingRequest],
                 max_batch: int = 64) -> List[Batch]:
    """Group drained requests into batches of at most ``max_batch`` queries.

    Coalescible queries group by ``(graph, COALESCE)``; everything else
    gets a singleton batch per *distinct* query (duplicates still share).
    """
    grouped: "Dict[Tuple, Dict[Query, List[PendingRequest]]]" = {}
    order: List[Tuple] = []
    for req in requests:
        tag = req.query.COALESCE
        if tag is None:
            gkey = (req.graph_name, None, req.query)
        else:
            gkey = (req.graph_name, tag)
        bucket = grouped.get(gkey)
        if bucket is None:
            bucket = grouped[gkey] = {}
            order.append(gkey)
        bucket.setdefault(req.query, []).append(req)

    batches: List[Batch] = []
    for gkey in order:
        name, tag = gkey[0], gkey[1]
        bucket = grouped[gkey]
        if tag is None:
            batches.append(Batch(name, None, bucket))
            continue
        items = list(bucket.items())
        for lo in range(0, len(items), max_batch):
            batches.append(Batch(name, tag, dict(items[lo:lo + max_batch])))
    return batches


class CoalescingQueue:
    """A thread-safe accumulation buffer for pending requests."""

    def __init__(self):
        self._lock = threading.Lock()
        self._pending: List[PendingRequest] = []

    def put(self, request: PendingRequest) -> int:
        """Append; returns the queue depth after insertion."""
        with self._lock:
            self._pending.append(request)
            depth = len(self._pending)
        if _metrics.ENABLED:
            _QUEUE_DEPTH.set(depth)
        return depth

    def drain(self) -> List[PendingRequest]:
        """Atomically take everything currently queued (FIFO order)."""
        with self._lock:
            out, self._pending = self._pending, []
        if _metrics.ENABLED and out:
            _QUEUE_DEPTH.set(0)
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)
