"""`GraphService` — the concurrent graph-analytics serving engine.

Request lifecycle::

    submit(name, query, deadline=...)
      ├─ memo-cache hit?  → future resolved immediately
      ├─ admission control (bounded queue; reject / drop-oldest / block)
      └─ miss → CoalescingQueue → drain task on the pool
                  ├─ plan_batches(): group by (graph, coalesce-tag),
                  │   dedupe identical queries, chunk to max_batch
                  └─ per batch: re-check cache, breaker, then kernel
                      units (msbfs / sssp_batch for single-source
                      groups, the direct Basic-mode algorithm
                      otherwise) with retry + bisect isolation,
                      fan results out to every waiting future

Three guarantees:

* **Identity** — every answer is bit-identical to the direct
  :mod:`repro.lagraph` call the query documents (batched rows are
  bit-identical to per-source sweeps; see
  :mod:`repro.lagraph.algorithms.msbfs`).  Degraded answers — stale memo
  entries served while a circuit breaker is open — are the one marked
  exception: they arrive wrapped in
  :class:`~repro.serve.resilience.DegradedResult`.
* **Freshness** — results are computed against, and cached under, the
  graph's ``(epoch, version)`` snapshot taken at execution time, so a
  ``invalidate()``/``update()`` can never be answered with stale entries
  (the version bump changes the cache key).
* **Progress** — every submitted future is eventually resolved with a
  result or an exception: a kernel failure is bisected down to the
  offending query (innocent batch siblings are retried), an expired
  deadline resolves with :class:`DeadlineExceeded` (the reaper thread
  enforces this even while the kernel is still running), and a shed
  request resolves with :class:`ServiceOverloaded`.  Nothing ever hangs.

The resilience vocabulary (deadlines, admission policies, retry policy,
circuit breakers, fault injection) is documented in
``docs/RESILIENCE.md``; the primitives live in
:mod:`repro.serve.resilience` and :mod:`repro.grb.cancel`.

Throughput notes: batching is the dominant win (one interpreter-level
kernel drive for dozens of traversals); the thread pool additionally
overlaps the NumPy/SciPy sections that release the GIL.  Submissions made
while a drain is in flight simply land in the next drain — callers never
block on each other (except under the ``block`` admission policy, which
is backpressure by design).
"""

from __future__ import annotations

import contextvars
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor, wait as _wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..grb import engine
from ..grb import pool as _grbpool
from ..grb.cancel import CancelToken, Cancelled, DeadlineExceeded, \
    cancel_scope
from ..lagraph.graph import Graph
from ..obs import http as _obshttp
from ..obs import identity as _identity
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..testing import faults as _faults
from .cache import LRUCache
from .coalesce import Batch, CoalescingQueue, PendingRequest, plan_batches
from .registry import GraphRegistry
from .requests import Query, _SingleSource
from . import resilience
from .resilience import (
    CircuitBreaker,
    CircuitOpen,
    DegradedResult,
    GraphValidationError,
    RetryPolicy,
    ServiceOverloaded,
)

__all__ = ["GraphService", "ServiceStats"]

# always-on serve metrics (the registry-level twins of ServiceStats)
_REQUESTS = _metrics.counter(
    "serve_requests_total", "Requests by outcome event",
    labels=("event",))
_BATCH_SIZE = _metrics.histogram(
    "serve_batch_size", "Queries answered per executed batch",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128))
#: Serve latency buckets — finer at the low end than the kernel-latency
#: defaults, because memo hits resolve in tens of microseconds.
SERVE_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)
_LATENCY = _metrics.histogram(
    "serve_request_latency_seconds", "Submit-to-resolution latency",
    buckets=SERVE_LATENCY_BUCKETS)

#: Latency samples kept per service for the percentile snapshot (a plain
#: bounded reservoir: old samples age out FIFO — recent behaviour is what
#: p99 is for).
_LATENCY_WINDOW = 4096

#: Deadline-reaper wakeup interval: the reaper thread only runs while
#: deadline-carrying requests are in flight, and resolves expired futures
#: within roughly this bound even when the kernel is mid-iteration.
_REAPER_INTERVAL = 0.01

#: ``/healthz`` reports overloaded for this long after a shed — "sustained
#: overload" smoothing so a load balancer sees more than a one-poll blip.
_OVERLOAD_WINDOW = 5.0


def _percentile(sorted_samples: List[float], q: float) -> float:
    if not sorted_samples:
        return 0.0
    i = min(len(sorted_samples) - 1,
            max(0, round(q * (len(sorted_samples) - 1))))
    return sorted_samples[i]


@dataclass
class ServiceStats:
    """Aggregate counters for one service instance.

    The monotonic counters are maintained under the service lock; the
    rest are snapshot-time derivations :meth:`GraphService.stats` fills
    in — queue state, the batch-size histogram, request-latency
    percentiles over the recent window, and the process-global plan-cache
    counters serve dispatches feed.
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cache_hits: int = 0          # fast-path + drain-time hits
    batches: int = 0             # kernel-level units of work executed
    kernel_calls: int = 0        # actual algorithm invocations (all kinds)
    coalesced_calls: int = 0     # kernel calls that served a coalescible group
    coalesced_sources: int = 0   # sources answered through those calls
    deduplicated: int = 0        # futures resolved by sharing another's result
    shed: int = 0                # requests refused/dropped by admission control
    retries: int = 0             # kernel-unit retry attempts
    deadline_expired: int = 0    # futures resolved with DeadlineExceeded
    quarantined: int = 0         # queries isolated as batch-poisoning failures
    degraded: int = 0            # stale answers served while a breaker was open
    queue_depth: int = 0         # pending requests right now
    queue_depth_peak: int = 0    # highest depth ever seen at enqueue
    batch_size_hist: Dict[int, int] = field(default_factory=dict)
    latency_count: int = 0       # samples in the percentile window
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0
    breaker_states: Dict[str, str] = field(default_factory=dict)
    plan_cache: Optional[object] = None   # engine PlanCacheStats snapshot

    @property
    def kernel_calls_saved(self) -> int:
        """Single-source sweeps avoided by batching (whole-graph queries
        such as PageRank are excluded from both sides)."""
        return self.coalesced_sources - self.coalesced_calls

    @property
    def memo_hit_rate(self) -> float:
        """Fraction of submissions answered from the memo cache."""
        return self.cache_hits / self.submitted if self.submitted else 0.0

    @property
    def coalescing_ratio(self) -> float:
        """Sources answered per coalesced kernel call (1.0 = no batching
        win; the msbfs ideal approaches the batch width)."""
        return (self.coalesced_sources / self.coalesced_calls
                if self.coalesced_calls else 0.0)

    def to_dict(self) -> dict:
        """JSON-serialisable form (the ``/stats`` telemetry route)."""
        pc = self.plan_cache
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "cache_hits": self.cache_hits,
            "batches": self.batches,
            "kernel_calls": self.kernel_calls,
            "coalesced_calls": self.coalesced_calls,
            "coalesced_sources": self.coalesced_sources,
            "deduplicated": self.deduplicated,
            "shed": self.shed,
            "retries": self.retries,
            "deadline_expired": self.deadline_expired,
            "quarantined": self.quarantined,
            "degraded": self.degraded,
            "queue_depth": self.queue_depth,
            "queue_depth_peak": self.queue_depth_peak,
            "batch_size_hist": {str(k): v for k, v
                                in sorted(self.batch_size_hist.items())},
            "latency_count": self.latency_count,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "kernel_calls_saved": self.kernel_calls_saved,
            "memo_hit_rate": self.memo_hit_rate,
            "coalescing_ratio": self.coalescing_ratio,
            "breaker_states": dict(self.breaker_states),
            "plan_cache": ({
                "hits": pc.hits, "misses": pc.misses,
                "invalidations": pc.invalidations, "entries": pc.entries,
                "feed_bytes": pc.feed_bytes, "hit_rate": pc.hit_rate,
            } if pc is not None else None),
        }


def _copy_result(value):
    """A private copy for each caller: the memo cache keeps the master.

    Vectors/matrices are non-opaque (callers can write their arrays), so
    handing out the cached object would let one caller poison every later
    hit."""
    if hasattr(value, "dup"):
        return value.dup()
    if isinstance(value, tuple):
        return tuple(_copy_result(v) for v in value)
    return value


class GraphService:
    """Serve analytics queries over registered graphs, batching and
    memoizing aggressively.

    Parameters
    ----------
    registry:
        A :class:`GraphRegistry` to serve from (one is created if omitted).
    max_workers:
        Thread-pool width for drain tasks.
    cache_capacity:
        LRU memo capacity in entries (``0`` disables memoization).
    max_batch:
        Maximum sources per multi-source kernel call.
    max_queue:
        Bound on the coalescing queue (``None`` = unbounded, the seed
        behaviour).  Over the bound, ``admission_policy`` applies.
    admission_policy:
        ``"reject"`` (fail the new request with
        :class:`ServiceOverloaded`), ``"drop-oldest"`` (shed the oldest
        queued request), or ``"block"`` (backpressure the submitter).
    default_deadline:
        Relative seconds applied to every submission that does not pass
        its own ``deadline=`` (``None`` = no default budget).
    retry_policy:
        A :class:`~repro.serve.resilience.RetryPolicy`; ``None`` installs
        the default (3 attempts, capped exponential backoff with seeded
        jitter).  Pass ``RetryPolicy(attempts=1)`` to disable retries.
    breaker_threshold / breaker_reset_timeout:
        Per-(graph, kernel) circuit breaker: ``breaker_threshold``
        consecutive kernel-unit failures open it for
        ``breaker_reset_timeout`` seconds.  ``breaker_threshold=None``
        disables breakers entirely.
    isolation:
        When ``True`` (default), a failing coalesced batch is bisected so
        only the offending query fails; ``False`` restores the seed
        fail-the-whole-batch behaviour (the chaos suite's CI self-check
        flips this to prove the suite notices).
    degraded_serving:
        While a breaker is open, serve stale memo entries wrapped in
        :class:`DegradedResult` instead of failing with
        :class:`CircuitOpen` (only when a stale entry exists).
    """

    def __init__(self, registry: Optional[GraphRegistry] = None, *,
                 max_workers: int = 4, cache_capacity: int = 1024,
                 max_batch: int = 64,
                 max_queue: Optional[int] = None,
                 admission_policy: str = resilience.POLICY_REJECT,
                 default_deadline: Optional[float] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 breaker_threshold: Optional[int] = 5,
                 breaker_reset_timeout: float = 30.0,
                 isolation: bool = True,
                 degraded_serving: bool = True):
        self.registry = registry if registry is not None else GraphRegistry()
        self.cache = LRUCache(cache_capacity)
        self.max_batch = int(max_batch)
        self.default_deadline = default_deadline
        self.retry_policy = (retry_policy if retry_policy is not None
                             else RetryPolicy())
        self.breaker_threshold = breaker_threshold
        self.breaker_reset_timeout = float(breaker_reset_timeout)
        self.isolation = bool(isolation)
        self.degraded_serving = bool(degraded_serving)
        self._queue = CoalescingQueue(max_queue, admission_policy)
        self._executor = ThreadPoolExecutor(max_workers=max_workers,
                                            thread_name_prefix="graphserve")
        self._lock = threading.Lock()
        self._stats = ServiceStats()
        self._inflight: "set[Future]" = set()
        self._latencies: List[float] = []     # bounded FIFO window
        self._batch_hist: Dict[int, int] = {}
        self._depth_peak = 0
        self._closed = False
        self._breakers: Dict[tuple, CircuitBreaker] = {}
        self._deadlined: Dict[Future, float] = {}   # future → abs deadline
        self._reaper: Optional[threading.Thread] = None
        self._last_shed = 0.0                 # monotonic instant, 0 = never
        self._telemetry_server = None         # obs.http exporter, if started
        self._trace_ring = None               # recent-span ring for /trace
        self._queue_depth_limit: Optional[int] = None   # /healthz threshold

    # ------------------------------------------------------------------
    # registry conveniences
    # ------------------------------------------------------------------
    #: Valid values for ``register(warm=)`` besides the booleans.
    WARM_PROFILES = ("default", "pull", "msbfs")

    def register(self, name: str, graph: Graph, *,
                 warm=False, validate: bool = True,
                 place: Optional[str] = None) -> "GraphService":
        """Bind ``name`` to ``graph``, optionally pre-warming it.

        ``place="shm"`` additionally publishes the adjacency's operand
        feeds (canonical CSR + transpose) into shared-memory placements
        (:func:`repro.grb.pool.publish_graph`) so the first pool-sharded
        query never pays placement latency inside its budget.  A no-op
        when the pool is disabled (``REPRO_POOL_WORKERS`` unset/0) —
        registration stays cheap and nothing is spawned or mapped.

        ``validate=True`` (default) rejects adjacencies with non-finite
        edge weights (NaN/±inf) with a :class:`GraphValidationError` at
        registration time — the alternative is a deep kernel traceback
        (or a silently poisoned distance vector) on the first SSSP that
        touches the bad edge.  Dimension checks (square adjacency)
        already happened in the :class:`~repro.lagraph.graph.Graph`
        constructor.

        ``warm`` selects how much machinery to build at registration time,
        so the first query pays no one-off conversions inside its latency
        budget:

        * ``True`` / ``"default"`` — the pull machinery: cached transpose /
          CSC view and row degrees.
        * ``"pull"`` — default, plus the adjacency is *pinned* to the CSC
          storage format (``set_format("csc")``): pull-direction kernels
          and the masked-SpGEMM engine's ``Bᵀ`` feed then read the store's
          native arrays with zero conversion (the canonical CSR view is
          pre-derived here, so push kernels lose nothing).
        * ``"msbfs"`` — default, plus the all-ones pattern operands the
          batched-frontier ``plus.pair`` multiplies read are pre-built
          (they are cached per store version, see
          :meth:`repro.grb.Matrix.pattern_operand`).  Frontier matrices
          themselves pick hypersparse automatically through the storage
          policy once sources complete — the adjacency-side operands are
          what registration can usefully pre-pin.

        Beyond operand state, every query executed by the drain workers
        dispatches through the engine's keyed plan cache
        (:mod:`repro.grb.engine.plancache`): the first query of a shape
        pays the choosers and leaves its claimed rule + operand feeds
        behind, and every repeat on the same graph version skips them
        (see :meth:`plan_cache_stats`).
        """
        if validate:
            self._validate_graph(name, graph)
        if place is not None and place != "shm":
            raise ValueError(
                f"unknown placement {place!r}; supported: 'shm'")
        self.registry.register(name, graph)
        self._label_graph(name, graph)
        if warm:
            self._warm_graph(graph, warm)
        if place is not None:
            _grbpool.publish_graph(graph)
        return self

    @staticmethod
    def _validate_graph(name: str, graph: Graph) -> None:
        """Reject graphs no kernel can answer correctly — today that is
        non-finite edge weights (the square/type checks live in the Graph
        constructor)."""
        if not graph.A.values_all_finite():
            raise GraphValidationError(
                f"graph {name!r}: adjacency contains non-finite edge "
                f"weights (NaN/inf); weighted kernels would return "
                f"poisoned distances")

    @staticmethod
    def _label_graph(name: str, graph: Graph) -> None:
        """Register the adjacency's plan signature under ``name`` so the
        plan cache (and its invalidation telemetry) can attribute entries
        shaped from this graph's operands — including operands *derived*
        from the adjacency (``A.pattern().tril(-1)`` …), whose lineage
        signatures nest the registered identity."""
        sig = getattr(graph.A, "_plan_sig", None)
        if sig is not None:
            _identity.register(sig()[0], name)

    @staticmethod
    def _warm_graph(graph: Graph, profile) -> None:
        if profile is True:
            profile = "default"
        if profile not in GraphService.WARM_PROFILES:
            raise ValueError(
                f"unknown warm profile {profile!r}; one of "
                f"{GraphService.WARM_PROFILES} (or True/False)")
        if profile == "pull":
            # pin FIRST: the one CSR→CSC conversion happens here, and the
            # pre-planning below is then free on the native store
            graph.A.set_format("csc")
        graph.cache_at()
        graph.cache_row_degree()
        # pre-plan: build the operand state the engine's preferred rules
        # read (canonical CSR, the CSC/transpose feed of the dot and pull
        # kernels, pattern operands under "msbfs"), so the first query
        # pays no one-off conversions inside its latency budget
        engine.preplan(graph.A, profile=profile)

    def invalidate(self, name: str) -> int:
        """Declare a registered graph mutated (bumps its version)."""
        return self.registry.invalidate(name)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, name: str, query: Query, *,
               graph: Optional[Graph] = None, warm=False,
               deadline: Optional[float] = None) -> Future:
        """Enqueue one query; returns a future for its result.

        ``deadline`` is a relative budget in seconds (default: the
        service's ``default_deadline``); once it passes, the future
        resolves with :class:`DeadlineExceeded` — kernels abort
        cooperatively at their next iteration boundary, and the reaper
        thread resolves the future on time even if they don't.

        ``graph`` enables *lazy registration*: when ``name`` is not yet
        registered, it is bound (and warmed per ``warm`` — same profiles as
        :meth:`register`) before the query is enqueued.  An already
        registered name ignores both arguments, so racing lazy submitters
        agree on whichever binding landed first.
        """
        self._maybe_register(name, graph, warm)
        fut = self._enqueue(name, query, deadline)
        self._kick()
        return fut

    def submit_many(self, name: str, queries: Sequence[Query], *,
                    graph: Optional[Graph] = None, warm=False,
                    deadline: Optional[float] = None) -> List[Future]:
        """Enqueue a whole burst, then schedule a single drain — the
        batching-friendly entry point for bulk workloads.  ``graph`` /
        ``warm`` lazily register as in :meth:`submit`; ``deadline``
        applies to each request individually."""
        self._maybe_register(name, graph, warm)
        futs = [self._enqueue(name, q, deadline) for q in queries]
        self._kick()
        return futs

    def _maybe_register(self, name: str, graph: Optional[Graph],
                        warm) -> None:
        if graph is None or name in self.registry:
            return
        self._validate_graph(name, graph)
        # warm BEFORE publishing: once the name is bound, concurrent
        # queries may execute against the graph, and they must never race
        # the in-place format pin / cache builds (a racing loser warms its
        # own unpublished graph — wasted work, never a hazard)
        if warm:
            self._warm_graph(graph, warm)
        # atomic check-and-bind: racing lazy submitters can both reach
        # here, but only one binding lands
        self.registry.register_if_absent(name, graph)
        self._label_graph(name, graph)

    def query(self, name: str, query: Query, *,
              deadline: Optional[float] = None):
        """Synchronous convenience: ``submit(...).result()``."""
        return self.submit(name, query, deadline=deadline).result()

    def query_many(self, name: str, queries: Sequence[Query]) -> list:
        return [f.result() for f in self.submit_many(name, queries)]

    def _enqueue(self, name: str, query: Query,
                 deadline: Optional[float] = None) -> Future:
        if self._closed:
            raise RuntimeError("service is shut down")
        if not isinstance(query, Query):
            raise TypeError(f"expected a serve.Query, got {type(query)!r}")
        t0 = time.perf_counter()
        cached = self.cache.get(self.registry.key(name, query), _SENTINEL)
        with self._lock:
            self._stats.submitted += 1
        if _metrics.ENABLED:
            _REQUESTS.labels("submitted").inc()
        fut: Future = Future()
        if cached is not _SENTINEL:
            with self._lock:
                self._stats.cache_hits += 1
                self._stats.completed += 1
            if _metrics.ENABLED:
                _REQUESTS.labels("memo_hit").inc()
                _REQUESTS.labels("completed").inc()
            if _trace.active():
                _trace.instant("serve:memo-hit", cat="serve", graph=name,
                               query=type(query).__name__)
            fut.set_result(_copy_result(cached))
            return fut
        if deadline is None:
            deadline = self.default_deadline
        abs_deadline = (time.monotonic() + deadline
                        if deadline is not None else None)
        req = PendingRequest(name, query, fut, contextvars.copy_context(),
                             abs_deadline)
        self._track(fut, name, query, t0)
        try:
            # under "block" the submitter waits for queue space at most
            # until its own deadline (forever when it has none)
            depth, dropped = self._queue.put(req, timeout=deadline)
        except ServiceOverloaded as exc:
            self._note_shed(1)
            self._resolve(fut, False, exc)
            return fut
        if dropped:     # drop-oldest made room by shedding these
            self._note_shed(len(dropped))
            exc = ServiceOverloaded(
                "request shed by drop-oldest admission control")
            for old in dropped:
                self._resolve(old.future, False, exc)
        if abs_deadline is not None:
            self._watch_deadline(fut, abs_deadline)
        with self._lock:
            if depth > self._depth_peak:
                self._depth_peak = depth
        if _trace.active():
            _trace.instant("serve:enqueue", cat="serve", graph=name,
                           query=type(query).__name__, depth=depth)
        return fut

    def _note_shed(self, n: int) -> None:
        self._last_shed = time.monotonic()
        with self._lock:
            self._stats.shed += n
        resilience.count_shed(self._queue.policy, n)
        if _metrics.ENABLED:
            _REQUESTS.labels("shed").inc(n)

    @staticmethod
    def _resolve(fut: Future, ok: bool, val) -> None:
        """Resolve ``fut`` exactly once: the reaper, drain workers, and
        admission control race each other, and whoever loses must be a
        silent no-op."""
        if fut.done():
            return
        try:
            (fut.set_result if ok else fut.set_exception)(val)
        except Exception:       # InvalidStateError: someone else won
            pass

    def _track(self, fut: Future, name: str, query: Query,
               t0: float) -> None:
        with self._lock:
            self._inflight.add(fut)
        # the submitter's trace identity, captured now: the done callback
        # runs on whatever thread resolves the future, outside the
        # submitting request's context
        sink = _trace.current_sink()
        parent = _trace.current_span_id() if sink is not None else None

        def _done(f: Future):
            latency = time.perf_counter() - t0
            exc = f.exception()
            failed = exc is not None
            with self._lock:
                self._inflight.discard(f)
                self._deadlined.pop(f, None)
                self._stats.completed += 1
                if failed:
                    self._stats.failed += 1
                    if isinstance(exc, DeadlineExceeded):
                        self._stats.deadline_expired += 1
                self._latencies.append(latency)
                if len(self._latencies) > _LATENCY_WINDOW:
                    del self._latencies[:len(self._latencies)
                                        - _LATENCY_WINDOW]
            if _metrics.ENABLED:
                _LATENCY.observe(latency)
                _REQUESTS.labels("failed" if failed else "completed").inc()
                if isinstance(exc, DeadlineExceeded):
                    _REQUESTS.labels("deadline_exceeded").inc()
            if sink is not None:
                # obs: gated-by-caller (sink is captured at submit time
                # only while the submitter's tracing was active)
                _trace.instant("serve:answer", cat="serve", sink=sink,
                               parent_id=parent, graph=name,
                               query=type(query).__name__,
                               latency_s=latency, failed=failed)
        fut.add_done_callback(_done)

    # ------------------------------------------------------------------
    # deadline reaper
    # ------------------------------------------------------------------
    def _watch_deadline(self, fut: Future, abs_deadline: float) -> None:
        with self._lock:
            self._deadlined[fut] = abs_deadline
            if self._reaper is None:
                self._reaper = threading.Thread(
                    target=self._reap_loop, name="graphserve-reaper",
                    daemon=True)
                self._reaper.start()

    def _reap_loop(self) -> None:
        """Resolve deadline-carrying futures the moment their budget ends.

        Cooperative kernel cancellation (:mod:`repro.grb.cancel`) stops
        the wasted compute; this thread is what makes the *latency*
        contract unconditional — a kernel stuck inside one long numpy
        call cannot delay the future's DeadlineExceeded beyond one reaper
        interval.  Exits once the service is closed and no deadlines
        remain (it only exists while deadline requests are in flight).
        """
        while True:
            time.sleep(_REAPER_INTERVAL)
            now = time.monotonic()
            with self._lock:
                expired = [f for f, dl in self._deadlined.items()
                           if now >= dl or f.done()]
                for f in expired:
                    del self._deadlined[f]
                idle = not self._deadlined
                if idle:
                    # retire under the lock: _watch_deadline either sees
                    # None here and spawns a fresh reaper, or added its
                    # entry before this check (then idle is False)
                    self._reaper = None
            for f in expired:
                # outside the lock: resolution runs done-callbacks that
                # take the service lock themselves
                self._resolve(f, False, DeadlineExceeded(
                    "request deadline expired before a result was ready"))
            if idle:
                return

    def _kick(self) -> None:
        if len(self._queue):
            try:
                self._executor.submit(self._drain)
            except RuntimeError:
                # pool already shutting down: drain on this thread so no
                # enqueued future is ever abandoned (Progress guarantee)
                self._drain()

    # ------------------------------------------------------------------
    # draining / execution
    # ------------------------------------------------------------------
    def _drain(self) -> None:
        requests = self._queue.drain()
        if not requests:
            return
        batches = plan_batches(requests, self.max_batch)
        if len(batches) == 1:
            self._run_batch(batches[0])
            return
        for batch in batches:
            try:
                self._executor.submit(self._run_batch, batch)
            except RuntimeError:    # shutdown raced the drain: run inline
                self._run_batch(batch)

    def _run_batch(self, batch: Batch) -> None:
        # the registry read lock keeps update()/invalidate() from rewriting
        # the adjacency mid-kernel; the snapshot inside it is therefore
        # consistent with every array the kernels read.  Futures are
        # resolved only AFTER the lock is released: set_result runs caller
        # callbacks synchronously, and a callback taking the write side
        # (e.g. svc.invalidate) would deadlock against this thread's read.
        resolutions: List[tuple] = []
        try:
            if _faults.ACTIVE:
                _faults.fire("drain", graph=batch.graph_name,
                             queries=len(batch.requests_by_query))
            with self.registry.reading():
                g, epoch, version = self.registry.snapshot(batch.graph_name)
                self._answer(batch, g, epoch, version, resolutions)
        except Exception as exc:
            # apply what was decided before the failure (cached answers,
            # per-query validation errors), then fail only the remainder.
            # Kernel failures never reach here — _answer isolates them —
            # so this is registry/snapshot/drain-infrastructure failure,
            # where per-query blame does not exist.
            self._apply(resolutions)
            self._fail_batch(batch, exc)
            return
        self._apply(resolutions)

    @classmethod
    def _apply(cls, resolutions: List[tuple]) -> None:
        for fut, ok, val in resolutions:
            cls._resolve(fut, ok, val)

    def _answer(self, batch: Batch, g: Graph, epoch: int, version: int,
                resolutions: List[tuple]) -> None:
        """Compute the batch's answers, appending deferred future
        resolutions ``(future, ok, value-or-exception)`` to ``resolutions``
        for the caller to apply outside the registry read lock (appending
        in place lets already-decided outcomes survive a later
        infrastructure failure)."""
        name = batch.graph_name
        results: Dict[Query, object] = {}
        failures: Dict[Query, BaseException] = {}
        missing: List[Query] = []
        now = time.monotonic()
        for q in batch.queries:
            reqs = batch.requests_by_query[q]
            # a query none of whose submitters can still receive an
            # answer — every future resolved (reaper) or past deadline —
            # must not cost a kernel row
            live = [r for r in reqs if not r.future.done()
                    and (r.deadline is None or r.deadline > now)]
            if not live:
                exc = DeadlineExceeded(
                    "request deadline expired before execution")
                for r in reqs:
                    resolutions.append((r.future, False, exc))
                continue
            key = (name, epoch, version, q)
            cached = self.cache.get(key, _SENTINEL)
            if cached is not _SENTINEL:
                results[q] = cached
                with self._lock:
                    self._stats.cache_hits += 1
                continue
            try:
                q.validate(g)
            except Exception as exc:
                # an invalid query fails alone, not its whole batch
                for req in reqs:
                    resolutions.append((req.future, False, exc))
                continue
            missing.append(q)

        if missing:
            kernel_key = batch.group or type(missing[0]).__name__
            breaker = self._breaker_for(name, kernel_key)
            if breaker is not None and not breaker.allow():
                self._answer_degraded(batch, name, kernel_key, missing,
                                      resolutions)
            else:
                self._execute_units(batch, g, name, kernel_key, missing,
                                    results, failures, breaker)
                if _metrics.ENABLED:
                    _REQUESTS.labels("kernel_miss").inc(len(missing))
                for q in missing:
                    if q in results:
                        self.cache.put((name, epoch, version, q),
                                       results[q])

        shared = 0
        for q, reqs in batch.requests_by_query.items():
            if q in results:
                shared += len(reqs) - 1
                for req in reqs:
                    resolutions.append((req.future, True,
                                        _copy_result(results[q])))
            elif q in failures:
                for req in reqs:
                    resolutions.append((req.future, False, failures[q]))
            # else: validation failure / expiry, already appended above
        n_queries = len(batch.queries)
        with self._lock:
            self._stats.batches += 1
            self._stats.deduplicated += shared
            self._batch_hist[n_queries] = \
                self._batch_hist.get(n_queries, 0) + 1
        if _metrics.ENABLED:
            _BATCH_SIZE.observe(n_queries)

    def _breaker_for(self, name: str,
                     kernel_key: str) -> Optional[CircuitBreaker]:
        if self.breaker_threshold is None:
            return None
        key = (name, kernel_key)
        with self._lock:
            br = self._breakers.get(key)
            if br is None:
                br = self._breakers[key] = CircuitBreaker(
                    self.breaker_threshold, self.breaker_reset_timeout,
                    graph=name, kernel=kernel_key)
            return br

    def _answer_degraded(self, batch: Batch, name: str, kernel_key: str,
                         missing: List[Query],
                         resolutions: List[tuple]) -> None:
        """Breaker open: serve stale memo entries marked degraded, or
        fail fast — never run the kernel."""
        degraded = 0
        for q in missing:
            stale = (self.cache.stale_get(name, q)
                     if self.degraded_serving else None)
            if stale is not None:
                value, s_epoch, s_version = stale
                degraded += 1
                for req in batch.requests_by_query[q]:
                    resolutions.append((req.future, True, DegradedResult(
                        _copy_result(value), s_epoch, s_version)))
            else:
                exc = CircuitOpen(
                    f"circuit breaker open for {name!r}/{kernel_key!r}; "
                    f"no stale result available")
                for req in batch.requests_by_query[q]:
                    resolutions.append((req.future, False, exc))
        with self._lock:
            self._stats.degraded += degraded
        if _metrics.ENABLED:
            _REQUESTS.labels("degraded").inc(degraded)
            _REQUESTS.labels("breaker_fastfail").inc(
                len(missing) - degraded)

    def _execute_units(self, batch: Batch, g: Graph, name: str,
                       kernel_key: str, queries: List[Query],
                       results: Dict[Query, object],
                       failures: Dict[Query, BaseException],
                       breaker: Optional[CircuitBreaker]) -> None:
        """Run ``queries`` as kernel units: one batched multi-source call
        for a coalescible group, per-query direct calls otherwise."""
        if batch.group is not None and len(queries) > 1:
            self._run_unit(batch, g, name, kernel_key, queries,
                           results, failures, breaker)
        elif len(queries) > 1 and _grbpool.pool_enabled():
            self._run_units_concurrently(batch, g, name, kernel_key,
                                         queries, results, failures, breaker)
        else:
            for q in queries:
                self._run_unit(batch, g, name, kernel_key, [q],
                               results, failures, breaker)

    def _run_units_concurrently(self, batch: Batch, g: Graph, name: str,
                                kernel_key: str, queries: List[Query],
                                results: Dict[Query, object],
                                failures: Dict[Query, BaseException],
                                breaker: Optional[CircuitBreaker]) -> None:
        """Independent singleton units on dedicated threads, in waves.

        With the worker pool enabled, each unit's kernels block on pool
        round-trips — running units concurrently keeps every worker
        busy.  Dedicated threads, never the drain executor: a unit
        already occupies one of its bounded workers, and borrowing more
        from the same executor mid-batch can deadlock the drain.  Wave
        width matches the pool size — beyond it, extra threads would
        only queue on worker checkout.  ``_run_unit`` never raises (its
        ladder records per-query outcomes into results/failures, both
        written at distinct keys), so a wave always completes whole.
        """
        width = max(_grbpool.configured_workers(), 1)
        for start in range(0, len(queries), width):
            wave = queries[start:start + width]
            if len(wave) == 1:
                self._run_unit(batch, g, name, kernel_key, [wave[0]],
                               results, failures, breaker)
                continue
            threads = [
                threading.Thread(
                    target=contextvars.copy_context().run,
                    args=(self._run_unit, batch, g, name, kernel_key,
                          [q], results, failures, breaker),
                    daemon=True)
                for q in wave]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

    def _run_unit(self, batch: Batch, g: Graph, name: str, kernel_key: str,
                  qs: List[Query], results: Dict[Query, object],
                  failures: Dict[Query, BaseException],
                  breaker: Optional[CircuitBreaker],
                  attempt: int = 0) -> None:
        """One kernel-level unit of work, with the failure ladder:

        1. retry — a retryable fault re-runs the whole unit (capped
           exponential backoff + seeded jitter) up to the policy budget;
        2. bisect — a batched unit that still fails splits in half and
           each half re-runs, recursively, until the offending quer(ies)
           stand alone (innocent siblings succeed in their halves);
        3. quarantine — a single query that still fails gets the
           exception as its answer; the breaker records the failure.

        Deadline/cancellation raises skip the ladder entirely: they are
        caller-induced, not kernel failures.
        """
        token = self._unit_token(batch, qs)
        try:
            if _faults.ACTIVE:
                _faults.fire("serve-kernel", graph=name, kernel=kernel_key,
                             queries=tuple(qs))
            if batch.group is not None and len(qs) > 1:
                sources = [int(q.source) for q in qs]  # type: ignore[attr-defined]
                kernel = type(qs[0]).run_batch
                out = self._in_request_ctx(
                    batch, qs[0], kernel, g, sources, token=token,
                    span_attrs={"graph": name, "coalesced": True,
                                "sources": len(sources),
                                "query": type(qs[0]).__name__})
                for row, q in enumerate(qs):
                    results[q] = _SingleSource.extract_row(out, row)
                with self._lock:
                    self._stats.kernel_calls += 1
                    self._stats.coalesced_calls += 1
                    self._stats.coalesced_sources += len(sources)
            else:
                q = qs[0]
                results[q] = self._in_request_ctx(
                    batch, q, q.run_direct, g, token=token,
                    span_attrs={"graph": name, "coalesced": False,
                                "query": type(q).__name__})
                with self._lock:
                    self._stats.kernel_calls += 1
                    if batch.group is not None:
                        self._stats.coalesced_calls += 1
                        self._stats.coalesced_sources += 1
        except (DeadlineExceeded, Cancelled) as exc:
            # every waiter's budget ended (the unit token is only armed
            # when ALL member requests carry deadlines); the reaper has
            # resolved or will resolve the futures — record for the
            # fan-out, don't retry, don't blame the kernel
            for q in qs:
                failures[q] = exc
        except Exception as exc:
            policy = self.retry_policy
            if (policy is not None and attempt + 1 < policy.attempts
                    and policy.retryable(exc)):
                with self._lock:
                    self._stats.retries += 1
                resilience.count_retry()
                if _trace.active():
                    _trace.instant("serve:retry", cat="serve", graph=name,
                                   kernel=kernel_key, attempt=attempt + 1)
                time.sleep(policy.backoff(attempt + 1))
                self._run_unit(batch, g, name, kernel_key, qs, results,
                               failures, breaker, attempt=attempt + 1)
                return
            if len(qs) > 1 and self.isolation:
                # bisect: innocent siblings answer in their half, the
                # poison converges to a singleton unit
                mid = len(qs) // 2
                self._run_unit(batch, g, name, kernel_key, qs[:mid],
                               results, failures, breaker)
                self._run_unit(batch, g, name, kernel_key, qs[mid:],
                               results, failures, breaker)
                return
            for q in qs:
                failures[q] = exc
            with self._lock:
                self._stats.quarantined += len(qs)
            if _metrics.ENABLED:
                _REQUESTS.labels("quarantined").inc(len(qs))
            if breaker is not None:
                breaker.record_failure()
        else:
            if breaker is not None:
                breaker.record_success()

    @staticmethod
    def _unit_token(batch: Batch, qs: List[Query]) -> Optional[CancelToken]:
        """The cooperative-cancellation token for one kernel unit.

        Armed with the *latest* member deadline, and only when every
        member request carries one: as long as any waiter has an
        unbounded budget the kernel must run to completion for it, and
        individual early deadlines are enforced by the reaper on the
        future side."""
        deadlines: List[float] = []
        for q in qs:
            for r in batch.requests_by_query[q]:
                if r.deadline is None:
                    return None
                deadlines.append(r.deadline)
        if not deadlines:
            return None
        return CancelToken(deadline=max(deadlines))

    def _in_request_ctx(self, batch: Batch, q, fn, *args, span_attrs=None,
                        token: Optional[CancelToken] = None):
        """Run ``fn(*args)`` under the context snapshot of the first
        pending request for query ``q`` (each request carries its own
        ``copy_context()``, so a context is never entered twice), with
        ``token`` installed as the cancellation scope.

        Because the snapshot carries the submitter's trace sink, the
        ``serve:batch`` span — and every engine span the kernel opens
        beneath it — lands in the *submitting request's* trace, giving
        concurrent traced submitters disjoint span trees for free.

        When :meth:`serve_telemetry` is live and the submitter did *not*
        trace, the batch runs under a service-owned collector instead and
        the finished span tree lands in the ``/trace`` ring — recent
        request traces are scrapable without any caller opting in.
        """
        if token is not None:
            base_fn = fn

            def fn(*a, _base=base_fn, _tok=token):
                with cancel_scope(_tok):
                    return _base(*a)
        reqs = batch.requests_by_query.get(q)
        ctx = reqs[0].ctx if reqs else None
        if ctx is None:
            return fn(*args)
        if span_attrs is None:
            return ctx.run(fn, *args)
        ring = self._trace_ring

        def run():
            # obs: gated-by-caller (span cost only when the submitter's
            # sink is active or the telemetry ring opted the service in)
            if _trace.active():
                with _trace.span("serve:batch", cat="serve", **span_attrs):
                    return fn(*args)
            if ring is not None:
                with _trace.tracing() as coll:
                    with _trace.span("serve:batch", cat="serve",
                                     **span_attrs):
                        out = fn(*args)
                ring.push(coll.records())
                return out
            return fn(*args)
        return ctx.run(run)

    def _fail_batch(self, batch: Batch, exc: Exception) -> None:
        for req in batch.requests:
            self._resolve(req.future, False, exc)

    # ------------------------------------------------------------------
    # lifecycle / introspection
    # ------------------------------------------------------------------
    def flush(self, timeout: Optional[float] = None) -> None:
        """Block until every request submitted so far is resolved.

        Raises :class:`TimeoutError` if ``timeout`` seconds pass with
        futures still unresolved (naming how many) — a silent return
        would let a caller proceed believing the backlog is gone.  The
        still-pending futures are untouched: they resolve normally when
        their drains complete, and ``flush`` may simply be called again.
        """
        self._kick()
        with self._lock:
            outstanding = list(self._inflight)
        if outstanding:
            done, not_done = _wait(outstanding, timeout=timeout)
            if not_done:
                raise TimeoutError(
                    f"flush timed out after {timeout}s with "
                    f"{len(not_done)} request(s) still unresolved")

    def stats(self) -> ServiceStats:
        """A consistent snapshot of everything the service observes.

        Counters are copied under the service lock (drain workers mutate
        them concurrently); latency percentiles come from the recent
        sample window; ``plan_cache`` is the engine's process-global
        counter snapshot (see :meth:`plan_cache_stats`).
        """
        with self._lock:
            s = self._stats
            snap = ServiceStats(s.submitted, s.completed, s.failed,
                                s.cache_hits, s.batches, s.kernel_calls,
                                s.coalesced_calls, s.coalesced_sources,
                                s.deduplicated,
                                shed=s.shed, retries=s.retries,
                                deadline_expired=s.deadline_expired,
                                quarantined=s.quarantined,
                                degraded=s.degraded,
                                queue_depth_peak=self._depth_peak,
                                batch_size_hist=dict(self._batch_hist))
            lat = sorted(self._latencies)
            breakers = {f"{g}/{k}": br.state
                        for (g, k), br in self._breakers.items()}
        # queue / percentile / plan-cache reads take other locks — outside
        # ours (one-way lock ordering, no nesting)
        snap.queue_depth = len(self._queue)
        snap.latency_count = len(lat)
        snap.latency_p50 = _percentile(lat, 0.50)
        snap.latency_p95 = _percentile(lat, 0.95)
        snap.latency_p99 = _percentile(lat, 0.99)
        snap.breaker_states = breakers
        snap.plan_cache = engine.plancache.stats()
        return snap

    # ------------------------------------------------------------------
    # telemetry endpoint
    # ------------------------------------------------------------------
    def serve_telemetry(self, port: int = 0, host: str = "127.0.0.1", *,
                        trace_capacity: int = 64,
                        queue_depth_limit: Optional[int] = None):
        """Start the telemetry HTTP exporter for this service (idempotent).

        Binds ``host:port`` (``port=0`` → ephemeral; read ``server.port``)
        on a daemon thread serving:

        * ``/metrics`` — the process metric registry, Prometheus text;
        * ``/healthz`` — 200 while the drain pool is live, queue depth is
          within ``queue_depth_limit`` (when set; the admission bound is
          used otherwise), and no admission shedding happened within the
          last overload window — else 503 (see ``docs/RESILIENCE.md``);
        * ``/stats`` — :meth:`stats` as JSON;
        * ``/trace`` — the last ``trace_capacity`` request span trees as
          Chrome trace JSON (batches run under a service-owned collector
          whenever the submitter wasn't already tracing).

        Returns the live :class:`repro.obs.http.TelemetryServer`; stopped
        automatically by :meth:`shutdown`.
        """
        if self._telemetry_server is not None:
            return self._telemetry_server
        self._trace_ring = _obshttp.TraceRing(trace_capacity)
        self._queue_depth_limit = queue_depth_limit
        self._telemetry_server = _obshttp.start_server(
            host, port,
            healthz=self._healthz,
            stats=lambda: self.stats().to_dict(),
            trace_ring=self._trace_ring)
        return self._telemetry_server

    def _healthz(self):
        """``(ok, payload)`` for the ``/healthz`` route."""
        depth = len(self._queue)
        limit = self._queue_depth_limit
        if limit is None:
            limit = self._queue.maxsize
        if self._closed or getattr(self._executor, "_shutdown", False):
            return False, {"status": "shutdown", "queue_depth": depth}
        since_shed = time.monotonic() - self._last_shed
        if self._last_shed and since_shed < _OVERLOAD_WINDOW:
            return False, {"status": "overloaded", "queue_depth": depth,
                           "reason": "shedding",
                           "last_shed_s_ago": round(since_shed, 3)}
        if limit is not None and depth > limit:
            return False, {"status": "overloaded", "queue_depth": depth,
                           "queue_depth_limit": limit}
        payload = {"status": "ok", "queue_depth": depth}
        if limit is not None:
            payload["queue_depth_limit"] = limit
        return True, payload

    @staticmethod
    def plan_cache_stats():
        """Hit/miss/invalidation counters of the engine's keyed plan cache.

        The cache is engine-global (every drain worker's dispatches share
        it), so this is a process-wide snapshot, not a per-service one —
        the serving analogue of ``stats()`` for planner decisions.  The
        same counters stream as ``grb.telemetry`` events (``plan_cache``
        field on decision events, ``op="plancache"`` invalidations).
        """
        return engine.plancache.stats()

    def shutdown(self, wait: bool = True) -> None:
        self._closed = True
        self._executor.shutdown(wait=wait)
        # anything still queued lost its drain (e.g. an enqueue racing the
        # close): resolve, never abandon (Progress guarantee).  drain()
        # also wakes submitters blocked under the "block" policy.
        for req in self._queue.drain():
            self._resolve(req.future, False,
                          RuntimeError("service is shut down"))
        server = self._telemetry_server
        if server is not None:
            self._telemetry_server = None
            server.stop()

    def __enter__(self) -> "GraphService":
        return self

    def __exit__(self, *exc) -> None:
        self.flush()
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (f"GraphService(graphs={self.registry.names()}, "
                f"submitted={s.submitted}, batches={s.batches}, "
                f"cache_hits={s.cache_hits})")


_SENTINEL = object()
