"""Versioned graph registry.

The registry names the graphs a service instance answers queries about and
pins down *which contents* an answer was computed from.  Identity has two
components:

* **epoch** — bumped every time a name is (re)bound to a graph object, so a
  replaced graph can never collide with its predecessor's cache entries;
* **version** — the graph's own monotone
  :attr:`~repro.lagraph.graph.Graph.version`, bumped by
  ``invalidate_properties()`` whenever the adjacency is declared mutated.

``key(name, query)`` snapshots both into the memo-cache key.  All methods
are safe to call from any thread; mutation helpers run under the registry
lock so a mutator never interleaves with a concurrent snapshot.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from ..lagraph.graph import Graph

__all__ = ["GraphRegistry", "UnknownGraph"]


class UnknownGraph(KeyError):
    """Raised when a request names a graph the registry does not hold."""


class _RWLock:
    """A writer-preferring readers-writer lock (stdlib has none).

    Many kernel executions may read a graph concurrently; a mutation
    (``update``/``invalidate``/``register``) waits for readers to drain and
    excludes new ones, so a kernel can never observe a half-rewritten
    adjacency."""

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writers_waiting = 0
        self._writer = False

    @contextmanager
    def read(self):
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        with self._cond:
            self._writers_waiting += 1
            while self._writer or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


class GraphRegistry:
    """A named, versioned collection of :class:`~repro.lagraph.graph.Graph`."""

    def __init__(self):
        self._lock = threading.RLock()
        self._graphs: Dict[str, Graph] = {}
        self._epochs: Dict[str, int] = {}
        self._epoch_counter = 0
        self._rw = _RWLock()

    def reading(self):
        """Context manager: hold off mutations while a kernel reads.

        The service wraps every kernel execution in this; ``update`` /
        ``invalidate`` / ``register`` take the write side.  Code that
        mutates a graph *without* going through the registry must quiesce
        queries itself (the LAGraph non-opaque contract, one level up).
        """
        return self._rw.read()

    # ------------------------------------------------------------------
    # binding
    # ------------------------------------------------------------------
    def register(self, name: str, graph: Graph) -> "GraphRegistry":
        """Bind ``name`` to ``graph`` (rebinding starts a fresh epoch)."""
        if not isinstance(graph, Graph):
            raise TypeError(f"expected a lagraph.Graph, got {type(graph)!r}")
        with self._rw.write(), self._lock:
            self._epoch_counter += 1
            self._graphs[name] = graph
            self._epochs[name] = self._epoch_counter
        return self

    def register_if_absent(self, name: str, graph: Graph) -> bool:
        """Bind ``name`` to ``graph`` only if unbound; returns whether it
        bound.  One atomic check-and-bind under the registry locks — the
        primitive lazy (submit-side) registration needs so racing
        submitters agree on whichever binding landed first."""
        if not isinstance(graph, Graph):
            raise TypeError(f"expected a lagraph.Graph, got {type(graph)!r}")
        with self._rw.write(), self._lock:
            if name in self._graphs:
                return False
            self._epoch_counter += 1
            self._graphs[name] = graph
            self._epochs[name] = self._epoch_counter
            return True

    def unregister(self, name: str) -> None:
        with self._lock:
            self._graphs.pop(name, None)
            self._epochs.pop(name, None)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._graphs)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._graphs

    def __len__(self) -> int:
        with self._lock:
            return len(self._graphs)

    # ------------------------------------------------------------------
    # lookup / snapshotting
    # ------------------------------------------------------------------
    def get(self, name: str) -> Graph:
        with self._lock:
            try:
                return self._graphs[name]
            except KeyError:
                raise UnknownGraph(
                    f"no graph named {name!r} (have {sorted(self._graphs)})"
                ) from None

    def snapshot(self, name: str) -> Tuple[Graph, int, int]:
        """``(graph, epoch, version)`` under one lock acquisition."""
        with self._lock:
            g = self.get(name)
            return g, self._epochs[name], g.version

    def key(self, name: str, query: Optional[Hashable] = None) -> tuple:
        """The memo-cache key for ``query`` against today's ``name``."""
        g, epoch, version = self.snapshot(name)
        return (name, epoch, version, query)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def invalidate(self, name: str) -> int:
        """Declare ``name``'s adjacency mutated; returns the new version.

        Waits for in-flight kernel reads to drain first, so a result can
        never be computed half-before/half-after the version bump."""
        with self._rw.write(), self._lock:
            g = self.get(name)
            g.invalidate_properties()
            return g.version

    def update(self, name: str, mutator: Callable[[Graph], None]) -> int:
        """Run ``mutator(graph)`` then invalidate, atomically w.r.t. other
        registry calls *and* in-flight kernel reads.  Returns the new
        version."""
        with self._rw.write(), self._lock:
            g = self.get(name)
            mutator(g)
            g.invalidate_properties()
            return g.version

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            parts = ", ".join(
                f"{n}@v{self._graphs[n].version}" for n in sorted(self._graphs))
        return f"GraphRegistry({parts})"
