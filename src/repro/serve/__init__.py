"""``repro.serve`` — a concurrent graph-analytics serving engine.

The layer above :mod:`repro.lagraph` for throughput rather than
single-query latency: a :class:`GraphService` owns a versioned
:class:`GraphRegistry`, accepts analytics requests (BFS levels/parents,
SSSP, PageRank, connected components, triangle counts) from many callers,
coalesces same-graph single-source requests into **batched multi-source
kernels** (:func:`repro.lagraph.msbfs`, :func:`repro.lagraph.sssp_batch` —
the paper's Alg. 3 batching trick, Sec. IV-B, applied to serving), and
memoizes results in an LRU cache keyed by ``(graph epoch, graph version,
query)`` so entries die with the adjacency they were computed on.

Quick tour::

    from repro import serve
    from repro.gap import datasets

    svc = serve.GraphService(max_workers=4)
    svc.register("kron", datasets.build("kron", "tiny"))

    futs = svc.submit_many("kron", [serve.BFSLevels(s) for s in range(64)])
    levels = [f.result() for f in futs]        # one batched kernel sweep

    svc.invalidate("kron")                     # version bump: cache misses
    svc.query("kron", serve.TriangleCount())   # recomputed, re-memoized

Every answer is bit-identical to the direct ``repro.lagraph`` call named in
the query class's docstring.
"""

from .cache import CacheStats, LRUCache
from .coalesce import Batch, CoalescingQueue, PendingRequest, plan_batches
from .registry import GraphRegistry, UnknownGraph
from .requests import (
    BFSLevels,
    BFSParents,
    ConnectedComponents,
    PageRank,
    Query,
    SSSP,
    TriangleCount,
)
from . import resilience
from .resilience import (
    Cancelled,
    CircuitBreaker,
    CircuitOpen,
    DeadlineExceeded,
    DegradedResult,
    GraphValidationError,
    RetryPolicy,
    ServiceOverloaded,
    UnknownKernel,
)
from .service import GraphService, ServiceStats

__all__ = [
    "GraphService", "ServiceStats",
    "GraphRegistry", "UnknownGraph",
    "LRUCache", "CacheStats",
    "CoalescingQueue", "PendingRequest", "Batch", "plan_batches",
    "Query", "BFSLevels", "BFSParents", "SSSP",
    "PageRank", "ConnectedComponents", "TriangleCount",
    # resilience vocabulary (docs/RESILIENCE.md)
    "resilience", "RetryPolicy", "CircuitBreaker", "DegradedResult",
    "DeadlineExceeded", "Cancelled", "ServiceOverloaded", "CircuitOpen",
    "GraphValidationError", "UnknownKernel",
]
