"""Query vocabulary of the serving engine.

Every request to :class:`~repro.serve.service.GraphService` is a frozen
(hence hashable) dataclass describing one analytics question about one
graph.  The query object *is* the memo-cache key component — two requests
with equal fields are the same computation — and it knows how to execute
itself against a :class:`~repro.lagraph.graph.Graph`:

* :meth:`Query.run_direct` is the reference execution: exactly the call a
  user would make against :mod:`repro.lagraph` by hand.  Service results
  are defined to be identical to it.
* Single-source traversal queries (:class:`BFSLevels`, :class:`BFSParents`,
  :class:`SSSP`) additionally declare a *coalesce group* and a batched
  kernel: many same-graph queries of one group collapse into a single
  multi-source matrix sweep (``msbfs`` / ``sssp_batch``), whose rows are
  bit-identical to the per-source calls.
* Whole-graph queries (:class:`PageRank`, :class:`ConnectedComponents`,
  :class:`TriangleCount`) have no source axis; they are deduplicated and
  memoized but never batched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Optional, Sequence

import numpy as np

__all__ = [
    "Query", "BFSLevels", "BFSParents", "SSSP",
    "PageRank", "ConnectedComponents", "TriangleCount",
]


@dataclass(frozen=True)
class Query:
    """Base class: a hashable description of one analytics request."""

    #: Coalesce-group tag: queries on the same graph sharing a non-``None``
    #: tag may be answered by one batched kernel call.
    COALESCE: ClassVar[Optional[str]] = None

    def run_direct(self, g):
        """Execute against ``g`` exactly as a direct lagraph call would."""
        raise NotImplementedError

    def validate(self, g) -> None:
        """Raise the same errors a direct call would, before scheduling."""


@dataclass(frozen=True)
class _SingleSource(Query):
    """A query with a source-vertex axis — the batchable kind."""

    source: int = 0

    def validate(self, g) -> None:
        from .. import grb
        if not 0 <= int(self.source) < g.n:
            raise grb.IndexOutOfBounds(
                f"source {self.source} out of range [0, {g.n})")

    @staticmethod
    def run_batch(g, sources: Sequence[int]):
        """Batched kernel over ``sources``; returns an ``ns × n`` matrix."""
        raise NotImplementedError

    @staticmethod
    def extract_row(batch_result, row: int):
        """Row ``row`` of a batched result, as the single-source answer."""
        return batch_result.extract_row(row)


@dataclass(frozen=True)
class BFSLevels(_SingleSource):
    """BFS depths from ``source`` (sparse INT64 vector; source depth 0)."""

    COALESCE: ClassVar[Optional[str]] = "bfs_levels"

    def run_direct(self, g):
        from .. import lagraph as lg
        return lg.bfs_level(g, int(self.source))

    @staticmethod
    def run_batch(g, sources):
        from .. import lagraph as lg
        return lg.msbfs_levels(g, np.asarray(sources, dtype=np.int64))


@dataclass(frozen=True)
class BFSParents(_SingleSource):
    """BFS-tree parents from ``source`` (sparse INT64 vector)."""

    COALESCE: ClassVar[Optional[str]] = "bfs_parents"

    def run_direct(self, g):
        from .. import lagraph as lg
        return lg.bfs_parent_push(g, int(self.source))

    @staticmethod
    def run_batch(g, sources):
        from .. import lagraph as lg
        return lg.msbfs_parents(g, np.asarray(sources, dtype=np.int64))


@dataclass(frozen=True)
class SSSP(_SingleSource):
    """Shortest-path distances from ``source`` (sparse FP64 vector)."""

    COALESCE: ClassVar[Optional[str]] = "sssp"

    def run_direct(self, g):
        from .. import lagraph as lg
        return lg.sssp_bellman_ford(g, int(self.source))

    @staticmethod
    def run_batch(g, sources):
        from .. import lagraph as lg
        return lg.sssp_batch(g, np.asarray(sources, dtype=np.int64))


@dataclass(frozen=True)
class PageRank(Query):
    """PageRank scores; result is the ``(Vector, iterations)`` pair the
    Basic-mode :func:`repro.lagraph.pagerank` returns."""

    #: Variants the stack ships (``"gx"`` is the short alias the lagraph
    #: dispatcher accepts for ``"graphalytics"``).
    VARIANTS: ClassVar[tuple] = ("gap", "graphalytics", "gx")

    variant: str = "gap"
    damping: float = 0.85
    tol: float = 1e-4
    itermax: int = 100

    def validate(self, g) -> None:
        from .resilience import GraphValidationError, UnknownKernel
        if self.variant not in self.VARIANTS:
            raise UnknownKernel(
                f"unknown PageRank variant {self.variant!r}; "
                f"one of {self.VARIANTS}")
        if not 0.0 < float(self.damping) < 1.0:
            raise GraphValidationError(
                f"PageRank damping must be in (0, 1), got {self.damping}")
        if not float(self.tol) > 0.0:
            raise GraphValidationError(
                f"PageRank tol must be > 0, got {self.tol}")
        if int(self.itermax) < 1:
            raise GraphValidationError(
                f"PageRank itermax must be >= 1, got {self.itermax}")

    def run_direct(self, g):
        from .. import lagraph as lg
        return lg.pagerank(g, variant=self.variant, damping=self.damping,
                           tol=self.tol, itermax=self.itermax)


@dataclass(frozen=True)
class ConnectedComponents(Query):
    """Component labels (dense INT64 vector of representatives)."""

    def run_direct(self, g):
        from .. import lagraph as lg
        return lg.connected_components(g)


@dataclass(frozen=True)
class TriangleCount(Query):
    """Global triangle count (an ``int``)."""

    method: str = "sandia_lut"

    def validate(self, g) -> None:
        from ..lagraph.algorithms.tc import METHODS
        from .resilience import UnknownKernel
        if self.method not in METHODS:
            raise UnknownKernel(
                f"unknown TriangleCount method {self.method!r}; "
                f"one of {tuple(METHODS)}")

    def run_direct(self, g):
        from .. import lagraph as lg
        return lg.triangle_count_basic(g, method=self.method)
