"""Resilience primitives for the serving layer.

Four defenses, composed by :class:`~repro.serve.service.GraphService`
(see ``docs/RESILIENCE.md`` for the operator's view):

* **Deadlines** — requests resolve with
  :class:`~repro.grb.cancel.DeadlineExceeded` when their budget runs
  out; kernels abort cooperatively via :mod:`repro.grb.cancel`
  checkpoints.
* **Admission control** — the coalescing queue is bounded; over the
  bound, :data:`POLICY_REJECT` fails the new request,
  :data:`POLICY_DROP_OLDEST` sheds the oldest queued one, and
  :data:`POLICY_BLOCK` backpressures the submitter.  Shed requests
  resolve with :class:`ServiceOverloaded`.
* **Retries** — :class:`RetryPolicy` classifies retryable faults and
  produces capped exponential backoff with seeded jitter.
* **Circuit breaking** — :class:`CircuitBreaker` per (graph, kernel)
  opens after repeated failures; while open the service answers from
  stale memo entries wrapped in :class:`DegradedResult` (or fails fast
  with :class:`CircuitOpen`), and a half-open trial closes it again
  after the reset timeout.

Metric surfaces (always-on, per the obs gating rules)::

    grb_serve_shed_total{policy}       requests shed by admission control
    grb_serve_retries_total            kernel-unit retry attempts
    grb_serve_breaker_state{graph,kernel}   0 closed / 1 open / 2 half-open
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Optional

from ..grb.cancel import Cancelled, DeadlineExceeded
from ..obs import metrics as _metrics

__all__ = [
    "DeadlineExceeded", "Cancelled",
    "ServiceOverloaded", "CircuitOpen", "GraphValidationError",
    "UnknownKernel", "DegradedResult",
    "ADMISSION_POLICIES", "POLICY_REJECT", "POLICY_DROP_OLDEST",
    "POLICY_BLOCK",
    "RetryPolicy", "CircuitBreaker",
    "BREAKER_CLOSED", "BREAKER_OPEN", "BREAKER_HALF_OPEN",
]

# always-on resilience metrics (names fixed by docs/OBSERVABILITY.md)
_SHED = _metrics.counter(
    "grb_serve_shed_total", "Requests shed by admission control",
    labels=("policy",))
_RETRIES = _metrics.counter(
    "grb_serve_retries_total", "Serve kernel-unit retry attempts")
_BREAKER_STATE = _metrics.gauge(
    "grb_serve_breaker_state",
    "Circuit-breaker state (0 closed, 1 open, 2 half-open)",
    labels=("graph", "kernel"))


# ---------------------------------------------------------------------------
# exceptions / result wrappers
# ---------------------------------------------------------------------------
class ServiceOverloaded(RuntimeError):
    """The request was shed by admission control (bounded queue full)."""


class CircuitOpen(RuntimeError):
    """The (graph, kernel) circuit breaker is open and no stale memoized
    result was available to degrade to."""


class GraphValidationError(ValueError):
    """A graph or query failed serve-side validation (non-finite edge
    weights, out-of-range parameters, ...) before any kernel ran."""


class UnknownKernel(GraphValidationError):
    """A query names a kernel variant/method the stack does not ship."""


class DegradedResult:
    """A stale memoized answer served while a circuit breaker is open.

    Wraps the cached value so callers can *tell* they got degraded data:
    ``fut.result()`` returns a ``DegradedResult`` whose ``value`` is the
    stale answer and whose ``(epoch, version)`` says how stale.  Callers
    that never trip breakers never see this type.
    """

    __slots__ = ("value", "epoch", "version")

    def __init__(self, value, epoch: int, version: int):
        self.value = value
        self.epoch = epoch
        self.version = version

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"DegradedResult(epoch={self.epoch}, "
                f"version={self.version}, value={self.value!r})")


# ---------------------------------------------------------------------------
# admission control vocabulary
# ---------------------------------------------------------------------------
POLICY_REJECT = "reject"
POLICY_DROP_OLDEST = "drop-oldest"
POLICY_BLOCK = "block"
ADMISSION_POLICIES = (POLICY_REJECT, POLICY_DROP_OLDEST, POLICY_BLOCK)


def count_shed(policy: str, n: int = 1) -> None:
    """Bump the always-on shed counter (callers also track per-service
    counts in ``ServiceStats``)."""
    if _metrics.ENABLED:
        _SHED.labels(policy).inc(n)


def count_retry(n: int = 1) -> None:
    """Bump the always-on retry counter."""
    if _metrics.ENABLED:
        _RETRIES.inc(n)


# ---------------------------------------------------------------------------
# retries
# ---------------------------------------------------------------------------
class RetryPolicy:
    """Capped exponential backoff with seeded jitter.

    ``attempts`` is the total number of tries for one kernel unit (1 =
    no retries).  Backoff before retry ``k`` (k = 1 is the first retry)
    is ``min(cap, base * 2**(k-1))`` plus uniform jitter in
    ``[0, jitter_frac]`` of that — jitter comes from ``Random(seed)`` so
    chaos runs replay deterministically.

    What is *retryable*: exceptions whose ``retryable`` attribute is
    true (:class:`repro.testing.faults.TransientFault`, and anything a
    deployment marks likewise), plus ``ConnectionError``/``OSError``
    transients.  Deadlines, cancellation, and validation errors are
    never retried.
    """

    def __init__(self, attempts: int = 3, base: float = 0.01,
                 cap: float = 0.25, jitter_frac: float = 0.5,
                 seed: int = 0,
                 classify: Optional[Callable[[BaseException], bool]] = None):
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        self.attempts = int(attempts)
        self.base = float(base)
        self.cap = float(cap)
        self.jitter_frac = float(jitter_frac)
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()
        self._classify = classify

    def retryable(self, exc: BaseException) -> bool:
        if isinstance(exc, (DeadlineExceeded, Cancelled)):
            return False
        if self._classify is not None:
            return bool(self._classify(exc))
        if getattr(exc, "retryable", False):
            return True
        return isinstance(exc, (ConnectionError, TimeoutError)) \
            and not isinstance(exc, DeadlineExceeded)

    def backoff(self, retry_number: int) -> float:
        """Seconds to sleep before retry ``retry_number`` (1-based)."""
        delay = min(self.cap, self.base * (2.0 ** (retry_number - 1)))
        with self._rng_lock:
            return delay * (1.0 + self._rng.uniform(0.0, self.jitter_frac))


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

_STATE_CODES = {BREAKER_CLOSED: 0, BREAKER_OPEN: 1, BREAKER_HALF_OPEN: 2}


class CircuitBreaker:
    """A per-(graph, kernel) failure fuse.

    ``failure_threshold`` *consecutive* kernel-unit failures open the
    breaker; while open, :meth:`allow` returns ``False`` (the service
    degrades or fails fast without running the kernel).  After
    ``reset_timeout`` seconds one half-open trial is admitted: its
    success closes the breaker, its failure re-opens it for another full
    timeout.  ``clock`` is injectable for tests.
    """

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout: float = 30.0, *,
                 graph: str = "?", kernel: str = "?",
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self.graph = graph
        self.kernel = kernel
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._failures = 0          # consecutive failures while closed
        self._opened_at = 0.0
        self._trial_inflight = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._probe_locked()

    def _probe_locked(self) -> str:
        if (self._state == BREAKER_OPEN
                and self._clock() - self._opened_at >= self.reset_timeout):
            self._state = BREAKER_HALF_OPEN
            self._trial_inflight = False
            self._publish(BREAKER_HALF_OPEN)
        return self._state

    def allow(self) -> bool:
        """May a kernel unit run now?  At most one trial is admitted in
        the half-open state; concurrent units see ``False`` until the
        trial reports."""
        with self._lock:
            state = self._probe_locked()
            if state == BREAKER_CLOSED:
                return True
            if state == BREAKER_HALF_OPEN and not self._trial_inflight:
                self._trial_inflight = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._trial_inflight = False
            if self._state != BREAKER_CLOSED:
                self._state = BREAKER_CLOSED
                self._publish(BREAKER_CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            state = self._probe_locked()
            if state == BREAKER_HALF_OPEN:
                # failed trial: re-open for another full timeout
                self._state = BREAKER_OPEN
                self._opened_at = self._clock()
                self._trial_inflight = False
                self._publish(BREAKER_OPEN)
                return
            self._failures += 1
            if (state == BREAKER_CLOSED
                    and self._failures >= self.failure_threshold):
                self._state = BREAKER_OPEN
                self._opened_at = self._clock()
                self._publish(BREAKER_OPEN)

    def _publish(self, state: str) -> None:
        if _metrics.ENABLED:
            _BREAKER_STATE.labels(self.graph, self.kernel).set(
                _STATE_CODES[state])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CircuitBreaker({self.graph}/{self.kernel}, "
                f"state={self.state}, failures={self._failures})")
