"""Sparse matrix (``GrB_Matrix`` equivalent).

Storage model
-------------
Entries live in a pluggable *store* (:mod:`repro.grb.storage`): CSR (the
reference format), CSC (native pull direction / free transpose), bitmap
(dense flag+value grid) or hypersparse (row-pointer compression).  The
``indptr`` / ``indices`` / ``values`` attributes of the seed implementation
survive as properties reading the store's *canonical CSR view* — int64,
per-row sorted, duplicate-free — so every consumer sees bit-identical
structure whatever the active format.  The format itself is chosen by
:mod:`repro.grb.storage.policy` at mutation boundaries, or pinned with
:meth:`Matrix.set_format`.

Three lazily built caches are maintained and invalidated on mutation:

* a SciPy ``csr_matrix`` view sharing the canonical buffers (zero-copy) —
  used by the plus.times-reducible matmul fast path;
* the transpose (mirrors LAGraph's cached ``G->AT``), built from the
  store's cached CSC arrays — free when the store *is* CSC;
* the linearised COO key array ``i * ncols + j`` — used for mask resolution
  and element-wise merges.

``setElement`` (``C[i, j] = s``) follows the spec's *blocking mode*: calls
are staged and the store is rebuilt once, at the next read — n staged
insertions cost one O(nnz + n log n) flush instead of n O(nnz) rebuilds.

As with :class:`~repro.grb.vector.Vector`, internals are intentionally
non-opaque (LAGraph design, Sec. II-A).
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np
import scipy.sparse as sp

from . import types as _types
from ..obs import memory as _obsmem
from ..obs import metrics as _metrics
from ._kernels import apply_select as _selectops
from ._kernels.ewise import merge_objects, union_merge
from .errors import DimensionMismatch, IndexOutOfBounds, InvalidValue, NoValue
from .ops.binary import BinaryOp
from .ops.monoid import Monoid
from .ops.unary import UnaryOp
from .storage import policy as _policy
from .storage.csr import CSRStore
from .types import Type, from_dtype
from .vector import Vector

__all__ = ["Matrix"]

_uids = itertools.count()


class Matrix:
    """A sparse matrix of a fixed :class:`~repro.grb.types.Type` and shape."""

    __slots__ = ("nrows", "ncols", "type", "_store", "_format",
                 "_scipy", "_pattern_scipy", "_vals_positive", "_vals_finite",
                 "_transpose", "_keys", "_pending", "_uid", "_version",
                 "_lineage", "_expr", "_expr_reads", "__weakref__")

    def __init__(self, typ, nrows: int, ncols: int):
        self.type = typ if isinstance(typ, Type) else from_dtype(typ)
        if nrows < 0 or ncols < 0:
            raise DimensionMismatch(f"negative dimensions ({nrows}, {ncols})")
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self._store = CSRStore.empty(self.nrows, self.ncols, self.type.dtype)
        self._format = "auto"
        self._scipy = None
        self._pattern_scipy = None
        self._vals_positive = None
        self._vals_finite = None
        self._transpose = None
        self._keys = None
        self._pending = None
        self._uid = next(_uids)        # process-unique, never reused
        self._version = 0              # store version: bumps on mutation
        self._lineage = None           # derivation signature (plan cache)
        self._expr = None              # pending lazy producer (grb.expr)
        self._expr_reads = None        # pending lazy readers (grb.expr)

    def _force_lazy_state(self):
        """The *mutation* boundary: materialise the pending producer AND
        every pending recorded reader of this matrix, so an eager
        in-place change can never retroactively alter what an
        already-recorded call computes (blocking-mode semantics)."""
        node = self._expr
        if node is not None:
            node.force()
        reads = self._expr_reads
        if reads is not None:
            self._expr_reads = None
            for n in reads:
                n.force_pending()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, rows, cols, values, nrows: int, ncols: int,
                 typ=None, dup_op: Optional[BinaryOp] = None) -> "Matrix":
        """Build from tuples (``C ↤ {i, j, x}``).

        Duplicates are an error unless ``dup_op`` combines them.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values)
        if np.isscalar(values) or values.ndim == 0:
            values = np.full(rows.shape, values)
        if not (rows.shape == cols.shape == values.shape):
            raise DimensionMismatch("rows/cols/values must have equal length")
        if typ is None:
            typ = from_dtype(values.dtype)
        elif not isinstance(typ, Type):
            typ = from_dtype(typ)
        if rows.size:
            if rows.min() < 0 or rows.max() >= nrows:
                raise IndexOutOfBounds("row index out of range")
            if cols.min() < 0 or cols.max() >= ncols:
                raise IndexOutOfBounds("column index out of range")
        keys = rows * np.int64(ncols) + cols
        order = np.argsort(keys, kind="stable")
        sk = keys[order]
        sv = values[order].astype(typ.dtype, copy=False)
        dup = np.zeros(sk.size, dtype=bool)
        if sk.size:
            np.equal(sk[1:], sk[:-1], out=dup[1:])
        if dup.any():
            if dup_op is None:
                raise ValueError("duplicate (row, col) pairs without dup_op")
            starts = np.flatnonzero(~dup)
            out_vals = sv[starts].copy()
            rest = np.flatnonzero(dup)
            group = np.searchsorted(starts, rest, side="right") - 1
            for pos, g in zip(rest, group):  # rare path
                out_vals[g] = dup_op(out_vals[g], sv[pos])
            sk = sk[starts]
            sv = out_vals.astype(typ.dtype, copy=False)
        m = cls(typ, nrows, ncols)
        m._set_from_keys(sk, sv)
        return m

    @classmethod
    def from_scipy(cls, a, typ=None) -> "Matrix":
        """Build from any SciPy sparse matrix (copied, canonicalised)."""
        a = sp.csr_matrix(a)
        if not a.data.flags.writeable:   # e.g. a frozen canonical-view wrap
            a = a.copy()
        a.sort_indices()
        a.sum_duplicates()
        if typ is None:
            typ = from_dtype(a.dtype)
        elif not isinstance(typ, Type):
            typ = from_dtype(typ)
        m = cls(typ, a.shape[0], a.shape[1])
        m.indptr = a.indptr.astype(np.int64)
        m.indices = a.indices.astype(np.int64)
        m.values = a.data.astype(typ.dtype, copy=False)
        return m

    @classmethod
    def from_dense(cls, arr, keep_zeros: bool = False) -> "Matrix":
        """Build from a dense 2-D array; zeros are dropped unless kept."""
        arr = np.asarray(arr)
        if arr.ndim != 2:
            raise DimensionMismatch("from_dense requires a 2-D array")
        if keep_zeros:
            r, c = np.nonzero(np.ones(arr.shape, dtype=bool))
        else:
            r, c = np.nonzero(arr)
        return cls.from_coo(r, c, arr[r, c], arr.shape[0], arr.shape[1])

    @classmethod
    def from_diag(cls, v: Vector) -> "Matrix":
        """Diagonal matrix from a vector's entries."""
        m = cls(v.type, v.size, v.size)
        idx, vals = v.to_coo()
        keys = idx * np.int64(v.size) + idx
        m._set_from_keys(keys, vals)
        return m

    def dup(self) -> "Matrix":
        """``C ↤ A``: an independent copy (same format, same pin).

        The copy carries the source's plan signature: its content is
        bit-identical to the source at this version, so plans cached
        against the source stay valid for the copy (until it mutates).
        """
        m = Matrix(self.type, self.nrows, self.ncols)
        m._store = self._S().copy()
        m._format = self._format
        ident, version = self._plan_sig()
        m._set_lineage(ident, version, permanent=True)
        if _metrics.ENABLED:
            _obsmem.account(m, m._store)
        return m

    # ------------------------------------------------------------------
    # storage plumbing
    # ------------------------------------------------------------------
    @property
    def format(self) -> str:
        """The active storage format (``csr``/``csc``/``bitmap``/``hypersparse``)."""
        return self._S().fmt

    @property
    def format_pin(self) -> str:
        """The requested format: a concrete name, or ``"auto"`` (policy)."""
        return self._format

    def set_format(self, fmt: str) -> "Matrix":
        """Pin the storage format (or ``"auto"`` to re-enable the policy).

        Converts immediately; subsequent rebuilds keep the pinned format.
        Results are unaffected — only the layout (and therefore which kernel
        fast paths apply) changes.
        """
        if fmt not in _policy.MATRIX_FORMATS and fmt != "auto":
            raise InvalidValue(
                f"unknown matrix format {fmt!r}; one of "
                f"{_policy.MATRIX_FORMATS + ('auto',)}")
        self._flush_pending()
        indptr, indices, values = self._store.csr()
        self._format = fmt
        if fmt == "auto":
            fmt = _policy.select_matrix_format(
                self.nrows, self.ncols, indices.size,
                self._store.live_row_count())
        if fmt != self._store.fmt:
            self._store = _policy.matrix_store_from_csr(
                fmt, indptr, indices, values, self.nrows, self.ncols)
            self._scipy = None
            self._transpose = None
            self._version += 1   # layout changes which rule fast paths apply
            if _metrics.ENABLED:
                _obsmem.account(self, self._store)
        return self

    def _S(self):
        """The active store, with staged ``setElement`` calls flushed."""
        self._flush_pending()
        return self._store

    def _csr_store_for_write(self):
        """A CSRStore ready for wholesale array assignment.

        Staged ``setElement`` calls are flushed first (they happened before
        the assignment, so sequential semantics says they apply first —
        matching the seed's eager path)."""
        self._force_lazy_state()    # recorded readers see the prior arrays
        self._flush_pending()
        st = self._store
        if type(st) is not CSRStore:
            st = CSRStore.from_csr(*st.csr(), st.nrows, st.ncols)
            self._store = st
        st._csc = None
        self._invalidate()
        return st

    @property
    def indptr(self) -> np.ndarray:
        """Canonical CSR row pointers (int64, ``nrows + 1``)."""
        self._flush_pending()
        return self._store.csr()[0]

    @indptr.setter
    def indptr(self, arr):
        st = self._csr_store_for_write()
        st.indptr = arr
        if _metrics.ENABLED:
            _obsmem.account(self, st)

    @property
    def indices(self) -> np.ndarray:
        """Canonical CSR column ids (sorted within each row, unique)."""
        self._flush_pending()
        return self._store.csr()[1]

    @indices.setter
    def indices(self, arr):
        st = self._csr_store_for_write()
        st.indices = arr
        if _metrics.ENABLED:
            _obsmem.account(self, st)

    @property
    def values(self) -> np.ndarray:
        """Values aligned with :attr:`indices`."""
        self._flush_pending()
        return self._store.csr()[2]

    @values.setter
    def values(self, arr):
        st = self._csr_store_for_write()
        st.values = arr
        if _metrics.ENABLED:
            _obsmem.account(self, st)

    # ------------------------------------------------------------------
    # internal plumbing
    # ------------------------------------------------------------------
    def _set_from_keys(self, keys: np.ndarray, vals: np.ndarray,
                       typ: Optional[Type] = None):
        """Rebuild storage from sorted/unique linearised keys (takes
        ownership).  This is the mutation/kernel boundary where the
        auto-format policy observes density and live rows."""
        if typ is not None:
            self.type = typ
        keys = keys.astype(np.int64, copy=False)
        ncols = np.int64(self.ncols) if self.ncols else np.int64(1)
        rows = keys // ncols
        cols = keys - rows * ncols
        counts = np.bincount(rows, minlength=self.nrows) if keys.size else \
            np.zeros(self.nrows, dtype=np.int64)
        indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        indices = cols.astype(np.int64, copy=False)
        values = vals.astype(self.type.dtype, copy=False)
        fmt = self._format
        if fmt == "auto":
            fmt = _policy.select_matrix_format(
                self.nrows, self.ncols, keys.size,
                _policy.observed_live_rows(counts))
        self._store = _policy.matrix_store_from_keys(
            fmt, keys, counts, indptr, indices, values,
            self.nrows, self.ncols)
        self._invalidate()
        self._keys = keys
        if _metrics.ENABLED:
            _obsmem.account(self, self._store)

    def _invalidate(self):
        self._scipy = None
        self._pattern_scipy = None
        self._vals_positive = None
        self._vals_finite = None
        self._transpose = None
        self._keys = None
        self._version += 1    # any memoization keyed on the old version dies

    # ------------------------------------------------------------------
    # plan-cache signatures (see repro.grb.engine.plancache)
    # ------------------------------------------------------------------
    @property
    def store_version(self) -> int:
        """Monotone content/layout version (bumps on every mutation)."""
        self._flush_pending()
        return self._version

    def _plan_sig(self):
        """``(ident, version)`` for plan-cache keys.

        The identity is this object's process-unique uid — or, for an
        object derived deterministically from others (``pattern()``,
        ``tril``, the cached transpose, …) that has not been mutated
        since, its *lineage*: the derivation name plus the parents'
        signatures.  Lineage is what lets a repeated query that rebuilds
        its working matrices from the same source hit the cache.
        """
        self._flush_pending()
        lin = self._lineage
        if lin is not None:
            if lin[0] == self._version:
                return lin[1], lin[2]
            if lin[3]:
                # identity alias (dup): the ident outlives mutation so a
                # stale cache entry is *found* and invalidated rather than
                # orphaned under a brand-new uid.  The version diverges
                # into a per-object namespace — a tuple carrying this
                # object's uid can never collide with the source's integer
                # versions or another alias's divergence.
                return lin[1], ("~", self._uid, self._version)
        return ("M", self._uid), self._version

    def _set_lineage(self, ident, version, permanent=False):
        """Tag this object as a deterministic derivation (valid until the
        next mutation).  ``ident`` may hold live operator/thunk objects —
        identity-hashed and pinned by the tuple, so it can never be
        confused with a different operator reusing the same name.
        ``permanent=True`` (``dup``) keeps the *ident* as an alias even
        after mutation; only the version diverges."""
        self._lineage = (self._version, ident, version, permanent)
        return self

    def keys(self) -> np.ndarray:
        """Sorted linearised COO keys ``i * ncols + j`` (cached)."""
        self._flush_pending()
        if self._keys is None:
            st = self._store
            self._keys = (st.entry_rows() * np.int64(self.ncols)
                          + st.csr()[1])
        return self._keys

    def _mask_keys_values(self):
        return self.keys(), self.values

    def _mask_present_dense(self):
        """Flat (present, dense) arrays when the store is bitmap, else None.

        The masked write-back uses this for O(1)-per-key membership instead
        of sorted-key searches (shared protocol with Vector).
        """
        st = self._S()
        if st.fmt == "bitmap":
            return st.present_dense()
        return None

    def to_scipy(self) -> sp.csr_matrix:
        """Zero-copy SciPy CSR view of the canonical arrays (cached).

        Boolean matrices are exposed with their native dtype; SciPy handles
        bool CSR for structural operations but matmuls cast first (see
        :mod:`repro.grb.operations`).
        """
        self._flush_pending()
        if self._scipy is None:
            self._scipy = sp.csr_matrix(
                (self.values, self.indices, self.indptr),
                shape=(self.nrows, self.ncols),
            )
        return self._scipy

    def pattern_operand(self, dtype) -> sp.csr_matrix:
        """All-ones SciPy CSR sharing this matrix's canonical structure.

        The matmul fast path substitutes this for an operand whose values
        the multiply ignores (``pair``, the pattern side of ``first`` /
        ``second``) and for cancellation-proof structure products.  Cached
        per store version and dtype — repeated masked multiplies against
        the same operand stop paying a fresh ones-array + CSR construction
        per call (see :mod:`repro.grb.operations`).
        """
        self._flush_pending()
        dt = np.dtype(dtype)
        cache = self._pattern_scipy
        if cache is None:
            cache = self._pattern_scipy = {}
        s = cache.get(dt)
        if s is None:
            s = sp.csr_matrix(
                (np.ones(self.nvals, dtype=dt), self.indices, self.indptr),
                shape=(self.nrows, self.ncols),
            )
            cache[dt] = s
        return s

    def values_all_ge_one(self) -> bool:
        """Whether this is a floating matrix with every value ≥ 1 (cached).

        Lets the matmul fast path skip its cancellation-proof pattern pass:
        IEEE sums and products of float terms that are each ≥ 1 are
        themselves ≥ 1 (an overflow lands on ``inf``, still nonzero), so no
        product entry can collapse to an explicit zero SciPy would prune.
        Mere positivity is NOT enough — tiny positive products underflow to
        exact 0.0 — and integer wrapping can hit 0, hence the ≥ 1 /
        floating restriction.  Recomputed lazily after any mutation (the
        cache dies with the store version).
        """
        self._flush_pending()   # staged writes invalidate through the flush
        if self._vals_positive is None:
            v = self.values
            self._vals_positive = bool(
                np.issubdtype(v.dtype, np.floating)
                and (v.size == 0 or (v >= 1).all()))
        return self._vals_positive

    def values_all_finite(self) -> bool:
        """Whether every stored value is finite (cached per store version).

        The guard that lets ``times``/``first`` multiplies take the fused
        dense-accumulate path: the fused form adds the *full* dense product,
        whose off-structure positions are sums of ``a_ij · 0`` terms (the
        vector's absent entries carry 0 in its bitmap) — exactly 0 when
        every stored ``a_ij`` is finite, but NaN the moment one is ±inf
        (``inf · 0``), which is the edge that kept the rule pattern-only.
        Bool/integer matrices are finite by construction; floats are
        scanned once and the answer dies with the store version.
        """
        self._flush_pending()
        if self._vals_finite is None:
            v = self.values
            self._vals_finite = bool(
                not np.issubdtype(v.dtype, np.floating)
                or v.size == 0 or np.isfinite(v).all())
        return self._vals_finite

    # ------------------------------------------------------------------
    # basic properties & access
    # ------------------------------------------------------------------
    @property
    def nvals(self) -> int:
        return self._S().nvals

    @property
    def shape(self):
        return (self.nrows, self.ncols)

    @property
    def dtype(self) -> np.dtype:
        return self.type.dtype

    def to_coo(self):
        """``{i, j, x} ↤ A``: copies of row/col/value arrays."""
        st = self._S()
        return st.entry_rows(), self.indices.copy(), self.values.copy()

    def to_dense(self, fill=0) -> np.ndarray:
        out = np.full((self.nrows, self.ncols), fill, dtype=self.type.dtype)
        out[self._S().entry_rows(), self.indices] = self.values
        return out

    def clear(self):
        """Remove all entries (shape, type and format pin unchanged)."""
        self._force_lazy_state()    # recorded producer/readers come first
        self._pending = None
        self._store = CSRStore.empty(self.nrows, self.ncols, self.type.dtype)
        self._invalidate()
        if _metrics.ENABLED:
            _obsmem.account(self, self._store)

    def get(self, i: int, j: int, default=None):
        """Value at ``(i, j)`` or ``default`` when absent."""
        i, j = int(i), int(j)
        if not (0 <= i < self.nrows and 0 <= j < self.ncols):
            raise IndexOutOfBounds(f"({i}, {j}) out of range {self.shape}")
        st = self._S()
        if st.fmt == "bitmap":
            present, dense = st.present_dense()
            key = i * self.ncols + j
            return dense[key] if present[key] else default
        indptr, indices, values = st.csr()
        lo, hi = indptr[i], indptr[i + 1]
        pos = lo + np.searchsorted(indices[lo:hi], j)
        if pos < hi and indices[pos] == j:
            return values[pos]
        return default

    def __getitem__(self, ij):
        """``s = A(i, j)``: extractElement; :class:`NoValue` when absent."""
        sentinel = object()
        out = self.get(*ij, default=sentinel)
        if out is sentinel:
            raise NoValue(f"no entry at {ij}")
        return out

    def __setitem__(self, ij, value):
        """``C(i, j) = s``: setElement, staged (GraphBLAS blocking mode).

        The entry is queued and the store is rebuilt lazily at the next
        read; a burst of n calls costs one flush instead of n per-call
        ``indptr`` rebuilds.  Within a burst, the last write to a position
        wins — exactly the sequential semantics of the eager path.
        """
        i, j = int(ij[0]), int(ij[1])
        if not (0 <= i < self.nrows and 0 <= j < self.ncols):
            raise IndexOutOfBounds(f"({i}, {j}) out of range {self.shape}")
        # sequential semantics: the lazy producer and any recorded
        # readers of the current contents come first
        self._force_lazy_state()
        if self._pending is None:
            self._pending = []
        self._pending.append((i * self.ncols + j, value))

    def setelement(self, i: int, j: int, value):
        """``GrB_Matrix_setElement`` by name (stages like ``C[i, j] = s``)."""
        self[i, j] = value

    def _flush_pending(self):
        """Materialise pending state: the lazy producer, then staged writes.

        Every read path funnels through here (directly or via ``_S``), so
        this is the matrix's *read boundary*: a producer recorded in a
        :func:`repro.grb.expr.deferred` scope is forced first (its ready
        subgraph executes), then staged ``setElement`` calls apply in one
        batched rebuild.
        """
        node = self._expr
        if node is not None:
            node.force()
        if not self._pending:
            return
        pending = self._pending
        self._pending = None
        pk = np.array([k for k, _ in pending], dtype=np.int64)
        pv = np.array([v for _, v in pending]).astype(self.type.dtype,
                                                      copy=False)
        # last call per position wins
        order = np.argsort(pk, kind="stable")
        pk = pk[order]
        pv = pv[order]
        last = np.ones(pk.size, dtype=bool)
        last[:-1] = pk[1:] != pk[:-1]
        pk = pk[last]
        pv = pv[last]
        st = self._store
        rows = st.entry_rows()
        keys = rows * np.int64(self.ncols) + st.csr()[1]
        merged_keys, merged_vals = union_merge(
            keys, st.csr()[2], pk, pv, lambda old, new: new)
        self._set_from_keys(merged_keys, merged_vals)

    def row(self, i: int):
        """Stored (column indices, values) of row ``i`` — zero-copy views."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.values[lo:hi]

    def extract_row(self, i: int) -> Vector:
        """``w = A(i, :)ᵀ``: row ``i`` as a vector."""
        cols, vals = self.row(i)
        w = Vector(self.type, self.ncols)
        w._set_sparse(cols.copy(), vals.copy())
        return w

    def extract_col(self, j: int) -> Vector:
        """``w = A(:, j)``: column ``j`` as a vector (via cached transpose)."""
        return self.T.extract_row(j)

    def extract(self, rows, cols) -> "Matrix":
        """``C = A(i, j)``: the induced submatrix (Sec. III-B-d).

        Row ``r`` of the result is row ``rows[r]`` of ``A`` restricted to the
        columns listed in ``cols`` (in that order).
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        sub = self.to_scipy()[rows][:, cols]
        out = Matrix.from_scipy(sub, typ=self.type)
        ident, version = self._plan_sig()
        return out._set_lineage(
            ("extract", rows.size, hash(rows.tobytes()),
             cols.size, hash(cols.tobytes()), ident), version)

    # ------------------------------------------------------------------
    # structural operations
    # ------------------------------------------------------------------
    @property
    def T(self) -> "Matrix":
        """``Aᵀ`` (cached; the cache is the analogue of ``G->AT``).

        Built from the store's CSC arrays — a cached conversion for CSR
        stores, and a plain memcpy for matrices pinned to CSC.  The
        returned matrix owns *copies*: writing into it can never corrupt
        this matrix's storage (it desyncs only the copy, as in the seed).
        """
        self._flush_pending()
        if self._transpose is None:
            tip, tix, tvals = self._store.transpose_csr()
            t = Matrix(self.type, self.ncols, self.nrows)
            t.indptr = tip.copy()
            t.indices = tix.copy()
            t.values = tvals.copy()
            ident, version = self._plan_sig()
            t._set_lineage(("T", ident), version)
            self._transpose = t
        return self._transpose

    def transpose(self) -> "Matrix":
        """A fresh transposed copy (never the cached object)."""
        return self.T.dup()

    def pattern(self, typ: Type = _types.BOOL) -> "Matrix":
        """``LAGraph_Pattern``: structure-only copy with unit values."""
        m = Matrix(typ, self.nrows, self.ncols)
        m.indptr = self.indptr.copy()
        m.indices = self.indices.copy()
        m.values = np.ones(self.indices.size, dtype=typ.dtype)
        ident, version = self._plan_sig()
        return m._set_lineage(("pattern", typ.name, ident), version)

    def select(self, op, thunk=None) -> "Matrix":
        """``A⟨f(A, k)⟩``: keep entries satisfying the predicate.

        Value-only predicates skip the per-entry row expansion entirely —
        the format-aware fast path in
        :mod:`repro.grb._kernels.apply_select`.
        """
        if isinstance(op, str):
            op = _selectops.by_name(op)
        st = self._S()
        keep = _selectops.eval_select(op, st.csr()[2], st, thunk)
        out = Matrix(self.type, self.nrows, self.ncols)
        out._set_from_keys(self.keys()[keep], self.values[keep])
        try:
            hash(thunk)
        except TypeError:
            return out     # unhashable thunk: no derivation signature
        ident, version = self._plan_sig()
        return out._set_lineage(("select", op, thunk, ident), version)

    def tril(self, k: int = 0) -> "Matrix":
        """``L = tril(A)``: entries on/below diagonal ``k``."""
        return self.select(_selectops.TRIL, k)

    def triu(self, k: int = 0) -> "Matrix":
        """``U = triu(A)``: entries on/above diagonal ``k``."""
        return self.select(_selectops.TRIU, k)

    def offdiag(self) -> "Matrix":
        """Drop diagonal entries (LAGraph requires ndiag == 0 for TC)."""
        return self.select(_selectops.OFFDIAG, 0)

    def ndiag(self) -> int:
        """Number of stored diagonal entries."""
        return int((self._S().entry_rows() == self.indices).sum())

    def apply(self, op: UnaryOp, thunk=None) -> "Matrix":
        """``f(A, k)``: apply a unary op to every entry."""
        vals = _selectops.eval_unary(
            op, self.values, thunk, rows=lambda: self._S().entry_rows(),
            cols=lambda: self.indices)
        out = Matrix(from_dtype(vals.dtype), self.nrows, self.ncols)
        out.indptr = self.indptr.copy()
        out.indices = self.indices.copy()
        out.values = vals
        return out

    # ------------------------------------------------------------------
    # element-wise (unmasked conveniences)
    # ------------------------------------------------------------------
    def _ewise_lineage(self, other: "Matrix", op, tag: str,
                       out: "Matrix") -> "Matrix":
        a_ident, a_version = self._plan_sig()
        b_ident, b_version = other._plan_sig()
        return out._set_lineage((tag, op, a_ident, b_ident),
                                (a_version, b_version))

    def ewise_add(self, other: "Matrix", op: BinaryOp) -> "Matrix":
        """``A op∪ B``: union merge (dense path when both bitmap-resident)."""
        self._check_same_shape(other)
        keys, vals = merge_objects(self, other, op, union=True)
        out = Matrix(from_dtype(vals.dtype), self.nrows, self.ncols)
        out._set_from_keys(keys, vals)
        return self._ewise_lineage(other, op, "ewise_add", out)

    def ewise_mult(self, other: "Matrix", op: BinaryOp) -> "Matrix":
        """``A op∩ B``: intersection merge."""
        self._check_same_shape(other)
        keys, vals = merge_objects(self, other, op, union=False)
        out = Matrix(from_dtype(vals.dtype), self.nrows, self.ncols)
        out._set_from_keys(keys, vals)
        return self._ewise_lineage(other, op, "ewise_mult", out)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def reduce_rowwise(self, monoid: Monoid) -> Vector:
        """``w = [⊕ⱼ A(:, j)]``: per-row reduction to a column vector."""
        idx, vals = monoid.reduce_groups(self._S().entry_rows(), self.values)
        w = Vector(from_dtype(vals.dtype) if vals.size else self.type, self.nrows)
        w._set_sparse(idx, vals)
        return w

    def reduce_colwise(self, monoid: Monoid) -> Vector:
        """Per-column reduction (``[⊕ᵢ A(i, :)]``)."""
        idx, vals = monoid.reduce_groups(self.indices, self.values)
        w = Vector(from_dtype(vals.dtype) if vals.size else self.type, self.ncols)
        w._set_sparse(idx, vals)
        return w

    def reduce_scalar(self, monoid: Monoid):
        """``s = [⊕ᵢⱼ A(i, j)]``: reduce every entry to one scalar."""
        return monoid.reduce_all(self.values)

    def row_degrees(self) -> Vector:
        """Stored-entry count per row, as an INT64 vector (dense)."""
        counts = np.diff(self.indptr).astype(np.int64)
        return Vector.from_dense(counts)

    def col_degrees(self) -> Vector:
        """Stored-entry count per column, as an INT64 vector (dense)."""
        counts = np.bincount(self.indices, minlength=self.ncols).astype(np.int64)
        return Vector.from_dense(counts)

    # ------------------------------------------------------------------
    # comparisons / misc
    # ------------------------------------------------------------------
    def isequal(self, other: "Matrix") -> bool:
        """Same shape, structure and values (LAGraph ``IsEqual``).

        Compared on the canonical CSR views, so equality is
        format-independent: a bitmap matrix equals its CSR twin.
        """
        return (
            self.shape == other.shape
            and self.nvals == other.nvals
            and bool(np.array_equal(self.indptr, other.indptr))
            and bool(np.array_equal(self.indices, other.indices))
            and bool(np.array_equal(self.values, other.values))
        )

    def is_symmetric_pattern(self) -> bool:
        """Whether the structure equals that of the transpose."""
        t = self.T
        return bool(
            np.array_equal(self.indptr, t.indptr)
            and np.array_equal(self.indices, t.indices)
        )

    def __iter__(self):
        """Iterate stored entries as ``((i, j), value)`` (a read boundary:
        pending lazy state is materialised first)."""
        st = self._S()
        rows = st.entry_rows()
        _, cols, vals = st.csr()
        return iter(list(zip(zip(rows.tolist(), cols.tolist()),
                             vals.tolist())))

    def _check_same_shape(self, other: "Matrix"):
        if self.shape != other.shape:
            raise DimensionMismatch(f"shapes differ: {self.shape} vs {other.shape}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Matrix({self.type.name}, shape={self.nrows}x{self.ncols}, "
                f"nvals={self.nvals}, format={self.format})")
