"""Sparse matrix (``GrB_Matrix`` equivalent).

Storage model
-------------
CSR: ``indptr`` (``nrows+1``), ``indices`` (column ids, sorted within each
row, duplicate-free) and ``values``.  Three lazily built caches are
maintained and invalidated on mutation:

* a SciPy ``csr_matrix`` view sharing the same buffers (zero-copy) — used by
  the plus.times-reducible matmul fast path;
* the explicit transpose (mirrors LAGraph's cached ``G->AT`` property);
* the linearised COO key array ``i * ncols + j`` — used for mask resolution
  and element-wise merges.

As with :class:`~repro.grb.vector.Vector`, internals are intentionally
non-opaque (LAGraph design, Sec. II-A).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from . import types as _types
from ._kernels import apply_select as _selectops
from ._kernels.ewise import intersect_merge, union_merge
from ._kernels.gather import expand_rows
from .errors import DimensionMismatch, IndexOutOfBounds, NoValue
from .ops.binary import BinaryOp
from .ops.monoid import Monoid
from .ops.unary import UnaryOp
from .types import Type, from_dtype
from .vector import Vector

__all__ = ["Matrix"]


class Matrix:
    """A sparse matrix of a fixed :class:`~repro.grb.types.Type` and shape."""

    __slots__ = ("nrows", "ncols", "type", "indptr", "indices", "values",
                 "_scipy", "_transpose", "_keys")

    def __init__(self, typ, nrows: int, ncols: int):
        self.type = typ if isinstance(typ, Type) else from_dtype(typ)
        if nrows < 0 or ncols < 0:
            raise DimensionMismatch(f"negative dimensions ({nrows}, {ncols})")
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.indptr = np.zeros(nrows + 1, dtype=np.int64)
        self.indices = np.empty(0, dtype=np.int64)
        self.values = np.empty(0, dtype=self.type.dtype)
        self._scipy = None
        self._transpose = None
        self._keys = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, rows, cols, values, nrows: int, ncols: int,
                 typ=None, dup_op: Optional[BinaryOp] = None) -> "Matrix":
        """Build from tuples (``C ↤ {i, j, x}``).

        Duplicates are an error unless ``dup_op`` combines them.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values)
        if np.isscalar(values) or values.ndim == 0:
            values = np.full(rows.shape, values)
        if not (rows.shape == cols.shape == values.shape):
            raise DimensionMismatch("rows/cols/values must have equal length")
        if typ is None:
            typ = from_dtype(values.dtype)
        elif not isinstance(typ, Type):
            typ = from_dtype(typ)
        if rows.size:
            if rows.min() < 0 or rows.max() >= nrows:
                raise IndexOutOfBounds("row index out of range")
            if cols.min() < 0 or cols.max() >= ncols:
                raise IndexOutOfBounds("column index out of range")
        keys = rows * np.int64(ncols) + cols
        order = np.argsort(keys, kind="stable")
        sk = keys[order]
        sv = values[order].astype(typ.dtype, copy=False)
        dup = np.zeros(sk.size, dtype=bool)
        if sk.size:
            np.equal(sk[1:], sk[:-1], out=dup[1:])
        if dup.any():
            if dup_op is None:
                raise ValueError("duplicate (row, col) pairs without dup_op")
            starts = np.flatnonzero(~dup)
            out_vals = sv[starts].copy()
            rest = np.flatnonzero(dup)
            group = np.searchsorted(starts, rest, side="right") - 1
            for pos, g in zip(rest, group):  # rare path
                out_vals[g] = dup_op(out_vals[g], sv[pos])
            sk = sk[starts]
            sv = out_vals.astype(typ.dtype, copy=False)
        m = cls(typ, nrows, ncols)
        m._set_from_keys(sk, sv)
        return m

    @classmethod
    def from_scipy(cls, a, typ=None) -> "Matrix":
        """Build from any SciPy sparse matrix (copied, canonicalised)."""
        a = sp.csr_matrix(a)
        a.sort_indices()
        a.sum_duplicates()
        if typ is None:
            typ = from_dtype(a.dtype)
        elif not isinstance(typ, Type):
            typ = from_dtype(typ)
        m = cls(typ, a.shape[0], a.shape[1])
        m.indptr = a.indptr.astype(np.int64)
        m.indices = a.indices.astype(np.int64)
        m.values = a.data.astype(typ.dtype, copy=False)
        return m

    @classmethod
    def from_dense(cls, arr, keep_zeros: bool = False) -> "Matrix":
        """Build from a dense 2-D array; zeros are dropped unless kept."""
        arr = np.asarray(arr)
        if arr.ndim != 2:
            raise DimensionMismatch("from_dense requires a 2-D array")
        if keep_zeros:
            r, c = np.nonzero(np.ones(arr.shape, dtype=bool))
        else:
            r, c = np.nonzero(arr)
        return cls.from_coo(r, c, arr[r, c], arr.shape[0], arr.shape[1])

    @classmethod
    def from_diag(cls, v: Vector) -> "Matrix":
        """Diagonal matrix from a vector's entries."""
        m = cls(v.type, v.size, v.size)
        idx, vals = v.to_coo()
        keys = idx * np.int64(v.size) + idx
        m._set_from_keys(keys, vals)
        return m

    def dup(self) -> "Matrix":
        """``C ↤ A``: an independent copy."""
        m = Matrix(self.type, self.nrows, self.ncols)
        m.indptr = self.indptr.copy()
        m.indices = self.indices.copy()
        m.values = self.values.copy()
        return m

    # ------------------------------------------------------------------
    # internal plumbing
    # ------------------------------------------------------------------
    def _set_from_keys(self, keys: np.ndarray, vals: np.ndarray,
                       typ: Optional[Type] = None):
        """Rebuild CSR from sorted/unique linearised keys (takes ownership)."""
        if typ is not None:
            self.type = typ
        ncols = np.int64(self.ncols) if self.ncols else np.int64(1)
        rows = keys // ncols
        cols = keys - rows * ncols
        counts = np.bincount(rows, minlength=self.nrows) if keys.size else \
            np.zeros(self.nrows, dtype=np.int64)
        self.indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        self.indices = cols.astype(np.int64, copy=False)
        self.values = vals.astype(self.type.dtype, copy=False)
        self._invalidate()
        self._keys = keys.astype(np.int64, copy=False)

    def _invalidate(self):
        self._scipy = None
        self._transpose = None
        self._keys = None

    def keys(self) -> np.ndarray:
        """Sorted linearised COO keys ``i * ncols + j`` (cached)."""
        if self._keys is None:
            rows = expand_rows(self.indptr, self.nrows)
            self._keys = rows * np.int64(self.ncols) + self.indices
        return self._keys

    def _mask_keys_values(self):
        return self.keys(), self.values

    def to_scipy(self) -> sp.csr_matrix:
        """Zero-copy SciPy CSR view of this matrix (cached).

        Boolean matrices are exposed with their native dtype; SciPy handles
        bool CSR for structural operations but matmuls cast first (see
        :mod:`repro.grb.operations`).
        """
        if self._scipy is None:
            self._scipy = sp.csr_matrix(
                (self.values, self.indices, self.indptr),
                shape=(self.nrows, self.ncols),
            )
        return self._scipy

    # ------------------------------------------------------------------
    # basic properties & access
    # ------------------------------------------------------------------
    @property
    def nvals(self) -> int:
        return int(self.indices.size)

    @property
    def shape(self):
        return (self.nrows, self.ncols)

    @property
    def dtype(self) -> np.dtype:
        return self.type.dtype

    def to_coo(self):
        """``{i, j, x} ↤ A``: copies of row/col/value arrays."""
        rows = expand_rows(self.indptr, self.nrows)
        return rows, self.indices.copy(), self.values.copy()

    def to_dense(self, fill=0) -> np.ndarray:
        out = np.full((self.nrows, self.ncols), fill, dtype=self.type.dtype)
        rows = expand_rows(self.indptr, self.nrows)
        out[rows, self.indices] = self.values
        return out

    def clear(self):
        """Remove all entries (shape and type unchanged)."""
        self.indptr = np.zeros(self.nrows + 1, dtype=np.int64)
        self.indices = np.empty(0, dtype=np.int64)
        self.values = np.empty(0, dtype=self.type.dtype)
        self._invalidate()

    def get(self, i: int, j: int, default=None):
        """Value at ``(i, j)`` or ``default`` when absent."""
        i, j = int(i), int(j)
        if not (0 <= i < self.nrows and 0 <= j < self.ncols):
            raise IndexOutOfBounds(f"({i}, {j}) out of range {self.shape}")
        lo, hi = self.indptr[i], self.indptr[i + 1]
        pos = lo + np.searchsorted(self.indices[lo:hi], j)
        if pos < hi and self.indices[pos] == j:
            return self.values[pos]
        return default

    def __getitem__(self, ij):
        """``s = A(i, j)``: extractElement; :class:`NoValue` when absent."""
        sentinel = object()
        out = self.get(*ij, default=sentinel)
        if out is sentinel:
            raise NoValue(f"no entry at {ij}")
        return out

    def __setitem__(self, ij, value):
        """``C(i, j) = s``: setElement (rebuilds the row — O(nnz))."""
        i, j = int(ij[0]), int(ij[1])
        if not (0 <= i < self.nrows and 0 <= j < self.ncols):
            raise IndexOutOfBounds(f"({i}, {j}) out of range {self.shape}")
        lo, hi = int(self.indptr[i]), int(self.indptr[i + 1])
        pos = lo + int(np.searchsorted(self.indices[lo:hi], j))
        if pos < hi and self.indices[pos] == j:
            self.values[pos] = value
            self._scipy = None
            self._transpose = None
            return
        self.indices = np.insert(self.indices, pos, j)
        self.values = np.insert(self.values, pos,
                                np.asarray(value, dtype=self.type.dtype))
        self.indptr = self.indptr.copy()
        self.indptr[i + 1:] += 1
        self._invalidate()

    def row(self, i: int):
        """Stored (column indices, values) of row ``i`` — zero-copy views."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.values[lo:hi]

    def extract_row(self, i: int) -> Vector:
        """``w = A(i, :)ᵀ``: row ``i`` as a vector."""
        cols, vals = self.row(i)
        w = Vector(self.type, self.ncols)
        w._set_sparse(cols.copy(), vals.copy())
        return w

    def extract_col(self, j: int) -> Vector:
        """``w = A(:, j)``: column ``j`` as a vector (via cached transpose)."""
        return self.T.extract_row(j)

    def extract(self, rows, cols) -> "Matrix":
        """``C = A(i, j)``: the induced submatrix (Sec. III-B-d).

        Row ``r`` of the result is row ``rows[r]`` of ``A`` restricted to the
        columns listed in ``cols`` (in that order).
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        sub = self.to_scipy()[rows][:, cols]
        out = Matrix.from_scipy(sub, typ=self.type)
        return out

    # ------------------------------------------------------------------
    # structural operations
    # ------------------------------------------------------------------
    @property
    def T(self) -> "Matrix":
        """``Aᵀ`` (cached; the cache is the analogue of ``G->AT``)."""
        if self._transpose is None:
            t = Matrix.from_scipy(self.to_scipy().transpose().tocsr(),
                                  typ=self.type)
            self._transpose = t
        return self._transpose

    def transpose(self) -> "Matrix":
        """A fresh transposed copy (never the cached object)."""
        return self.T.dup()

    def pattern(self, typ: Type = _types.BOOL) -> "Matrix":
        """``LAGraph_Pattern``: structure-only copy with unit values."""
        m = Matrix(typ, self.nrows, self.ncols)
        m.indptr = self.indptr.copy()
        m.indices = self.indices.copy()
        m.values = np.ones(self.indices.size, dtype=typ.dtype)
        return m

    def select(self, op, thunk=None) -> "Matrix":
        """``A⟨f(A, k)⟩``: keep entries satisfying the predicate."""
        if isinstance(op, str):
            op = _selectops.by_name(op)
        rows = expand_rows(self.indptr, self.nrows)
        keep = op(self.values, rows, self.indices, thunk)
        out = Matrix(self.type, self.nrows, self.ncols)
        keys = rows[keep] * np.int64(self.ncols) + self.indices[keep]
        out._set_from_keys(keys, self.values[keep])
        return out

    def tril(self, k: int = 0) -> "Matrix":
        """``L = tril(A)``: entries on/below diagonal ``k``."""
        return self.select(_selectops.TRIL, k)

    def triu(self, k: int = 0) -> "Matrix":
        """``U = triu(A)``: entries on/above diagonal ``k``."""
        return self.select(_selectops.TRIU, k)

    def offdiag(self) -> "Matrix":
        """Drop diagonal entries (LAGraph requires ndiag == 0 for TC)."""
        return self.select(_selectops.OFFDIAG, 0)

    def ndiag(self) -> int:
        """Number of stored diagonal entries."""
        rows = expand_rows(self.indptr, self.nrows)
        return int((rows == self.indices).sum())

    def apply(self, op: UnaryOp, thunk=None) -> "Matrix":
        """``f(A, k)``: apply a unary op to every entry."""
        if op.positional == "i":
            vals = op.fn(expand_rows(self.indptr, self.nrows))
        elif op.positional == "j":
            vals = op.fn(self.indices)
        elif thunk is not None:
            vals = op.fn(self.values, thunk)
        else:
            vals = op.fn(self.values)
        if op.out_dtype is not None:
            vals = vals.astype(op.out_dtype, copy=False)
        out = Matrix(from_dtype(vals.dtype), self.nrows, self.ncols)
        out.indptr = self.indptr.copy()
        out.indices = self.indices.copy()
        out.values = vals
        return out

    # ------------------------------------------------------------------
    # element-wise (unmasked conveniences)
    # ------------------------------------------------------------------
    def ewise_add(self, other: "Matrix", op: BinaryOp) -> "Matrix":
        """``A op∪ B``: union merge."""
        self._check_same_shape(other)
        keys, vals = union_merge(self.keys(), self.values,
                                 other.keys(), other.values, op)
        out = Matrix(from_dtype(vals.dtype), self.nrows, self.ncols)
        out._set_from_keys(keys, vals)
        return out

    def ewise_mult(self, other: "Matrix", op: BinaryOp) -> "Matrix":
        """``A op∩ B``: intersection merge."""
        self._check_same_shape(other)
        keys, vals = intersect_merge(self.keys(), self.values,
                                     other.keys(), other.values, op)
        out = Matrix(from_dtype(vals.dtype), self.nrows, self.ncols)
        out._set_from_keys(keys, vals)
        return out

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def reduce_rowwise(self, monoid: Monoid) -> Vector:
        """``w = [⊕ⱼ A(:, j)]``: per-row reduction to a column vector."""
        rows = expand_rows(self.indptr, self.nrows)
        idx, vals = monoid.reduce_groups(rows, self.values)
        w = Vector(from_dtype(vals.dtype) if vals.size else self.type, self.nrows)
        w._set_sparse(idx, vals)
        return w

    def reduce_colwise(self, monoid: Monoid) -> Vector:
        """Per-column reduction (``[⊕ᵢ A(i, :)]``)."""
        idx, vals = monoid.reduce_groups(self.indices, self.values)
        w = Vector(from_dtype(vals.dtype) if vals.size else self.type, self.ncols)
        w._set_sparse(idx, vals)
        return w

    def reduce_scalar(self, monoid: Monoid):
        """``s = [⊕ᵢⱼ A(i, j)]``: reduce every entry to one scalar."""
        return monoid.reduce_all(self.values)

    def row_degrees(self) -> Vector:
        """Stored-entry count per row, as an INT64 vector (dense)."""
        counts = np.diff(self.indptr).astype(np.int64)
        return Vector.from_dense(counts)

    def col_degrees(self) -> Vector:
        """Stored-entry count per column, as an INT64 vector (dense)."""
        counts = np.bincount(self.indices, minlength=self.ncols).astype(np.int64)
        return Vector.from_dense(counts)

    # ------------------------------------------------------------------
    # comparisons / misc
    # ------------------------------------------------------------------
    def isequal(self, other: "Matrix") -> bool:
        """Same shape, structure and values (LAGraph ``IsEqual``)."""
        return (
            self.shape == other.shape
            and self.nvals == other.nvals
            and bool(np.array_equal(self.indptr, other.indptr))
            and bool(np.array_equal(self.indices, other.indices))
            and bool(np.array_equal(self.values, other.values))
        )

    def is_symmetric_pattern(self) -> bool:
        """Whether the structure equals that of the transpose."""
        t = self.T
        return bool(
            np.array_equal(self.indptr, t.indptr)
            and np.array_equal(self.indices, t.indices)
        )

    def _check_same_shape(self, other: "Matrix"):
        if self.shape != other.shape:
            raise DimensionMismatch(f"shapes differ: {self.shape} vs {other.shape}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Matrix({self.type.name}, shape={self.nrows}x{self.ncols}, "
                f"nvals={self.nvals})")
