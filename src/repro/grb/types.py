"""GraphBLAS value types (``GrB_Type`` equivalents).

A :class:`Type` wraps a NumPy dtype under the name used by the GraphBLAS C
API specification.  Every :class:`~repro.grb.vector.Vector` and
:class:`~repro.grb.matrix.Matrix` carries one of these, and operators declare
their input/output types in terms of them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Type",
    "BOOL",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "UINT8",
    "UINT16",
    "UINT32",
    "UINT64",
    "FP32",
    "FP64",
    "ALL_TYPES",
    "from_dtype",
    "type_name",
]


@dataclass(frozen=True)
class Type:
    """A GraphBLAS scalar type backed by a NumPy dtype.

    Attributes
    ----------
    name:
        The GraphBLAS C API name, e.g. ``"GrB_FP64"``.
    dtype:
        The backing :class:`numpy.dtype`.
    """

    name: str
    dtype: np.dtype

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name

    @property
    def is_boolean(self) -> bool:
        return self.dtype == np.bool_

    @property
    def is_integral(self) -> bool:
        return np.issubdtype(self.dtype, np.integer)

    @property
    def is_signed(self) -> bool:
        return np.issubdtype(self.dtype, np.signedinteger)

    @property
    def is_float(self) -> bool:
        return np.issubdtype(self.dtype, np.floating)

    def zero(self):
        """The additive identity of conventional arithmetic for this type."""
        return self.dtype.type(0)

    def one(self):
        return self.dtype.type(1)


BOOL = Type("GrB_BOOL", np.dtype(np.bool_))
INT8 = Type("GrB_INT8", np.dtype(np.int8))
INT16 = Type("GrB_INT16", np.dtype(np.int16))
INT32 = Type("GrB_INT32", np.dtype(np.int32))
INT64 = Type("GrB_INT64", np.dtype(np.int64))
UINT8 = Type("GrB_UINT8", np.dtype(np.uint8))
UINT16 = Type("GrB_UINT16", np.dtype(np.uint16))
UINT32 = Type("GrB_UINT32", np.dtype(np.uint32))
UINT64 = Type("GrB_UINT64", np.dtype(np.uint64))
FP32 = Type("GrB_FP32", np.dtype(np.float32))
FP64 = Type("GrB_FP64", np.dtype(np.float64))

ALL_TYPES = (
    BOOL,
    INT8,
    INT16,
    INT32,
    INT64,
    UINT8,
    UINT16,
    UINT32,
    UINT64,
    FP32,
    FP64,
)

_BY_DTYPE = {t.dtype: t for t in ALL_TYPES}


def from_dtype(dtype) -> Type:
    """Return the :class:`Type` matching a NumPy dtype (or dtype-like).

    Raises
    ------
    TypeError
        If the dtype has no GraphBLAS equivalent (e.g. complex, object).
    """
    dt = np.dtype(dtype)
    try:
        return _BY_DTYPE[dt]
    except KeyError:
        raise TypeError(f"no GraphBLAS type for dtype {dt!r}") from None


def type_name(typ: Type) -> str:
    """``LAGraph_TypeName``: the printable name of a type."""
    return typ.name
