"""Cooperative cancellation for long-running kernels.

A :class:`CancelToken` carries an optional absolute deadline (on the
:func:`time.monotonic` clock) and a manual cancel flag.  Kernels — the
BFS/msbfs/PageRank/SSSP iteration loops and the engine's per-node
dispatch step — call :func:`checkpoint` at iteration boundaries; when the
current context's token has expired, the checkpoint raises and the kernel
unwinds immediately instead of computing a result nobody is waiting for.

The token travels by :mod:`contextvars`: the serve layer installs it
inside the request's context snapshot (see
``GraphService._in_request_ctx``), so it follows the request onto the
drain pool without any plumbing through kernel signatures.  Code outside
a scope pays exactly one ContextVar read plus a ``None`` check per
checkpoint — cheap enough for per-iteration (not per-element) use.

Usage::

    tok = CancelToken(deadline=time.monotonic() + 0.5)
    with cancel_scope(tok):
        bfs_level(g, 0)        # raises DeadlineExceeded if it runs long

Cancellation is *cooperative*: a kernel that never reaches a checkpoint
(one enormous numpy call) finishes its current step before noticing.  The
serve layer therefore pairs tokens with a reaper that resolves the
waiting future on time regardless — the token only stops the wasted
compute, the reaper guarantees the latency contract.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Optional

__all__ = [
    "Cancelled", "DeadlineExceeded", "CancelToken",
    "cancel_scope", "current_token", "checkpoint",
]


class Cancelled(RuntimeError):
    """The current cancellation scope was cancelled explicitly."""


class DeadlineExceeded(TimeoutError):
    """The current cancellation scope's deadline passed.

    Subclasses :class:`TimeoutError` so generic timeout handling catches
    it; serve futures resolve with this when their request's deadline
    expires (whether the kernel noticed cooperatively or the reaper
    resolved the future first).
    """


class CancelToken:
    """A shared cancel flag plus an optional absolute monotonic deadline."""

    __slots__ = ("deadline", "_cancelled", "_exc")

    def __init__(self, deadline: Optional[float] = None):
        #: Absolute :func:`time.monotonic` instant, or ``None`` (no limit).
        self.deadline = deadline
        self._cancelled = False
        self._exc: Optional[BaseException] = None

    def cancel(self, exc: Optional[BaseException] = None) -> None:
        """Trip the token manually; ``exc`` overrides the raised error."""
        self._exc = exc
        self._cancelled = True

    def expired(self) -> bool:
        if self._cancelled:
            return True
        return (self.deadline is not None
                and time.monotonic() >= self.deadline)

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (``None`` when unbounded; never
        negative)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.monotonic())

    def check(self) -> None:
        """Raise if the token is cancelled or past its deadline."""
        if self._cancelled:
            raise self._exc if self._exc is not None \
                else Cancelled("operation cancelled")
        if self.deadline is not None and time.monotonic() >= self.deadline:
            raise DeadlineExceeded(
                f"deadline exceeded (budget ended "
                f"{time.monotonic() - self.deadline:.3f}s ago)")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CancelToken(deadline={self.deadline}, "
                f"cancelled={self._cancelled})")


_current: ContextVar[Optional[CancelToken]] = ContextVar(
    "repro_cancel_token", default=None)


def current_token() -> Optional[CancelToken]:
    """The token governing the calling context, or ``None``."""
    return _current.get()


def checkpoint() -> None:
    """Raise if the calling context's cancellation scope has expired.

    The no-scope fast path is one ContextVar read and a ``None`` check —
    call freely at iteration boundaries.
    """
    tok = _current.get()
    if tok is not None:
        tok.check()


@contextmanager
def cancel_scope(token: Optional[CancelToken]):
    """Install ``token`` as the context's cancellation scope.

    ``None`` is accepted (and is a no-op scope) so callers can write
    ``with cancel_scope(maybe_token):`` unconditionally.
    """
    if token is None:
        yield None
        return
    reset = _current.set(token)
    try:
        yield token
    finally:
        _current.reset(reset)
