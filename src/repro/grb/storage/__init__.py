"""``repro.grb.storage`` — the pluggable sparse-storage engine.

SuiteSparse:GraphBLAS owes much of the paper's performance to *format
agility*: every object silently switches between sparse (CSR/CSC),
hypersparse, bitmap and full layouts as its density evolves (Sec. VI-A).
This package gives the pure-Python substrate the same capability.

Layout
------
``base``
    The :class:`MatrixStore` / :class:`VectorStore` protocols every format
    implements, plus shared CSR↔CSC conversion helpers.
``csr`` / ``csc`` / ``bitmap`` / ``hypersparse``
    The four matrix formats.  All of them can produce the *canonical CSR
    triple* (``indptr``, ``indices``, ``values`` — int64, per-row sorted,
    duplicate-free) on demand, which is what makes every format
    bit-identical in results to the CSR reference: kernels that have no
    native fast path for a format simply read the canonical view.
``vector``
    The sparse and bitmap vector stores.
``policy``
    The auto-selection policy: observed density / live-row counts at
    mutation and kernel boundaries decide the format, unless the owner is
    pinned with ``Matrix.set_format`` / ``Vector.set_format``.

Every store is an internal object — user code talks to
:class:`~repro.grb.matrix.Matrix` / :class:`~repro.grb.vector.Vector`,
whose ``indptr`` / ``indices`` / ``values`` properties read through to the
active store.
"""

from .base import MatrixStore, VectorStore, csr_to_csc_arrays, csc_to_csr_arrays
from .bitmap import BitmapStore, BitmapVec
from .csc import CSCStore
from .csr import CSRStore
from .hypersparse import HypersparseStore
from .vector import SparseVec
from . import policy
from .policy import (
    MATRIX_FORMATS,
    VECTOR_FORMATS,
    matrix_store_from_csr,
    select_matrix_format,
    select_vector_format,
    vector_store_from_sparse,
)

__all__ = [
    "MatrixStore", "VectorStore", "CSRStore", "CSCStore", "BitmapStore",
    "HypersparseStore", "SparseVec", "BitmapVec", "policy",
    "MATRIX_FORMATS", "VECTOR_FORMATS",
    "select_matrix_format", "select_vector_format",
    "matrix_store_from_csr", "vector_store_from_sparse",
    "csr_to_csc_arrays", "csc_to_csr_arrays", "attach_store",
]

#: ``(kind, fmt) -> store class`` — the attach-side twin of the per-store
#: ``export_buffers`` implementations ("bitmap" names both a matrix and a
#: vector format, so the kind disambiguates).
_STORE_CLASSES = {
    ("matrix", "csr"): CSRStore,
    ("matrix", "csc"): CSCStore,
    ("matrix", "bitmap"): BitmapStore,
    ("matrix", "hypersparse"): HypersparseStore,
    ("vector", "sparse"): SparseVec,
    ("vector", "bitmap"): BitmapVec,
}


def attach_store(meta: dict, components: dict):
    """Rebuild any store from an ``export_buffers()`` pair (zero-copy).

    The format-dispatching entry point worker processes use: ``meta``
    names the concrete store class, ``components`` supplies the
    authoritative arrays (typically views into shared memory).
    """
    cls = _STORE_CLASSES[(meta["kind"], meta["fmt"])]
    return cls.attach_buffers(meta, components)
