"""Bitmap storage — dense presence flags plus a dense value array.

The format SS:GrB v4 switches to for dense-ish objects (Sec. VI-A of the
paper).  Presence is tracked *structurally* (a bool flag per position), so
explicit zeros survive round-trips; the value array is dense, giving O(1)
random access.

What it buys:

* mask resolution in O(1) per tested key — the write-back's complemented
  structural masks (`C⟨¬s(p)⟩`, the BFS inner loop) test membership against
  the flag array instead of ``searchsorted`` over sorted keys;
* O(1) ``setElement`` / ``removeElement`` on vectors;
* the bitmap the pull-direction kernels consume is the storage itself, not
  a cache rebuilt after every mutation.

``BitmapStore`` (matrices) keeps the flag/value arrays flat over the
``nrows × ncols`` grid — the same linearised-key space every kernel already
uses — and is only auto-selected for grids the policy deems affordable.
"""

from __future__ import annotations

import numpy as np

from .base import (MatrixStore, VectorStore, arrays_nbytes,
                   csr_to_csc_arrays, freeze_arrays)

__all__ = ["BitmapStore", "BitmapVec"]


class BitmapStore(MatrixStore):
    """Dense flat flag + value arrays over the matrix grid."""

    fmt = "bitmap"
    __slots__ = ("present", "dense", "_nvals", "_csr", "_csc")

    def __init__(self, nrows: int, ncols: int, present, dense, nvals=None):
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.present = present
        self.dense = dense
        self._nvals = int(present.sum()) if nvals is None else int(nvals)
        self._csr = None
        self._csc = None

    @classmethod
    def from_csr(cls, indptr, indices, values, nrows, ncols) -> "BitmapStore":
        grid = nrows * ncols
        present = np.zeros(grid, dtype=bool)
        dense = np.zeros(grid, dtype=values.dtype)
        if indices.size:
            rows = np.repeat(np.arange(nrows, dtype=np.int64), np.diff(indptr))
            keys = rows * np.int64(ncols) + indices
            present[keys] = True
            dense[keys] = values
        st = cls(nrows, ncols, present, dense, nvals=indices.size)
        # conversion input is canonical; frozen — it is a cache, not storage
        st._csr = freeze_arrays((indptr, indices, values))
        return st

    @classmethod
    def from_keys(cls, keys, values, indptr, indices, nrows, ncols
                  ) -> "BitmapStore":
        """Build from sorted linearised keys, reusing the caller's CSR triple
        as the prebuilt canonical cache (no re-derivation later)."""
        grid = nrows * ncols
        present = np.zeros(grid, dtype=bool)
        dense = np.zeros(grid, dtype=values.dtype)
        present[keys] = True
        dense[keys] = values
        st = cls(nrows, ncols, present, dense, nvals=keys.size)
        st._csr = freeze_arrays((indptr, indices, values))
        return st

    def csr(self):
        if self._csr is None:
            keys = np.flatnonzero(self.present).astype(np.int64)
            ncols = np.int64(self.ncols) if self.ncols else np.int64(1)
            rows = keys // ncols
            cols = keys - rows * ncols
            counts = np.bincount(rows, minlength=self.nrows) if keys.size \
                else np.zeros(self.nrows, dtype=np.int64)
            indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
            self._csr = freeze_arrays((indptr, cols, self.dense[keys]))
        return self._csr

    @property
    def nvals(self) -> int:
        return self._nvals

    def present_dense(self):
        """The flat (present, dense) pair — the mask fast path reads this."""
        return self.present, self.dense

    def transpose_csr(self):
        if self._csc is None:
            indptr, indices, values = self.csr()
            self._csc = csr_to_csc_arrays(indptr, indices, values,
                                          self.nrows, self.ncols)
        return self._csc

    def nbytes_components(self) -> dict:
        return {"present": int(self.present.nbytes),
                "dense": int(self.dense.nbytes)}

    def cache_nbytes(self) -> int:
        return arrays_nbytes((self._csr, self._csc))

    def export_buffers(self):
        meta = {"fmt": self.fmt, "kind": "matrix", "nrows": self.nrows,
                "ncols": self.ncols, "nvals": self._nvals}
        return meta, {"present": self.present, "dense": self.dense}

    @classmethod
    def attach_buffers(cls, meta: dict, components: dict) -> "BitmapStore":
        return cls(meta["nrows"], meta["ncols"], components["present"],
                   components["dense"], nvals=meta["nvals"])

    def copy(self) -> "BitmapStore":
        st = BitmapStore(self.nrows, self.ncols, self.present.copy(),
                         self.dense.copy(), nvals=self._nvals)
        return st


class BitmapVec(VectorStore):
    """Dense flag + value arrays for a vector; sparse view cached."""

    fmt = "bitmap"
    __slots__ = ("present", "dense", "_nvals", "_sp")

    def __init__(self, size: int, present, dense, nvals=None):
        self.size = int(size)
        self.present = present
        self.dense = dense
        self._nvals = int(present.sum()) if nvals is None else int(nvals)
        self._sp = None

    @classmethod
    def from_sparse(cls, size: int, idx, vals) -> "BitmapVec":
        present = np.zeros(size, dtype=bool)
        dense = np.zeros(size, dtype=vals.dtype)
        present[idx] = True
        dense[idx] = vals
        st = cls(size, present, dense, nvals=idx.size)
        st._sp = (idx, vals)
        return st

    def sparse(self):
        if self._sp is None:
            idx = np.flatnonzero(self.present).astype(np.int64)
            self._sp = (idx, self.dense[idx])
        return self._sp

    def bitmap(self):
        return self.present, self.dense

    @property
    def nvals(self) -> int:
        return self._nvals

    # O(1) point mutations — the owner routes setElement here natively.
    def set_element(self, i: int, value):
        if not self.present[i]:
            self._nvals += 1
            self.present[i] = True
        self.dense[i] = value
        self._sp = None

    def remove_element(self, i: int):
        if self.present[i]:
            self._nvals -= 1
            self.present[i] = False
            self.dense[i] = 0
            self._sp = None

    def nbytes_components(self) -> dict:
        return {"present": int(self.present.nbytes),
                "dense": int(self.dense.nbytes)}

    def cache_nbytes(self) -> int:
        return arrays_nbytes((self._sp,))

    def export_buffers(self):
        meta = {"fmt": self.fmt, "kind": "vector", "size": self.size,
                "nvals": self._nvals}
        return meta, {"present": self.present, "dense": self.dense}

    @classmethod
    def attach_buffers(cls, meta: dict, components: dict) -> "BitmapVec":
        return cls(meta["size"], components["present"], components["dense"],
                   nvals=meta["nvals"])

    def copy(self) -> "BitmapVec":
        return BitmapVec(self.size, self.present.copy(), self.dense.copy(),
                         nvals=self._nvals)
