"""Storage protocols and shared conversion helpers.

A store owns the entries of one matrix or vector in one concrete layout.
The contract every matrix format implements:

* :meth:`MatrixStore.csr` — the *canonical CSR triple*: ``indptr``
  (int64, ``nrows + 1``), ``indices`` (int64, sorted within each row,
  duplicate-free) and ``values`` (the owner's dtype).  Formats that are not
  row-major sparse derive it lazily and cache it; because every kernel
  without a native fast path reads this view, results are bit-identical
  across formats by construction.
* :meth:`MatrixStore.entry_rows` — the row id of every canonical entry
  (COO expansion).  Hypersparse overrides this with an O(live-rows)
  construction instead of O(nrows).
* :meth:`MatrixStore.transpose_csr` — the CSR triple *of the transpose*
  (equivalently: the CSC view of this matrix).  CSC stores return their
  native arrays, making pull-direction kernels free; everything else
  converts once and caches (the storage-level analogue of LAGraph's
  ``G->AT`` property).

Stores are internal, single-owner objects: the owning ``Matrix`` /
``Vector`` replaces its store wholesale at mutation boundaries, so stores
never mutate in place except through their owner.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .._kernels.gather import expand_rows

__all__ = ["MatrixStore", "VectorStore", "csr_to_csc_arrays",
           "csc_to_csr_arrays", "freeze_arrays", "arrays_nbytes"]


def arrays_nbytes(array_tuples, exclude=()):
    """Total bytes of the arrays in ``array_tuples``, skipping ``exclude``.

    Deduplicates by object identity: a derived-view cache that aliases an
    authoritative array (hypersparse keeps the canonical indices/values in
    both roles) is never double-counted.
    """
    seen = {id(a) for a in exclude}
    total = 0
    for arrays in array_tuples:
        if arrays is None:
            continue
        for a in arrays:
            if id(a) not in seen:
                seen.add(id(a))
                total += int(a.nbytes)
    return total


def freeze_arrays(arrays):
    """Mark a derived-cache array tuple read-only and return it.

    Derived canonical views (a bitmap store's CSR triple, a CSC store's
    row-major view) are *caches*: an in-place write through them could
    never reach the authoritative arrays, so it would silently desync the
    two representations.  Freezing turns that silent corruption into an
    immediate ``ValueError`` — code that wants writable CSR arrays pins
    the object to ``csr`` first.
    """
    for a in arrays:
        a.flags.writeable = False
    return arrays


def csr_to_csc_arrays(indptr, indices, values, nrows: int, ncols: int):
    """CSC triple (col ptrs, row ids, values in column order) of a CSR matrix.

    Equivalently the canonical CSR triple of the transpose.  Row ids are
    sorted within each column; int64 throughout.
    """
    if indices.size == 0:
        return (np.zeros(ncols + 1, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                values[:0].copy())
    c = sp.csr_matrix((values, indices, indptr), shape=(nrows, ncols)).tocsc()
    c.sort_indices()
    return (c.indptr.astype(np.int64), c.indices.astype(np.int64),
            c.data)


def csc_to_csr_arrays(cindptr, rindices, cvalues, nrows: int, ncols: int):
    """Canonical CSR triple of a matrix given in CSC arrays."""
    if rindices.size == 0:
        return (np.zeros(nrows + 1, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                cvalues[:0].copy())
    c = sp.csc_matrix((cvalues, rindices, cindptr), shape=(nrows, ncols)).tocsr()
    c.sort_indices()
    return (c.indptr.astype(np.int64), c.indices.astype(np.int64),
            c.data)


class MatrixStore:
    """Base class for matrix storage formats."""

    fmt: str = "?"
    __slots__ = ("nrows", "ncols")

    # -- canonical views -------------------------------------------------
    def csr(self):
        """``(indptr, indices, values)`` — the canonical CSR triple."""
        raise NotImplementedError

    @property
    def nvals(self) -> int:
        return int(self.csr()[1].size)

    def entry_rows(self) -> np.ndarray:
        """Row id of every canonical entry (aligned with ``csr()[1]``)."""
        return expand_rows(self.csr()[0], self.nrows)

    def transpose_csr(self):
        """CSR triple of the transpose (== the CSC view of this matrix)."""
        raise NotImplementedError

    # -- structural queries the policy reads ----------------------------
    def live_row_count(self) -> int:
        """Number of rows holding at least one entry."""
        indptr = self.csr()[0]
        return int(np.count_nonzero(np.diff(indptr)))

    # -- footprint accounting (see repro.obs.memory) ---------------------
    def nbytes_components(self) -> dict:
        """Bytes per *authoritative* component array, by name.

        Lazily derived caches (a bitmap store's CSR triple, the cached CSC
        view) are deliberately excluded: the always-on footprint gauges
        must be deterministic at the mutation boundary, before any kernel
        decides to materialise a view.  Cache bytes are reported
        separately via :meth:`cache_nbytes` (the opt-in memory report
        reads both)."""
        raise NotImplementedError

    def nbytes(self) -> int:
        """Total authoritative bytes (sum of :meth:`nbytes_components`)."""
        return sum(self.nbytes_components().values())

    def cache_nbytes(self) -> int:
        """Bytes currently held by materialised derived-view caches."""
        return 0

    # -- buffer placement (see repro.grb.pool.shm) -----------------------
    def export_buffers(self):
        """``(meta, components)`` — the store flattened for placement.

        ``components`` maps each :meth:`nbytes_components` key to its
        authoritative numpy array, *no copies made*; ``meta`` is a small
        picklable dict (format, dimensions, scalar state) sufficient for
        :meth:`attach_buffers` to rebuild an equivalent store around
        externally provided buffers (e.g. views into a named
        ``SharedMemory`` segment).  Derived caches — including aliases of
        the authoritative arrays, like the hypersparse store's canonical
        CSR triple — are deliberately excluded: each array ships exactly
        once, and attach rebuilds caches lazily on first use.
        """
        raise NotImplementedError

    @classmethod
    def attach_buffers(cls, meta: dict, components: dict) -> "MatrixStore":
        """Rebuild a store around ``components`` (zero-copy).

        The inverse of :meth:`export_buffers`: the returned store adopts
        the arrays as its authoritative components without copying, so a
        worker process attaching shared-memory views reads the parent's
        placement in place.  All derived caches start empty.
        """
        raise NotImplementedError

    # -- lifecycle -------------------------------------------------------
    def copy(self) -> "MatrixStore":
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}({self.nrows}x{self.ncols}, "
                f"nvals={self.nvals})")


class VectorStore:
    """Base class for vector storage formats.

    Both representations of the sparse/bitmap duality are reachable from
    either store — one is authoritative, the other a lazily built cache —
    so switching formats never loses information (explicit zeros included:
    presence is tracked by structure, not by value).
    """

    fmt: str = "?"
    __slots__ = ("size",)

    def sparse(self):
        """``(indices, values)`` — sorted, duplicate-free int64 indices."""
        raise NotImplementedError

    def bitmap(self):
        """``(present, dense)`` — bool flags plus a dense value array."""
        raise NotImplementedError

    @property
    def nvals(self) -> int:
        return int(self.sparse()[0].size)

    def nbytes_components(self) -> dict:
        """Bytes per authoritative component array (see MatrixStore)."""
        raise NotImplementedError

    def nbytes(self) -> int:
        """Total authoritative bytes (sum of :meth:`nbytes_components`)."""
        return sum(self.nbytes_components().values())

    def cache_nbytes(self) -> int:
        """Bytes currently held by the materialised dual-view cache."""
        return 0

    def export_buffers(self):
        """``(meta, components)`` for placement (see MatrixStore)."""
        raise NotImplementedError

    @classmethod
    def attach_buffers(cls, meta: dict, components: dict) -> "VectorStore":
        """Rebuild a store around external buffers (see MatrixStore)."""
        raise NotImplementedError

    def copy(self) -> "VectorStore":
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(size={self.size}, nvals={self.nvals})"
