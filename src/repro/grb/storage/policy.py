"""Auto-format selection policy.

Called at mutation and kernel boundaries (``Matrix._set_from_keys`` /
``Vector._set_sparse``) to pick a storage format from *observed* structure
— the pure-Python analogue of SS:GrB's sparsity-control heuristic
(Sec. VI-A).  The decision inputs:

``density``
    ``nvals / (nrows * ncols)`` — high density favours bitmap (O(1)
    membership, dense value access), provided the grid is small enough
    that dense flag arrays are affordable.
``live rows``
    Rows with ≥1 entry — a sliver of live rows favours hypersparse
    (row-pointer compression; O(live) instead of O(nrows) walks).

Everything else stays CSR, the reference format.  CSC is never
auto-selected: it encodes an access-pattern *intent* (pull-direction
traversal) the policy cannot observe, so it is only reachable through
``Matrix.set_format("csc")`` or the cached-transpose machinery.

All thresholds are module-level constants, deliberately overridable
(benchmarks and tests monkeypatch them to force formats); pinning an
object with ``set_format`` bypasses the policy entirely.
"""

from __future__ import annotations

import numpy as np

from ...testing import faults as _faults
from .bitmap import BitmapStore, BitmapVec
from .csc import CSCStore
from .csr import CSRStore
from .hypersparse import HypersparseStore
from .vector import SparseVec

__all__ = [
    "MATRIX_FORMATS", "VECTOR_FORMATS",
    "select_matrix_format", "select_vector_format",
    "matrix_store_from_csr", "vector_store_from_sparse",
]

MATRIX_FORMATS = ("csr", "csc", "bitmap", "hypersparse")
VECTOR_FORMATS = ("sparse", "bitmap")

#: Matrix density at/above which bitmap wins (dense flag+value grids).
MATRIX_BITMAP_DENSITY = 0.25
#: Grids smaller than this stay CSR — dense arrays buy nothing at toy sizes.
MATRIX_BITMAP_MIN_GRID = 1 << 12
#: Never auto-allocate dense grid arrays above this many cells.
MATRIX_BITMAP_GRID_CAP = 1 << 22
#: Live-row fraction below which hypersparse wins.
HYPER_LIVE_FRACTION = 0.125
#: Matrices with fewer rows than this stay CSR (indptr walks are free).
HYPER_MIN_ROWS = 64

#: Vector density at/above which bitmap wins.
VECTOR_BITMAP_DENSITY = 0.25
#: Vectors shorter than this stay sparse.
VECTOR_BITMAP_MIN_SIZE = 64

_MATRIX_STORES = {
    "csr": CSRStore,
    "csc": CSCStore,
    "bitmap": BitmapStore,
    "hypersparse": HypersparseStore,
}


def select_matrix_format(nrows: int, ncols: int, nvals: int,
                         live_rows: int) -> str:
    """Format for a matrix with the observed structure (auto mode)."""
    grid = int(nrows) * int(ncols)
    if (MATRIX_BITMAP_MIN_GRID <= grid <= MATRIX_BITMAP_GRID_CAP
            and nvals >= MATRIX_BITMAP_DENSITY * grid):
        return "bitmap"
    if (nrows >= HYPER_MIN_ROWS and nvals
            and live_rows < HYPER_LIVE_FRACTION * nrows):
        return "hypersparse"
    return "csr"


def select_vector_format(size: int, nvals: int) -> str:
    """Format for a vector with the observed density (auto mode)."""
    if size >= VECTOR_BITMAP_MIN_SIZE and nvals >= VECTOR_BITMAP_DENSITY * size:
        return "bitmap"
    return "sparse"


def matrix_store_from_csr(fmt: str, indptr, indices, values,
                          nrows: int, ncols: int):
    """Build a store of the requested format from canonical CSR arrays.

    This is the storage-build fault-injection site (site ``"storage"``
    of :mod:`repro.testing.faults`): every matrix store construction
    funnels through here, so injected allocation failures and latency
    model a sick storage tier.  One global read when no injector is
    installed.
    """
    if _faults.ACTIVE:
        _faults.fire("storage", fmt=fmt, nrows=nrows, ncols=ncols,
                     nvals=len(values))
    try:
        cls = _MATRIX_STORES[fmt]
    except KeyError:
        raise ValueError(
            f"unknown matrix format {fmt!r}; one of {MATRIX_FORMATS}"
        ) from None
    return cls.from_csr(indptr, indices, values, nrows, ncols)


def matrix_store_from_keys(fmt: str, keys, counts, indptr, indices, values,
                           nrows: int, ncols: int):
    """Mutation-boundary constructor: the key→CSR rebuild already computed
    ``keys``/``counts``, so bitmap and hypersparse reuse them instead of
    re-deriving structure."""
    if fmt == "bitmap":
        return BitmapStore.from_keys(keys, values, indptr, indices,
                                     nrows, ncols)
    if fmt == "hypersparse":
        return HypersparseStore.from_counts(counts, indices, values,
                                            nrows, ncols, indptr=indptr)
    return matrix_store_from_csr(fmt, indptr, indices, values, nrows, ncols)


def vector_store_from_sparse(fmt: str, size: int, idx, vals):
    """Build a vector store of the requested format from sorted sparse arrays."""
    if fmt == "bitmap":
        return BitmapVec.from_sparse(size, idx, vals)
    if fmt == "sparse":
        return SparseVec(size, idx, vals)
    raise ValueError(
        f"unknown vector format {fmt!r}; one of {VECTOR_FORMATS}")


def observed_live_rows(counts: np.ndarray) -> int:
    """Live-row count from a per-row entry count array."""
    return int(np.count_nonzero(counts))
