"""Hypersparse storage — row-pointer compression for nearly-empty row sets.

A CSR matrix pays O(nrows) per operation just walking ``indptr`` — painful
for frontier matrices whose live rows are a sliver of the total (the
road-graph BFS levels ROADMAP calls out, or a batched-msbfs frontier near
termination).  Hypersparse stores only the live rows: ``live_rows`` (sorted
row ids with ≥1 entry), a compressed pointer array over *those* rows, and
the usual column/value arrays.  ``entry_rows`` and the key expansion become
O(live + nnz) instead of O(nrows + nnz); the canonical CSR view is derived
once and cached for kernels with no native path.
"""

from __future__ import annotations

import numpy as np

from .._kernels.gather import hyper_expand_rows
from .base import MatrixStore, arrays_nbytes, csr_to_csc_arrays

__all__ = ["HypersparseStore"]


class HypersparseStore(MatrixStore):
    """``(live_rows, hindptr, indices, values)`` row-compressed storage."""

    fmt = "hypersparse"
    __slots__ = ("live_rows", "hindptr", "indices", "values", "_csr", "_csc")

    def __init__(self, nrows: int, ncols: int, live_rows, hindptr, indices,
                 values):
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.live_rows = live_rows
        self.hindptr = hindptr
        self.indices = indices
        self.values = values
        self._csr = None
        self._csc = None

    @classmethod
    def from_csr(cls, indptr, indices, values, nrows, ncols
                 ) -> "HypersparseStore":
        counts = np.diff(indptr)
        live = np.flatnonzero(counts).astype(np.int64)
        hindptr = np.concatenate(
            ([0], np.cumsum(counts[live]))).astype(np.int64)
        st = cls(nrows, ncols, live, hindptr, indices, values)
        st._csr = (indptr, indices, values)
        return st

    @classmethod
    def from_counts(cls, counts, indices, values, nrows, ncols, indptr=None
                    ) -> "HypersparseStore":
        """Build from a full per-row entry count array (mutation boundary
        path: ``counts`` falls out of the key→CSR rebuild for free)."""
        live = np.flatnonzero(counts).astype(np.int64)
        hindptr = np.concatenate(
            ([0], np.cumsum(counts[live]))).astype(np.int64)
        st = cls(nrows, ncols, live, hindptr, indices, values)
        if indptr is not None:
            st._csr = (indptr, indices, values)
        return st

    def csr(self):
        if self._csr is None:
            counts = np.zeros(self.nrows, dtype=np.int64)
            counts[self.live_rows] = np.diff(self.hindptr)
            indptr = np.concatenate(
                ([0], np.cumsum(counts))).astype(np.int64)
            self._csr = (indptr, self.indices, self.values)
        return self._csr

    @property
    def nvals(self) -> int:
        return int(self.indices.size)

    def entry_rows(self) -> np.ndarray:
        # O(live + nnz): never touches the empty rows.
        return hyper_expand_rows(self.live_rows, self.hindptr)

    def live_row_count(self) -> int:
        return int(self.live_rows.size)

    def transpose_csr(self):
        if self._csc is None:
            indptr, indices, values = self.csr()
            self._csc = csr_to_csc_arrays(indptr, indices, values,
                                          self.nrows, self.ncols)
        return self._csc

    def nbytes_components(self) -> dict:
        return {"live_rows": int(self.live_rows.nbytes),
                "hindptr": int(self.hindptr.nbytes),
                "indices": int(self.indices.nbytes),
                "values": int(self.values.nbytes)}

    def cache_nbytes(self) -> int:
        # the cached CSR triple aliases the authoritative indices/values;
        # arrays_nbytes dedups by identity so only the expanded indptr counts
        return arrays_nbytes((self._csr, self._csc),
                             exclude=(self.live_rows, self.hindptr,
                                      self.indices, self.values))

    def export_buffers(self):
        # mirrors nbytes_components(): authoritative arrays only — the
        # cached canonical CSR triple aliases indices/values and must not
        # ship a second time (the id-dedup contract arrays_nbytes pins)
        meta = {"fmt": self.fmt, "kind": "matrix",
                "nrows": self.nrows, "ncols": self.ncols}
        return meta, {"live_rows": self.live_rows, "hindptr": self.hindptr,
                      "indices": self.indices, "values": self.values}

    @classmethod
    def attach_buffers(cls, meta: dict, components: dict
                       ) -> "HypersparseStore":
        return cls(meta["nrows"], meta["ncols"], components["live_rows"],
                   components["hindptr"], components["indices"],
                   components["values"])

    def copy(self) -> "HypersparseStore":
        return HypersparseStore(self.nrows, self.ncols, self.live_rows.copy(),
                                self.hindptr.copy(), self.indices.copy(),
                                self.values.copy())
