"""Column-major sparse storage — the native pull-direction format.

A ``CSCStore`` holds column pointers, row ids and values in column order —
exactly the CSR arrays *of the transpose*.  Pinning a matrix to CSC
(``Matrix.set_format("csc")``) makes ``transpose_csr`` free, so
pull-direction mxv/mxm and ``A.T`` stop paying the per-call
``transpose().tocsr()`` the seed implementation did; the row-major
canonical view is derived once and cached for kernels that want it.
"""

from __future__ import annotations

from .base import (MatrixStore, arrays_nbytes, csc_to_csr_arrays,
                   csr_to_csc_arrays, freeze_arrays)

__all__ = ["CSCStore"]


class CSCStore(MatrixStore):
    """CSC arrays held natively; CSR view derived and cached."""

    fmt = "csc"
    __slots__ = ("cindptr", "rindices", "cvalues", "_csr")

    def __init__(self, nrows: int, ncols: int, cindptr, rindices, cvalues):
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.cindptr = cindptr
        self.rindices = rindices
        self.cvalues = cvalues
        self._csr = None

    @classmethod
    def from_csr(cls, indptr, indices, values, nrows, ncols) -> "CSCStore":
        cindptr, rindices, cvalues = csr_to_csc_arrays(
            indptr, indices, values, nrows, ncols)
        st = cls(nrows, ncols, cindptr, rindices, cvalues)
        # the conversion input *is* the canonical view: keep it (frozen —
        # writes through it could never reach the authoritative arrays)
        st._csr = freeze_arrays((indptr, indices, values))
        return st

    def csr(self):
        if self._csr is None:
            self._csr = freeze_arrays(csc_to_csr_arrays(
                self.cindptr, self.rindices, self.cvalues,
                self.nrows, self.ncols))
        return self._csr

    @property
    def nvals(self) -> int:
        return int(self.rindices.size)

    def transpose_csr(self):
        # CSC of A == CSR of Aᵀ: no work at all.
        return self.cindptr, self.rindices, self.cvalues

    def nbytes_components(self) -> dict:
        return {"cindptr": int(self.cindptr.nbytes),
                "rindices": int(self.rindices.nbytes),
                "cvalues": int(self.cvalues.nbytes)}

    def cache_nbytes(self) -> int:
        return arrays_nbytes((self._csr,))

    def export_buffers(self):
        meta = {"fmt": self.fmt, "kind": "matrix",
                "nrows": self.nrows, "ncols": self.ncols}
        return meta, {"cindptr": self.cindptr, "rindices": self.rindices,
                      "cvalues": self.cvalues}

    @classmethod
    def attach_buffers(cls, meta: dict, components: dict) -> "CSCStore":
        return cls(meta["nrows"], meta["ncols"], components["cindptr"],
                   components["rindices"], components["cvalues"])

    def copy(self) -> "CSCStore":
        return CSCStore(self.nrows, self.ncols, self.cindptr.copy(),
                        self.rindices.copy(), self.cvalues.copy())
