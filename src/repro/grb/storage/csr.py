"""Row-major sparse storage — the reference format.

``CSRStore`` holds the canonical triple natively; it is the default format,
the one every other store converts from/to, and the layout all results are
verified against.  The CSC view of the content (= the transpose's CSR
arrays) is built once on demand and cached, mirroring LAGraph's cached
``G->AT``: repeated pull-direction steps pay the conversion only once.
"""

from __future__ import annotations

import numpy as np

from .base import MatrixStore, arrays_nbytes, csr_to_csc_arrays

__all__ = ["CSRStore"]


class CSRStore(MatrixStore):
    """CSR arrays held directly (zero conversion cost either way)."""

    fmt = "csr"
    __slots__ = ("indptr", "indices", "values", "_csc")

    def __init__(self, nrows: int, ncols: int, indptr, indices, values):
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.indptr = indptr
        self.indices = indices
        self.values = values
        self._csc = None

    @classmethod
    def empty(cls, nrows: int, ncols: int, dtype) -> "CSRStore":
        return cls(nrows, ncols,
                   np.zeros(nrows + 1, dtype=np.int64),
                   np.empty(0, dtype=np.int64),
                   np.empty(0, dtype=dtype))

    @classmethod
    def from_csr(cls, indptr, indices, values, nrows, ncols) -> "CSRStore":
        # inputs may be another store's frozen canonical cache; the CSR
        # store is authoritative and mutable, so unfreeze by copying
        arrays = [a if a.flags.writeable else a.copy()
                  for a in (indptr, indices, values)]
        return cls(nrows, ncols, *arrays)

    def csr(self):
        return self.indptr, self.indices, self.values

    @property
    def nvals(self) -> int:
        return int(self.indices.size)

    def transpose_csr(self):
        if self._csc is None:
            self._csc = csr_to_csc_arrays(self.indptr, self.indices,
                                          self.values, self.nrows, self.ncols)
        return self._csc

    def nbytes_components(self) -> dict:
        return {"indptr": int(self.indptr.nbytes),
                "indices": int(self.indices.nbytes),
                "values": int(self.values.nbytes)}

    def cache_nbytes(self) -> int:
        return arrays_nbytes((self._csc,))

    def export_buffers(self):
        meta = {"fmt": self.fmt, "kind": "matrix",
                "nrows": self.nrows, "ncols": self.ncols}
        return meta, {"indptr": self.indptr, "indices": self.indices,
                      "values": self.values}

    @classmethod
    def attach_buffers(cls, meta: dict, components: dict) -> "CSRStore":
        return cls(meta["nrows"], meta["ncols"], components["indptr"],
                   components["indices"], components["values"])

    def copy(self) -> "CSRStore":
        return CSRStore(self.nrows, self.ncols, self.indptr.copy(),
                        self.indices.copy(), self.values.copy())
