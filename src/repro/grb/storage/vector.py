"""Sparse vector storage — the seed's (indices, values) pair as a store.

``SparseVec`` is the default vector format: a sorted, duplicate-free int64
index array plus matching values.  The bitmap view is a lazily built cache
(exactly the seed ``Vector._bitmap`` behaviour), so converting a vector to
:class:`~repro.grb.storage.bitmap.BitmapVec` and back costs no more than
one cache fill did before.
"""

from __future__ import annotations

import numpy as np

from .base import VectorStore, arrays_nbytes

__all__ = ["SparseVec"]


class SparseVec(VectorStore):
    """Sorted (indices, values) held natively; bitmap view cached."""

    fmt = "sparse"
    __slots__ = ("idx", "vals", "_bm")

    def __init__(self, size: int, idx, vals):
        self.size = int(size)
        self.idx = idx
        self.vals = vals
        self._bm = None

    @classmethod
    def empty(cls, size: int, dtype) -> "SparseVec":
        return cls(size, np.empty(0, dtype=np.int64),
                   np.empty(0, dtype=dtype))

    def sparse(self):
        return self.idx, self.vals

    def bitmap(self):
        if self._bm is None:
            present = np.zeros(self.size, dtype=bool)
            present[self.idx] = True
            dense = np.zeros(self.size, dtype=self.vals.dtype)
            dense[self.idx] = self.vals
            self._bm = (present, dense)
        return self._bm

    @property
    def nvals(self) -> int:
        return int(self.idx.size)

    def nbytes_components(self) -> dict:
        return {"idx": int(self.idx.nbytes),
                "vals": int(self.vals.nbytes)}

    def cache_nbytes(self) -> int:
        return arrays_nbytes((self._bm,))

    def export_buffers(self):
        meta = {"fmt": self.fmt, "kind": "vector", "size": self.size}
        return meta, {"idx": self.idx, "vals": self.vals}

    @classmethod
    def attach_buffers(cls, meta: dict, components: dict) -> "SparseVec":
        return cls(meta["size"], components["idx"], components["vals"])

    def copy(self) -> "SparseVec":
        return SparseVec(self.size, self.idx.copy(), self.vals.copy())
