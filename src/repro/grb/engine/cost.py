"""The unified cost model: every tunable the planner consults, in one place.

Before the engine existed these constants were scattered — the masked-mxm
chooser lived in ``_kernels/masked_matmul.py``, the dense-pull threshold in
``operations.py``, the Beamer push/pull constants in
``lagraph/algorithms/bfs.py``.  Planner rules (:mod:`repro.grb.engine.rules`)
now read *this* module at decision time, so monkeypatching any constant here
re-routes every call that consults it — the same forcing idiom
:mod:`repro.grb.storage.policy` established::

    monkeypatch.setattr(cost, "DOT_PROBE_COST", 0.0)   # force the dot kernel
    monkeypatch.setattr(cost, "FUSION_ENABLED", False) # decompose epilogues

Kernel *mechanism* caps (e.g. the dense-flag grid cap of the dot probe)
stay next to their kernels: they tune how a chosen kernel executes, not
which kernel is chosen.

Cost units are relative: one compiled SciPy flop ≡ 1.0.  The write-cost
terms price the part of a multiply the flop counts miss — materialising and
mask-filtering the product (``FALLBACK_WRITE_COST`` per estimated product
entry) versus emitting at most one output per mask entry
(``DOT_WRITE_COST``).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    # switches
    "DOT_ENABLED", "MASK_RESTRICT_ENABLED", "FUSION_ENABLED",
    "MULTI_FUSION_ENABLED", "PLAN_CACHE_ENABLED",
    # masked-mxm chooser
    "DOT_PROBE_COST", "SCIPY_FLOP_COST", "EXPAND_FLOP_COST", "FLOP_SAMPLE",
    "MASKED_MIN_NNZ", "LIVE_ROW_FRACTION",
    "DOT_WRITE_COST", "FALLBACK_WRITE_COST",
    # mxv / vxm density chooser
    "DENSE_PULL_FRACTION",
    # batched-frontier (msbfs) choosers
    "MSBFS_AUTO_BATCH_THRESHOLD", "MSBFS_PROBE_DENSITY",
    "MSBFS_FUSE_FRONTIER_K",
    # frontier-direction (Beamer) chooser
    "PUSHPULL_ALPHA", "PUSHPULL_BETA", "BFS_DO_MIN_AVG_DEGREE",
    # worker-pool sharding (repro.grb.pool)
    "POOL_MIN_WORK", "POOL_INLINE_LIMIT", "POOL_MULTIPLAN_ENABLED",
    # estimators
    "dot_probe_cost", "expand_flops_estimate", "expand_flops_exact",
    "product_nnz_estimate", "choose_masked_method",
]

# ---------------------------------------------------------------------------
# master switches (ablation / bisection aids)
# ---------------------------------------------------------------------------

#: Master switch for the dot3 masked-SpGEMM kernel.
DOT_ENABLED = True
#: Master switch for mask-driven row restriction + pre-reduce filtering on
#: the fallback (SciPy / expand) mxm paths.
MASK_RESTRICT_ENABLED = True
#: Master switch for epilogue fusion: with ``False`` every fused plan
#: decomposes into the seed sequence (materialised intermediates between
#: stages) — what ``benchmarks/bench_fused_epilogue.py`` measures against.
#: Also gates multi-output fusion (below): off means *every* chain — single
#: or multi consumer — replays the call-at-a-time reference.
FUSION_ENABLED = True
#: Multi-output fusion in :mod:`repro.grb.engine.multiplan`: two consumers
#: of one producer executing in the producer's single output pass.  Only
#: effective when ``FUSION_ENABLED`` is also on; switch off independently
#: to ablate just the DAG-level fusion while epilogues stay fused.
MULTI_FUSION_ENABLED = True
#: The keyed plan cache (:mod:`repro.grb.engine.plancache`): repeated
#: identical dispatches skip the rule choosers and reuse the claimed
#: rule's operand feeds.  ``False`` re-analyses every call (the cold
#: baseline ``benchmarks/bench_plan_cache.py`` measures against).
PLAN_CACHE_ENABLED = True

# ---------------------------------------------------------------------------
# masked-mxm chooser (dot3 vs mask-restricted fallback)
# ---------------------------------------------------------------------------

#: Relative cost of one dot probe lane (a flag gather / bounded or global
#: searchsorted) ...
DOT_PROBE_COST = 0.4
#: ... versus one flop on SciPy's compiled CSR kernel ...
SCIPY_FLOP_COST = 1.0
#: ... versus one flop on the vectorised gather/sort expand kernel.
EXPAND_FLOP_COST = 4.0
#: A-entries sampled for the expand-path flop estimate.
FLOP_SAMPLE = 512

#: Cost of emitting one dot output candidate (≤ one per mask entry).
DOT_WRITE_COST = 0.5
#: Cost of materialising + mask-filtering one estimated product entry on
#: the fallback paths — the output-write term the flop counts miss.
FALLBACK_WRITE_COST = 1.0

#: Combined operand nnz below which the masked engine stands down entirely
#: (no chooser, no row restriction): tiny products are cheaper to compute
#: in full than to analyse.
MASKED_MIN_NNZ = 1 << 15

#: Row restriction only engages when the mask leaves at most this fraction
#: of the output rows alive — slicing the operand to skip a handful of dead
#: rows costs more than computing them.
LIVE_ROW_FRACTION = 0.75

# ---------------------------------------------------------------------------
# mxv / vxm density chooser
# ---------------------------------------------------------------------------

#: Frontier density above which plus-reducible mxv/vxm switch to the dense
#: (SciPy) path.  Mirrors SS:GrB's sparse→bitmap heuristic.
DENSE_PULL_FRACTION = 0.10

# ---------------------------------------------------------------------------
# batched-frontier (msbfs) choosers
# ---------------------------------------------------------------------------

#: ``method="auto"`` msbfs uses the compiled-product path for batches this
#: big (below it, per-source sweeps win).
MSBFS_AUTO_BATCH_THRESHOLD = 2
#: Frontier density (nvals / grid) above which a probe level beats a push
#: level: the expected number of probes until a hit scales like the
#: inverse density — the Beamer direction switch of Alg. 2, batched.
MSBFS_PROBE_DENSITY = 0.05
#: Frontiers with fewer live entries than this skip the masked ``mxm``
#: entirely: consecutive near-empty levels run as raw-array neighbour
#: expansions and merge into the output once per run (~13× on the small
#: road grid, 64 sources).  0 disables level fusion.
MSBFS_FUSE_FRONTIER_K = 8192

# ---------------------------------------------------------------------------
# frontier-direction (push/pull) chooser
# ---------------------------------------------------------------------------

#: Beamer heuristic constants (GAP uses alpha=15, beta=18): pull when the
#: frontier's out-edges outnumber the unexplored edges / alpha, push while
#: the frontier holds fewer than n / beta vertices.
PUSHPULL_ALPHA = 15.0
PUSHPULL_BETA = 18.0

#: Average degree at/above which Basic-mode BFS opts into direction
#: optimisation (the transpose build has to amortise).
BFS_DO_MIN_AVG_DEGREE = 4.0

# ---------------------------------------------------------------------------
# worker-pool sharding (repro.grb.pool)
# ---------------------------------------------------------------------------

#: Minimum work units — mask entries for the sharded dot kernel, operand
#: stored entries for the row-blocked products — before the pool rules
#: claim a plan.  Below it, process dispatch overhead (task pickling, a
#: pipe round-trip per block) dwarfs the parallel compute; tests zero it
#: (monkeypatch) to force the sharded tier on tiny inputs.
POOL_MIN_WORK = 1 << 16
#: Operands at or below this many bytes ship inline inside the task
#: message instead of through a shared-memory placement: one pickle of a
#: small frontier is cheaper than a segment create + attach round-trip.
POOL_INLINE_LIMIT = 1 << 16
#: Master switch for MultiPlan's concurrent dispatch of independent DAG
#: nodes when the pool is enabled (the per-node sequential loop is the
#: bit-identity reference either way — concurrency never regroups work).
POOL_MULTIPLAN_ENABLED = True


# ---------------------------------------------------------------------------
# estimators
# ---------------------------------------------------------------------------

def dot_probe_cost(la: np.ndarray, lb: np.ndarray) -> int:
    """Exact probe count of the dot kernel: ``Σ min(|A(i,:)|, |Bᵀ(j,:)|)``.

    O(mask nvals) — cheap enough that the chooser uses the exact value
    rather than the ``mask nvals × avg degree`` approximation.
    """
    return int(np.minimum(la, lb).sum())


def expand_flops_estimate(a_indices: np.ndarray,
                          b_row_lengths: np.ndarray) -> float:
    """Sampled flop estimate for the unmasked product ``A ⊕.⊗ B``.

    Samples every ``nnz(A) / FLOP_SAMPLE``-th A entry (deterministic — no
    RNG) and extrapolates the mean B-row length to the full entry count.
    """
    nnz = a_indices.size
    if nnz == 0:
        return 0.0
    step = max(1, nnz // FLOP_SAMPLE)
    sampled = a_indices[::step]
    return float(b_row_lengths[sampled].mean()) * nnz


def expand_flops_exact(a_indices: np.ndarray,
                       b_row_lengths: np.ndarray) -> int:
    """Exact flop count of the unmasked product (telemetry only — O(nnz))."""
    if a_indices.size == 0:
        return 0
    return int(b_row_lengths[a_indices].sum())


def product_nnz_estimate(est_flops: float, nrows: int, ncols: int) -> float:
    """Estimated stored-entry count of the full product.

    Crude but cheap: the product can't hold more entries than it performs
    flops, nor more than the output grid.  This is the write-cost input —
    it only needs to be the right order of magnitude, and it is exact in
    the two regimes that matter (flop-sparse products, where every flop
    tends to land on a fresh entry, and near-dense products capped by the
    grid).
    """
    return min(est_flops, float(nrows) * float(ncols))


def choose_masked_method(cost_dot: float, est_flops: float, *,
                         scipy_path: bool, mask_nvals: int = 0,
                         est_out_nnz: float = 0.0) -> str:
    """``"dot"`` or ``"fallback"`` from the weighted cost comparison.

    Both sides price compute *and* output writing: the dot kernel emits at
    most one entry per mask entry, while the fallback materialises the
    estimated full product and discards the non-mask part in the
    write-back.
    """
    if not DOT_ENABLED:
        return "fallback"
    flop_cost = SCIPY_FLOP_COST if scipy_path else EXPAND_FLOP_COST
    dot_total = cost_dot * DOT_PROBE_COST + mask_nvals * DOT_WRITE_COST
    fb_total = est_flops * flop_cost + est_out_nnz * FALLBACK_WRITE_COST
    return "dot" if dot_total <= fb_total else "fallback"
