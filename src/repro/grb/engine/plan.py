"""Plan objects: every GraphBLAS call described before it is executed.

A :class:`Plan` is a small declarative record — which operation, which
operands, what mask/accumulator/descriptor bits, which output target — that
the rule registry (:mod:`repro.grb.engine.rules`) routes to a kernel
strategy.  Building a plan does no work beyond dimension checks; executing
it (:func:`repro.grb.engine.execute`) is where kernels run.

Epilogue fusion
---------------
``then_apply`` / ``then_select`` / ``then_reduce_rowwise`` /
``then_reduce_scalar`` append *epilogues*: consumers of the producing
kernel's result that run inside its output pass, on the raw
``(keys, values)`` arrays, instead of materialising an intermediate
matrix/vector first (GraphBLAS non-blocking-mode fusion, scoped to
single-consumer chains).  With :data:`repro.grb.engine.cost.FUSION_ENABLED`
switched off, the same plan decomposes into the seed sequence —
intermediates materialised between stages — which is the bit-identity
reference and the ablation baseline.

A plan whose ``out`` is ``None`` returns its result raw — ``(keys, values)``
arrays, or a scalar after ``then_reduce_scalar`` — letting algorithm hot
loops consume kernel output without an intermediate object.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as _dc_replace
from typing import Optional, Tuple

from ..errors import DimensionMismatch, InvalidValue
from ..mask import Mask, as_mask

__all__ = [
    "Epilogue", "Plan",
    "plan_mxm", "plan_mxv", "plan_vxm", "plan_ewise_add", "plan_ewise_mult",
    "plan_apply", "plan_select", "plan_assign", "plan_assign_scalar",
    "plan_update", "plan_bfs_step",
]


@dataclass(frozen=True)
class Epilogue:
    """One fused consumer of a producing kernel's output pass.

    ``kind`` is ``"apply"`` (UnaryOp over the values), ``"select"``
    (SelectOp predicate dropping entries), ``"reduce_rowwise"`` (Monoid
    reduction to per-row values) or ``"reduce_scalar"`` (Monoid reduction to
    one scalar, optionally over ``|values|``).
    """

    kind: str
    op: object = None
    thunk: object = None
    absolute: bool = False


@dataclass
class Plan:
    """A described-but-not-yet-executed GraphBLAS call.

    Attributes
    ----------
    op:
        Operation kind (``"mxm"``, ``"mxv"``, ``"vxm"``, ``"ewise_add"``,
        ``"ewise_mult"``, ``"apply"``, ``"select"``, ``"assign"``,
        ``"assign_scalar"``, ``"bfs_step"``).
    out:
        Output object, or ``None`` to return raw arrays / a scalar.
    args:
        Operand tuple (operation-specific; see the builders).
    operator:
        The Semiring / BinaryOp / UnaryOp / SelectOp / scalar payload.
    mask, accum, replace:
        The write-back transaction parameters (mask already normalised).
        Raw-output plans (``out=None``) have no write-back, so builders
        reject ``accum``/``replace`` there; a mask instead restricts the
        computed result itself.
    transpose_b:
        Descriptor-style B-operand transposition (mxm only;
        ``transpose_a`` is folded into the operand by the builder).
    epilogues:
        Fused consumers, applied in order to the kernel's output arrays.
    meta:
        Planner scratch: rules that *decline* a plan leave their decision
        detail here so the eventual telemetry event carries it (e.g. the
        masked-mxm chooser's probe/flop estimates survive into the
        fallback rule's event).  Keys starting with ``_`` are private
        bookkeeping (builder operands, rule work arrays) and never reach
        telemetry events.
    """

    op: str
    out: object
    args: tuple
    operator: object
    mask: Optional[Mask] = None
    accum: object = None
    replace: bool = False
    transpose_b: bool = False
    epilogues: Tuple[Epilogue, ...] = ()
    meta: dict = field(default_factory=dict)

    # -- fused-chain construction ---------------------------------------
    def _with(self, epilogue: Epilogue) -> "Plan":
        return _dc_replace(self, epilogues=self.epilogues + (epilogue,),
                           meta=dict(self.meta))

    def then_apply(self, op, thunk=None) -> "Plan":
        """Fuse ``apply(op)`` onto this plan's output pass."""
        return self._with(Epilogue("apply", op, thunk))

    def then_select(self, op, thunk=None) -> "Plan":
        """Fuse ``select(op, thunk)`` onto this plan's output pass."""
        return self._with(Epilogue("select", op, thunk))

    def then_reduce_rowwise(self, monoid) -> "Plan":
        """Fuse a per-row reduction; the plan then yields ``(rows, vals)``."""
        return self._with(Epilogue("reduce_rowwise", monoid))

    def then_reduce_scalar(self, monoid, absolute: bool = False) -> "Plan":
        """Fuse a scalar reduction (optionally of ``|values|``); the plan
        then yields a scalar and performs no write-back."""
        return self._with(Epilogue("reduce_scalar", monoid,
                                   absolute=absolute))

    # -- introspection ---------------------------------------------------
    @property
    def mask_kind(self) -> str:
        """``"none"`` / ``"structural"`` / ``"valued"``, with a
        ``"complement-"`` prefix when complemented."""
        m = self.mask
        if m is None:
            return "none"
        kind = "structural" if m.structural else "valued"
        return f"complement-{kind}" if m.complemented else kind

    def describe(self) -> dict:
        """Compact telemetry payload describing the call shape."""
        opname = getattr(self.operator, "name", None)
        return {
            "op": self.op,
            "operator": opname,
            "mask_kind": self.mask_kind,
            "accum": getattr(self.accum, "name", None),
            "replace": self.replace,
            "fused": len(self.epilogues),
        }


def _check(cond: bool, msg: str):
    if not cond:
        raise DimensionMismatch(msg)


def _check_raw(op: str, out, accum, replace: bool):
    """Raw-output plans (``out=None``) have no write-back to honour an
    accumulator or replace flag — reject them rather than silently
    dropping the semantics."""
    if out is None and (accum is not None or replace):
        raise InvalidValue(
            f"{op}: accum/replace require an output object (out=None "
            f"plans return the raw result with no write-back)")


# ---------------------------------------------------------------------------
# builders (dimension checks happen here, once, whatever executes later)
# ---------------------------------------------------------------------------

def plan_mxm(c, a, b, semiring, *, mask=None, accum=None, replace=False,
             transpose_a=False, transpose_b=False) -> Plan:
    """``C⟨M⟩⊙= A ⊕.⊗ B`` (``transpose_a`` already folded by the caller
    keeps the planner simple: rules see it resolved)."""
    if transpose_a:
        a = a.T
    bn_rows = b.ncols if transpose_b else b.nrows
    bn_cols = b.nrows if transpose_b else b.ncols
    _check(a.ncols == bn_rows, f"mxm: A.ncols {a.ncols} != B.nrows {bn_rows}")
    if c is not None:
        _check(c.nrows == a.nrows and c.ncols == bn_cols,
               f"mxm: C shape {c.shape} != ({a.nrows}, {bn_cols})")
    _check_raw("mxm", c, accum, replace)
    return Plan("mxm", c, (a, b), semiring, mask=as_mask(mask), accum=accum,
                replace=replace, transpose_b=transpose_b,
                meta={"_bn_cols": bn_cols})


def plan_mxv(w, a, u, semiring, *, mask=None, accum=None,
             replace=False) -> Plan:
    """``w⟨m⟩⊙= A ⊕.⊗ u`` — the "pull" direction."""
    _check(u.size == a.ncols, f"mxv: u.size {u.size} != A.ncols {a.ncols}")
    if w is not None:
        _check(w.size == a.nrows, f"mxv: w.size {w.size} != A.nrows {a.nrows}")
    _check_raw("mxv", w, accum, replace)
    return Plan("mxv", w, (a, u), semiring, mask=as_mask(mask), accum=accum,
                replace=replace)


def plan_vxm(w, u, a, semiring, *, mask=None, accum=None,
             replace=False) -> Plan:
    """``wᵀ⟨mᵀ⟩⊙= uᵀ ⊕.⊗ A`` — the "push" direction."""
    _check(u.size == a.nrows, f"vxm: u.size {u.size} != A.nrows {a.nrows}")
    if w is not None:
        _check(w.size == a.ncols, f"vxm: w.size {w.size} != A.ncols {a.ncols}")
    _check_raw("vxm", w, accum, replace)
    return Plan("vxm", w, (u, a), semiring, mask=as_mask(mask), accum=accum,
                replace=replace)


def _is_vector(x) -> bool:
    return hasattr(x, "size") and not hasattr(x, "nrows")


def _plan_ewise(kind, out, a, b, op, mask, accum, replace) -> Plan:
    if _is_vector(a):
        a._check_same_size(b)
        if out is not None:
            _check(out.size == a.size, f"{kind}: output size mismatch")
    else:
        a._check_same_shape(b)
        if out is not None:
            _check(out.shape == a.shape, f"{kind}: output shape mismatch")
    _check_raw(kind, out, accum, replace)
    return Plan(kind, out, (a, b), op, mask=as_mask(mask), accum=accum,
                replace=replace)


def plan_ewise_add(out, a, b, op, *, mask=None, accum=None,
                   replace=False) -> Plan:
    """``C⟨M⟩⊙= A op∪ B`` (union of structures; op only on the overlap)."""
    return _plan_ewise("ewise_add", out, a, b, op, mask, accum, replace)


def plan_ewise_mult(out, a, b, op, *, mask=None, accum=None,
                    replace=False) -> Plan:
    """``C⟨M⟩⊙= A op∩ B`` (intersection of structures)."""
    return _plan_ewise("ewise_mult", out, a, b, op, mask, accum, replace)


def plan_apply(out, src, op, thunk=None, *, mask=None, accum=None,
               replace=False) -> Plan:
    """``C⟨M⟩⊙= f(A, k)``."""
    _check_raw("apply", out, accum, replace)
    return Plan("apply", out, (src,), op, mask=as_mask(mask), accum=accum,
                replace=replace, meta={"_thunk": thunk})


def plan_select(out, src, op, thunk=None, *, mask=None, accum=None,
                replace=False) -> Plan:
    """``C⟨M⟩⊙= A⟨f(A, k)⟩``."""
    _check_raw("select", out, accum, replace)
    return Plan("select", out, (src,), op, mask=as_mask(mask), accum=accum,
                replace=replace, meta={"_thunk": thunk})


def plan_update(out, t, *, mask=None, accum=None, replace=False) -> Plan:
    """``C⟨M⟩⊙= T``: write an already-computed object through the mask.

    The plan form of :func:`repro.grb.operations.update` — plannable so
    the lazy layer can record it and the multi-output fusion rules can
    absorb it into a producing kernel's output pass (the ``p⟨s(q)⟩ = q``
    step of the BFS level)."""
    if _is_vector(t):
        _check(out.size == t.size, "update: size mismatch")
    else:
        _check(out.shape == t.shape, "update: shape mismatch")
    return Plan("update", out, (t,), None, mask=as_mask(mask), accum=accum,
                replace=replace)


def plan_assign(w, u, indices=None, *, mask=None, accum=None,
                replace=False) -> Plan:
    """``w⟨m⟩(i)⊙= u`` — assign into a sub-range (``None`` = GrB_ALL)."""
    return Plan("assign", w, (u,), None, mask=as_mask(mask), accum=accum,
                replace=replace, meta={"_indices": indices})


def plan_assign_scalar(w, value, indices=None, *, mask=None, accum=None,
                       replace=False) -> Plan:
    """``w⟨m⟩(i)⊙= s`` — scalar assign to a sub-range (or everywhere)."""
    return Plan("assign_scalar", w, (), value, mask=as_mask(mask),
                accum=accum, replace=replace, meta={"_indices": indices})


def plan_bfs_step(frontier_edges: float, unexplored_edges: float,
                  frontier_nvals: int, n: int) -> Plan:
    """One frontier-expansion step of a direction-optimised traversal.

    A *planning-only* plan: executing it returns ``"push"`` or ``"pull"``
    (the Beamer chooser routed through the rule registry, so the decision
    is forceable and telemetry-observable like every other planner rule).
    """
    return Plan("bfs_step", None, (), None, meta={
        "frontier_edges": float(frontier_edges),
        "unexplored_edges": float(unexplored_edges),
        "frontier_nvals": int(frontier_nvals),
        "n": int(n),
    })
