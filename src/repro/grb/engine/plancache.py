"""The keyed plan cache: repeated identical queries skip the chooser.

Every dispatch of a cacheable plan is keyed by its **shape** — the
operation kind, the operator, the descriptor bits (mask kind, accumulator,
replace, transposition), the epilogue chain, and a *signature* per operand
— mapped to the claiming rule, its decision detail, and the reusable
**operand feeds** the rule's analysis computed (the dot kernel's
mask-coordinate/length arrays, the fallback paths' live-row sets, the
ewise rules' bitmap views).  On a hit, dispatch jumps straight to the
claimed rule with the feeds re-attached: none of the per-call analysis —
probe counting, flop sampling, live-row scans — runs at all.

Operand signatures
------------------
An operand's signature is ``(uid, store_version)``: the uid is unique for
the process lifetime and the version bumps on every mutation, so a stale
entry can never be *served* — it simply stops matching.  Objects derived
deterministically from others (``pattern()``, ``tril``/``triu``/
``select``, ``ewise_add`` conveniences, ``extract``, the cached
transpose) additionally carry a **lineage** signature naming the
derivation and the parents' signatures; two derivations of the same
parents at the same versions are bit-identical by construction, so
repeated queries that rebuild their working matrices from a registered
graph (``A.pattern().tril(-1)`` …) still hit.

Safety
------
Planner rules are result-identical by the engine's core invariant (the
parity suite forces every rule against the reference), so even a colliding
*rule pin* could only cost performance — but the feeds are content-derived
arrays, so feed reuse is keyed exactly: every operand of the plan,
including the mask's object and the output, contributes its signature.
Version keys make invalidation implicit; an entry whose shape matches but
whose versions moved is overwritten (counted as an invalidation).
Decision-only plans (``bfs_step``), whose *result* is the decision, are
never cached.

Counters (hits / misses / invalidations) are process-global and surfaced
as ``grb.telemetry`` events — each cached dispatch's decision event
carries ``plan_cache: "hit" | "miss"``, and invalidations emit their own
``op="plancache"`` event.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from ...obs import identity as _identity
from ...obs import metrics as _metrics
from .. import telemetry
from . import cost

__all__ = ["CacheEntry", "PlanCacheStats", "shape_key", "lookup", "store",
           "clear", "stats", "set_capacity", "CACHEABLE_OPS", "FEED_KEYS"]

#: Always-on cache-outcome counter (hit / miss / invalidate), the metric
#: twin of the :func:`stats` snapshot.
_EVENTS = _metrics.counter(
    "grb_plan_cache_total", "Plan-cache outcomes by event kind",
    labels=("event",))

#: Operation kinds routed through the cache.  Only ``mxm`` qualifies: the
#: masked-SpGEMM chooser is the one analysis whose per-call cost (probe
#: counting, flop sampling, mask coordinate splits, live-row scans — all
#: O(nnz)) dwarfs a cache probe.  Every other kind's ``applies`` chain is
#: a handful of scalar checks, so keying it would cost more than it
#: saves — and ``bfs_step`` must never be cached at all (its *result* is
#: the decision).
CACHEABLE_OPS = frozenset({"mxm"})

#: Private ``plan.meta`` keys holding rule-computed operand feeds that are
#: safe to reuse under an exact signature match (content-derived arrays).
#: ``_dot`` / ``_rows`` come from the chooser's analysis; ``_dot_probe`` —
#: the dot kernel's structure-resolution stage — is produced by the run
#: itself and picked up by the post-run feed update.
FEED_KEYS = ("_dot", "_dot_probe", "_bitmaps", "_rows")

#: Per-entry cap on cached feed bytes (a probe feed scales with the
#: product's structural hits) and the total the cache may pin overall;
#: beyond the total, least-recently-used entries are evicted.
FEED_ENTRY_BYTES_CAP = 1 << 27  # cost: mechanism-cap (cache memory ceiling, not a chooser threshold)
FEED_TOTAL_BYTES_CAP = 1 << 28  # cost: mechanism-cap (cache memory ceiling, not a chooser threshold)


def _feed_nbytes(value) -> int:
    if isinstance(value, (tuple, list)):
        return sum(_feed_nbytes(v) for v in value)
    if isinstance(value, dict):
        return sum(_feed_nbytes(v) for v in value.values())
    return int(getattr(value, "nbytes", 0))


@dataclass
class CacheEntry:
    versions: tuple
    rule: str
    detail: dict
    feeds: dict
    nbytes: int = 0
    #: Attribution label resolved at store time from the shape's operand
    #: identities (see :mod:`repro.obs.identity`); ``None`` when no
    #: registered graph's signature appears among the operands.
    graph: Optional[str] = None


@dataclass
class PlanCacheStats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    entries: int = 0
    feed_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


_lock = threading.Lock()
_entries: "OrderedDict[tuple, CacheEntry]" = OrderedDict()
_capacity = 1024
_total_bytes = 0
_hits = 0
_misses = 0
_invalidations = 0


def _cost_fingerprint() -> tuple:
    """The cost-model constants the cacheable rules consult.

    Part of every key: a decision cached under one tuning must never be
    served under another — the parity suite *forces* paths by
    monkeypatching these, and a stale pin would silently measure the wrong
    kernel.  The telemetry-active bit rides along because decision details
    carry extra (exact-flop) fields only when a hook is installed.
    """
    return (cost.DOT_ENABLED, cost.MASK_RESTRICT_ENABLED,
            cost.FUSION_ENABLED, cost.DOT_PROBE_COST, cost.SCIPY_FLOP_COST,
            cost.EXPAND_FLOP_COST, cost.FLOP_SAMPLE, cost.MASKED_MIN_NNZ,
            cost.LIVE_ROW_FRACTION, cost.DOT_WRITE_COST,
            cost.FALLBACK_WRITE_COST, cost.DENSE_PULL_FRACTION,
            telemetry.active())


def _operand_sig(obj):
    """``(ident, version)`` — uid-based, or lineage-based when still valid."""
    sig = getattr(obj, "_plan_sig", None)
    if sig is None:
        return None
    return sig()


def shape_key(plan) -> Optional[tuple]:
    """The cache key of a plan, as ``(shape, versions)``.

    ``shape`` holds the operation kind, operator, descriptor bits,
    epilogue chain and every operand's *identity*; ``versions`` the
    matching content-version tuple — a shape hit with moved versions is an
    invalidation, not an unrelated miss.  Returns ``None`` when any
    operand cannot be signed (the plan is then simply not cached).
    Thunks are *not* part of the key: no rule's choice or feeds depend on
    them (they parameterise the result, which every rule computes
    identically).
    """
    idents = []
    versions = []
    for obj in plan.args:
        s = _operand_sig(obj)
        if s is None:
            return None
        idents.append(s[0])
        versions.append(s[1])
    m = plan.mask
    if m is not None:
        s = _operand_sig(m.obj)
        if s is None:
            return None
        idents.append(("mask", m.structural, m.complemented, s[0]))
        versions.append(s[1])
    # the output contributes nothing: no cacheable rule's ``applies``
    # reads the output at all (mxm decisions depend on the inputs and the
    # mask alone; the write-back runs fresh every dispatch), so a query's
    # fresh output object must not poison the key — and an ``out=None``
    # analysis pass (engine.preplan's decision warming) shares its entry
    # with the real dispatches.  Revisit if an op whose rules inspect
    # ``plan.out`` ever becomes cacheable (mxv's fused-dense-accum reads
    # the output's fill, for example).
    op = plan.operator
    shape = (
        plan.op,
        (type(op).__name__, getattr(op, "name", None),
         getattr(op, "uses_coords", None)) if op is not None else None,
        getattr(plan.accum, "name", None) if plan.accum is not None else None,
        plan.replace,
        plan.transpose_b,
        tuple((e.kind, getattr(e.op, "name", None), e.absolute)
              for e in plan.epilogues),
        tuple(idents),
        _cost_fingerprint(),
    )
    return shape, tuple(versions)


def lookup(key) -> Optional[CacheEntry]:
    """The entry for ``key = (shape, versions)``, or ``None``.

    A shape match with moved versions counts as an invalidation (the entry
    is dropped; the caller will re-analyse and :func:`store`)."""
    global _hits, _misses, _invalidations, _total_bytes
    shape, versions = key
    invalidated = None
    with _lock:
        entry = _entries.get(shape)
        if entry is not None and entry.versions == versions:
            _entries.move_to_end(shape)
            _hits += 1
            if _metrics.ENABLED:
                _EVENTS.labels("hit").inc()
            return entry
        if entry is not None:
            del _entries[shape]
            _total_bytes -= entry.nbytes
            _invalidations += 1
            invalidated = entry
        _misses += 1
    if _metrics.ENABLED:
        _EVENTS.labels("miss").inc()
        if invalidated is not None:
            _EVENTS.labels("invalidate").inc()
    # the user hook runs OUTSIDE the lock: a hook that itself dispatches
    # (or reads stats()) must never re-enter it
    if invalidated is not None and telemetry.active():
        # graph/shape_key make serve-side invalidation storms attributable:
        # the graph label is the registered owner of an operand identity in
        # the shape, the shape key a stable fingerprint for correlating
        # repeated invalidations of one plan shape across events
        telemetry.record({"op": "plancache", "event": "invalidate",
                          "plan_op": shape[0], "rule": invalidated.rule,
                          "graph": invalidated.graph,
                          "shape_key": format(hash(shape) & 0xFFFFFFFFFFFF,
                                              "012x")})
    return None


def _evict_locked() -> None:
    global _total_bytes
    while len(_entries) > _capacity or _total_bytes > FEED_TOTAL_BYTES_CAP:
        if not _entries:
            break
        _, old = _entries.popitem(last=False)
        _total_bytes -= old.nbytes


def store(key, rule: str, detail: dict, feeds: dict) -> None:
    global _total_bytes
    shape, versions = key
    nbytes = _feed_nbytes(feeds)
    if nbytes > FEED_ENTRY_BYTES_CAP:
        feeds, nbytes = {}, 0       # decision still cached, feeds too large
    graph = _identity.find(shape)
    with _lock:
        old = _entries.get(shape)
        if old is not None:
            _total_bytes -= old.nbytes
        _entries[shape] = CacheEntry(versions, rule, dict(detail), feeds,
                                     nbytes, graph)
        _entries.move_to_end(shape)
        _total_bytes += nbytes
        _evict_locked()


def update_feeds(key, feeds: dict) -> None:
    """Merge run-produced feeds into an existing entry (post-run pickup).

    Only applies when the entry still matches the key's versions — a
    concurrent invalidation simply drops the update."""
    global _total_bytes
    shape, versions = key
    nbytes = _feed_nbytes(feeds)
    if nbytes > FEED_ENTRY_BYTES_CAP:
        return
    with _lock:
        entry = _entries.get(shape)
        if entry is None or entry.versions != versions:
            return
        if all(k in entry.feeds for k in feeds):
            return
        _total_bytes -= entry.nbytes
        entry.feeds = dict(feeds)
        entry.nbytes = nbytes
        _total_bytes += nbytes
        _evict_locked()


def clear() -> None:
    """Drop every entry and zero the counters."""
    global _hits, _misses, _invalidations, _total_bytes
    with _lock:
        _entries.clear()
        _hits = _misses = _invalidations = 0
        _total_bytes = 0


def set_capacity(n: int) -> None:
    global _capacity
    with _lock:
        _capacity = int(n)
        _evict_locked()


def stats() -> PlanCacheStats:
    with _lock:
        return PlanCacheStats(_hits, _misses, _invalidations, len(_entries),
                              _total_bytes)
