"""``repro.grb.engine`` — the unified plan/dispatch layer.

Every GraphBLAS call is first described as a small :class:`Plan` object
(op, operands + formats, mask kind, accumulator, descriptor bits, output
target), then routed through the registered planner rules
(:mod:`~repro.grb.engine.rules`) under one cost model
(:mod:`~repro.grb.engine.cost`).  The scattered pre-engine choosers — the
masked-mxm dot-vs-fallback decision, the Beamer push/pull heuristic, the
per-kernel format fast paths — all live here now, as rules whose decisions
share the :mod:`repro.grb.telemetry` event stream and whose constants are
monkeypatchable in one module.

Quick tour::

    from repro.grb import engine

    # the operations layer does this for every call:
    engine.execute(engine.plan_mxv(w, A, u, sr, accum=plus))

    # algorithm hot loops fuse consumers onto the producing kernel:
    tri, vals = engine.execute(
        engine.plan_mxm(None, A, A, plus_pair, mask=structure(A))
              .then_reduce_rowwise(PLUS_MONOID))

    # and force paths for tests / ablations:
    with engine.force_rule("mxv", "mxv-gather"):
        ...

``out=None`` plans return raw ``(keys, values)`` arrays (or a scalar after
``then_reduce_scalar``) — the single-consumer fusion contract.  Setting
``cost.FUSION_ENABLED = False`` decomposes every fused chain into the seed
sequence with materialised intermediates, the bit-identity reference.
"""

from __future__ import annotations

from . import cost
from . import plancache
from .plan import (
    Epilogue,
    Plan,
    plan_apply,
    plan_assign,
    plan_assign_scalar,
    plan_bfs_step,
    plan_ewise_add,
    plan_ewise_mult,
    plan_mxm,
    plan_mxv,
    plan_select,
    plan_update,
    plan_vxm,
)
from .rules import (
    PlanningError,
    Rule,
    analyze,
    dispatch,
    force_rule,
    register,
    rules_for,
)
from . import executors  # noqa: F401  (imports register the rule set)
from . import multiplan  # noqa: F401  (imports register the fusion rules)
from .executors import write_matrix, write_vector
from .multiplan import MultiPlan

__all__ = [
    "cost", "plancache", "Plan", "Epilogue", "MultiPlan",
    "execute", "dispatch", "analyze",
    "plan_mxm", "plan_mxv", "plan_vxm", "plan_ewise_add", "plan_ewise_mult",
    "plan_apply", "plan_select", "plan_assign", "plan_assign_scalar",
    "plan_update", "plan_bfs_step", "choose_direction", "preplan",
    "Rule", "register", "rules_for", "force_rule", "PlanningError",
    "write_vector", "write_matrix",
]


def execute(plan: Plan):
    """Route a plan through the rule registry and run the claiming rule."""
    return dispatch(plan)


def choose_direction(frontier_edges: float, unexplored_edges: float,
                     frontier_nvals: int, n: int) -> str:
    """``"push"`` or ``"pull"`` for one frontier-expansion step.

    The Beamer chooser (GAP's alpha/beta heuristic), routed through the
    ``bfs_step`` rule pair so the decision is forceable
    (``cost.PUSHPULL_ALPHA`` / ``cost.PUSHPULL_BETA``) and shows up in the
    telemetry stream like every other planner decision.
    """
    return dispatch(plan_bfs_step(frontier_edges, unexplored_edges,
                                  frontier_nvals, n))


def preplan(a, *, profile: str = "default", plans=()) -> dict:
    """Warm the planner: operand state *and* cached decisions.

    Serving stacks call this at graph-registration time so the first query
    pays no one-off conversions: the canonical CSR view, the cached
    CSC/transpose arrays (what ``mxm-masked-dot`` feeds as ``Bᵀ`` and the
    pull kernels probe), and — under the ``"msbfs"`` profile — the all-ones
    pattern operands of the structural multiplies.

    ``plans`` warms *decisions*, not just operand state: each plan is run
    through the rule choosers (:func:`analyze`) **without executing**, so
    its claimed rule and operand feeds land in the keyed plan cache
    (:mod:`~repro.grb.engine.plancache`) and the first real dispatch of
    the same shape is a hit.  Returns a summary dict (also recorded as a
    ``preplan`` telemetry event when a hook is active).
    """
    import numpy as np

    from .. import telemetry

    st = a._S()
    st.csr()
    st.transpose_csr()
    built = ["csr", "transpose_csr"]
    if profile == "msbfs":
        a.pattern_operand(np.int64)
        built.append("pattern_operand")
    warmed = tuple(analyze(p) for p in plans)
    summary = {
        "op": "preplan", "profile": profile, "format": a.format,
        "nrows": a.nrows, "ncols": a.ncols, "nvals": a.nvals,
        "built": tuple(built), "warmed_rules": warmed,
    }
    if telemetry.active():
        telemetry.record(summary)
    return summary
