"""Sharded execution rules: row-blocked kernels on the worker pool.

Three rules, all on ``mxm``, registered *before* the serial rules (this
module is imported at the top of :mod:`executors`, and registration
order is trial order) so the pool claims eligible plans first:

``msbfs-rowblock-pool``
    the batched-frontier level shape — complemented structural mask,
    ``pair`` multiply — sharded over mask-live frontier rows.
``masked-dot-rowblock-pool``
    the dot3 kernel's plans (it defers to the serial chooser's own
    ``applies``, so kernel selection is unchanged), sharded over
    contiguous mask-entry chunks.
``mxm-rowblock-pool``
    every remaining SciPy-reducible product, sharded over mask-live (or
    all) output rows.

Bit-identity is by construction, not by luck: each worker runs *the same
kernel function* the serial rule runs, restricted to its block, and the
parent reassembles with the same merge —

* row blocks partition an ascending row set, and ``scipy_mxm`` emits
  row-major-ascending (key, value) pairs per block, so block-order
  concatenation *is* the serial kernel's globally sorted output;
* mask-entry chunks partition the ascending allowed-key order, each
  chunk's ``hit`` indices are offset by its start, and per-entry dot
  reductions never cross a chunk boundary.

Every rule declines when the pool is disabled (``REPRO_POOL_WORKERS``
unset/0 — the serial engine is untouched, bit-for-bit) or when the work
is below ``cost.POOL_MIN_WORK`` (process dispatch has a floor;
monkeypatch it to 0 to force the sharded tier on test-sized inputs).  A
cached plan that claimed a pool rule while the pool was up degrades to
the serial kernel in ``run`` if the pool has since gone away.
"""

from __future__ import annotations

import numpy as np

from .. import cancel as _cancel
from .. import pool as _pool
from . import cost
from .plan import Plan
from .rules import register

__all__ = []


def _pool_ready(plan: Plan) -> bool:
    a, b = plan.args
    return (_pool.pool_enabled()
            and a.nvals + b.nvals >= cost.POOL_MIN_WORK)


def _row_blocks(rows: np.ndarray, nblocks: int):
    """Contiguous partition of an ascending row set (empties dropped)."""
    return [blk for blk in np.array_split(rows, max(nblocks, 1))
            if blk.size]


def _task_deadline():
    token = _cancel.current_token()
    return None if token is None else token.remaining()


def _sharded_scipy_mxm(plan: Plan, detail: dict):
    """Row-blocked ``scipy_mxm`` on the pool; serial fallback if it left."""
    from . import executors as _ex
    a, b = plan.args
    if plan.transpose_b:
        b = b.T
    rows = _ex._live_rows_feed(plan, a.nrows, b.ncols)
    pool = _pool.get_pool()
    if pool is None:              # cached claim outliving the pool
        keys, vals = _ex.scipy_mxm(a, b, plan.operator, rows=rows)
        return _ex.finish(plan, keys, vals, is_vector=False,
                          nrows=a.nrows, ncols=b.ncols)
    if rows is None:
        rows = np.arange(a.nrows, dtype=np.int64)
    blocks = _row_blocks(rows, pool.size)
    if not blocks:
        return _ex.finish(plan, np.empty(0, np.int64),
                          np.empty(0, _ex._scipy_dtype(a, b, plan.operator)),
                          is_vector=False, nrows=a.nrows, ncols=b.ncols)
    a_ref = _pool.matrix_ref(a, "csr")
    b_ref = _pool.matrix_ref(b, "csr")
    deadline = _task_deadline()
    tasks = [{"kind": "mxm-block", "op": plan.op,
              "semiring": plan.operator.name,
              "a": a_ref, "b": b_ref, "rows": blk, "deadline": deadline}
             for blk in blocks]
    parts = pool.run_tasks(tasks)
    keys = np.concatenate([p[0] for p in parts])
    vals = np.concatenate([p[1] for p in parts])
    return _ex.finish(plan, keys, vals, is_vector=False,
                      nrows=a.nrows, ncols=b.ncols)


@register("mxm", "msbfs-rowblock-pool")
class _MsbfsRowblockPool:
    """Sharded batched-frontier expansion (the msbfs level multiply).

    Claims the ``C⟨¬s(L)⟩ = F pair.⊕ A`` shape — complemented structural
    mask, ``pair`` multiply, SciPy-reducible add — and splits the
    mask-live frontier rows (sources still exploring) into row blocks.
    """

    @staticmethod
    def applies(plan: Plan):
        a, b = plan.args
        sr = plan.operator
        mask = plan.mask
        if (mask is None or not mask.complemented or not mask.structural
                or sr.mult.name != "pair" or not sr.scipy_reducible()
                or not a.nvals or not b.nvals or not _pool_ready(plan)):
            return None
        rows = _live_rows_feed_shape(plan)
        pool_size = _pool.configured_workers()
        return {"method": "rowblock-pool", "workers": pool_size,
                "blocks": min(pool_size,
                              a.nrows if rows is None else rows.size)}

    run = staticmethod(_sharded_scipy_mxm)


@register("mxm", "masked-dot-rowblock-pool")
class _MaskedDotRowblockPool:
    """Sharded dot3: the serial chooser's plans, chunked over mask entries.

    Kernel *selection* is delegated wholesale to the serial rule's
    ``applies`` (same chooser, same ``plan.meta["_dot"]`` feed), so the
    pool never changes which kernel runs — only where.  The chooser's
    verdict is stashed under ``plan.meta["_pool_dot"]`` so the generic
    rowblock rule below can respect it without re-running the chooser.
    """

    @staticmethod
    def applies(plan: Plan):
        if not _pool.pool_enabled():
            return None
        from .executors import _MxmMaskedDot
        detail = _MxmMaskedDot.applies(plan)
        plan.meta["_pool_dot"] = "none" if detail is None else "dot"
        if detail is None:
            return None
        if detail["mask_nvals"] < cost.POOL_MIN_WORK:
            return None           # serial dot rule re-claims downstream
        pool_size = _pool.configured_workers()
        return dict(detail, method="dot-pool", workers=pool_size)

    @staticmethod
    def run(plan: Plan, detail: dict):
        from . import executors as _ex
        a, b = plan.args
        sr = plan.operator
        allowed, rows_m, cols_m, lengths, _ = plan.meta["_dot"]
        bn_cols = plan.meta["_bn_cols"]
        pool = _pool.get_pool()
        if rows_m is None or pool is None:
            return _ex._MxmMaskedDot.run(plan, detail)
        bounds = np.linspace(0, rows_m.size,
                             min(pool.size, rows_m.size) + 1).astype(np.int64)
        cuts = [(int(bounds[i]), int(bounds[i + 1]))
                for i in range(bounds.size - 1)
                if bounds[i + 1] > bounds[i]]
        a_ref = _pool.matrix_ref(a, "csr")
        bt_ref = _pool.matrix_ref(b, "csr" if plan.transpose_b else "tcsr")
        cast = _ex._scipy_dtype(a, b, sr) if sr.scipy_reducible() else None
        deadline = _task_deadline()
        la, lb = lengths
        tasks = [{"kind": "dot-block", "op": plan.op, "semiring": sr.name,
                  "a": a_ref, "bt": bt_ref,
                  "rows": rows_m[s:e], "cols": cols_m[s:e],
                  "lengths": (la[s:e], lb[s:e]),
                  "inner": int(a.ncols),
                  "cast": None if cast is None else np.dtype(cast).str,
                  "deadline": deadline}
                 for s, e in cuts]
        parts = pool.run_tasks(tasks)
        hit = np.concatenate([p[0] + s for p, (s, _) in zip(parts, cuts)])
        t_keys = allowed[hit]
        t_vals = np.concatenate([p[1] for p in parts])
        plan.meta["_premasked"] = True  # output ⊆ mask by construction
        return _ex.finish(plan, t_keys, t_vals, is_vector=False,
                          nrows=a.nrows, ncols=bn_cols)


@register("mxm", "mxm-rowblock-pool")
class _MxmRowblockPool:
    """Sharded compiled-CSR multiply for the remaining reducible plans.

    Stands aside whenever the chooser routed the plan to the dot kernel
    (``plan.meta["_pool_dot"]``) — the serial dot rule is still the
    better kernel, and stealing its plans would change *which* kernel
    runs, not just where.
    """

    @staticmethod
    def applies(plan: Plan):
        a, b = plan.args
        if (not plan.operator.scipy_reducible() or not a.nvals
                or not b.nvals or not _pool_ready(plan)):
            return None
        if plan.meta.get("_pool_dot") == "dot":
            return None
        rows = _live_rows_feed_shape(plan)
        pool_size = _pool.configured_workers()
        return {"method": plan.meta.get("method", "rowblock-pool"),
                "workers": pool_size,
                "blocks": min(pool_size,
                              a.nrows if rows is None else rows.size)}

    run = staticmethod(_sharded_scipy_mxm)


def _live_rows_feed_shape(plan: Plan):
    """The live-row feed against the *effective* output shape."""
    from . import executors as _ex
    a, _ = plan.args
    return _ex._live_rows_feed(plan, a.nrows, plan.meta["_bn_cols"])
