"""The planner rule registry: one place where execution strategies live.

Every :class:`~repro.grb.engine.plan.Plan` is routed through the ordered
rule list registered for its operation kind.  A rule inspects the plan
(operand formats, mask kind, the cost model in
:mod:`repro.grb.engine.cost`) and either *claims* it — returning a decision
detail dict — or declines with ``None``.  The first claiming rule executes
the plan; its name and detail become one :mod:`repro.grb.telemetry`
decision event, so every chooser in the system is observable through the
same hook.

Rules are tried in registration order, most-specialised first; the last
rule for each kind is an always-applicable reference strategy, so dispatch
cannot fall through.  A rule that declines may stash partial analysis in
``plan.meta`` (e.g. the masked-mxm chooser's probe/flop counts) — dispatch
merges it into whichever event is eventually emitted.

Forcing
-------
Most forcing goes through the cost constants (zero a cost, raise a
threshold — the idiom the parity suite uses), but :func:`force_rule` pins a
kind to one named rule outright::

    with engine.force_rule("mxv", "mxv-gather"):
        ...   # every mxv in this block runs the gather strategy
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

from ...obs import metrics as _metrics
from ...obs import profile as _profile
from ...obs import trace as _trace
from ...testing import faults as _faults
from .. import telemetry
from .. import cancel as _cancel
from . import cost, plancache
from .plan import Plan

__all__ = ["Rule", "register", "rules_for", "dispatch", "analyze",
           "force_rule", "PlanningError"]


class PlanningError(RuntimeError):
    """No registered rule claimed a plan (a registry misconfiguration)."""


#: Always-on dispatch counter: one bump per executed plan, labelled by the
#: operation kind and the claiming rule — the cheapest possible answer to
#: "which strategies actually run in production".
_DISPATCHES = _metrics.counter(
    "grb_dispatch_total", "Plans dispatched, by operation and claiming rule",
    labels=("op", "rule"))


@dataclass(frozen=True)
class Rule:
    """One named execution strategy for one operation kind."""

    op: str
    name: str
    applies: Callable[[Plan], Optional[dict]]
    run: Callable[[Plan, dict], object]


_REGISTRY: Dict[str, List[Rule]] = {}
# context-local like the telemetry hook: a force_rule block in one request
# or thread can never reroute the plans of another (and nested blocks
# restore cleanly — each block snapshots an immutable mapping)
_forced_var: ContextVar[Mapping[str, str]] = ContextVar(
    "repro_grb_engine_forced_rules", default={})


def register(op: str, name: str):
    """Class/function decorator registering ``(applies, run)`` for ``op``.

    The decorated object must expose ``applies(plan) -> Optional[dict]``
    and ``run(plan, detail)``.  Registration order is trial order.
    """
    def deco(obj):
        rule = Rule(op, name, obj.applies, obj.run)
        _REGISTRY.setdefault(op, []).append(rule)
        return obj
    return deco


def rules_for(op: str) -> List[Rule]:
    """The registered rules for an operation kind, in trial order."""
    return list(_REGISTRY.get(op, ()))


@contextmanager
def force_rule(op: str, name: str):
    """Pin operation kind ``op`` to the rule called ``name`` for the block.

    The pinned rule's ``applies`` is still consulted (it may compute the
    detail the executor needs) but every other rule is skipped; a pinned
    rule that declines raises :class:`PlanningError` rather than falling
    through, so a test forcing a path can never silently measure another.
    """
    if not any(r.name == name for r in _REGISTRY.get(op, ())):
        raise KeyError(f"no rule {name!r} registered for op {op!r}")
    token = _forced_var.set({**_forced_var.get(), op: name})
    try:
        yield
    finally:
        _forced_var.reset(token)


def _emit(plan: Plan, rule_name: str, detail: dict, cached=None):
    # obs: gated-by-caller (every call site guards on telemetry.active())
    event = plan.describe()
    event.update(plan.meta)
    event.update(detail)
    event["rule"] = rule_name
    if cached is not None:
        event["plan_cache"] = cached
    # private planner scratch (underscore keys: builder operands,
    # rule work arrays) never belongs in an event
    for k in [k for k in event if k.startswith("_")]:
        del event[k]
    telemetry.record(event)


def _claim(plan: Plan, *, cache_key):
    """Find the claiming rule; returns ``(rule, detail)``.

    Consults the keyed plan cache first (unless a rule is forced for this
    kind): on a hit the cached decision's operand feeds are re-attached to
    ``plan.meta`` and no ``applies`` chain runs at all; on a miss the
    claiming rule's decision and feeds are stored for the next identical
    dispatch.
    """
    try:
        rules = _REGISTRY[plan.op]
    except KeyError:
        raise PlanningError(f"no rules registered for op {plan.op!r}") \
            from None
    forced = _forced_var.get().get(plan.op)
    if cache_key is not None and forced is None:
        hit = plancache.lookup(cache_key)
        if hit is not None:
            rule = next((r for r in rules if r.name == hit.rule), None)
            if rule is not None:
                plan.meta.update(hit.feeds)
                detail = dict(hit.detail)
                if telemetry.active():
                    _emit(plan, rule.name, detail, cached="hit")
                return rule, detail
    for rule in rules:
        if forced is not None and rule.name != forced:
            continue
        detail = rule.applies(plan)
        if detail is None:
            if forced is not None:
                raise PlanningError(
                    f"forced rule {forced!r} declined plan {plan.op!r}")
            continue
        if cache_key is not None and forced is None:
            feeds = {k: plan.meta[k] for k in plancache.FEED_KEYS
                     if k in plan.meta}
            plancache.store(cache_key, rule.name, detail, feeds)
        if telemetry.active():
            _emit(plan, rule.name, detail,
                  cached="miss" if cache_key is not None else None)
        return rule, detail
    raise PlanningError(f"no rule claimed plan {plan.op!r}")


def _cache_key(plan: Plan):
    if cost.PLAN_CACHE_ENABLED and plan.op in plancache.CACHEABLE_OPS:
        return plancache.shape_key(plan)
    return None


def _run_rule(plan: Plan, rule: Rule, detail: dict):
    """Execute the claiming rule, timing it when deep profiling is on."""
    if not _profile.deep_active():
        return rule.run(plan, detail)
    nnz_in = sum(int(getattr(a, "nvals", 0) or 0) for a in plan.args)
    cpu0 = time.process_time()
    t0 = time.perf_counter()
    out = rule.run(plan, detail)
    wall = time.perf_counter() - t0
    cpu = time.process_time() - cpu0
    _profile.record_rule(plan.op, rule.name, wall, cpu, nnz_in,
                         int(getattr(out, "nvals", 0) or 0))
    return out


def _feed_pickup(plan: Plan, cache_key) -> None:
    if cache_key is not None and _forced_var.get().get(plan.op) is None:
        # post-run feed pickup: some feeds (the dot kernel's probe
        # resolution) are produced by the run itself
        feeds = {k: plan.meta[k] for k in plancache.FEED_KEYS
                 if k in plan.meta}
        if feeds:
            plancache.update_feeds(cache_key, feeds)


def dispatch(plan: Plan):
    """Route ``plan`` through its rule list and execute the claiming rule.

    Observability: every dispatch bumps ``grb_dispatch_total{op, rule}``;
    with a trace sink installed the dispatch becomes a ``plan:<op>`` span
    wrapping a ``plan-choose`` span (cache probe + ``applies`` chain) and
    a ``kernel:<rule>`` span (the rule's execution, epilogues and
    write-back included — :func:`repro.grb.engine.executors.finish` opens
    child spans for those stages).

    Resilience: dispatch is a cooperative cancellation checkpoint (a
    deadline-carrying serve request aborts here between kernel steps,
    see :mod:`repro.grb.cancel`) and the ``"kernel"`` fault-injection
    site (:mod:`repro.testing.faults`) — both cost one global/ContextVar
    read when unused.
    """
    _cancel.checkpoint()
    if _faults.ACTIVE:
        _faults.fire("kernel", op=plan.op)
    cache_key = _cache_key(plan)
    if _trace.active():
        with _trace.span("plan:" + plan.op, cat="plan", op=plan.op) as sp:
            with _trace.span("plan-choose", cat="plan"):
                rule, detail = _claim(plan, cache_key=cache_key)
            sp.set(rule=rule.name)
            if _metrics.ENABLED:
                _DISPATCHES.labels(plan.op, rule.name).inc()
            with _trace.span("kernel:" + rule.name, cat="kernel",
                             op=plan.op):
                out = _run_rule(plan, rule, detail)
            _feed_pickup(plan, cache_key)
            return out
    rule, detail = _claim(plan, cache_key=cache_key)
    if _metrics.ENABLED:
        _DISPATCHES.labels(plan.op, rule.name).inc()
    out = _run_rule(plan, rule, detail)
    _feed_pickup(plan, cache_key)
    return out


def analyze(plan: Plan) -> str:
    """Run the chooser for ``plan`` — caching its decision — *without*
    executing it; returns the claiming rule's name.

    This is what :func:`repro.grb.engine.preplan` uses to warm planner
    *decisions* (not just operand state): the analysed plan's cache entry
    makes the first real dispatch of the same shape a hit.
    """
    rule, _ = _claim(plan, cache_key=_cache_key(plan))
    return rule.name
