"""MultiPlan execution: a ready expression subgraph, fused where possible.

When the lazy layer (:mod:`repro.grb.expr`) materialises a subgraph, the
nodes arrive here in record order (a valid topological order).  Before
dispatching them one by one, :class:`MultiPlan` tries the registered
**multi-output fusion rules**: patterns where two consumers of one
producer can execute inside the producer's single output pass, so the
intermediate write-back machinery between them is never paid.  This is the
step beyond PR 4's epilogue fusion, which could only fuse consumers
hanging off a *single* producing call.

Shipped rules
-------------
``fused-frontier-parent``
    ``vxm``/``mxv`` (no accum, ``replace=True``) into a frontier ``q``
    immediately followed by ``update(p, q, mask=structure(q))`` — the two
    calls of Alg. 1's BFS level.  The kernel's raw output writes the
    frontier directly (the replace write-back degenerates to a plain set)
    and the parents take one disjoint union merge, skipping the update's
    full mask-resolution pass.  This is the engine-resident form of the
    hand fusion ``bfs_parent_fused`` used to perform outside the plan
    layer.
``fused-improve-merge``
    A ``vxm``/``mxv`` relaxation into ``x`` with *two* consumers — a
    ``select`` (the strict-improvement filter picking the next frontier)
    and an ``ewise_add`` min-merge into the distance vector — both applied
    to the kernel's raw output in one pass (delta-stepping's inner loop).

Every fused group replays the decomposed sequence bit for bit: a rule only
claims patterns whose write-backs it can reproduce exactly, and with
:data:`~repro.grb.engine.cost.FUSION_ENABLED` or
:data:`~repro.grb.engine.cost.MULTI_FUSION_ENABLED` switched off the nodes
simply dispatch one at a time — the identity reference the parity suite
pins.  Each fused group emits one ``grb.telemetry`` decision event
(``op="multiplan"``) naming the rule and the ops it consumed.
"""

from __future__ import annotations

import threading
from typing import Callable, List

import numpy as np

from ...obs import metrics as _metrics
from ...obs import trace as _trace
from .. import telemetry
from .. import cancel as _cancel
from ..expr import _DONE
from .._kernels.ewise import setdiff_keys, union_merge
from ..vector import Vector
from . import cost
from .plan import Plan
from .rules import dispatch

__all__ = ["MultiPlan", "register_fusion", "fusion_rules"]

_FUSIONS: List[tuple] = []

#: Always-on fusion counter: groups actually executed fused, by rule.
_FUSED = _metrics.counter(
    "grb_multiplan_fused_total", "Fused groups executed, by fusion rule",
    labels=("rule",))

#: Independent-node groups dispatched concurrently (pool-enabled runs).
_CONCURRENT = _metrics.counter(
    "grb_pool_multiplan_groups_total",
    "Independent DAG-node groups dispatched concurrently")


def register_fusion(name: str):
    """Register ``fn(nodes, i) -> int`` as a multi-output fusion rule.

    ``fn`` inspects ``nodes[i:]`` and either executes a fused group —
    returning how many nodes it consumed — or returns 0 to decline.
    Rules are tried in registration order at every unexecuted position.
    """
    def deco(fn: Callable):
        _FUSIONS.append((name, fn))
        return fn
    return deco


def fusion_rules() -> List[str]:
    """Names of the registered multi-output fusion rules, in trial order."""
    return [name for name, _ in _FUSIONS]


class MultiPlan:
    """An ordered ready subgraph, executed with multi-output fusion."""

    def __init__(self, nodes):
        self.nodes = list(nodes)

    def execute(self):
        nodes = self.nodes
        with _trace.span("multiplan", cat="plan", nodes=len(nodes)):
            self._execute(nodes)

    def _execute(self, nodes):
        fuse = cost.FUSION_ENABLED and cost.MULTI_FUSION_ENABLED
        i = 0
        while i < len(nodes):
            # the engine executor's per-node cancellation checkpoint: a
            # deadline-carrying serve request unwinds between DAG nodes
            # rather than computing results nobody is waiting for
            _cancel.checkpoint()
            if fuse:
                consumed = 0
                for name, rule in _FUSIONS:  # cancel: checkpoint-exempt (bounded by the registered-rule count; stepping loop checkpoints per node)
                    consumed = rule(nodes, i)
                    if consumed:
                        # the fused group's kernel dispatches traced their
                        # own spans; the instant marks which rule grouped
                        # them (declined attempts stay silent — they are
                        # a handful of attribute checks)
                        if _trace.active():
                            _trace.instant("fusion:" + name, cat="kernel",
                                           consumed=consumed)
                        if _metrics.ENABLED:
                            _FUSED.labels(name).inc()
                        if telemetry.active():
                            telemetry.record({
                                "op": "multiplan", "rule": name,
                                "fused_ops": tuple(
                                    n.plan.op for n in
                                    nodes[i:i + consumed]),
                            })
                        break
                if consumed:
                    i += consumed
                    continue
            if _concurrency_enabled():
                group = _ready_run(nodes, i)
                if len(group) > 1:
                    _dispatch_concurrently(group)
                    i += len(group)
                    continue
            node = nodes[i]
            node.result = dispatch(node.plan)
            node.state = _DONE
            i += 1


# ---------------------------------------------------------------------------
# concurrent dispatch of independent nodes (pool-enabled runs)
# ---------------------------------------------------------------------------

def _concurrency_enabled() -> bool:
    if not cost.POOL_MULTIPLAN_ENABLED:
        return False
    from .. import pool as _pool
    return _pool.pool_enabled()


def _ready_run(nodes, i):
    """Maximal run of consecutive nodes whose dependencies are all done.

    Statement recording captures every hazard as a dep edge — read-after-
    write (input produced by a pending node), write-after-read (readers of
    the overwritten object), write-after-write (the object's pending
    producer).  A node whose deps are all ``_DONE`` therefore depends on
    nothing still pending — including its left neighbours in this run —
    so the whole run is mutually independent and safe to dispatch
    concurrently.
    """
    group = []
    for node in nodes[i:]:  # cancel: checkpoint-exempt (attribute scan bounded by plan length; stepping loop checkpoints per node)
        if any(dep.state != _DONE for dep in node.deps):
            break
        group.append(node)
    return group


def _dispatch_concurrently(group) -> None:
    """One thread per node, each in a copied context (cancel scope,
    forced-rule and telemetry state survive the hop).  Results and states
    land exactly as the sequential loop would set them; any failure is
    re-raised after every thread has parked, so no node is left half-run.
    """
    import contextvars

    errors: list = []

    def _run(node, ctx) -> None:
        try:
            node.result = ctx.run(dispatch, node.plan)
            node.state = _DONE
        except BaseException as exc:  # noqa: BLE001 - relayed below
            errors.append(exc)

    threads = [threading.Thread(target=_run,
                                args=(node, contextvars.copy_context()),
                                daemon=True)
               for node in group]
    for t in threads:  # cancel: checkpoint-exempt (bounded by group size; each thread's dispatch observes the copied cancel scope)
        t.start()
    for t in threads:  # cancel: checkpoint-exempt (join barrier; cancellation unwinds through the threads themselves)
        t.join()
    if _metrics.ENABLED:
        _CONCURRENT.inc()
    if errors:
        raise errors[0]


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------

def _raw_twin(plan):
    """The producer plan re-targeted to raw output.

    Valid only for accum-free ``replace=True`` writes: there the final
    output is exactly ``T⟨M⟩`` — the same arrays the raw plan yields (its
    mask restricts the computed result itself).  Built directly (not via
    ``dataclasses.replace``) — this sits on the per-level hot path.
    """
    return Plan(plan.op, None, plan.args, plan.operator, mask=plan.mask,
                transpose_b=plan.transpose_b, meta=dict(plan.meta))


def _simple_producer(plan) -> bool:
    """vxm/mxv whose write-back degenerates to a plain set of ``T⟨M⟩``."""
    return (plan.op in ("vxm", "mxv") and plan.out is not None
            and isinstance(plan.out, Vector) and plan.accum is None
            and plan.replace and not plan.epilogues)


def _set_raw(w: Vector, keys, vals):
    """``w = raw`` exactly as ``write_vector`` would land it."""
    w._set_sparse(keys.astype(np.int64, copy=False),
                  vals.astype(w.type.dtype, copy=False))
    return w


# ---------------------------------------------------------------------------
# fusion rules
# ---------------------------------------------------------------------------

@register_fusion("fused-frontier-parent")
def _fuse_frontier_parent(nodes, i) -> int:
    """``q⟨M, r⟩ = kernel`` then ``p⟨s(q)⟩ = q`` in one output pass.

    The producer's raw arrays become ``q`` wholesale (replace + no accum:
    nothing of the old frontier survives) and land in ``p`` through one
    disjoint union merge — ``q ⊆ ¬s(p)`` is *not* assumed; only the exact
    ``masked_write`` selection is replayed: every ``q`` entry is inside
    its own structural mask, and the surviving ``p`` entries are the ones
    outside ``q``'s keys.
    """
    if i + 1 >= len(nodes):
        return 0
    p_node, c_node = nodes[i], nodes[i + 1]
    prod, cons = p_node.plan, c_node.plan
    if not _simple_producer(prod):
        return 0
    q = prod.out
    m = cons.mask
    if not (cons.op == "update" and cons.args[0] is q
            and isinstance(cons.out, Vector) and cons.out is not q
            and cons.accum is None and not cons.replace
            and m is not None and m.obj is q and m.structural
            and not m.complemented and not cons.epilogues):
        return 0

    keys, vals = dispatch(_raw_twin(prod))
    _set_raw(q, keys, vals)
    p_node.result = q
    p_node.state = _DONE

    p = cons.out
    q_idx, q_vals = q._idx, q._vals       # post-cast stored arrays
    st = p._store
    if st.fmt == "bitmap":
        # the output pass proper: O(|q|) scatter into the parents' flag /
        # value grids — the decomposed update rebuilds p's O(n) sparse
        # arrays per level instead (content identical; this is where the
        # old hand fusion's dense-parents win now lives, engine-resident)
        fresh = int(np.count_nonzero(~st.present[q_idx]))
        st.present[q_idx] = True
        st.dense[q_idx] = q_vals.astype(p.type.dtype, copy=False)
        st._nvals += fresh
        st._sp = None                     # cached sparse view is stale
        p._version += 1
    else:
        keep = setdiff_keys(p._idx, q_idx)  # p entries q doesn't overwrite
        m_keys = np.concatenate((q_idx, p._idx[keep]))
        m_vals = np.concatenate((
            q_vals.astype(p.type.dtype, copy=False),
            p._vals[keep].astype(p.type.dtype, copy=False)))
        order = np.argsort(m_keys, kind="stable")
        p._set_sparse(m_keys[order], m_vals[order])
    c_node.result = p
    c_node.state = _DONE
    return 2


@register_fusion("fused-improve-merge")
def _fuse_improve_merge(nodes, i) -> int:
    """Relaxation with two consumers: improvement filter + min-merge.

    ``x⟨r⟩ = kernel`` followed by ``select(y, x, op, thunk)`` and
    ``ewise_add(t, t, x, ⊕)``: both consumers read the producer's output
    pass directly — the filter on the freshly cast arrays (exactly what a
    decomposed ``select`` reads from ``x``'s store), the merge as one
    sorted union against ``t``'s entries.
    """
    if i + 2 >= len(nodes):
        return 0
    p_node, s_node, m_node = nodes[i], nodes[i + 1], nodes[i + 2]
    prod, sel, mrg = p_node.plan, s_node.plan, m_node.plan
    if not _simple_producer(prod):
        return 0
    x = prod.out
    if not (sel.op == "select" and sel.args[0] is x
            and isinstance(sel.out, Vector)
            and sel.out is not x and sel.mask is None and sel.accum is None
            and not sel.epilogues):
        return 0
    t = mrg.out
    if not (mrg.op == "ewise_add" and mrg.args[0] is t and mrg.args[1] is x
            and isinstance(t, Vector) and t is not x and t is not sel.out
            and mrg.mask is None and mrg.accum is None and not mrg.replace
            and not mrg.epilogues):
        return 0

    keys, vals = dispatch(_raw_twin(prod))
    _set_raw(x, keys, vals)
    p_node.result = x
    p_node.state = _DONE

    x_idx, x_vals = x._idx, x._vals
    # consumer 1: the improvement filter, on the same pass
    op = sel.operator
    thunk = sel.meta.get("_thunk")
    if op.uses_coords:
        keep = op(x_vals, x_idx, np.zeros(x_idx.size, dtype=np.int64), thunk)
    else:
        keep = op(x_vals, None, None, thunk)
    y = sel.out
    # no mask, no accum: the write-back is a plain set (replace-indifferent)
    y._set_sparse(x_idx[keep],
                  x_vals[keep].astype(y.type.dtype, copy=False))
    s_node.result = y
    s_node.state = _DONE

    # consumer 2: the min-merge, against t's current entries
    m_keys, m_vals = union_merge(t._idx, t._vals, x_idx, x_vals,
                                 mrg.operator)
    t._set_sparse(m_keys, m_vals.astype(t.type.dtype, copy=False))
    m_node.result = t
    m_node.state = _DONE
    return 3
