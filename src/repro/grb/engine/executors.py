"""Execution strategies: the rules behind every plan, and their kernels' glue.

This module is where the scattered pre-engine dispatch logic of
``operations.py`` now lives, reorganised as registered planner rules:

* ``mxm`` — ``mxm-masked-dot`` (the dot3 masked-SpGEMM kernel, claimed via
  the unified chooser in :mod:`repro.grb.engine.cost`), ``mxm-scipy``
  (compiled plus.times-reducible path, mask-restricted to live rows) and
  ``mxm-expand`` (the always-applicable flop-expansion reference).
* ``mxv`` / ``vxm`` — ``*-fused-dense-accum`` (epilogue-fused dense
  accumulate, see below), the SciPy dense path above
  :data:`~repro.grb.engine.cost.DENSE_PULL_FRACTION` frontier density, and
  the sparse gather/push reference.
* ``ewise_add`` / ``ewise_mult`` — bitmap-layout dense merge when both
  operands are bitmap-resident, sorted-key merge otherwise (the format
  fast path that used to hide inside ``merge_objects``).
* ``apply`` / ``select`` — entry-wise evaluation directly on the source's
  arrays (value-only selects never expand coordinates — the
  ``apply_select`` fast path, now a visible rule).
* ``assign`` / ``assign_scalar`` — the spec's sub-range write transaction.
* ``bfs_step`` — the Beamer push/pull chooser as a planning-only rule pair.

Every rule funnels its kernel's raw ``(keys, values)`` result through
:func:`finish`, which applies any fused epilogues *before* the single
masked write-back — an ``apply``/``select`` riding on a multiply or merge
never materialises an intermediate object (unless
:data:`~repro.grb.engine.cost.FUSION_ENABLED` is off, in which case the
chain decomposes into the seed sequence, which is the bit-identity
reference).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ...obs import trace as _trace
from .. import cancel as _cancel
from .. import telemetry
from .._kernels import apply_select as _selectops
from .._kernels import masked_matmul as _mm
from .._kernels.ewise import (
    intersect_merge,
    intersect_merge_bitmap,
    setdiff_keys,
    union_merge,
    union_merge_bitmap,
)
from .._kernels.gather import expand_rows
from .._kernels.maskwrite import masked_write
from .._kernels.matmul import mxm_expand, mxv_gather, vxm_sparse
from ..mask import Mask
from ..matrix import Matrix
from ..ops.semiring import Semiring
from ..types import from_dtype
from ..vector import Vector
from . import cost
from .plan import Plan
from .rules import register

# registration order is trial order: importing the sharded pool rules
# *before* this module's own registrations puts them first in line, so an
# enabled pool claims eligible plans ahead of the serial kernels (they
# decline instantly when REPRO_POOL_WORKERS is unset)
from . import pool_rules  # noqa: E402,F401  (import is the registration)

__all__ = ["write_vector", "write_matrix", "finish", "scipy_mxm",
           "scipy_mxv", "mask_live_rows", "mask_key_filter"]

# SciPy keeps explicit zeros produced by cancellation in sparse matmul; probe
# once so the fast path knows whether structure needs a separate pattern
# product.
_probe = sp.csr_matrix(np.array([[1.0, -1.0]])) @ sp.csr_matrix(np.array([[1.0], [1.0]]))
_SCIPY_KEEPS_ZEROS = _probe.nnz == 1
del _probe


# ---------------------------------------------------------------------------
# write-back helpers (the spec transaction, shared by every rule)
# ---------------------------------------------------------------------------

def _mask_selection(mask: Optional[Mask]):
    """(allowed_keys, allowed_present, complemented) for the write-back.

    Bitmap-resident mask objects resolve through their dense flag array
    (O(1) membership per key — the storage-layer fast path); everything
    else materialises the sorted allowed-key set.
    """
    if mask is None:
        return None, None, False
    present = mask.allowed_present()
    if present is not None:
        return None, present, mask.complemented
    return mask.allowed_keys(), None, mask.complemented


def write_vector(w: Vector, t_idx, t_vals, mask: Optional[Mask], accum,
                 replace: bool):
    allowed, present, complemented = _mask_selection(mask)
    keys, vals = masked_write(
        w._idx, w._vals, t_idx, t_vals,
        accum=accum, allowed_keys=allowed, allowed_present=present,
        complement=complemented, replace=replace, out_dtype=w.type.dtype,
    )
    w._set_sparse(keys, vals)
    return w


def write_matrix(c: Matrix, t_keys, t_vals, mask: Optional[Mask], accum,
                 replace: bool):
    allowed, present, complemented = _mask_selection(mask)
    keys, vals = masked_write(
        c.keys(), c.values, t_keys, t_vals,
        accum=accum, allowed_keys=allowed, allowed_present=present,
        complement=complemented, replace=replace, out_dtype=c.type.dtype,
    )
    c._set_from_keys(keys, vals)
    return c


# ---------------------------------------------------------------------------
# epilogue application
# ---------------------------------------------------------------------------

def _epilogue_arrays(ep, keys, vals, is_vector: bool, ncols: int):
    """Run one epilogue directly on raw output arrays (the fused path)."""
    if ep.kind == "apply":
        out = _selectops.eval_unary(
            ep.op, vals, ep.thunk,
            rows=lambda: keys if is_vector else keys // np.int64(ncols),
            cols=lambda: (np.zeros(keys.size, dtype=np.int64) if is_vector
                          else keys % np.int64(ncols)))
        return keys, out
    if ep.kind == "select":
        op = ep.op
        if not op.uses_coords:
            keep = op(vals, None, None, ep.thunk)
        elif is_vector:
            keep = op(vals, keys, np.zeros(keys.size, dtype=np.int64),
                      ep.thunk)
        elif getattr(op, "keyed", False):
            # keyed predicate: consumes the linearised keys as-is, no
            # div/mod coordinate round-trip
            keep = op(vals, keys, None, ep.thunk)
        else:
            keep = op(vals, keys // np.int64(ncols), keys % np.int64(ncols),
                      ep.thunk)
        return keys[keep], vals[keep]
    if ep.kind == "reduce_rowwise":
        rows = keys if is_vector else keys // np.int64(ncols)
        return ep.op.reduce_groups(rows, vals)
    if ep.kind == "reduce_scalar":
        return ep.op.reduce_all(np.abs(vals) if ep.absolute else vals)
    raise ValueError(f"unknown epilogue kind {ep.kind!r}")


def _epilogue_materialised(ep, keys, vals, is_vector: bool, size,
                           nrows, ncols):
    """Run one epilogue through a materialised intermediate (fusion off).

    This replays the seed sequence exactly — build the object, call its
    method, re-extract the arrays — and is the bit-identity reference the
    fused path is tested against (and the baseline the fusion benchmark
    measures).
    """
    if is_vector:
        obj = Vector(from_dtype(vals.dtype), size)
        obj._set_sparse(keys, vals)
    else:
        obj = Matrix(from_dtype(vals.dtype), nrows, ncols)
        obj._set_from_keys(keys, vals)
    if ep.kind == "apply":
        t = obj.apply(ep.op, ep.thunk)
    elif ep.kind == "select":
        t = obj.select(ep.op, ep.thunk)
    elif ep.kind == "reduce_rowwise":
        t = obj.reduce_rowwise(ep.op)
        return t._idx, t._vals
    elif ep.kind == "reduce_scalar":
        v = obj._vals if is_vector else obj.values
        return ep.op.reduce_all(np.abs(v) if ep.absolute else v)
    else:
        raise ValueError(f"unknown epilogue kind {ep.kind!r}")
    if is_vector:
        return t._idx, t._vals
    return t.keys(), t.values


def finish(plan: Plan, keys, vals, *, is_vector: bool, size=None,
           nrows=None, ncols=None):
    """Apply fused epilogues, then resolve the plan's output contract.

    ``out=None`` plans yield raw ``(keys, values)`` (or the scalar of a
    ``reduce_scalar`` chain); otherwise the single masked write-back runs
    on the post-epilogue arrays.  The plan's mask/accum/replace describe
    that *final* write — with no output object, a mask instead restricts
    the computed result itself (``T⟨M⟩``), applied before any epilogue
    consumes it, so ``plan_mxm(None, A, A, sr, mask=...)`` yields exactly
    the entries a masked write into an empty output would keep.
    """
    # cancellation checkpoint between a kernel's compute pass and its
    # epilogue/write-back: with a deadline already blown, skip the
    # masked-write work too (one ContextVar read when no scope is active)
    _cancel.checkpoint()
    if (plan.out is None and plan.mask is not None
            and not plan.meta.get("_premasked")):
        # fallback-kernel output can carry non-mask entries; the dot rule's
        # cannot (it computes per mask entry) and marks itself _premasked
        allowed, present, complemented = _mask_selection(plan.mask)
        keys, vals = masked_write(
            np.empty(0, np.int64), np.empty(0, vals.dtype), keys, vals,
            accum=None, allowed_keys=allowed, allowed_present=present,
            complement=complemented, replace=True, out_dtype=vals.dtype)
    fused = cost.FUSION_ENABLED
    for i, ep in enumerate(plan.epilogues):
        with _trace.span("epilogue:" + ep.kind, cat="epilogue",
                         fused=fused):
            if ep.kind == "reduce_rowwise":
                # the chain becomes a vector of per-row values
                if fused:
                    keys, vals = _epilogue_arrays(ep, keys, vals, is_vector,
                                                  ncols)
                else:
                    keys, vals = _epilogue_materialised(
                        ep, keys, vals, is_vector, size, nrows, ncols)
                is_vector, size = True, nrows
                continue
            if ep.kind == "reduce_scalar":
                if fused:
                    return _epilogue_arrays(ep, keys, vals, is_vector, ncols)
                return _epilogue_materialised(ep, keys, vals, is_vector,
                                              size, nrows, ncols)
            if fused:
                keys, vals = _epilogue_arrays(ep, keys, vals, is_vector,
                                              ncols)
            else:
                keys, vals = _epilogue_materialised(ep, keys, vals,
                                                    is_vector, size, nrows,
                                                    ncols)
    if plan.out is None:
        return keys, vals
    with _trace.span("write", cat="write",
                     target="vector" if is_vector else "matrix"):
        if is_vector:
            return write_vector(plan.out, keys, vals, plan.mask, plan.accum,
                                plan.replace)
        return write_matrix(plan.out, keys, vals, plan.mask, plan.accum,
                            plan.replace)


# ---------------------------------------------------------------------------
# matmul fast-path helpers
# ---------------------------------------------------------------------------

def _scipy_operand(m: Matrix, use_values: bool, dtype):
    """SciPy CSR of ``m`` with values (cast) or the all-ones pattern.

    Pattern operands come from the per-store-version cache
    (:meth:`Matrix.pattern_operand`) instead of being rebuilt per call.
    Both views are cached CSR: SciPy's spmatmul converts non-CSR operands
    internally *per call*, so feeding a CSC-pinned operand "natively" here
    would re-pay that conversion every multiply — the cached canonical view
    pays it once.  (CSC-pinned operands do feed the dot kernel natively:
    its ``Bᵀ`` input is ``transpose_csr()``, free on a CSC store.)
    """
    if use_values:
        s = m.to_scipy()
        return s.astype(dtype, copy=False) if s.dtype != dtype else s
    return m.pattern_operand(dtype)


def _mult_uses(semiring: Semiring):
    """Which operands' values the multiply op reads: (use_a, use_b)."""
    name = semiring.mult.name
    return name in ("times", "first"), name in ("times", "second")


def _scipy_dtype(a: Matrix, b, semiring: Semiring) -> np.dtype:
    """The computation dtype of the SciPy fast path for these operands."""
    if semiring.mult.name == "pair":
        return np.dtype(np.int64)
    dt = semiring.mult_dtype(a.dtype, b.dtype)
    return np.dtype(np.int64) if dt == np.bool_ else np.dtype(dt)


def scipy_mxm(a: Matrix, b: Matrix, semiring: Semiring,
              rows: Optional[np.ndarray] = None):
    """plus.times-reducible ``C = A ⊕.⊗ B`` on SciPy; returns (keys, vals).

    ``rows`` restricts the product to a subset of A's rows (the mask-live
    rows — dead rows can never survive the write-back, so they are sliced
    off *before* the ``@``).  The per-(i,j) accumulation order is k-
    ascending either way, so restricted and full products are bit-identical
    on the surviving rows.
    """
    use_a, use_b = _mult_uses(semiring)
    dt = _scipy_dtype(a, b, semiring)
    sa = _scipy_operand(a, use_a, dt)
    if rows is not None:
        sa = sa[rows]
    prod = sa @ _scipy_operand(b, use_b, dt)
    prod = prod.tocsr()
    prod.sort_indices()
    prow = expand_rows(prod.indptr.astype(np.int64), prod.shape[0])
    row_ids = rows[prow] if rows is not None else prow
    keys = row_ids * np.int64(prod.shape[1]) + prod.indices.astype(np.int64)
    vals = prod.data
    if (not _SCIPY_KEEPS_ZEROS and (use_a or use_b)
            and not ((not use_a or a.values_all_ge_one())
                     and (not use_b or b.values_all_ge_one()))):
        # structure must come from a cancellation-proof pattern product;
        # skipped when every value-carrying operand is float with values
        # ≥ 1 (such products/sums stay ≥ 1 — no underflow-to-zero, no
        # integer wrap — so SciPy can never have pruned an entry)
        pa = _scipy_operand(a, False, np.int64)
        if rows is not None:
            pa = pa[rows]
        pat = (pa @ _scipy_operand(b, False, np.int64)).tocsr()
        pat.sort_indices()
        prow = expand_rows(pat.indptr.astype(np.int64), pat.shape[0])
        prow_ids = rows[prow] if rows is not None else prow
        pkeys = prow_ids * np.int64(pat.shape[1]) + pat.indices.astype(np.int64)
        out = np.zeros(pkeys.size, dtype=vals.dtype)
        pos = np.searchsorted(pkeys, keys)
        out[pos] = vals
        return pkeys, out
    return keys, vals


def scipy_mxv(a: Matrix, u: Vector, semiring: Semiring, *,
              swap_operands: bool = False):
    """plus-reducible dense ``w = A ⊕.⊗ u``; returns (idx, vals).

    ``swap_operands=True`` is used by vxm (``uᵀ A`` computed as ``Aᵀ u``):
    there the vector is the *first* multiply operand, so ``first``/``second``
    exchange which side's values they read.  Value structure: absent vector
    entries carry 0 in the bitmap and therefore vanish under plus.times
    arithmetic; the entry *structure* comes from a cancellation-proof
    pattern product.
    """
    use_a, use_b = _mult_uses(semiring)
    if swap_operands and semiring.mult.name in ("first", "second"):
        use_a, use_b = use_b, use_a
    if semiring.mult.name == "pair":
        dt = np.dtype(np.int64)
    else:
        dt = semiring.mult_dtype(a.dtype, u.dtype)
    if dt == np.bool_:
        dt = np.dtype(np.int64)
    present, dense = u.bitmap()
    sa = _scipy_operand(a, use_a, dt)
    uvec = dense.astype(dt, copy=False) if use_b else present.astype(dt)
    w_dense = sa @ uvec
    counts = _scipy_operand(a, False, np.int64) @ present.astype(np.int64)
    idx = np.flatnonzero(counts > 0).astype(np.int64)
    return idx, w_dense[idx]


def _mask_rows(mask: Optional[Mask], nrows: int) -> Optional[np.ndarray]:
    """Row set selected by a vector mask (pre-computation restriction)."""
    if mask is None:
        return None
    present = mask.allowed_present()
    if present is not None:       # bitmap-resident mask: flags are storage
        if mask.complemented:
            return np.flatnonzero(~present).astype(np.int64)
        return np.flatnonzero(present).astype(np.int64)
    allowed = mask.allowed_keys()
    if mask.complemented:
        present = np.zeros(nrows, dtype=bool)
        present[allowed] = True
        return np.flatnonzero(~present).astype(np.int64)
    return allowed


def mask_live_rows(mask: Optional[Mask], nrows: int,
                   ncols: int) -> Optional[np.ndarray]:
    """Output rows a masked write can still touch (``None`` = all of them).

    Non-complemented masks: rows holding at least one allowed mask entry.
    Complemented masks: rows whose mask row is not yet *full* (a full row
    blocks every position — BC's ``⟨¬s(P)⟩`` once a source has reached the
    whole graph).  Dead rows are sliced off before the product is computed.
    """
    if mask is None or not cost.MASK_RESTRICT_ENABLED:
        return None
    present = mask.allowed_present()
    if present is not None:
        counts = present.reshape(nrows, ncols).sum(axis=1)
    elif mask.structural and getattr(mask.obj, "nrows", None) == nrows:
        # structural matrix mask: per-row allowed counts are just the
        # stored-entry counts — O(nrows), no key materialisation
        counts = np.diff(mask.obj.indptr)
    else:
        allowed = mask.allowed_keys()
        counts = np.bincount(allowed // np.int64(ncols), minlength=nrows)
    live = (counts < ncols) if mask.complemented else (counts > 0)
    n_live = int(np.count_nonzero(live))
    if n_live > cost.LIVE_ROW_FRACTION * nrows:
        # pruning a sliver of rows costs more (operand slicing) than it saves
        return None
    return np.flatnonzero(live).astype(np.int64)


def mask_key_filter(mask: Optional[Mask]):
    """``keys -> keep`` predicate matching the write-back's mask selection.

    Applied by the expand kernel *before* its group-reduce so contributions
    the mask would discard never pay the sort.  Bitmap-resident masks
    resolve with O(1) flag gathers; everything else searches the sorted
    allowed-key set (the same machinery :func:`masked_write` uses, so the
    selection is identical by construction).
    """
    if mask is None or not cost.MASK_RESTRICT_ENABLED:
        return None
    present = mask.allowed_present()
    if present is not None:
        if mask.complemented:
            return lambda keys: ~present[keys]
        return lambda keys: present[keys]
    allowed = mask.allowed_keys()
    if mask.complemented:
        return lambda keys: setdiff_keys(keys, allowed)
    return lambda keys: ~setdiff_keys(keys, allowed)


# ---------------------------------------------------------------------------
# mxm rules
# ---------------------------------------------------------------------------

def _mask_engaged(plan: Plan) -> bool:
    """Whether the masked engine analyses this product at all (tiny
    products are cheaper to compute in full than to analyse)."""
    a, b = plan.args
    return (plan.mask is not None
            and a.nvals + b.nvals >= cost.MASKED_MIN_NNZ)


def _col_lengths(m: Matrix) -> np.ndarray:
    """Stored-entry count per column — conversion-free on every format.

    CSC-pinned stores (and CSR stores whose transpose is already cached —
    e.g. after :func:`repro.grb.engine.preplan`) read column pointers
    directly, an O(ncols) diff; everything else counts the canonical CSR
    column ids with one O(nnz) bincount.  This is what lets the chooser
    price the dot kernel *without* building ``Bᵀ`` first (the transpose is
    deferred until the dot rule actually claims the plan)."""
    st = m._S()
    if st.fmt == "csc" or getattr(st, "_csc", None) is not None:
        return np.diff(st.transpose_csr()[0])
    return np.bincount(st.csr()[1], minlength=m.ncols)


def _row_lengths(m: Matrix) -> np.ndarray:
    """Stored-entry count per row — conversion-free on every format."""
    st = m._S()
    if st.fmt == "csc" and getattr(st, "_csr", None) is None:
        return np.bincount(st.transpose_csr()[1], minlength=m.nrows)
    return np.diff(st.csr()[0])


@register("mxm", "mxm-masked-dot")
class _MxmMaskedDot:
    """One sorted-intersection dot product per mask entry (dot3 kernel).

    Claims the plan when the unified chooser prices the probe work (plus
    the ≤ 1-output-per-mask-entry write) below the fallback's estimated
    flops plus product materialisation.  Feeds the kernel ``Bᵀ`` in CSR
    form without materialising a transpose: for ``transpose_b=True`` (TC's
    ``L plus.pair Uᵀ``) that is the operand's own CSR arrays, otherwise the
    store's cached CSC view — native for CSC-pinned operands.
    """

    @staticmethod
    def applies(plan: Plan):
        a, b = plan.args
        sr = plan.operator
        mask = plan.mask
        if (not _mask_engaged(plan) or mask.complemented
                or not cost.DOT_ENABLED or not _mm.dot_supported(sr)
                or not a.nvals or not b.nvals):
            return None
        allowed = mask.allowed_keys()
        bn_cols = plan.meta["_bn_cols"]
        if allowed.size == 0:
            plan.meta["_dot"] = (allowed, None, None, None, None)
            return {"method": "dot", "mask_nvals": 0}
        a_ip, a_ix, _ = a._S().csr()
        # Bᵀ's per-row lengths and B-effective's per-row lengths without
        # materialising any layout conversion: the Bᵀ feed itself (the
        # store's cached CSC view for transpose_b=False) is built only
        # when this rule claims the plan — a fallback-routed multiply
        # never pays it
        if plan.transpose_b:
            bt_row_lengths = _row_lengths(b)
            beff_lengths = _col_lengths(b)
        else:
            bt_row_lengths = _col_lengths(b)
            beff_lengths = _row_lengths(b)
        ncols64 = np.int64(bn_cols)
        rows_m = allowed // ncols64
        cols_m = allowed - rows_m * ncols64
        lengths = (a_ip[rows_m + 1] - a_ip[rows_m], bt_row_lengths[cols_m])
        cost_dot = cost.dot_probe_cost(*lengths)
        est_flops = cost.expand_flops_estimate(a_ix, beff_lengths)
        scipy_path = sr.scipy_reducible()
        est_out = cost.product_nnz_estimate(est_flops, a.nrows, bn_cols)
        method = cost.choose_masked_method(
            cost_dot, est_flops, scipy_path=scipy_path,
            mask_nvals=allowed.size, est_out_nnz=est_out)
        decision = {
            "method": "dot" if method == "dot" else "fallback",
            "semiring": sr.name,
            "mask_nvals": int(allowed.size),
            "dot_probes": int(cost_dot),
            "expand_flops_est": float(est_flops),
            "est_out_nnz": float(est_out),
            "scipy_path": scipy_path,
        }
        if telemetry.active():
            decision["expand_flops"] = cost.expand_flops_exact(a_ix,
                                                               beff_lengths)
        if method != "dot":
            plan.meta.update(decision)     # survives into the fallback event
            return None
        plan.meta["_dot"] = (allowed, rows_m, cols_m, lengths, None)
        return decision

    @staticmethod
    def run(plan: Plan, detail: dict):
        a, b = plan.args
        sr = plan.operator
        allowed, rows_m, cols_m, lengths, _ = plan.meta["_dot"]
        bn_cols = plan.meta["_bn_cols"]
        if rows_m is None:                     # empty mask: empty product
            t_keys = np.empty(0, np.int64)
            t_vals = np.empty(0, _scipy_dtype(a, b, sr))
        else:
            a_ip, a_ix, a_vv = a._S().csr()
            # the Bᵀ feed, paid only now that the dot kernel is chosen:
            # the operand's own CSR for transpose_b (zero conversion), the
            # store's cached/native CSC view otherwise
            bt_ip, bt_ix, bt_vv = b._S().csr() if plan.transpose_b \
                else b._S().transpose_csr()
            cast_dt = _scipy_dtype(a, b, sr) if sr.scipy_reducible() else None
            probe = plan.meta.get("_dot_probe")
            if probe is None:
                # the structure-resolution stage — a pure function of the
                # operand structures and the mask, stashed as a plan-cache
                # feed: a repeated identical multiply re-runs only the
                # value stage below
                mult = sr.mult.name
                probe = _mm.masked_dot_probe(
                    a_ip, a_ix, bt_ip, bt_ix, rows_m, cols_m, a.ncols,
                    mult in ("times", "first"), mult in ("times", "second"),
                    lengths=lengths)
                plan.meta["_dot_probe"] = probe
            hit, t_vals = _mm.masked_dot_reduce(probe, a_vv, bt_vv,
                                                rows_m.size, sr,
                                                cast_dtype=cast_dt)
            t_keys = allowed[hit]
        plan.meta["_premasked"] = True  # output ⊆ mask by construction
        return finish(plan, t_keys, t_vals, is_vector=False,
                      nrows=a.nrows, ncols=bn_cols)


def _live_rows_feed(plan: Plan, nrows: int, ncols: int):
    """The mask-live row set, computed once per plan shape.

    Stashed under ``plan.meta["_rows"]`` (a plan-cache feed key): a cached
    dispatch of the same shape re-attaches it, so the O(nnz) live-row scan
    is skipped along with the chooser."""
    if "_rows" not in plan.meta:
        plan.meta["_rows"] = mask_live_rows(plan.mask, nrows, ncols) \
            if _mask_engaged(plan) else None
    return plan.meta["_rows"]


@register("mxm", "mxm-scipy")
class _MxmScipy:
    """Compiled CSR multiply for plus.times-reducible semirings,
    mask-restricted to live output rows when the masked engine engages."""

    @staticmethod
    def applies(plan: Plan):
        a, b = plan.args
        if plan.operator.scipy_reducible() and a.nvals and b.nvals:
            _live_rows_feed(plan, a.nrows, plan.meta["_bn_cols"])
            return {"method": plan.meta.get("method", "scipy")}
        return None

    @staticmethod
    def run(plan: Plan, detail: dict):
        a, b = plan.args
        if plan.transpose_b:
            b = b.T
        rows = _live_rows_feed(plan, a.nrows, b.ncols)
        keys, vals = scipy_mxm(a, b, plan.operator, rows=rows)
        return finish(plan, keys, vals, is_vector=False,
                      nrows=a.nrows, ncols=b.ncols)


@register("mxm", "mxm-expand")
class _MxmExpand:
    """Flop-order expansion + group-reduce: the always-applicable
    reference, serving every semiring the other rules cannot."""

    @staticmethod
    def applies(plan: Plan):
        a, _ = plan.args
        _live_rows_feed(plan, a.nrows, plan.meta["_bn_cols"])
        return {"method": plan.meta.get("method", "expand")}

    @staticmethod
    def run(plan: Plan, detail: dict):
        a, b = plan.args
        if plan.transpose_b:
            b = b.T
        engaged = _mask_engaged(plan)
        rows = _live_rows_feed(plan, a.nrows, b.ncols)
        keys, vals = mxm_expand(
            a.indptr, a.indices, a.values, a.nrows,
            b.indptr, b.indices, b.values, b.ncols, plan.operator,
            a_rows=a._S().entry_rows() if rows is None else None,
            rows=rows,
            key_keep=mask_key_filter(plan.mask) if engaged else None)
        return finish(plan, keys, vals, is_vector=False,
                      nrows=a.nrows, ncols=b.ncols)


# ---------------------------------------------------------------------------
# mxv / vxm rules
# ---------------------------------------------------------------------------

def _dense_frontier(u: Vector, a: Matrix) -> bool:
    return (u.nvals > cost.DENSE_PULL_FRACTION * u.size
            and a.nvals > 0 and u.nvals > 0)


@register("mxv", "mxv-fused-dense-accum")
class _MxvFusedDenseAccum:
    """``w ⊙= A ⊕.⊗ u`` accumulated straight into a full output's dense
    array — the masked-accum write-back fusion.

    When the output is *full* (an entry at every position — PageRank's rank
    vector after ``assign_scalar``) and the accumulator is plain ``plus``,
    the spec transaction degenerates to ``w_dense += t_dense``: the union
    merge (two n-sized sorts) and the structural counts product of the
    SciPy path are both dead work, because the output structure is known
    full in advance.

    Adding the *full* dense product is bit-identical to the reference as
    long as no off-structure position can produce a non-zero: those
    positions are sums of ``term · 0`` (the vector's absent entries carry
    0 in its bitmap), which is exactly 0 for finite terms but NaN for
    ``±inf · 0``.  Multiplies whose matrix side is a pattern
    (``⊗ = second``) are immune by construction; ``times``/``first``
    multiplies qualify when :meth:`Matrix.values_all_finite` holds — the
    cached per-store-version guard that closes the ``inf·0`` edge (the
    only divergence left is ``-0.0 + 0.0 = +0.0``, which compares equal).
    """

    @staticmethod
    def applies(plan: Plan):
        if (not cost.FUSION_ENABLED or plan.mask is not None or plan.replace
                or plan.epilogues or plan.out is None):
            return None
        a, u = plan.args
        w = plan.out
        sr = plan.operator
        mult = sr.mult.name
        # "second"/"pair" read no matrix values (pattern side — exact zeros
        # off structure by construction); "times"/"first" need every stored
        # value finite so no inf·0 NaN can leak into untouched positions
        safe = mult in ("second", "pair") or (
            mult in ("times", "first") and a.values_all_finite())
        if (getattr(plan.accum, "name", None) == "plus"
                and w.nvals == w.size and w.size > 0
                and np.issubdtype(w.type.dtype, np.floating)
                and sr.scipy_reducible() and safe
                and _dense_frontier(u, a)):
            return {"method": "fused-dense-accum", "mult": mult}
        return None

    @staticmethod
    def run(plan: Plan, detail: dict):
        a, u = plan.args
        w = plan.out
        sr = plan.operator
        use_a, use_b = _mult_uses(sr)
        if sr.mult.name == "pair":
            dt = np.dtype(np.int64)
        else:
            dt = sr.mult_dtype(a.dtype, u.dtype)
        if dt == np.bool_:
            dt = np.dtype(np.int64)
        present, dense = u.bitmap()
        sa = _scipy_operand(a, use_a, dt)
        uvec = dense.astype(dt, copy=False) if use_b else present.astype(dt)
        t_dense = sa @ uvec
        _, w_dense = w.bitmap()
        out = (w_dense + t_dense).astype(w.type.dtype, copy=False)
        w._set_sparse(np.arange(w.size, dtype=np.int64), out)
        return w


@register("mxv", "mxv-scipy-dense")
class _MxvScipyDense:
    """Compiled dense matvec for plus-reducible semirings on heavy
    frontiers (unmasked — the mask path restricts rows instead)."""

    @staticmethod
    def applies(plan: Plan):
        a, u = plan.args
        if (plan.operator.scipy_reducible() and plan.mask is None
                and _dense_frontier(u, a)):
            return {"method": "scipy-dense"}
        return None

    @staticmethod
    def run(plan: Plan, detail: dict):
        a, u = plan.args
        idx, vals = scipy_mxv(a, u, plan.operator)
        return finish(plan, idx, vals, is_vector=True, size=a.nrows)


@register("mxv", "mxv-gather")
class _MxvGather:
    """Row-gather reference: only the mask-selected rows of ``A`` are
    examined (the complemented-structural-mask BFS pull touches exactly
    the unvisited rows)."""

    @staticmethod
    def applies(plan: Plan):
        return {"method": "gather"}

    @staticmethod
    def run(plan: Plan, detail: dict):
        a, u = plan.args
        rows = _mask_rows(plan.mask, a.nrows)
        if rows is None:
            rows = np.arange(a.nrows, dtype=np.int64)
        present, dense = u.bitmap()
        idx, vals = mxv_gather(a.indptr, a.indices, a.values,
                               present, dense, rows, plan.operator)
        return finish(plan, idx, vals, is_vector=True, size=a.nrows)


@register("vxm", "vxm-scipy-dense")
class _VxmScipyDense:
    """Dense path for heavy frontiers: ``uᵀ A`` computed as ``Aᵀ u`` on
    the cached transpose."""

    @staticmethod
    def applies(plan: Plan):
        u, a = plan.args
        if plan.operator.scipy_reducible() and _dense_frontier(u, a):
            return {"method": "scipy-dense"}
        return None

    @staticmethod
    def run(plan: Plan, detail: dict):
        u, a = plan.args
        idx, vals = scipy_mxv(a.T, u, plan.operator, swap_operands=True)
        return finish(plan, idx, vals, is_vector=True, size=a.ncols)


@register("vxm", "vxm-sparse-push")
class _VxmSparsePush:
    """Sparse-frontier push reference: cost ∝ total frontier out-degree."""

    @staticmethod
    def applies(plan: Plan):
        return {"method": "sparse-push"}

    @staticmethod
    def run(plan: Plan, detail: dict):
        u, a = plan.args
        idx, vals = vxm_sparse(u._idx, u._vals, a.indptr, a.indices,
                               a.values, plan.operator)
        return finish(plan, idx, vals, is_vector=True, size=a.ncols)


# ---------------------------------------------------------------------------
# ewise rules (the bitmap fast path, made a visible decision)
# ---------------------------------------------------------------------------

def _ewise_run(plan: Plan, keys, vals):
    a = plan.args[0]
    if isinstance(a, Vector):
        return finish(plan, keys, vals, is_vector=True, size=a.size)
    return finish(plan, keys, vals, is_vector=False,
                  nrows=a.nrows, ncols=a.ncols)


class _EwiseBitmapBase:
    """Dense flag/value merge when both operands are bitmap-resident —
    no sorted-key intersection, identical results by construction."""

    union = True

    @classmethod
    def applies(cls, plan: Plan):
        a, b = plan.args
        pa = a._mask_present_dense()
        if pa is None:
            return None
        pb = b._mask_present_dense()
        if pb is None:
            return None
        plan.meta["_bitmaps"] = (pa, pb)
        return {"layout": "bitmap"}

    @classmethod
    def run(cls, plan: Plan, detail: dict):
        pa, pb = plan.meta.pop("_bitmaps")
        fn = union_merge_bitmap if cls.union else intersect_merge_bitmap
        keys, vals = fn(pa[0], pa[1], pb[0], pb[1], plan.operator)
        return _ewise_run(plan, keys, vals)


class _EwiseSortedBase:
    """Sorted-key merge over the operands' sparse views (reference)."""

    union = True

    @classmethod
    def applies(cls, plan: Plan):
        return {"layout": "sorted"}

    @classmethod
    def run(cls, plan: Plan, detail: dict):
        a, b = plan.args
        ka, va = a._mask_keys_values()
        kb, vb = b._mask_keys_values()
        fn = union_merge if cls.union else intersect_merge
        keys, vals = fn(ka, va, kb, vb, plan.operator)
        return _ewise_run(plan, keys, vals)


@register("ewise_add", "ewise-bitmap-merge")
class _EwiseAddBitmap(_EwiseBitmapBase):
    union = True


@register("ewise_add", "ewise-sorted-merge")
class _EwiseAddSorted(_EwiseSortedBase):
    union = True


@register("ewise_mult", "ewise-bitmap-merge")
class _EwiseMultBitmap(_EwiseBitmapBase):
    union = False


@register("ewise_mult", "ewise-sorted-merge")
class _EwiseMultSorted(_EwiseSortedBase):
    union = False


# ---------------------------------------------------------------------------
# apply / select rules
# ---------------------------------------------------------------------------

@register("apply", "apply-entrywise")
class _ApplyEntrywise:
    """``f(A, k)`` evaluated directly on the source's arrays — the
    structure is inherited, so no intermediate object is ever built."""

    @staticmethod
    def applies(plan: Plan):
        return {"positional": plan.operator.positional or "value"}

    @staticmethod
    def run(plan: Plan, detail: dict):
        src = plan.args[0]
        op = plan.operator
        thunk = plan.meta.get("_thunk")
        if isinstance(src, Vector):
            idx = src._idx
            vals = _selectops.eval_unary(
                op, src._vals, thunk, rows=lambda: idx,
                cols=lambda: np.zeros(idx.size, dtype=np.int64))
            return finish(plan, idx, vals, is_vector=True, size=src.size)
        vals = _selectops.eval_unary(
            op, src.values, thunk, rows=lambda: src._S().entry_rows(),
            cols=lambda: src.indices)
        return finish(plan, src.keys(), vals, is_vector=False,
                      nrows=src.nrows, ncols=src.ncols)


class _SelectBase:
    @staticmethod
    def _finish(plan, keep):
        src = plan.args[0]
        if isinstance(src, Vector):
            return finish(plan, src._idx[keep], src._vals[keep],
                          is_vector=True, size=src.size)
        return finish(plan, src.keys()[keep], src.values[keep],
                      is_vector=False, nrows=src.nrows, ncols=src.ncols)


@register("select", "select-value-only")
class _SelectValueOnly(_SelectBase):
    """Value-only predicates never expand entry coordinates — the
    format-aware fast path, now a visible rule."""

    @staticmethod
    def applies(plan: Plan):
        if not plan.operator.uses_coords:
            return {"path": "value-only"}
        return None

    @classmethod
    def run(cls, plan: Plan, detail: dict):
        src = plan.args[0]
        vals = src._vals if isinstance(src, Vector) else src.values
        keep = plan.operator(vals, None, None, plan.meta.get("_thunk"))
        return cls._finish(plan, keep)


@register("select", "select-coords")
class _SelectCoords(_SelectBase):
    """Coordinate predicates read row ids from the store (hypersparse:
    O(live) expansion) and column ids from the canonical view."""

    @staticmethod
    def applies(plan: Plan):
        return {"path": "coords"}

    @classmethod
    def run(cls, plan: Plan, detail: dict):
        src = plan.args[0]
        op = plan.operator
        thunk = plan.meta.get("_thunk")
        if isinstance(src, Vector):
            keep = op(src._vals, src._idx,
                      np.zeros(src._idx.size, dtype=np.int64), thunk)
        else:
            st = src._S()
            keep = op(st.csr()[2], st.entry_rows(), st.csr()[1], thunk)
        return cls._finish(plan, keep)


# ---------------------------------------------------------------------------
# update rule (C⟨M⟩⊙= T — a bare write-back transaction)
# ---------------------------------------------------------------------------

@register("update", "update-write")
class _UpdateWrite:
    """``C⟨M⟩⊙= T``: the write-back transaction with no compute stage.

    Plannable so the lazy layer can record it; when an ``update``
    immediately consumes a producing kernel's output, the multi-output
    fusion rules (:mod:`repro.grb.engine.multiplan`) absorb it into that
    kernel's output pass instead."""

    @staticmethod
    def applies(plan: Plan):
        return {"target": "vector" if isinstance(plan.out, Vector)
                else "matrix"}

    @staticmethod
    def run(plan: Plan, detail: dict):
        t = plan.args[0]
        if isinstance(plan.out, Vector):
            return write_vector(plan.out, t._idx, t._vals, plan.mask,
                                plan.accum, plan.replace)
        return write_matrix(plan.out, t.keys(), t.values, plan.mask,
                            plan.accum, plan.replace)


# ---------------------------------------------------------------------------
# assign / assign_scalar rules (the spec's sub-range write transaction)
# ---------------------------------------------------------------------------

def _region_write(out, region_keys, t_keys, t_vals, mask: Optional[Mask],
                  accum, replace: bool):
    """Write ``T`` into the sub-range ``region_keys`` of ``out``.

    Assign semantics: inside the region (∩ mask) the output becomes exactly
    ``Z``; positions outside the region are never touched.  The effective
    allowed set is the region intersected with the (possibly complemented)
    mask, after which the write-back runs un-complemented.  With
    ``replace=True`` entries inside the region but outside the mask are
    cleared (subassign-style replace).
    """
    is_vec = isinstance(out, Vector)
    if mask is None:
        allowed = region_keys
    else:
        m_allowed = mask.allowed_keys()
        if mask.complemented:
            keep = ~np.isin(region_keys, m_allowed, assume_unique=False)
        else:
            keep = np.isin(region_keys, m_allowed, assume_unique=False)
        allowed = region_keys[keep]
        if replace:
            # subassign replace: clear region entries the mask rejects
            c_keys = out._idx if is_vec else out.keys()
            c_vals = out._vals if is_vec else out.values
            keys, vals = masked_write(
                c_keys, c_vals, np.empty(0, np.int64),
                np.empty(0, out.type.dtype), accum=None,
                allowed_keys=region_keys[~keep], complement=False,
                replace=False, out_dtype=out.type.dtype)
            if is_vec:
                out._set_sparse(keys, vals)
            else:
                out._set_from_keys(keys, vals)
    c_keys = out._idx if is_vec else out.keys()
    c_vals = out._vals if is_vec else out.values
    keys, vals = masked_write(
        c_keys, c_vals, t_keys, t_vals, accum=accum,
        allowed_keys=allowed, complement=False, replace=False,
        out_dtype=out.type.dtype)
    if is_vec:
        out._set_sparse(keys, vals)
    else:
        out._set_from_keys(keys, vals)
    return out


@register("assign", "assign-region")
class _AssignRegion:
    @staticmethod
    def applies(plan: Plan):
        return {"target": "vector" if isinstance(plan.out, Vector)
                else "matrix"}

    @staticmethod
    def run(plan: Plan, detail: dict):
        from ..errors import DimensionMismatch
        w = plan.out
        u = plan.args[0]
        indices = plan.meta.get("_indices")
        mask, accum, replace = plan.mask, plan.accum, plan.replace
        if isinstance(w, Vector):
            if indices is None:
                return write_vector(w, u._idx, u._vals, mask, accum, replace)
            indices = np.asarray(indices, dtype=np.int64)
            if u.size != indices.size:
                raise DimensionMismatch("assign: index list size mismatch")
            t_idx = indices[u._idx]
            t_vals = u._vals
            order = np.argsort(t_idx, kind="stable")
            region = np.unique(indices)
            return _region_write(w, region, t_idx[order], t_vals[order],
                                 mask, accum, replace)
        rows, cols = (None, None) if indices is None else indices
        whole = rows is None and cols is None
        rows = np.arange(w.nrows, dtype=np.int64) if rows is None \
            else np.asarray(rows, dtype=np.int64)
        cols = np.arange(w.ncols, dtype=np.int64) if cols is None \
            else np.asarray(cols, dtype=np.int64)
        if not (u.nrows == rows.size and u.ncols == cols.size):
            raise DimensionMismatch("assign: submatrix shape mismatch")
        ur, uc, uv = u.to_coo()
        t_keys = rows[ur] * np.int64(w.ncols) + cols[uc]
        order = np.argsort(t_keys, kind="stable")
        if whole:
            return write_matrix(w, t_keys[order], uv[order], mask, accum,
                                replace)
        region = np.unique(
            (np.unique(rows)[:, None] * np.int64(w.ncols) +
             np.unique(cols)[None, :]).ravel())
        return _region_write(w, region, t_keys[order], uv[order], mask,
                             accum, replace)


@register("assign_scalar", "assign-scalar-region")
class _AssignScalarRegion:
    @staticmethod
    def applies(plan: Plan):
        return {"target": "vector" if isinstance(plan.out, Vector)
                else "matrix"}

    @staticmethod
    def run(plan: Plan, detail: dict):
        w = plan.out
        value = plan.operator
        indices = plan.meta.get("_indices")
        mask, accum, replace = plan.mask, plan.accum, plan.replace
        if isinstance(w, Vector):
            whole = indices is None
            idx = np.arange(w.size, dtype=np.int64) if whole \
                else np.unique(np.asarray(indices, dtype=np.int64))
            vals = np.full(idx.size, value, dtype=w.type.dtype)
            if whole:
                return write_vector(w, idx, vals, mask, accum, replace)
            return _region_write(w, idx, idx, vals, mask, accum, replace)
        rows, cols = (None, None) if indices is None else indices
        whole = rows is None and cols is None
        rows = np.arange(w.nrows, dtype=np.int64) if rows is None \
            else np.unique(np.asarray(rows, dtype=np.int64))
        cols = np.arange(w.ncols, dtype=np.int64) if cols is None \
            else np.unique(np.asarray(cols, dtype=np.int64))
        t_keys = (rows[:, None] * np.int64(w.ncols) + cols[None, :]).ravel()
        t_vals = np.full(t_keys.size, value, dtype=w.type.dtype)
        if whole:
            return write_matrix(w, t_keys, t_vals, mask, accum, replace)
        return _region_write(w, t_keys, t_keys, t_vals, mask, accum, replace)


# ---------------------------------------------------------------------------
# frontier-direction rules (the Beamer chooser, registry-resident)
# ---------------------------------------------------------------------------

@register("bfs_step", "bfs-push")
class _BfsPush:
    """Push while the frontier is light: cost ∝ frontier out-degrees."""

    @staticmethod
    def applies(plan: Plan):
        m = plan.meta
        if (m["frontier_edges"] * cost.PUSHPULL_ALPHA < m["unexplored_edges"]
                or m["frontier_nvals"] < m["n"] / cost.PUSHPULL_BETA):
            return {"direction": "push"}
        return None

    @staticmethod
    def run(plan: Plan, detail: dict):
        return "push"


@register("bfs_step", "bfs-pull")
class _BfsPull:
    """Pull once the frontier is heavy: cost ∝ unvisited in-degrees."""

    @staticmethod
    def applies(plan: Plan):
        return {"direction": "pull"}

    @staticmethod
    def run(plan: Plan, detail: dict):
        return "pull"
