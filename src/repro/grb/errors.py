"""GraphBLAS error conditions (``GrB_Info`` equivalents).

The C API reports errors through ``GrB_Info`` return codes.  This substrate
raises exceptions instead, but each exception carries the matching ``info``
code so the LAGraph compatibility layer (:mod:`repro.lagraph.compat`) can
translate back to the C-style convention.
"""

from __future__ import annotations

__all__ = [
    "GrBInfo",
    "GraphBLASError",
    "DimensionMismatch",
    "IndexOutOfBounds",
    "NoValue",
    "DomainMismatch",
    "InvalidValue",
    "InvalidObject",
    "EmptyObject",
    "OutputNotEmpty",
]


class GrBInfo:
    """Integer codes mirroring the ``GrB_Info`` enumeration."""

    SUCCESS = 0
    NO_VALUE = 1
    UNINITIALIZED_OBJECT = -1
    NULL_POINTER = -2
    INVALID_VALUE = -3
    INVALID_INDEX = -4
    DOMAIN_MISMATCH = -5
    DIMENSION_MISMATCH = -6
    OUTPUT_NOT_EMPTY = -7
    NOT_IMPLEMENTED = -8
    PANIC = -101
    OUT_OF_MEMORY = -102
    INSUFFICIENT_SPACE = -103
    INVALID_OBJECT = -104
    INDEX_OUT_OF_BOUNDS = -105
    EMPTY_OBJECT = -106


class GraphBLASError(Exception):
    """Base class for all substrate errors; carries a ``GrB_Info`` code."""

    info: int = GrBInfo.PANIC

    def __init__(self, message: str = "", info: int | None = None):
        super().__init__(message or self.__class__.__name__)
        if info is not None:
            self.info = info


class DimensionMismatch(GraphBLASError):
    info = GrBInfo.DIMENSION_MISMATCH


class IndexOutOfBounds(GraphBLASError):
    info = GrBInfo.INDEX_OUT_OF_BOUNDS


class NoValue(GraphBLASError):
    """Raised by extractElement when no entry is present (``GrB_NO_VALUE``)."""

    info = GrBInfo.NO_VALUE


class DomainMismatch(GraphBLASError):
    info = GrBInfo.DOMAIN_MISMATCH


class InvalidValue(GraphBLASError):
    info = GrBInfo.INVALID_VALUE


class InvalidObject(GraphBLASError):
    info = GrBInfo.INVALID_OBJECT


class EmptyObject(GraphBLASError):
    info = GrBInfo.EMPTY_OBJECT


class OutputNotEmpty(GraphBLASError):
    info = GrBInfo.OUTPUT_NOT_EMPTY
