"""Positional multiplicative operators (``GxB_FIRSTI`` family).

In ``C = A ⊕.⊗ B`` the multiplier acts on the pair ``a(i, k) ⊗ b(k, j)``.
A positional operator ignores the *values* and returns one of the three
coordinates instead:

=========  =======
operator   returns
=========  =======
firsti     ``i``  (row of the A entry)
firstj     ``k``  (column of the A entry / row of the B entry)
secondi    ``k``  (row of the B entry — the BFS "parent id")
secondj    ``j``  (column of the B entry)
=========  =======

The ``any.secondi`` semiring built from these is what gives the paper's BFS
its single-step parent computation (Sec. IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PositionalOp", "FIRSTI", "FIRSTJ", "SECONDI", "SECONDJ", "by_name"]


@dataclass(frozen=True)
class PositionalOp:
    """A multiplicative operator returning an entry coordinate.

    ``coord`` selects which coordinate of the ``a(i,k) ⊗ b(k,j)`` pair the
    operator yields: ``"i"``, ``"k"`` or ``"j"``.
    """

    name: str
    coord: str  # "i" | "k" | "j"
    out_dtype: np.dtype = np.dtype(np.int64)

    def select(self, i: np.ndarray, k: np.ndarray, j: np.ndarray) -> np.ndarray:
        src = {"i": i, "k": k, "j": j}[self.coord]
        return src.astype(self.out_dtype, copy=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PositionalOp({self.name})"


FIRSTI = PositionalOp("firsti", "i")
FIRSTJ = PositionalOp("firstj", "k")
SECONDI = PositionalOp("secondi", "k")
SECONDJ = PositionalOp("secondj", "j")

_REGISTRY = {op.name: op for op in (FIRSTI, FIRSTJ, SECONDI, SECONDJ)}


def by_name(name: str) -> PositionalOp:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown positional op {name!r}") from None
