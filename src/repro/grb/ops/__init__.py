"""Operator algebra for the GraphBLAS substrate.

Submodules
----------
unary
    ``GrB_UnaryOp`` equivalents (identity, abs, lnot, rowindex, ...).
binary
    ``GrB_BinaryOp`` equivalents (plus, times, min, first, second, pair, ...).
positional
    ``GxB_FIRSTI``-family multiplicative operators (firsti/secondi/...).
monoid
    ``GrB_Monoid`` equivalents, including the ``any`` monoid.
semiring
    ``GrB_Semiring`` equivalents named ``add.mult`` (e.g. ``any.secondi``).
"""

from . import binary, monoid, positional, semiring, unary
from .binary import BinaryOp
from .monoid import Monoid
from .positional import PositionalOp
from .semiring import Semiring, semiring as make_semiring
from .unary import UnaryOp

__all__ = [
    "binary",
    "monoid",
    "positional",
    "semiring",
    "unary",
    "BinaryOp",
    "Monoid",
    "PositionalOp",
    "Semiring",
    "UnaryOp",
    "make_semiring",
]
