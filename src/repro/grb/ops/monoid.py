"""Monoids (``GrB_Monoid`` equivalents): a commutative binary op + identity.

A monoid supplies three things our kernels need:

* the pairwise combine function (for eWiseAdd-style merges),
* an identity for the given dtype (what empty reductions return),
* a *grouped reduction*: given values tagged with integer group keys, reduce
  each group with ⊕.  This is the workhorse behind every semiring matmul.

The ``any`` monoid — introduced by SS:GrB for the BFS benign race (Sec. IV-A
of the paper) — reduces a group by simply picking one member.  We pick the
first in storage order, which is deterministic and therefore testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from .binary import (
    ANY,
    BinaryOp,
    EQ,
    LAND,
    LOR,
    LXOR,
    MAX,
    MIN,
    PLUS,
    TIMES,
)

__all__ = [
    "Monoid",
    "PLUS_MONOID",
    "TIMES_MONOID",
    "MIN_MONOID",
    "MAX_MONOID",
    "ANY_MONOID",
    "LOR_MONOID",
    "LAND_MONOID",
    "LXOR_MONOID",
    "EQ_MONOID",
    "by_name",
]


def _min_identity(dtype: np.dtype):
    if np.issubdtype(dtype, np.floating):
        return dtype.type(np.inf)
    if dtype == np.bool_:
        return dtype.type(True)
    return np.iinfo(dtype).max


def _max_identity(dtype: np.dtype):
    if np.issubdtype(dtype, np.floating):
        return dtype.type(-np.inf)
    if dtype == np.bool_:
        return dtype.type(False)
    return np.iinfo(dtype).min


@dataclass(frozen=True)
class Monoid:
    """A commutative, associative reduction operator with identity.

    Attributes
    ----------
    name:
        Name used in semiring strings (``"plus"`` in ``"plus.times"``).
    op:
        The underlying :class:`BinaryOp`.
    identity_fn:
        ``identity_fn(dtype) -> scalar`` identity for that dtype; ``None``
        for the ``any`` monoid which has no meaningful identity.
    ufunc:
        NumPy ufunc used for ``reduceat``-based grouped reduction, or ``None``
        for pick-one monoids.
    terminal_fn:
        Optional ``terminal_fn(dtype) -> scalar``: a value at which the
        reduction may stop early (e.g. ``False`` for ``land``).  Only used as
        metadata; our vectorised kernels do not early-exit.
    """

    name: str
    op: BinaryOp
    identity_fn: Optional[Callable[[np.dtype], object]]
    ufunc: Optional[np.ufunc]
    terminal_fn: Optional[Callable[[np.dtype], object]] = None

    def identity(self, dtype: np.dtype):
        if self.identity_fn is None:
            raise ValueError(f"monoid {self.name!r} has no identity")
        return self.identity_fn(np.dtype(dtype))

    def __call__(self, x, y):
        return self.op(x, y)

    def reduce_all(self, values: np.ndarray):
        """Reduce a flat array to a scalar; identity when empty."""
        if values.size == 0:
            return self.identity(values.dtype)
        if self.ufunc is None:  # "any": pick one
            return values[0]
        return self.ufunc.reduce(values)

    def reduce_groups(self, keys: np.ndarray, values: np.ndarray):
        """Reduce ``values`` grouped by integer ``keys``.

        Returns ``(unique_keys, reduced_values)`` with ``unique_keys`` sorted
        ascending.  ``keys`` need not be sorted.
        """
        if keys.size == 0:
            return keys[:0].astype(np.int64), values[:0]
        order = np.argsort(keys, kind="stable")
        sk = keys[order]
        sv = values[order]
        boundaries = np.empty(sk.size, dtype=bool)
        boundaries[0] = True
        np.not_equal(sk[1:], sk[:-1], out=boundaries[1:])
        starts = np.flatnonzero(boundaries)
        ukeys = sk[starts]
        if self.ufunc is None:  # "any": first element of each group
            return ukeys, sv[starts]
        reduced = self.ufunc.reduceat(sv, starts)
        return ukeys, reduced

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Monoid({self.name})"


PLUS_MONOID = Monoid("plus", PLUS, lambda dt: dt.type(0), np.add)
TIMES_MONOID = Monoid("times", TIMES, lambda dt: dt.type(1), np.multiply)
MIN_MONOID = Monoid(
    "min", MIN, _min_identity, np.minimum, terminal_fn=_max_identity
)
MAX_MONOID = Monoid(
    "max", MAX, _max_identity, np.maximum, terminal_fn=_min_identity
)
ANY_MONOID = Monoid("any", ANY, None, None)
LOR_MONOID = Monoid(
    "lor", LOR, lambda dt: dt.type(False), np.logical_or,
    terminal_fn=lambda dt: dt.type(True),
)
LAND_MONOID = Monoid(
    "land", LAND, lambda dt: dt.type(True), np.logical_and,
    terminal_fn=lambda dt: dt.type(False),
)
LXOR_MONOID = Monoid("lxor", LXOR, lambda dt: dt.type(False), np.logical_xor)
EQ_MONOID = Monoid("eq", EQ, lambda dt: dt.type(True), np.equal)

_REGISTRY = {
    m.name: m
    for m in (
        PLUS_MONOID, TIMES_MONOID, MIN_MONOID, MAX_MONOID, ANY_MONOID,
        LOR_MONOID, LAND_MONOID, LXOR_MONOID, EQ_MONOID,
    )
}


def by_name(name: str) -> Monoid:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown monoid {name!r}") from None
