"""Binary operators (``GrB_BinaryOp`` equivalents).

Operators are vectorised over NumPy arrays.  Comparison operators force a
boolean output dtype; everything else follows NumPy promotion unless the
operator pins ``out_dtype``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

__all__ = [
    "BinaryOp",
    "PLUS",
    "MINUS",
    "RMINUS",
    "TIMES",
    "DIV",
    "RDIV",
    "MIN",
    "MAX",
    "FIRST",
    "SECOND",
    "PAIR",
    "ANY",
    "EQ",
    "NE",
    "GT",
    "LT",
    "GE",
    "LE",
    "LOR",
    "LAND",
    "LXOR",
    "ISEQ",
    "binary_op",
    "by_name",
]

_BOOL = np.dtype(np.bool_)


@dataclass(frozen=True)
class BinaryOp:
    """A binary operator ``z = f(x, y)`` applied element-wise.

    Attributes
    ----------
    name:
        Lower-case operator name as used in semiring names (``"plus"``).
    fn:
        Vectorised callable ``fn(x, y) -> z``.
    out_dtype:
        Fixed output dtype (e.g. bool for comparisons) or ``None``.
    commutative:
        Whether ``f(x, y) == f(y, x)``; used by kernel fast paths.
    """

    name: str
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray]
    out_dtype: Optional[np.dtype] = None
    commutative: bool = False

    def __call__(self, x, y):
        out = self.fn(x, y)
        if self.out_dtype is not None and np.asarray(out).dtype != self.out_dtype:
            out = np.asarray(out).astype(self.out_dtype)
        return out

    def result_dtype(self, dx: np.dtype, dy: np.dtype) -> np.dtype:
        """The dtype this operator produces for input dtypes ``dx``/``dy``."""
        if self.out_dtype is not None:
            return self.out_dtype
        if self.name == "first":
            return dx
        if self.name in ("second", "any"):
            return dy
        return np.result_type(dx, dy)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BinaryOp({self.name})"


def _div(x, y):
    x = np.asarray(x)
    if np.issubdtype(x.dtype, np.integer):
        with np.errstate(divide="ignore"):
            return np.floor_divide(x, y)
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.divide(x, y)


PLUS = BinaryOp("plus", np.add, commutative=True)
MINUS = BinaryOp("minus", np.subtract)
RMINUS = BinaryOp("rminus", lambda x, y: np.subtract(y, x))
TIMES = BinaryOp("times", np.multiply, commutative=True)
DIV = BinaryOp("div", _div)
RDIV = BinaryOp("rdiv", lambda x, y: _div(y, x))
MIN = BinaryOp("min", np.minimum, commutative=True)
MAX = BinaryOp("max", np.maximum, commutative=True)
FIRST = BinaryOp("first", lambda x, y: np.broadcast_arrays(x, y)[0].copy())
SECOND = BinaryOp("second", lambda x, y: np.broadcast_arrays(x, y)[1].copy())
# pair(x, y) == 1 regardless of values (SS:GrB calls this ONEB).
PAIR = BinaryOp(
    "pair",
    lambda x, y: np.ones(np.broadcast_shapes(np.shape(x), np.shape(y)), dtype=np.uint64),
    out_dtype=np.dtype(np.uint64),
    commutative=True,
)
# any(x, y): either argument is a valid result; we deterministically keep y
# (the "new" value), matching how our kernels feed arguments.
ANY = BinaryOp("any", lambda x, y: np.broadcast_arrays(x, y)[1].copy(), commutative=True)

EQ = BinaryOp("eq", np.equal, out_dtype=_BOOL, commutative=True)
NE = BinaryOp("ne", np.not_equal, out_dtype=_BOOL, commutative=True)
GT = BinaryOp("gt", np.greater, out_dtype=_BOOL)
LT = BinaryOp("lt", np.less, out_dtype=_BOOL)
GE = BinaryOp("ge", np.greater_equal, out_dtype=_BOOL)
LE = BinaryOp("le", np.less_equal, out_dtype=_BOOL)
LOR = BinaryOp("lor", np.logical_or, out_dtype=_BOOL, commutative=True)
LAND = BinaryOp("land", np.logical_and, out_dtype=_BOOL, commutative=True)
LXOR = BinaryOp("lxor", np.logical_xor, out_dtype=_BOOL, commutative=True)
ISEQ = BinaryOp("iseq", lambda x, y: (x == y).astype(np.result_type(x, y)))

_REGISTRY = {
    op.name: op
    for op in (
        PLUS, MINUS, RMINUS, TIMES, DIV, RDIV, MIN, MAX, FIRST, SECOND,
        PAIR, ANY, EQ, NE, GT, LT, GE, LE, LOR, LAND, LXOR, ISEQ,
    )
}


def binary_op(name: str, fn: Callable, **kw) -> BinaryOp:
    """Create and register a user-defined binary operator."""
    op = BinaryOp(name, fn, **kw)
    _REGISTRY[name] = op
    return op


def by_name(name: str) -> BinaryOp:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown binary op {name!r}") from None
