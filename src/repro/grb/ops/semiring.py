"""Semirings (``GrB_Semiring`` equivalents).

A semiring pairs an additive :class:`~repro.grb.ops.monoid.Monoid` ⊕ with a
multiplicative operator ⊗ (an ordinary :class:`BinaryOp` or a
:class:`PositionalOp`).  Names follow the paper's ``add.mult`` notation, e.g.
``min.plus`` or ``any.secondi``.

Table II of the paper lists the semirings its algorithms use; all of them
(and the usual arithmetic/boolean ones) are pre-registered here.

The :meth:`Semiring.scipy_reducible` predicate drives the matmul fast path:
a semiring whose ⊕ is ``plus`` and whose ⊗ is one of ``times`` / ``first`` /
``second`` / ``pair`` is algebraically a conventional matrix multiply after
substituting the pattern (all-ones values) for one or both operands, so it
can be executed by SciPy's compiled CSR kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from .binary import BinaryOp, by_name as binary_by_name
from .monoid import Monoid, by_name as monoid_by_name
from .positional import PositionalOp, by_name as positional_by_name

__all__ = ["Semiring", "semiring", "by_name", "PLUS_TIMES", "MIN_PLUS",
           "MAX_PLUS", "ANY_SECONDI", "PLUS_FIRST", "PLUS_SECOND",
           "PLUS_PAIR", "LOR_LAND", "MIN_FIRST", "MIN_SECOND", "ANY_PAIR",
           "MIN_MAX", "PLUS_PLUS", "MIN_TIMES", "ANY_FIRST", "ANY_SECOND"]

_POSITIONAL_NAMES = {"firsti", "firstj", "secondi", "secondj"}
_SCIPY_MULTS = {"times", "first", "second", "pair"}


@dataclass(frozen=True)
class Semiring:
    """An ``⊕.⊗`` pair used by mxm / mxv / vxm.

    Attributes
    ----------
    add:
        The additive monoid ⊕.
    mult:
        The multiplicative operator ⊗ — a value op or a positional op.
    """

    add: Monoid
    mult: Union[BinaryOp, PositionalOp]

    @property
    def name(self) -> str:
        return f"{self.add.name}.{self.mult.name}"

    @property
    def positional(self) -> bool:
        return isinstance(self.mult, PositionalOp)

    def scipy_reducible(self) -> bool:
        """True when the matmul can run on SciPy's compiled plus.times kernel."""
        return self.add.name == "plus" and (
            not self.positional and self.mult.name in _SCIPY_MULTS
        )

    def mult_dtype(self, da, db):
        """Output dtype of the multiply step for operand dtypes da/db."""
        if self.positional:
            return self.mult.out_dtype
        return self.mult.result_dtype(da, db)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Semiring({self.name})"


_REGISTRY: dict[str, Semiring] = {}


def semiring(add: str, mult: str) -> Semiring:
    """Look up (or construct and cache) the semiring ``add.mult``."""
    key = f"{add}.{mult}"
    sr = _REGISTRY.get(key)
    if sr is None:
        add_m = monoid_by_name(add)
        if mult in _POSITIONAL_NAMES:
            mult_op: Union[BinaryOp, PositionalOp] = positional_by_name(mult)
        else:
            mult_op = binary_by_name(mult)
        sr = Semiring(add_m, mult_op)
        _REGISTRY[key] = sr
    return sr


def by_name(name: str) -> Semiring:
    """Look up a semiring by its ``add.mult`` string, e.g. ``"min.plus"``."""
    add, dot, mult = name.partition(".")
    if not dot:
        raise KeyError(f"semiring name must look like 'add.mult', got {name!r}")
    return semiring(add, mult)


# --- Table II of the paper -------------------------------------------------
PLUS_TIMES = semiring("plus", "times")   # "conventional"
ANY_SECONDI = semiring("any", "secondi")
MIN_PLUS = semiring("min", "plus")
PLUS_FIRST = semiring("plus", "first")
PLUS_SECOND = semiring("plus", "second")
PLUS_PAIR = semiring("plus", "pair")

# --- other commonly used semirings -----------------------------------------
MAX_PLUS = semiring("max", "plus")
LOR_LAND = semiring("lor", "land")
MIN_FIRST = semiring("min", "first")
MIN_SECOND = semiring("min", "second")
MIN_MAX = semiring("min", "max")
MIN_TIMES = semiring("min", "times")
PLUS_PLUS = semiring("plus", "plus")
ANY_PAIR = semiring("any", "pair")
ANY_FIRST = semiring("any", "first")
ANY_SECOND = semiring("any", "second")
