"""Unary operators (``GrB_UnaryOp`` equivalents).

Each operator is a vectorised function over a NumPy value array.  Positional
unary operators (``rowindex`` / ``colindex``) receive the entry coordinates
instead of the values, mirroring SuiteSparse's ``GxB_POSITIONI`` family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

__all__ = [
    "UnaryOp",
    "IDENTITY",
    "AINV",
    "ABS",
    "MINV",
    "LNOT",
    "ONE",
    "SQRT",
    "LOG",
    "EXP",
    "ROWINDEX",
    "COLINDEX",
    "unary_op",
    "by_name",
]


@dataclass(frozen=True)
class UnaryOp:
    """A unary operator ``z = f(x)`` applied element-wise.

    Attributes
    ----------
    name:
        Lower-case operator name (``"abs"``, ``"lnot"``, ...).
    fn:
        Vectorised callable ``fn(values) -> values``.
    positional:
        ``None`` for value ops; ``"i"`` / ``"j"`` for coordinate ops, in which
        case ``fn`` receives the coordinate array instead of the values.
    out_dtype:
        Fixed output dtype, or ``None`` to inherit the input dtype (after
        whatever promotion ``fn`` performs).
    """

    name: str
    fn: Callable[[np.ndarray], np.ndarray]
    positional: Optional[str] = None
    out_dtype: Optional[np.dtype] = None

    def __call__(self, values: np.ndarray) -> np.ndarray:
        out = self.fn(values)
        if self.out_dtype is not None and out.dtype != self.out_dtype:
            out = out.astype(self.out_dtype)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UnaryOp({self.name})"


def _minv(x: np.ndarray) -> np.ndarray:
    if np.issubdtype(x.dtype, np.integer):
        with np.errstate(divide="ignore"):
            return (1 / x).astype(x.dtype)
    return 1.0 / x


IDENTITY = UnaryOp("identity", lambda x: x.copy())
AINV = UnaryOp("ainv", lambda x: -x)
ABS = UnaryOp("abs", np.abs)
MINV = UnaryOp("minv", _minv)
LNOT = UnaryOp("lnot", np.logical_not, out_dtype=np.dtype(np.bool_))
ONE = UnaryOp("one", np.ones_like)
SQRT = UnaryOp("sqrt", np.sqrt)
LOG = UnaryOp("log", np.log)
EXP = UnaryOp("exp", np.exp)

# Positional operators: applied to coordinates, not values.
ROWINDEX = UnaryOp(
    "rowindex", lambda i: i.astype(np.int64), positional="i", out_dtype=np.dtype(np.int64)
)
COLINDEX = UnaryOp(
    "colindex", lambda j: j.astype(np.int64), positional="j", out_dtype=np.dtype(np.int64)
)

_REGISTRY = {
    op.name: op
    for op in (IDENTITY, AINV, ABS, MINV, LNOT, ONE, SQRT, LOG, EXP, ROWINDEX, COLINDEX)
}


def unary_op(name: str, fn: Callable, **kw) -> UnaryOp:
    """Create and register a user-defined unary operator."""
    op = UnaryOp(name, fn, **kw)
    _REGISTRY[name] = op
    return op


def by_name(name: str) -> UnaryOp:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown unary op {name!r}") from None
