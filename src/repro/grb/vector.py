"""Sparse vector (``GrB_Vector`` equivalent).

Storage model
-------------
The source of truth is the *sparse* representation: a sorted, duplicate-free
``int64`` index array plus a matching value array.  A *bitmap* representation
(dense value array + boolean presence array — SS:GrB v4's bitmap format,
Sec. VI-A of the paper) is maintained as a lazily built cache: pull-direction
kernels and random lookups use it, and any mutation invalidates it.  This
mirrors the sparse/bitmap duality the paper credits for the 2× BC gain.

Unlike ``GrB_Vector``, instances are not opaque: ``indices`` / ``values``
expose the internal arrays (read-only views) because LAGraph's design
explicitly embraces non-opaque objects (Sec. II-A).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import types as _types
from ._kernels import apply_select as _selectops
from ._kernels.ewise import intersect_merge, union_merge
from .errors import DimensionMismatch, IndexOutOfBounds, NoValue
from .ops.binary import BinaryOp
from .ops.monoid import Monoid
from .ops.unary import UnaryOp
from .types import Type, from_dtype

__all__ = ["Vector"]


class Vector:
    """A sparse vector of a fixed :class:`~repro.grb.types.Type` and size."""

    __slots__ = ("size", "type", "_idx", "_vals", "_bitmap")

    def __init__(self, typ, size: int):
        if isinstance(typ, Type):
            self.type = typ
        else:
            self.type = from_dtype(typ)
        if size < 0:
            raise DimensionMismatch(f"negative vector size {size}")
        self.size = int(size)
        self._idx = np.empty(0, dtype=np.int64)
        self._vals = np.empty(0, dtype=self.type.dtype)
        self._bitmap = None  # cached (present: bool[n], dense: dtype[n])

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        indices,
        values,
        size: int,
        typ=None,
        dup_op: Optional[BinaryOp] = None,
    ) -> "Vector":
        """Build from index/value tuples (``w ↤ {i, x}`` in the notation).

        Duplicate indices are an error unless ``dup_op`` is given, in which
        case duplicates are combined with it (in storage order).
        """
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values)
        if np.isscalar(values) or values.ndim == 0:
            values = np.full(indices.shape, values)
        if indices.shape != values.shape:
            raise DimensionMismatch("indices and values must have equal length")
        if typ is None:
            typ = from_dtype(values.dtype)
        elif not isinstance(typ, Type):
            typ = from_dtype(typ)
        w = cls(typ, size)
        if indices.size:
            if indices.min() < 0 or indices.max() >= size:
                raise IndexOutOfBounds("vector index out of range")
            order = np.argsort(indices, kind="stable")
            si = indices[order]
            sv = values[order].astype(typ.dtype, copy=False)
            dup = np.zeros(si.size, dtype=bool)
            np.equal(si[1:], si[:-1], out=dup[1:])
            if dup.any():
                if dup_op is None:
                    raise ValueError("duplicate indices without dup_op")
                starts = np.flatnonzero(~dup)
                # fold duplicates left-to-right with the dup op
                out_vals = sv[starts].copy()
                rest = np.flatnonzero(dup)
                group = np.searchsorted(starts, rest, side="right") - 1
                for pos, g in zip(rest, group):  # rare path; duplicates only
                    out_vals[g] = dup_op(out_vals[g], sv[pos])
                si = si[starts]
                sv = out_vals
            w._idx = si
            w._vals = sv.astype(typ.dtype, copy=False)
        return w

    @classmethod
    def from_dense(cls, dense, present=None) -> "Vector":
        """Build from a dense array; ``present`` selects entries (default all)."""
        dense = np.asarray(dense)
        typ = from_dtype(dense.dtype)
        w = cls(typ, dense.size)
        if present is None:
            w._idx = np.arange(dense.size, dtype=np.int64)
            w._vals = dense.copy()
        else:
            present = np.asarray(present, dtype=bool)
            w._idx = np.flatnonzero(present).astype(np.int64)
            w._vals = dense[w._idx].copy()
        return w

    @classmethod
    def full(cls, value, size: int, typ=None) -> "Vector":
        """A vector with an entry at every index (SS:GrB "full" format)."""
        if typ is None:
            arr = np.full(size, value)
        else:
            t = typ if isinstance(typ, Type) else from_dtype(typ)
            arr = np.full(size, value, dtype=t.dtype)
        return cls.from_dense(arr)

    def dup(self) -> "Vector":
        """``w ↤ u``: an independent copy."""
        w = Vector(self.type, self.size)
        w._idx = self._idx.copy()
        w._vals = self._vals.copy()
        return w

    # ------------------------------------------------------------------
    # internal plumbing
    # ------------------------------------------------------------------
    def _set_sparse(self, idx: np.ndarray, vals: np.ndarray, typ: Optional[Type] = None):
        """Replace contents with sorted/unique ``(idx, vals)`` (takes ownership)."""
        if typ is not None:
            self.type = typ
        self._idx = idx.astype(np.int64, copy=False)
        self._vals = vals.astype(self.type.dtype, copy=False)
        self._bitmap = None

    def _mask_keys_values(self):
        """(keys, values) for mask resolution — shared protocol with Matrix."""
        return self._idx, self._vals

    def _invalidate(self):
        self._bitmap = None

    # ------------------------------------------------------------------
    # basic properties & access
    # ------------------------------------------------------------------
    @property
    def nvals(self) -> int:
        """Number of stored entries (``nvals(u)``)."""
        return int(self._idx.size)

    @property
    def indices(self) -> np.ndarray:
        """Read-only view of the stored indices (sorted ascending)."""
        v = self._idx.view()
        v.flags.writeable = False
        return v

    @property
    def values(self) -> np.ndarray:
        """Read-only view of the stored values (aligned with ``indices``)."""
        v = self._vals.view()
        v.flags.writeable = False
        return v

    @property
    def dtype(self) -> np.dtype:
        return self.type.dtype

    def to_coo(self):
        """``{i, x} ↤ u``: copies of the index and value arrays."""
        return self._idx.copy(), self._vals.copy()

    def bitmap(self):
        """The (present, dense) bitmap representation; cached until mutation."""
        if self._bitmap is None:
            present = np.zeros(self.size, dtype=bool)
            present[self._idx] = True
            dense = np.zeros(self.size, dtype=self.type.dtype)
            dense[self._idx] = self._vals
            self._bitmap = (present, dense)
        return self._bitmap

    def to_dense(self, fill=0) -> np.ndarray:
        """Dense value array with ``fill`` at absent positions."""
        present, dense = self.bitmap()
        if fill == 0:
            return dense.copy()
        out = np.full(self.size, fill, dtype=self.type.dtype)
        out[self._idx] = self._vals
        return out

    def clear(self):
        """Remove all entries (size and type unchanged)."""
        self._set_sparse(np.empty(0, dtype=np.int64),
                         np.empty(0, dtype=self.type.dtype))

    def get(self, i: int, default=None):
        """Value at index ``i`` or ``default`` when absent."""
        i = int(i)
        if not 0 <= i < self.size:
            raise IndexOutOfBounds(f"index {i} out of range [0, {self.size})")
        pos = np.searchsorted(self._idx, i)
        if pos < self._idx.size and self._idx[pos] == i:
            return self._vals[pos]
        return default

    def __getitem__(self, i: int):
        """``s = u(i)``: extractElement; raises :class:`NoValue` when absent."""
        sentinel = object()
        out = self.get(i, sentinel)
        if out is sentinel:
            raise NoValue(f"no entry at index {i}")
        return out

    def __setitem__(self, i: int, value):
        """``u(i) = s``: setElement."""
        i = int(i)
        if not 0 <= i < self.size:
            raise IndexOutOfBounds(f"index {i} out of range [0, {self.size})")
        pos = int(np.searchsorted(self._idx, i))
        if pos < self._idx.size and self._idx[pos] == i:
            self._vals[pos] = value
        else:
            self._idx = np.insert(self._idx, pos, i)
            self._vals = np.insert(self._vals, pos,
                                   np.asarray(value, dtype=self.type.dtype))
        self._bitmap = None

    def remove_element(self, i: int):
        """Delete the entry at index ``i`` (no-op when absent)."""
        pos = np.searchsorted(self._idx, i)
        if pos < self._idx.size and self._idx[pos] == i:
            self._idx = np.delete(self._idx, pos)
            self._vals = np.delete(self._vals, pos)
            self._bitmap = None

    def __contains__(self, i: int) -> bool:
        pos = np.searchsorted(self._idx, i)
        return bool(pos < self._idx.size and self._idx[pos] == i)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Vector({self.type.name}, size={self.size}, nvals={self.nvals})"

    # ------------------------------------------------------------------
    # unmasked element-wise conveniences (masked forms live in operations)
    # ------------------------------------------------------------------
    def ewise_add(self, other: "Vector", op: BinaryOp) -> "Vector":
        """``u op∪ v``: union merge (Sec. III-B-b)."""
        self._check_same_size(other)
        keys, vals = union_merge(self._idx, self._vals, other._idx, other._vals, op)
        out = Vector(from_dtype(vals.dtype), self.size)
        out._set_sparse(keys, vals)
        return out

    def ewise_mult(self, other: "Vector", op: BinaryOp) -> "Vector":
        """``u op∩ v``: intersection merge (Sec. III-B-c)."""
        self._check_same_size(other)
        keys, vals = intersect_merge(self._idx, self._vals, other._idx, other._vals, op)
        out = Vector(from_dtype(vals.dtype), self.size)
        out._set_sparse(keys, vals)
        return out

    def apply(self, op: UnaryOp, thunk=None) -> "Vector":
        """``f(u, k)``: apply a unary op to every entry (Sec. III-B-f)."""
        if op.positional == "i":
            vals = op.fn(self._idx)
        elif op.positional == "j":
            vals = op.fn(np.zeros(self._idx.size, dtype=np.int64))
        elif thunk is not None:
            vals = op.fn(self._vals, thunk)
        else:
            vals = op.fn(self._vals)
        if op.out_dtype is not None:
            vals = vals.astype(op.out_dtype, copy=False)
        out = Vector(from_dtype(vals.dtype), self.size)
        out._set_sparse(self._idx.copy(), vals)
        return out

    def select(self, op, thunk=None) -> "Vector":
        """``u⟨f(u, k)⟩``: keep entries where the predicate holds."""
        if isinstance(op, str):
            op = _selectops.by_name(op)
        keep = op(self._vals, self._idx, np.zeros(self._idx.size, dtype=np.int64), thunk)
        out = Vector(self.type, self.size)
        out._set_sparse(self._idx[keep], self._vals[keep])
        return out

    def reduce(self, monoid: Monoid):
        """``s = [⊕ᵢ u(i)]``: reduce all entries to a scalar."""
        return monoid.reduce_all(self._vals)

    def pattern(self, typ: Type = _types.BOOL) -> "Vector":
        """Structure-only copy with all values set to one."""
        out = Vector(typ, self.size)
        out._set_sparse(self._idx.copy(), np.ones(self._idx.size, dtype=typ.dtype))
        return out

    def iso_value(self):
        """If all stored values are equal, that value; else ``None``."""
        if self.nvals == 0:
            return None
        v0 = self._vals[0]
        return v0 if bool((self._vals == v0).all()) else None

    def _check_same_size(self, other: "Vector"):
        if self.size != other.size:
            raise DimensionMismatch(
                f"vector sizes differ: {self.size} vs {other.size}")

    # equality helper used by tests / LAGraph IsEqual
    def isequal(self, other: "Vector") -> bool:
        """Same size, same structure, element-wise equal values."""
        return (
            self.size == other.size
            and self._idx.size == other._idx.size
            and bool(np.array_equal(self._idx, other._idx))
            and bool(np.array_equal(self._vals, other._vals))
        )
