"""Sparse vector (``GrB_Vector`` equivalent).

Storage model
-------------
Entries live in a pluggable *store* (:mod:`repro.grb.storage`): either the
sparse pair (sorted, duplicate-free ``int64`` indices plus values — the
seed's source of truth) or a bitmap (dense flag + value arrays — SS:GrB
v4's bitmap format, Sec. VI-A of the paper).  Which one is authoritative
is decided by the density policy at every rebuild, or pinned with
:meth:`Vector.set_format`; the other representation is a lazily built
cache, so the sparse/bitmap duality the paper credits for the 2× BC gain
costs nothing to cross.  Bitmap-resident vectors additionally get O(1)
``setElement``/``removeElement`` and O(1)-per-key mask resolution.

Unlike ``GrB_Vector``, instances are not opaque: ``indices`` / ``values``
expose the internal arrays (read-only views) because LAGraph's design
explicitly embraces non-opaque objects (Sec. II-A).
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from . import types as _types
from ..obs import memory as _obsmem
from ..obs import metrics as _metrics
from ._kernels import apply_select as _selectops
from ._kernels.ewise import merge_objects
from .errors import DimensionMismatch, IndexOutOfBounds, InvalidValue, NoValue
from .ops.binary import BinaryOp
from .ops.monoid import Monoid
from .ops.unary import UnaryOp
from .storage import policy as _policy
from .storage.vector import SparseVec
from .types import Type, from_dtype

__all__ = ["Vector"]

_uids = itertools.count()


class Vector:
    """A sparse vector of a fixed :class:`~repro.grb.types.Type` and size."""

    __slots__ = ("size", "type", "_st", "_format", "_uid", "_version",
                 "_lineage", "_expr", "_expr_reads", "__weakref__")

    def __init__(self, typ, size: int):
        if isinstance(typ, Type):
            self.type = typ
        else:
            self.type = from_dtype(typ)
        if size < 0:
            raise DimensionMismatch(f"negative vector size {size}")
        self.size = int(size)
        self._st = SparseVec.empty(self.size, self.type.dtype)
        self._format = "auto"
        self._uid = next(_uids)        # process-unique, never reused
        self._version = 0              # store version: bumps on mutation
        self._lineage = None           # derivation signature (plan cache)
        self._expr = None              # pending lazy producer (grb.expr)
        self._expr_reads = None        # pending lazy readers (grb.expr)

    def _force_lazy_state(self):
        """The *mutation* boundary: materialise the pending producer AND
        every pending recorded reader of this object, so an eager
        in-place change can never retroactively alter what an
        already-recorded call computes (blocking-mode semantics)."""
        node = self._expr
        if node is not None:
            node.force()
        reads = self._expr_reads
        if reads is not None:
            self._expr_reads = None
            for n in reads:
                n.force_pending()

    @property
    def _store(self):
        """The active store — the vector's universal *read boundary*.

        A producer recorded in a :func:`repro.grb.expr.deferred` scope is
        forced here, so every consumer of the stored arrays (kernels, mask
        resolution, element access) observes blocking-mode state without
        knowing the lazy layer exists.
        """
        node = self._expr
        if node is not None:
            node.force()
        return self._st

    @_store.setter
    def _store(self, st):
        self._st = st

    # ------------------------------------------------------------------
    # plan-cache signatures (see repro.grb.engine.plancache)
    # ------------------------------------------------------------------
    @property
    def store_version(self) -> int:
        """Monotone content/layout version (bumps on every mutation)."""
        node = self._expr
        if node is not None:
            node.force()
        return self._version

    def _plan_sig(self):
        """``(ident, version)`` for plan-cache keys (see Matrix)."""
        node = self._expr
        if node is not None:
            node.force()
        lin = self._lineage
        if lin is not None:
            if lin[0] == self._version:
                return lin[1], lin[2]
            if lin[3]:
                # identity alias (dup) — see Matrix._plan_sig: the ident
                # survives mutation, the version diverges per-object
                return lin[1], ("~", self._uid, self._version)
        return ("V", self._uid), self._version

    def _set_lineage(self, ident, version, permanent=False):
        self._lineage = (self._version, ident, version, permanent)
        return self

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        indices,
        values,
        size: int,
        typ=None,
        dup_op: Optional[BinaryOp] = None,
    ) -> "Vector":
        """Build from index/value tuples (``w ↤ {i, x}`` in the notation).

        Duplicate indices are an error unless ``dup_op`` is given, in which
        case duplicates are combined with it (in storage order).
        """
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values)
        if np.isscalar(values) or values.ndim == 0:
            values = np.full(indices.shape, values)
        if indices.shape != values.shape:
            raise DimensionMismatch("indices and values must have equal length")
        if typ is None:
            typ = from_dtype(values.dtype)
        elif not isinstance(typ, Type):
            typ = from_dtype(typ)
        w = cls(typ, size)
        if indices.size:
            if indices.min() < 0 or indices.max() >= size:
                raise IndexOutOfBounds("vector index out of range")
            order = np.argsort(indices, kind="stable")
            si = indices[order]
            sv = values[order].astype(typ.dtype, copy=False)
            dup = np.zeros(si.size, dtype=bool)
            np.equal(si[1:], si[:-1], out=dup[1:])
            if dup.any():
                if dup_op is None:
                    raise ValueError("duplicate indices without dup_op")
                starts = np.flatnonzero(~dup)
                # fold duplicates left-to-right with the dup op
                out_vals = sv[starts].copy()
                rest = np.flatnonzero(dup)
                group = np.searchsorted(starts, rest, side="right") - 1
                for pos, g in zip(rest, group):  # rare path; duplicates only
                    out_vals[g] = dup_op(out_vals[g], sv[pos])
                si = si[starts]
                sv = out_vals
            w._set_sparse(si, sv.astype(typ.dtype, copy=False))
        return w

    @classmethod
    def from_dense(cls, dense, present=None) -> "Vector":
        """Build from a dense array; ``present`` selects entries (default all)."""
        dense = np.asarray(dense)
        typ = from_dtype(dense.dtype)
        w = cls(typ, dense.size)
        if present is None:
            w._set_sparse(np.arange(dense.size, dtype=np.int64), dense.copy())
        else:
            present = np.asarray(present, dtype=bool)
            idx = np.flatnonzero(present).astype(np.int64)
            w._set_sparse(idx, dense[idx].copy())
        return w

    @classmethod
    def full(cls, value, size: int, typ=None) -> "Vector":
        """A vector with an entry at every index (SS:GrB "full" format)."""
        if typ is None:
            arr = np.full(size, value)
        else:
            t = typ if isinstance(typ, Type) else from_dtype(typ)
            arr = np.full(size, value, dtype=t.dtype)
        return cls.from_dense(arr)

    def dup(self) -> "Vector":
        """``w ↤ u``: an independent copy (same format, same pin).

        Carries the source's plan signature — the copy is bit-identical
        at this version, so cached plans stay valid until it mutates.
        """
        w = Vector(self.type, self.size)
        w._store = self._store.copy()
        w._format = self._format
        ident, version = self._plan_sig()
        w._set_lineage(ident, version, permanent=True)
        if _metrics.ENABLED:
            _obsmem.account(w, w._st)
        return w

    # ------------------------------------------------------------------
    # storage plumbing
    # ------------------------------------------------------------------
    @property
    def format(self) -> str:
        """The active storage format (``sparse`` or ``bitmap``)."""
        return self._store.fmt

    @property
    def format_pin(self) -> str:
        """The requested format: a concrete name, or ``"auto"`` (policy)."""
        return self._format

    def set_format(self, fmt: str) -> "Vector":
        """Pin the storage format (or ``"auto"`` to re-enable the policy)."""
        if fmt not in _policy.VECTOR_FORMATS and fmt != "auto":
            raise InvalidValue(
                f"unknown vector format {fmt!r}; one of "
                f"{_policy.VECTOR_FORMATS + ('auto',)}")
        self._format = fmt
        idx, vals = self._store.sparse()
        if fmt == "auto":
            fmt = _policy.select_vector_format(self.size, idx.size)
        if fmt != self._st.fmt:
            self._st = _policy.vector_store_from_sparse(
                fmt, self.size, idx, vals)
            self._version += 1  # layout changes which rule fast paths apply
            if _metrics.ENABLED:
                _obsmem.account(self, self._st)
        return self

    @property
    def _idx(self) -> np.ndarray:
        return self._store.sparse()[0]

    @property
    def _vals(self) -> np.ndarray:
        return self._store.sparse()[1]

    # ------------------------------------------------------------------
    # internal plumbing
    # ------------------------------------------------------------------
    def _set_sparse(self, idx: np.ndarray, vals: np.ndarray, typ: Optional[Type] = None):
        """Replace contents with sorted/unique ``(idx, vals)`` (takes
        ownership).  The mutation boundary where the density policy picks
        the storage format."""
        if typ is not None:
            self.type = typ
        idx = idx.astype(np.int64, copy=False)
        vals = vals.astype(self.type.dtype, copy=False)
        fmt = self._format
        if fmt == "auto":
            fmt = _policy.select_vector_format(self.size, idx.size)
        self._st = _policy.vector_store_from_sparse(fmt, self.size, idx, vals)
        self._version += 1
        if _metrics.ENABLED:
            _obsmem.account(self, self._st)

    def _mask_keys_values(self):
        """(keys, values) for mask resolution — shared protocol with Matrix."""
        return self._store.sparse()

    def _mask_present_dense(self):
        """(present, dense) when bitmap-resident, else None (mask fast path)."""
        st = self._store
        if st.fmt == "bitmap":
            return st.bitmap()
        return None

    # ------------------------------------------------------------------
    # basic properties & access
    # ------------------------------------------------------------------
    @property
    def nvals(self) -> int:
        """Number of stored entries (``nvals(u)``)."""
        return self._store.nvals

    @property
    def indices(self) -> np.ndarray:
        """Read-only view of the stored indices (sorted ascending)."""
        v = self._idx.view()
        v.flags.writeable = False
        return v

    @property
    def values(self) -> np.ndarray:
        """Read-only view of the stored values (aligned with ``indices``)."""
        v = self._vals.view()
        v.flags.writeable = False
        return v

    @property
    def dtype(self) -> np.dtype:
        return self.type.dtype

    def to_coo(self):
        """``{i, x} ↤ u``: copies of the index and value arrays."""
        return self._idx.copy(), self._vals.copy()

    def bitmap(self):
        """The (present, dense) representation — the storage itself for
        bitmap-resident vectors, a cache (until mutation) for sparse ones."""
        return self._store.bitmap()

    def to_dense(self, fill=0) -> np.ndarray:
        """Dense value array with ``fill`` at absent positions."""
        present, dense = self.bitmap()
        if fill == 0:
            return dense.copy()
        out = np.full(self.size, fill, dtype=self.type.dtype)
        out[self._idx] = self._vals
        return out

    def clear(self):
        """Remove all entries (size, type and format pin unchanged)."""
        self._force_lazy_state()    # recorded producer/readers come first
        self._st = SparseVec.empty(self.size, self.type.dtype)
        self._version += 1
        if _metrics.ENABLED:
            _obsmem.account(self, self._st)

    def get(self, i: int, default=None):
        """Value at index ``i`` or ``default`` when absent."""
        i = int(i)
        if not 0 <= i < self.size:
            raise IndexOutOfBounds(f"index {i} out of range [0, {self.size})")
        st = self._store
        if st.fmt == "bitmap":
            present, dense = st.bitmap()
            return dense[i] if present[i] else default
        idx, vals = st.sparse()
        pos = np.searchsorted(idx, i)
        if pos < idx.size and idx[pos] == i:
            return vals[pos]
        return default

    def __getitem__(self, i: int):
        """``s = u(i)``: extractElement; raises :class:`NoValue` when absent."""
        sentinel = object()
        out = self.get(i, sentinel)
        if out is sentinel:
            raise NoValue(f"no entry at index {i}")
        return out

    def __setitem__(self, i: int, value):
        """``u(i) = s``: setElement — O(1) when bitmap-resident."""
        i = int(i)
        if not 0 <= i < self.size:
            raise IndexOutOfBounds(f"index {i} out of range [0, {self.size})")
        self._force_lazy_state()    # recorded readers see the prior value
        st = self._store
        if st.fmt == "bitmap":
            st.set_element(i, np.asarray(value, dtype=self.type.dtype)[()])
            self._version += 1
            return
        idx, vals = st.sparse()
        pos = int(np.searchsorted(idx, i))
        if pos < idx.size and idx[pos] == i:
            vals[pos] = value
            st._bm = None
            self._version += 1
        else:
            self._set_sparse(
                np.insert(idx, pos, i),
                np.insert(vals, pos, np.asarray(value, dtype=self.type.dtype)))

    def remove_element(self, i: int):
        """Delete the entry at index ``i`` (no-op when absent)."""
        self._force_lazy_state()    # recorded readers see the prior value
        st = self._store
        if st.fmt == "bitmap":
            if 0 <= i < self.size:
                st.remove_element(int(i))
                self._version += 1
            return
        idx, vals = st.sparse()
        pos = np.searchsorted(idx, i)
        if pos < idx.size and idx[pos] == i:
            self._set_sparse(np.delete(idx, pos), np.delete(vals, pos))

    def __contains__(self, i: int) -> bool:
        st = self._store
        if st.fmt == "bitmap":
            return bool(0 <= i < self.size and st.bitmap()[0][i])
        idx = st.sparse()[0]
        pos = np.searchsorted(idx, i)
        return bool(pos < idx.size and idx[pos] == i)

    def __len__(self) -> int:
        return self.size

    def __iter__(self):
        """Iterate stored entries as ``(index, value)`` pairs (a read
        boundary: pending lazy state is materialised first)."""
        idx, vals = self._store.sparse()
        return iter(list(zip(idx.tolist(), vals.tolist())))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Vector({self.type.name}, size={self.size}, "
                f"nvals={self.nvals}, format={self.format})")

    # ------------------------------------------------------------------
    # unmasked element-wise conveniences (masked forms live in operations)
    # ------------------------------------------------------------------
    def ewise_add(self, other: "Vector", op: BinaryOp) -> "Vector":
        """``u op∪ v``: union merge (Sec. III-B-b).

        Two bitmap-resident operands merge densely (no sorted-key
        intersection); results are bit-identical to the sparse merge.
        """
        self._check_same_size(other)
        keys, vals = merge_objects(self, other, op, union=True)
        out = Vector(from_dtype(vals.dtype), self.size)
        out._set_sparse(keys, vals)
        return out

    def ewise_mult(self, other: "Vector", op: BinaryOp) -> "Vector":
        """``u op∩ v``: intersection merge (Sec. III-B-c)."""
        self._check_same_size(other)
        keys, vals = merge_objects(self, other, op, union=False)
        out = Vector(from_dtype(vals.dtype), self.size)
        out._set_sparse(keys, vals)
        return out

    def apply(self, op: UnaryOp, thunk=None) -> "Vector":
        """``f(u, k)``: apply a unary op to every entry (Sec. III-B-f)."""
        vals = _selectops.eval_unary(
            op, self._vals, thunk, rows=lambda: self._idx,
            cols=lambda: np.zeros(self._idx.size, dtype=np.int64))
        out = Vector(from_dtype(vals.dtype), self.size)
        out._set_sparse(self._idx.copy(), vals)
        return self._derived(out, ("apply", op, thunk))

    def select(self, op, thunk=None) -> "Vector":
        """``u⟨f(u, k)⟩``: keep entries where the predicate holds."""
        if isinstance(op, str):
            op = _selectops.by_name(op)
        if op.uses_coords:
            keep = op(self._vals, self._idx,
                      np.zeros(self._idx.size, dtype=np.int64), thunk)
        else:
            keep = op(self._vals, None, None, thunk)
        out = Vector(self.type, self.size)
        out._set_sparse(self._idx[keep], self._vals[keep])
        return self._derived(out, ("select", op, thunk))

    def reduce(self, monoid: Monoid):
        """``s = [⊕ᵢ u(i)]``: reduce all entries to a scalar."""
        return monoid.reduce_all(self._vals)

    def pattern(self, typ: Type = _types.BOOL) -> "Vector":
        """Structure-only copy with all values set to one."""
        out = Vector(typ, self.size)
        out._set_sparse(self._idx.copy(), np.ones(self._idx.size, dtype=typ.dtype))
        return self._derived(out, ("pattern", typ.name))

    def _derived(self, out: "Vector", tag: tuple) -> "Vector":
        """Tag ``out`` with a derivation signature when the tag is
        hashable (operator/thunk objects are identity-hashed and pinned
        by the tuple — see :mod:`repro.grb.engine.plancache`)."""
        try:
            hash(tag)
        except TypeError:
            return out
        ident, version = self._plan_sig()
        return out._set_lineage(tag + (ident,), version)

    def iso_value(self):
        """If all stored values are equal, that value; else ``None``."""
        if self.nvals == 0:
            return None
        v0 = self._vals[0]
        return v0 if bool((self._vals == v0).all()) else None

    def _check_same_size(self, other: "Vector"):
        if self.size != other.size:
            raise DimensionMismatch(
                f"vector sizes differ: {self.size} vs {other.size}")

    # equality helper used by tests / LAGraph IsEqual
    def isequal(self, other: "Vector") -> bool:
        """Same size, same structure, element-wise equal values
        (format-independent: compared on the sparse views)."""
        return (
            self.size == other.size
            and self._idx.size == other._idx.size
            and bool(np.array_equal(self._idx, other._idx))
            and bool(np.array_equal(self._vals, other._vals))
        )
