"""Masks (Sec. III-C of the paper).

A mask limits the scope of an operation's write-back.  The paper's notation
maps to this module as follows:

=================  =============================================
notation           construction
=================  =============================================
``C⟨M⟩``           ``Mask(M)`` or just passing ``M``
``C⟨¬M⟩``          ``complement(M)``
``C⟨s(M)⟩``        ``structure(M)``
``C⟨¬s(M)⟩``       ``complement(structure(M))``
``C⟨M, r⟩``        any of the above plus ``replace=True`` on the op
=================  =============================================

By default masks are *valued*: stored entries with a falsy value (explicit
zero) are not part of the mask.  A *structural* mask selects every stored
entry regardless of value.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace
from typing import Optional

import numpy as np

from ._kernels.maskwrite import mask_allowed_keys

__all__ = ["Mask", "structure", "complement", "as_mask"]


@dataclass(frozen=True)
class Mask:
    """A (possibly complemented, possibly structural) mask over an object.

    Attributes
    ----------
    obj:
        The :class:`~repro.grb.vector.Vector` or
        :class:`~repro.grb.matrix.Matrix` providing the mask pattern.
    structural:
        Use the stored pattern only (ignore values).
    complemented:
        Select the positions *not* in the mask.
    """

    obj: object
    structural: bool = False
    complemented: bool = False

    def allowed_keys(self) -> np.ndarray:
        """Sorted keys selected by the mask before complementing."""
        keys, vals = self.obj._mask_keys_values()
        return mask_allowed_keys(keys, vals, self.structural)

    def allowed_present(self):
        """Dense membership flags when the mask object is bitmap-resident.

        Returns a bool array over the full key space (``None`` when the
        object's store is not bitmap): the write-back then resolves the
        mask with O(1) lookups instead of sorted-key searches.  Valued
        masks intersect the flags with value truthiness, matching
        :func:`~repro.grb._kernels.maskwrite.mask_allowed_keys`.
        """
        pd = getattr(self.obj, "_mask_present_dense", lambda: None)()
        if pd is None:
            return None
        present, dense = pd
        if self.structural:
            return present
        return present & dense.astype(bool, copy=False)

    def __invert__(self) -> "Mask":
        return _dc_replace(self, complemented=not self.complemented)


def structure(obj) -> Mask:
    """``s(M)``: the structural mask of a vector/matrix (or lift a Mask)."""
    if isinstance(obj, Mask):
        return _dc_replace(obj, structural=True)
    return Mask(obj, structural=True)


def complement(obj) -> Mask:
    """``¬M``: the complemented mask of a vector/matrix (or flip a Mask)."""
    if isinstance(obj, Mask):
        return ~obj
    return Mask(obj, complemented=True)


def as_mask(m) -> Optional[Mask]:
    """Normalise a user-supplied mask argument (None, Mask, Vector, Matrix)."""
    if m is None or isinstance(m, Mask):
        return m
    return Mask(m)
