"""``repro.grb.expr`` — the lazy expression layer (non-blocking mode).

The GraphBLAS spec's *non-blocking* execution mode lets an implementation
defer and fuse operations as long as every value a user can observe is the
one blocking mode would have produced.  This module is that mode made
real: inside a :func:`deferred` scope (or with the ``lazy`` descriptor
bit), the operations façade records each call into an **expression DAG**
instead of executing it, and returns a lightweight :class:`Deferred`
handle.  Materialisation happens

* at an explicit :meth:`Deferred.new` / :func:`evaluate` call,
* at any *read boundary* of an output object — ``nvals``, ``to_coo``,
  ``values``/``indices``, ``bitmap()``, ``__iter__``, ``isequal``,
  element access: anything that observes stored entries forces the
  object's pending subgraph first, or
* when the ``deferred()`` scope exits (the whole remaining graph flushes).

At a materialisation boundary the *ready subgraph* — the forced node plus
everything it transitively depends on, in record order — is handed to the
engine as one :class:`~repro.grb.engine.multiplan.MultiPlan`, which may
apply **multi-output fusion rules** (two consumers of one producer run in
the producer's single output pass) before dispatching node by node.  With
:data:`repro.grb.engine.cost.FUSION_ENABLED` (or
``cost.MULTI_FUSION_ENABLED``) off, the same DAG decomposes into the
bit-identical call-at-a-time sequence.

Dependency tracking is exact: a node depends on the pending producers of
every operand it reads (its arguments, its mask's object, and its own
output — accumulators and masks read the output's prior state) and, for
writes, on every pending reader of the object it overwrites (anti-
dependencies), so forcing one output never reorders visible effects.

Quick tour::

    from repro import grb

    with grb.deferred():
        h = grb.vxm(q, q, A, sr, mask=grb.complement(grb.structure(p)),
                    replace=True)          # records; returns a Deferred
        grb.update(p, q, mask=grb.structure(q))
        # nothing has executed yet
    # scope exit materialised both calls (as one fused MultiPlan)

    with grb.deferred():
        grb.mxv(w, A, u, sr)
        print(w.nvals)                     # read boundary: forces w now
"""

from __future__ import annotations

from contextvars import ContextVar
from typing import Optional

from ..obs import metrics as _metrics
from ..obs import trace as _trace

#: Always-on recording counter: calls deferred into an expression DAG
#: instead of executing eagerly, by operation kind.
_RECORDED = _metrics.counter(
    "grb_expr_recorded_total", "Plans recorded into expression DAGs, by op",
    labels=("op",))

__all__ = ["Deferred", "ExprGraph", "deferred", "evaluate", "submit",
           "active_graph"]

_PENDING, _DONE, _DISCARDED = 0, 1, 2

# Context-local like the telemetry hook and force_rule: a deferred scope in
# one request/thread never captures the calls of another.
_scope_var: ContextVar[Optional["ExprGraph"]] = ContextVar(
    "repro_grb_expr_scope", default=None)
# While a ready subgraph executes, read boundaries must NOT re-enter the
# graph: execution follows record order, so an object's current state is
# exactly what the running node is entitled to see — in particular, an
# object whose *later* producer is still pending must be read as-is, not
# forced out of program order.
_executing_var: ContextVar[bool] = ContextVar(
    "repro_grb_expr_executing", default=False)
# The ambient graph serves one-shot ``lazy`` descriptor-bit calls made
# outside any scope (reads still force through the recorded node).
_ambient_var: ContextVar[Optional["ExprGraph"]] = ContextVar(
    "repro_grb_expr_ambient", default=None)


class ExprNode:
    """One recorded-but-not-executed call in an expression DAG."""

    __slots__ = ("graph", "plan", "deps", "index", "state", "result")

    def __init__(self, graph: "ExprGraph", plan, deps, index: int):
        self.graph = graph
        self.plan = plan
        self.deps = deps          # ExprNode list (record-time dependencies)
        self.index = index        # record order == a valid topological order
        self.state = _PENDING
        self.result = None

    def force(self):
        """Materialise this node (and its ready subgraph); returns result.

        A no-op while a subgraph is already executing in this context:
        reads made *by* executing nodes legitimately observe intermediate
        state (execution follows record order)."""
        if self.state == _DISCARDED:
            raise RuntimeError(
                f"recorded {self.plan.op!r} call was discarded (its "
                f"deferred scope exited with an exception)")
        if self.state == _PENDING and not _executing_var.get():
            self.graph.force(self)
        return self.result

    def force_pending(self):
        """Materialise if still pending; silently skip discarded nodes.

        The mutation-boundary variant (``Matrix``/``Vector`` eager
        mutators flushing an object's pending *readers*): a reader
        discarded by a failed scope must not make an unrelated mutation
        raise."""
        if self.state == _PENDING and not _executing_var.get():
            self.graph.force(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = {_PENDING: "pending", _DONE: "done",
                 _DISCARDED: "discarded"}[self.state]
        return f"ExprNode(#{self.index} {self.plan.op} [{state}])"


class Deferred:
    """Lightweight handle for a call recorded into an expression DAG.

    Returned by the :mod:`repro.grb.operations` façade inside a
    :func:`deferred` scope (or under the ``lazy`` descriptor bit) in place
    of the eagerly computed output.  The handle is inert until
    :meth:`new` / :meth:`evaluate` — or until any read boundary of the
    output object forces the pending subgraph.
    """

    __slots__ = ("_node",)

    def __init__(self, node: ExprNode):
        self._node = node

    def new(self):
        """Materialise the recorded call and return its output object.

        The GraphBLAS-style name: the point where a lazily described
        result becomes a concrete ``Matrix``/``Vector``.  Evaluating the
        same handle twice is a no-op returning the same object.
        """
        return self._node.force()

    def evaluate(self):
        """Alias of :meth:`new`."""
        return self._node.force()

    @property
    def out(self):
        """The output object the recorded call will write (unforced)."""
        return self._node.plan.out

    @property
    def done(self) -> bool:
        """Whether the recorded call has been materialised (``False`` for
        pending *and* for discarded work)."""
        return self._node.state == _DONE

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Deferred({self._node!r})"


class ExprGraph:
    """An expression DAG: recorded plans plus their data dependencies.

    Pending-*reader* lists live on the objects themselves
    (``obj._expr_reads``), not in the graph: a recorded overwrite takes
    its anti-dependencies from there, and — crucially — the objects'
    eager mutators (``__setitem__``, ``clear``, the array setters) flush
    the same lists, so mutating an operand a recorded call has read can
    never retroactively change what that call computes.
    """

    def __init__(self):
        self._nodes: list[ExprNode] = []

    # -- recording -------------------------------------------------------
    @staticmethod
    def _inputs(plan):
        objs = list(plan.args)
        if plan.mask is not None:
            objs.append(plan.mask.obj)
        if plan.out is not None:
            objs.append(plan.out)    # accum/mask write-back reads old state
        return objs

    def record(self, plan) -> Deferred:
        """Append ``plan`` to the DAG; returns its :class:`Deferred`."""
        if _metrics.ENABLED:
            _RECORDED.labels(plan.op).inc()
        if _trace.active():
            _trace.instant("record:" + plan.op, cat="record")
        inputs = self._inputs(plan)
        deps = []
        for obj in inputs:
            producer = getattr(obj, "_expr", None)
            if producer is not None and producer.state == _PENDING:
                deps.append(producer)
        out = plan.out
        # anti-dependencies: pending readers of the object being written
        prior = out._expr_reads
        if prior is not None:
            out._expr_reads = None
            deps.extend(n for n in prior if n.state == _PENDING)
        node = ExprNode(self, plan, deps, len(self._nodes))
        self._nodes.append(node)
        for obj in inputs:
            if obj is not out:
                reads = obj._expr_reads
                if reads is None:
                    obj._expr_reads = [node]
                    continue
                if len(reads) >= 8:      # long-lived operands (a BFS
                    # adjacency is read every level): drop completed
                    # readers so the list never pins dead nodes
                    reads = [n for n in reads if n.state == _PENDING]
                    obj._expr_reads = reads
                reads.append(node)
        out._expr = node
        return Deferred(node)

    # -- materialisation ---------------------------------------------------
    def force(self, node: ExprNode):
        """Execute the ready subgraph reaching ``node``, in record order."""
        if node.state != _PENDING:
            return
        stack = [node]
        need = {}
        while stack:
            n = stack.pop()
            if n.state != _PENDING or n.index in need:
                continue
            need[n.index] = n
            stack.extend(n.deps)
        ready = [need[i] for i in sorted(need)]
        self._run(ready)
        # drop completed nodes once nothing is pending, so a long-lived
        # graph (the ambient DESC_LAZY graph above all) never pins dead
        # plans and their operand/feed arrays
        self._compact()

    def flush(self):
        """Materialise every pending node (scope exit / ``evaluate()``)."""
        pending = [n for n in self._nodes if n.state == _PENDING]
        if pending:
            self._run(pending)
        self._compact()

    def _run(self, nodes):
        # clear the producer markers of the nodes about to materialise
        # (an object whose *latest* producer is outside this closure keeps
        # its marker — it is still pending afterwards)
        for n in nodes:
            out = n.plan.out
            if getattr(out, "_expr", None) is n:
                out._expr = None
        from .engine.multiplan import MultiPlan
        token = _executing_var.set(True)
        try:
            MultiPlan(nodes).execute()
        finally:
            _executing_var.reset(token)

    def discard(self):
        """Drop every pending node (a deferred scope that raised)."""
        for n in self._nodes:
            if n.state == _PENDING:
                n.state = _DISCARDED
                out = n.plan.out
                if getattr(out, "_expr", None) is n:
                    out._expr = None
        self._compact()

    def _compact(self):
        if all(n.state != _PENDING for n in self._nodes):
            self._nodes.clear()

    @property
    def pending(self) -> int:
        return sum(1 for n in self._nodes if n.state == _PENDING)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExprGraph(nodes={len(self._nodes)}, pending={self.pending})"


# ---------------------------------------------------------------------------
# the public scope / submission API
# ---------------------------------------------------------------------------

def active_graph() -> Optional[ExprGraph]:
    """The innermost active :func:`deferred` scope's graph, if any."""
    return _scope_var.get()


class deferred:
    """Enter non-blocking mode: record GraphBLAS calls instead of running.

    Inside the scope the operations façade returns :class:`Deferred`
    handles; execution happens at read boundaries, explicit
    :meth:`Deferred.new` / :func:`evaluate` calls, and — for everything
    still pending — when the scope exits cleanly.  A scope that exits with
    an exception *discards* its unforced work instead of running it (the
    recorded calls' effects were never observable).

    Scopes are context-local and re-entrant: nesting joins the existing
    scope rather than stacking a new flush boundary.  (A plain class, not
    a ``@contextmanager`` generator: algorithm hot loops open one scope
    per iteration, so entry/exit stays a handful of attribute operations.)
    """

    __slots__ = ("_token", "graph")

    def __enter__(self) -> ExprGraph:
        g = _scope_var.get()
        if g is not None:
            self._token = None        # nested: join the enclosing scope
            self.graph = g
            return g
        g = ExprGraph()
        self._token = _scope_var.set(g)
        self.graph = g
        return g

    def __exit__(self, exc_type, exc, tb):
        if self._token is None:
            return False
        try:
            if exc_type is None:
                self.graph.flush()
            else:
                self.graph.discard()
        finally:
            _scope_var.reset(self._token)
        return False


def evaluate(*objs):
    """Force pending computation.

    ``evaluate(x, y)`` materialises the ready subgraphs of the given
    objects / :class:`Deferred` handles (returning the materialised
    objects); ``evaluate()`` with no arguments flushes *everything*
    pending in the active scope (and the ambient graph).  The explicit
    spelling of the spec's ``GrB_wait``.
    """
    if objs:
        out = []
        for obj in objs:
            if isinstance(obj, Deferred):
                out.append(obj.new())
                continue
            node = getattr(obj, "_expr", None)
            if node is not None:
                node.force()
            out.append(obj)
        return out[0] if len(out) == 1 else tuple(out)
    for g in (_scope_var.get(), _ambient_var.get()):
        if g is not None:
            g.flush()
    return None


def _ambient() -> ExprGraph:
    g = _ambient_var.get()
    if g is None:
        g = ExprGraph()
        _ambient_var.set(g)
    return g


_dispatch = None        # bound on first use (engine imports expr first)


def submit(plan, lazy: bool = False):
    """Record ``plan`` when a deferred scope (or ``lazy``) is active; else run.

    The single entry point the operations façade uses: eager mode is one
    extra ``ContextVar`` read.  Raw-output plans (``out=None``) always run
    eagerly — their callers consume arrays, not handles.
    """
    if plan.out is not None:
        g = _scope_var.get()
        if g is None and lazy:
            g = _ambient()
        if g is not None:
            return g.record(plan)
    global _dispatch
    if _dispatch is None:
        from .engine.rules import dispatch as _d
        _dispatch = _d
    return _dispatch(plan)
