"""Element-wise union / intersection merges over sorted sparse structures.

These implement the value semantics of ``eWiseAdd`` (union: the operator is
applied only where *both* operands have entries, otherwise the lone entry is
copied through) and ``eWiseMult`` (intersection) from the GraphBLAS spec.

The same kernels serve vectors (keys are indices) and matrices (keys are
linearised ``i * ncols + j`` coordinates) — callers linearise first.
"""

from __future__ import annotations

import numpy as np

__all__ = ["union_merge", "intersect_merge", "setdiff_keys"]


def intersect_merge(keys_a, vals_a, keys_b, vals_b, op):
    """Apply ``op`` on the key intersection of two sorted sparse structures.

    Parameters
    ----------
    keys_a, keys_b:
        Sorted, unique int64 key arrays.
    vals_a, vals_b:
        Matching value arrays.
    op:
        Vectorised binary operator ``op(a_vals, b_vals)``.

    Returns ``(keys, values)`` with keys sorted ascending.
    """
    common, ia, ib = np.intersect1d(keys_a, keys_b, assume_unique=True,
                                    return_indices=True)
    if common.size == 0:
        dt = op(vals_a[:0], vals_b[:0]).dtype
        return common, np.empty(0, dtype=dt)
    return common, op(vals_a[ia], vals_b[ib])


def union_merge(keys_a, vals_a, keys_b, vals_b, op):
    """eWiseAdd semantics: union of structures, ``op`` only on the overlap.

    Entries present in exactly one operand are copied through unchanged
    (cast to the output dtype).
    """
    common, ia, ib = np.intersect1d(keys_a, keys_b, assume_unique=True,
                                    return_indices=True)
    both = op(vals_a[ia], vals_b[ib]) if common.size else op(vals_a[:0], vals_b[:0])
    out_dt = np.result_type(both.dtype, vals_a.dtype, vals_b.dtype)

    only_a = np.ones(keys_a.size, dtype=bool)
    only_a[ia] = False
    only_b = np.ones(keys_b.size, dtype=bool)
    only_b[ib] = False

    keys = np.concatenate((common, keys_a[only_a], keys_b[only_b]))
    vals = np.concatenate((
        both.astype(out_dt, copy=False),
        vals_a[only_a].astype(out_dt, copy=False),
        vals_b[only_b].astype(out_dt, copy=False),
    ))
    order = np.argsort(keys, kind="stable")
    return keys[order], vals[order]


def setdiff_keys(keys_a, keys_b):
    """Boolean mask over ``keys_a`` marking entries *not* present in ``keys_b``.

    Both inputs sorted unique int64.
    """
    if keys_b.size == 0:
        return np.ones(keys_a.size, dtype=bool)
    pos = np.searchsorted(keys_b, keys_a)
    pos = np.minimum(pos, keys_b.size - 1)
    return keys_b[pos] != keys_a
