"""Element-wise union / intersection merges over sorted sparse structures.

These implement the value semantics of ``eWiseAdd`` (union: the operator is
applied only where *both* operands have entries, otherwise the lone entry is
copied through) and ``eWiseMult`` (intersection) from the GraphBLAS spec.

The same kernels serve vectors (keys are indices) and matrices (keys are
linearised ``i * ncols + j`` coordinates) — callers linearise first.

Format-aware fast path: when both operands are bitmap-resident
(:mod:`repro.grb.storage.bitmap`), the ``*_merge_bitmap`` variants merge
the dense flag/value arrays directly — no sorted-key intersection — and
return the same sorted sparse result, value for value.
"""

from __future__ import annotations

import numpy as np
from ...obs.profile import profiled

__all__ = ["union_merge", "intersect_merge", "setdiff_keys",
           "union_merge_bitmap", "intersect_merge_bitmap", "merge_objects"]


@profiled("intersect_merge")
def intersect_merge(keys_a, vals_a, keys_b, vals_b, op):
    """Apply ``op`` on the key intersection of two sorted sparse structures.

    Parameters
    ----------
    keys_a, keys_b:
        Sorted, unique int64 key arrays.
    vals_a, vals_b:
        Matching value arrays.
    op:
        Vectorised binary operator ``op(a_vals, b_vals)``.

    Returns ``(keys, values)`` with keys sorted ascending.
    """
    common, ia, ib = np.intersect1d(keys_a, keys_b, assume_unique=True,
                                    return_indices=True)
    if common.size == 0:
        dt = op(vals_a[:0], vals_b[:0]).dtype
        return common, np.empty(0, dtype=dt)
    return common, op(vals_a[ia], vals_b[ib])


@profiled("union_merge")
def union_merge(keys_a, vals_a, keys_b, vals_b, op):
    """eWiseAdd semantics: union of structures, ``op`` only on the overlap.

    Entries present in exactly one operand are copied through unchanged
    (cast to the output dtype).
    """
    common, ia, ib = np.intersect1d(keys_a, keys_b, assume_unique=True,
                                    return_indices=True)
    both = op(vals_a[ia], vals_b[ib]) if common.size else op(vals_a[:0], vals_b[:0])
    out_dt = np.result_type(both.dtype, vals_a.dtype, vals_b.dtype)

    only_a = np.ones(keys_a.size, dtype=bool)
    only_a[ia] = False
    only_b = np.ones(keys_b.size, dtype=bool)
    only_b[ib] = False

    keys = np.concatenate((common, keys_a[only_a], keys_b[only_b]))
    vals = np.concatenate((
        both.astype(out_dt, copy=False),
        vals_a[only_a].astype(out_dt, copy=False),
        vals_b[only_b].astype(out_dt, copy=False),
    ))
    order = np.argsort(keys, kind="stable")
    return keys[order], vals[order]


@profiled("intersect_merge_bitmap")
def intersect_merge_bitmap(present_a, dense_a, present_b, dense_b, op):
    """eWiseMult over two bitmap representations.

    Bit-identical to :func:`intersect_merge` on the equivalent sparse
    operands: same keys (sorted), same values (the op sees the same operand
    values element-wise), same dtype.
    """
    keys = np.flatnonzero(present_a & present_b).astype(np.int64)
    return keys, op(dense_a[keys], dense_b[keys])


@profiled("union_merge_bitmap")
def union_merge_bitmap(present_a, dense_a, present_b, dense_b, op):
    """eWiseAdd over two bitmap representations.

    The op runs only on the overlap; lone entries are copied through with
    the same dtype-promotion rule as :func:`union_merge`
    (``result_type(op-result, a, b)``).
    """
    both = present_a & present_b
    overlap = np.flatnonzero(both).astype(np.int64)
    applied = op(dense_a[overlap], dense_b[overlap])
    out_dt = np.result_type(applied.dtype, dense_a.dtype, dense_b.dtype)
    keys = np.flatnonzero(present_a | present_b).astype(np.int64)
    out = np.zeros(present_a.size, dtype=out_dt)
    only_a = present_a & ~both
    out[only_a] = dense_a[only_a].astype(out_dt, copy=False)
    only_b = present_b & ~both
    out[only_b] = dense_b[only_b].astype(out_dt, copy=False)
    out[overlap] = applied.astype(out_dt, copy=False)
    return keys, out[keys]


def merge_objects(a, b, op, *, union: bool):
    """Element-wise merge of two stored objects, picking the layout-best path.

    ``a``/``b`` are any objects speaking the mask protocol
    (``_mask_present_dense`` / ``_mask_keys_values`` — both ``Vector`` and
    ``Matrix``).  When both are bitmap-resident the dense merge runs;
    otherwise the sorted-key merge.  Returns ``(keys, values)`` either way
    — identical to the sparse reference by construction.
    """
    pa = a._mask_present_dense()
    pb = b._mask_present_dense() if pa is not None else None
    if pa is not None and pb is not None:
        fn = union_merge_bitmap if union else intersect_merge_bitmap
        return fn(pa[0], pa[1], pb[0], pb[1], op)
    ka, va = a._mask_keys_values()
    kb, vb = b._mask_keys_values()
    fn = union_merge if union else intersect_merge
    return fn(ka, va, kb, vb, op)


def setdiff_keys(keys_a, keys_b):
    """Boolean mask over ``keys_a`` marking entries *not* present in ``keys_b``.

    ``keys_b`` must be sorted unique int64; ``keys_a`` may be in any order
    and contain duplicates (each element is probed independently — the
    masked-mxm pre-reduce filter relies on this, so keep that property if
    this is ever rewritten as a merge).
    """
    if keys_b.size == 0:
        return np.ones(keys_a.size, dtype=bool)
    pos = np.searchsorted(keys_b, keys_a)
    pos = np.minimum(pos, keys_b.size - 1)
    return keys_b[pos] != keys_a
