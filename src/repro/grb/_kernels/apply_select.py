"""Select operators (``GrB_IndexUnaryOp`` used with ``GrB_select``).

A select operator is a boolean predicate ``f(value, i, j, thunk)`` evaluated
on every stored entry; entries where it returns ``False`` are dropped
(Sec. III-B-f of the paper).  All predicates are vectorised.

Format-aware evaluation: predicates declare whether they read entry
coordinates (``uses_coords``).  Value-only predicates (``valuegt``,
``nonzero``, ...) are evaluated without materialising the per-entry row
array at all, and coordinate predicates pull rows from the storage layer's
``entry_rows`` — O(live rows + nnz) for hypersparse matrices instead of
O(nrows + nnz) — via :func:`eval_select`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from ...obs.profile import profiled

__all__ = [
    "SelectOp",
    "eval_unary",
    "eval_select",
    "TRIL",
    "TRIU",
    "DIAG",
    "OFFDIAG",
    "NONZERO",
    "VALUEEQ",
    "VALUENE",
    "VALUEGT",
    "VALUEGE",
    "VALUELT",
    "VALUELE",
    "ROWLE",
    "COLLE",
    "by_name",
]


@dataclass(frozen=True)
class SelectOp:
    """A vectorised entry predicate.

    ``fn(values, i, j, thunk) -> bool array``; for vectors ``j`` is zeros.
    ``uses_coords=False`` marks value-only predicates, which callers may
    evaluate with ``i``/``j`` set to ``None`` (no coordinate expansion).
    ``keyed=True`` marks predicates that accept the *linearised* matrix
    coordinate directly (``i`` = ``row·ncols + col`` keys, ``j=None``):
    fused epilogues then skip the div/mod split a kernel's raw key output
    would otherwise round-trip through (the op must still handle real
    ``(i, j)`` pairs for the materialised path).
    """

    name: str
    fn: Callable[[np.ndarray, np.ndarray, np.ndarray, object], np.ndarray]
    uses_coords: bool = True
    keyed: bool = False

    def __call__(self, values, i, j, thunk) -> np.ndarray:
        return np.asarray(self.fn(values, i, j, thunk), dtype=bool)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SelectOp({self.name})"


@profiled("eval_unary")
def eval_unary(op, values: np.ndarray, thunk, rows, cols) -> np.ndarray:
    """Evaluate a ``UnaryOp`` over entry arrays — the one definition of
    apply's value semantics (positional i/j dispatch, thunk arity, the
    ``out_dtype`` cast), shared by ``Vector.apply`` / ``Matrix.apply`` and
    the engine's apply rule and fused epilogues so the paths cannot drift.

    ``rows`` / ``cols`` are zero-arg callables supplying the coordinate
    arrays; they are invoked only for positional ops, so value ops never
    pay a coordinate expansion.
    """
    if op.positional == "i":
        out = op.fn(rows())
    elif op.positional == "j":
        out = op.fn(cols())
    elif thunk is not None:
        out = op.fn(values, thunk)
    else:
        out = op.fn(values)
    if op.out_dtype is not None:
        out = out.astype(op.out_dtype, copy=False)
    return out


@profiled("eval_select")
def eval_select(op: "SelectOp", values: np.ndarray, store, thunk) -> np.ndarray:
    """Keep-mask of a predicate over a matrix store's entries.

    Value-only predicates never touch coordinates; the rest read row ids
    from the store (hypersparse: O(live) expansion) and column ids from the
    canonical view.
    """
    if not op.uses_coords:
        return op(values, None, None, thunk)
    return op(values, store.entry_rows(), store.csr()[1], thunk)


TRIL = SelectOp("tril", lambda v, i, j, k: j <= i + (k or 0))
TRIU = SelectOp("triu", lambda v, i, j, k: j >= i + (k or 0))
DIAG = SelectOp("diag", lambda v, i, j, k: j == i + (k or 0))
OFFDIAG = SelectOp("offdiag", lambda v, i, j, k: j != i + (k or 0))
NONZERO = SelectOp("nonzero", lambda v, i, j, k: v.astype(bool), uses_coords=False)
VALUEEQ = SelectOp("valueeq", lambda v, i, j, k: v == k, uses_coords=False)
VALUENE = SelectOp("valuene", lambda v, i, j, k: v != k, uses_coords=False)
VALUEGT = SelectOp("valuegt", lambda v, i, j, k: v > k, uses_coords=False)
VALUEGE = SelectOp("valuege", lambda v, i, j, k: v >= k, uses_coords=False)
VALUELT = SelectOp("valuelt", lambda v, i, j, k: v < k, uses_coords=False)
VALUELE = SelectOp("valuele", lambda v, i, j, k: v <= k, uses_coords=False)
ROWLE = SelectOp("rowle", lambda v, i, j, k: i <= k)
COLLE = SelectOp("colle", lambda v, i, j, k: j <= k)

_REGISTRY = {
    op.name: op
    for op in (TRIL, TRIU, DIAG, OFFDIAG, NONZERO, VALUEEQ, VALUENE,
               VALUEGT, VALUEGE, VALUELT, VALUELE, ROWLE, COLLE)
}


def by_name(name: str) -> SelectOp:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown select op {name!r}") from None
