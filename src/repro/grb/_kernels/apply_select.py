"""Select operators (``GrB_IndexUnaryOp`` used with ``GrB_select``).

A select operator is a boolean predicate ``f(value, i, j, thunk)`` evaluated
on every stored entry; entries where it returns ``False`` are dropped
(Sec. III-B-f of the paper).  All predicates are vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "SelectOp",
    "TRIL",
    "TRIU",
    "DIAG",
    "OFFDIAG",
    "NONZERO",
    "VALUEEQ",
    "VALUENE",
    "VALUEGT",
    "VALUEGE",
    "VALUELT",
    "VALUELE",
    "ROWLE",
    "COLLE",
    "by_name",
]


@dataclass(frozen=True)
class SelectOp:
    """A vectorised entry predicate.

    ``fn(values, i, j, thunk) -> bool array``; for vectors ``j`` is zeros.
    """

    name: str
    fn: Callable[[np.ndarray, np.ndarray, np.ndarray, object], np.ndarray]

    def __call__(self, values, i, j, thunk) -> np.ndarray:
        return np.asarray(self.fn(values, i, j, thunk), dtype=bool)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SelectOp({self.name})"


TRIL = SelectOp("tril", lambda v, i, j, k: j <= i + (k or 0))
TRIU = SelectOp("triu", lambda v, i, j, k: j >= i + (k or 0))
DIAG = SelectOp("diag", lambda v, i, j, k: j == i + (k or 0))
OFFDIAG = SelectOp("offdiag", lambda v, i, j, k: j != i + (k or 0))
NONZERO = SelectOp("nonzero", lambda v, i, j, k: v.astype(bool))
VALUEEQ = SelectOp("valueeq", lambda v, i, j, k: v == k)
VALUENE = SelectOp("valuene", lambda v, i, j, k: v != k)
VALUEGT = SelectOp("valuegt", lambda v, i, j, k: v > k)
VALUEGE = SelectOp("valuege", lambda v, i, j, k: v >= k)
VALUELT = SelectOp("valuelt", lambda v, i, j, k: v < k)
VALUELE = SelectOp("valuele", lambda v, i, j, k: v <= k)
ROWLE = SelectOp("rowle", lambda v, i, j, k: i <= k)
COLLE = SelectOp("colle", lambda v, i, j, k: j <= k)

_REGISTRY = {
    op.name: op
    for op in (TRIL, TRIU, DIAG, OFFDIAG, NONZERO, VALUEEQ, VALUENE,
               VALUEGT, VALUEGE, VALUELT, VALUELE, ROWLE, COLLE)
}


def by_name(name: str) -> SelectOp:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown select op {name!r}") from None
