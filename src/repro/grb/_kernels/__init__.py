"""Vectorised kernels backing the substrate's operations.

These functions work on raw NumPy arrays (CSR triplets, sorted key/value
pairs) so they can be unit-tested independently of the
:class:`~repro.grb.vector.Vector` / :class:`~repro.grb.matrix.Matrix`
wrappers.
"""

from . import apply_select, ewise, gather, maskwrite, matmul

__all__ = ["apply_select", "ewise", "gather", "maskwrite", "matmul"]
