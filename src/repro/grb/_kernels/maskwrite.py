"""The mask / accumulator / replace write-back step.

Every GraphBLAS operation ends with the same transaction (C API spec §2.3):

1. ``Z = C ⊙ T`` — if an accumulator ⊙ is given, merge the freshly computed
   result ``T`` into the existing output ``C`` with eWiseAdd semantics;
   otherwise ``Z = T``.
2. ``C⟨M⟩ = Z`` — inside the mask the output becomes exactly ``Z`` (masked
   positions where ``Z`` has no entry lose their entry); outside the mask the
   old entries survive, unless *replace* semantics is requested, in which
   case they are deleted.

This module implements that transaction once, over linearised sorted key /
value arrays, so vectors and matrices share one battle-tested code path.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .ewise import setdiff_keys, union_merge
from ...obs.profile import profiled

__all__ = ["mask_allowed_keys", "masked_write"]


def mask_allowed_keys(
    mask_keys: np.ndarray,
    mask_values: Optional[np.ndarray],
    structural: bool,
) -> np.ndarray:
    """Keys selected by a (non-complemented) mask.

    A *structural* mask selects every stored entry; a *valued* mask selects
    entries whose value is truthy (explicit zeros/False are excluded).
    """
    if structural or mask_values is None:
        return mask_keys
    keep = mask_values.astype(bool)
    return mask_keys[keep]


@profiled("masked_write")
def masked_write(
    c_keys: np.ndarray,
    c_vals: np.ndarray,
    t_keys: np.ndarray,
    t_vals: np.ndarray,
    *,
    accum=None,
    allowed_keys: Optional[np.ndarray] = None,
    allowed_present: Optional[np.ndarray] = None,
    complement: bool = False,
    replace: bool = False,
    out_dtype: Optional[np.dtype] = None,
):
    """Apply the spec write-back transaction; returns ``(keys, values)``.

    Parameters
    ----------
    c_keys, c_vals:
        The existing output's sorted unique keys and values.
    t_keys, t_vals:
        The operation result's sorted unique keys and values.
    accum:
        Optional binary accumulator ⊙.
    allowed_keys:
        Sorted keys selected by the mask *before* complementing, or ``None``
        for "no mask" (everything allowed).
    allowed_present:
        Format-aware alternative to ``allowed_keys``: a dense bool array
        over the full key space (a bitmap-resident mask's own flag array).
        Membership tests become O(1) gathers instead of sorted-key
        searches, with identical selection semantics.
    complement:
        Whether the mask is complemented.
    replace:
        Replace (annihilate-outside-mask) semantics.
    out_dtype:
        dtype of the final values (defaults to promotion of inputs).
    """
    if out_dtype is None:
        out_dtype = np.result_type(c_vals.dtype, t_vals.dtype) if c_vals.size or t_vals.size \
            else t_vals.dtype

    # Step 1: Z = C ⊙ T  (or Z = T without an accumulator).
    if accum is not None and c_keys.size:
        z_keys, z_vals = union_merge(c_keys, c_vals, t_keys, t_vals, accum)
    else:
        z_keys, z_vals = t_keys, t_vals

    # No mask: the output becomes Z wholesale.
    if allowed_keys is None and allowed_present is None and not complement:
        return z_keys.astype(np.int64, copy=False), z_vals.astype(out_dtype, copy=False)

    if allowed_present is not None:
        # bitmap mask fast path: dense membership lookups
        if complement:
            inside_z = ~allowed_present[z_keys]
            outside_c = allowed_present[c_keys]
        else:
            inside_z = allowed_present[z_keys]
            outside_c = ~allowed_present[c_keys]
    elif allowed_keys is None:
        # complemented "no mask" = empty mask: nothing inside.
        inside_z = np.zeros(z_keys.size, dtype=bool)
        outside_c = np.ones(c_keys.size, dtype=bool)
    elif complement:
        inside_z = setdiff_keys(z_keys, allowed_keys)
        outside_c = ~setdiff_keys(c_keys, allowed_keys)
    else:
        inside_z = ~setdiff_keys(z_keys, allowed_keys)
        outside_c = setdiff_keys(c_keys, allowed_keys)

    keys_in = z_keys[inside_z]
    vals_in = z_vals[inside_z]

    if replace:
        keys = keys_in
        vals = vals_in.astype(out_dtype, copy=False)
    else:
        keys_out = c_keys[outside_c]
        vals_out = c_vals[outside_c]
        keys = np.concatenate((keys_in, keys_out))
        vals = np.concatenate((
            vals_in.astype(out_dtype, copy=False),
            vals_out.astype(out_dtype, copy=False),
        ))
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        vals = vals[order]

    return keys.astype(np.int64, copy=False), vals
