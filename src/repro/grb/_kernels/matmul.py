"""Semiring matrix-multiply kernels (general path).

Three shapes, all fully vectorised (no per-row Python loops):

``vxm_sparse``
    ``wᵀ = uᵀ ⊕.⊗ A`` driven by the *sparse frontier* ``u`` — the "push"
    step of the paper's BFS (Sec. IV-A).  Cost is proportional to the sum of
    the out-degrees of the frontier.

``mxv_gather``
    ``w = A ⊕.⊗ u`` computed row-by-row over an explicit row set — the
    "pull" step when the row set is the complemented mask (the unvisited
    nodes).  Cost is proportional to the sum of the in-degrees of the rows
    examined.

``mxm_expand``
    ``C = A ⊕.⊗ B`` by flop-order expansion: every multiply the semiring
    performs becomes one row of a COO triple which is then group-reduced by
    the ⊕ monoid.  Memory is O(flops); the SciPy fast path in
    :mod:`repro.grb.matrix` handles the plus.times-reducible semirings so
    this kernel only runs for exotic semirings (min.plus mxm etc.).

The positional coordinate convention follows
:mod:`repro.grb.ops.positional`: the multiplier sees ``a(i, k) ⊗ b(k, j)``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..ops.semiring import Semiring
from .gather import concat_ranges, csr_gather_rows, expand_rows
from ...obs.profile import profiled

__all__ = ["vxm_sparse", "mxv_gather", "mxm_expand", "mxv_pull_probe"]


def _multiply(semiring: Semiring, a_vals, b_vals, i, k, j):
    """Apply the ⊗ operator to aligned argument arrays."""
    if semiring.positional:
        return semiring.mult.select(i, k, j)
    return semiring.mult(a_vals, b_vals)


@profiled("vxm_sparse")
def vxm_sparse(
    u_idx: np.ndarray,
    u_vals: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    values: Optional[np.ndarray],
    semiring: Semiring,
):
    """``wᵀ = uᵀ ⊕.⊗ A`` with ``A`` in CSR.  Returns ``(w_idx, w_vals)``.

    ``u`` is treated as a 1×n matrix, so in ``a(i,k) ⊗ b(k,j)`` terms:
    ``i = 0``, ``k`` is the frontier index, ``j`` the reached column.
    """
    row_rep, cols, a_vals = csr_gather_rows(indptr, indices, values, u_idx)
    k = u_idx[row_rep]
    uv = u_vals[row_rep]
    i = np.zeros(k.size, dtype=np.int64)
    mult = _multiply(semiring, uv, a_vals, i, k, cols)
    return semiring.add.reduce_groups(cols, mult)


@profiled("mxv_gather")
def mxv_gather(
    indptr: np.ndarray,
    indices: np.ndarray,
    values: Optional[np.ndarray],
    u_present: np.ndarray,
    u_dense: np.ndarray,
    rows: np.ndarray,
    semiring: Semiring,
):
    """``w = A ⊕.⊗ u`` restricted to ``rows``; ``u`` given as a bitmap.

    Returns ``(w_idx, w_vals)``.  In ``a(i,k) ⊗ b(k,j)`` terms: ``i`` is the
    matrix row, ``k`` the matched column / vector index, ``j = 0``.
    """
    row_rep, cols, a_vals = csr_gather_rows(indptr, indices, values, rows)
    hit = u_present[cols]
    row_rep = row_rep[hit]
    cols = cols[hit]
    if a_vals is not None:
        a_vals = a_vals[hit]
    i = rows[row_rep]
    uv = u_dense[cols]
    j = np.zeros(i.size, dtype=np.int64)
    mult = _multiply(semiring, a_vals, uv, i, cols, j)
    return semiring.add.reduce_groups(i, mult)


#: Dense-accumulator guard for pick-one (``any``) reductions in
#: ``mxm_expand``: use the O(flops + grid) scatter instead of the
#: O(flops log flops) sort when the output grid is not much larger than the
#: flop count.  Mirrors SS:GrB's sparse→bitmap format switch (Sec. VI-A of
#: the paper) — the case that matters is a *tall frontier matrix* (batched
#: multi-source BFS) whose per-level products are huge but whose output grid
#: ``ns × n`` is small.
DENSE_ANY_GRID_SLACK = 8  # cost: mechanism-cap (sparse-to-bitmap format switch inside mxm expand)
DENSE_ANY_GRID_FLOOR = 1 << 20  # cost: mechanism-cap (sparse-to-bitmap format switch inside mxm expand)


@profiled("mxm_expand")
def mxm_expand(
    a_indptr: np.ndarray,
    a_indices: np.ndarray,
    a_values: Optional[np.ndarray],
    a_nrows: int,
    b_indptr: np.ndarray,
    b_indices: np.ndarray,
    b_values: Optional[np.ndarray],
    b_ncols: int,
    semiring: Semiring,
    a_rows: Optional[np.ndarray] = None,
    rows: Optional[np.ndarray] = None,
    key_keep=None,
):
    """``C = A ⊕.⊗ B`` by full flop expansion.

    Returns ``(keys, vals)`` with keys linearised as ``i * b_ncols + j``,
    sorted ascending and unique.

    ``a_rows`` is the row id of every A entry; pass it when the operand's
    storage can produce it cheaper than an ``indptr`` walk (hypersparse:
    O(live rows) — the format-aware fast path for frontier matrices).

    Mask-driven restriction (:mod:`repro.grb._kernels.masked_matmul`):
    ``rows`` limits the expansion to a subset of A's rows — the rows the
    mask can still write — skipping dead rows entirely (``a_rows`` is
    ignored when given); ``key_keep`` is a ``keys -> bool`` predicate
    applied to the linearised output coordinates *before* the multiply and
    group-reduce, so contributions the mask would discard in the write-back
    never pay the reduction sort.  Both default to off, in which case the
    result is the seed kernel bit for bit.

    Pick-one (``any``) monoids take a sort-free path when the output grid
    ``a_nrows × b_ncols`` is affordable: a reversed dense scatter keeps the
    *first* contribution per output position in expansion order — exactly
    what ``Monoid.reduce_groups`` returns from its stable sort, at a
    fraction of the cost for the heavy levels of a batched BFS.
    """
    if rows is not None:
        row_rep, a_cols, a_vals_sub = csr_gather_rows(
            a_indptr, a_indices, a_values, rows)
        a_rows = rows[row_rep]                # i of each surviving A entry
    else:
        if a_rows is None:
            a_rows = expand_rows(a_indptr, a_nrows)  # i of each A entry
        a_cols = a_indices                    # k of each A entry
        a_vals_sub = a_values
    # For every A entry, gather B row k.
    ent_rep, j, b_vals_g = csr_gather_rows(b_indptr, b_indices, b_values, a_cols)
    i = a_rows[ent_rep]
    k = a_cols[ent_rep]
    keys = i * np.int64(b_ncols) + j
    grid = int(a_nrows) * int(b_ncols)
    use_scatter = (semiring.add.ufunc is None and keys.size
                   and grid <= max(DENSE_ANY_GRID_SLACK * keys.size,
                                   DENSE_ANY_GRID_FLOOR))
    if key_keep is not None and not use_scatter:
        # drop mask-dead contributions before the (sorting) reduce; the
        # scatter path is already sort-free, so filtering there would only
        # add membership-test cost
        keep = key_keep(keys)
        keys = keys[keep]
        i = i[keep]
        k = k[keep]
        j = j[keep]
        ent_rep = ent_rep[keep]
        if b_vals_g is not None:
            b_vals_g = b_vals_g[keep]
    av = a_vals_sub[ent_rep] if a_vals_sub is not None else None
    mult = _multiply(semiring, av, b_vals_g, i, k, j)
    if use_scatter:
        buf = np.empty(grid, dtype=mult.dtype)
        seen = np.zeros(grid, dtype=bool)
        # reversed writes: the first contribution per key wins, matching the
        # stable-sort semantics of the generic group reduce
        buf[keys[::-1]] = mult[::-1]
        seen[keys] = True
        out_keys = np.flatnonzero(seen).astype(np.int64)
        return out_keys, buf[out_keys]
    return semiring.add.reduce_groups(keys, mult)


#: Probe rounds before :func:`mxv_pull_probe` falls back to a ragged gather.
PULL_PROBE_ROUNDS = 16  # cost: mechanism-cap (probe fallback inside mxv_pull_probe; tests monkeypatch it here)


@profiled("mxv_pull_probe")
def mxv_pull_probe(
    at_indptr: np.ndarray,
    at_indices: np.ndarray,
    frontier_bits: np.ndarray,
    rows: np.ndarray,
    probe_rounds: int = PULL_PROBE_ROUNDS,
):
    """The pull step of direction-optimised BFS, natively on CSC arrays.

    For each candidate ``r`` in ``rows`` (the unvisited set), find the
    *first* entry ``k`` of ``Aᵀ`` row ``r`` (= column ``r`` of ``A``, i.e.
    ``r``'s in-neighbours in ascending order) with ``frontier_bits[k]``
    set.  Returns ``(hit_rows, parents)`` — the discovered candidates and
    the in-neighbour that discovered each.

    Because in-neighbours are scanned ascending, the pick is the *smallest*
    frontier in-neighbour — exactly the ``any.secondi`` choice of the push
    kernel, so push and pull levels are interchangeable bit for bit.
    Candidates without a frontier in-neighbour simply miss (their cursor
    drains); after ``probe_rounds`` vectorised rounds the stragglers take
    one ragged gather over their remaining spans.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cur = at_indptr[rows].astype(np.int64, copy=True)
    end = at_indptr[rows + 1]
    parent = np.full(rows.size, -1, dtype=np.int64)
    unresolved = np.flatnonzero(cur < end).astype(np.int64)
    for _ in range(probe_rounds):
        if unresolved.size == 0:
            break
        k = at_indices[cur[unresolved]]
        hit = frontier_bits[k]
        res = unresolved[hit]
        parent[res] = k[hit]
        miss = unresolved[~hit]
        cur[miss] += 1
        unresolved = miss[cur[miss] < end[miss]]
    if unresolved.size:
        # ragged fallback over the unscanned remainder of each span
        counts = end[unresolved] - cur[unresolved]
        flat = concat_ranges(cur[unresolved], counts)
        rep = np.repeat(np.arange(unresolved.size, dtype=np.int64), counts)
        kcand = at_indices[flat]
        valid = np.flatnonzero(frontier_bits[kcand])
        ents = rep[valid]
        first = np.ones(ents.size, dtype=bool)
        first[1:] = ents[1:] != ents[:-1]
        parent[unresolved[ents[first]]] = kcand[valid[first]]
    found = parent >= 0
    return rows[found], parent[found]
