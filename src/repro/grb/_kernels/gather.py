"""Ragged-gather primitives over CSR arrays.

Everything here is branch-free NumPy: no per-row Python loops.  The core
trick is the classic "concatenated ranges" construction used to expand
``indptr[rows] .. indptr[rows+1]`` spans into one flat index array.
"""

from __future__ import annotations

import numpy as np

__all__ = ["concat_ranges", "csr_gather_rows", "csr_row_lengths",
           "expand_rows", "hyper_expand_rows", "hyper_gather_rows"]


def concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``[starts[t], starts[t] + counts[t])`` ranges into one array.

    Equivalent to ``np.concatenate([np.arange(s, s+c) ...])`` but vectorised.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # offset of each range inside the output
    out_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    out = np.repeat(starts - out_starts, counts)
    out += np.arange(total, dtype=np.int64)
    return out


def csr_row_lengths(indptr: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Number of stored entries in each requested row."""
    return indptr[rows + 1] - indptr[rows]


def csr_gather_rows(
    indptr: np.ndarray,
    indices: np.ndarray,
    values: np.ndarray | None,
    rows: np.ndarray,
):
    """Gather the entries of ``rows`` from a CSR structure.

    Returns ``(row_rep, cols, vals)`` where ``row_rep[t]`` is the *position*
    of the source row within ``rows`` (not the row id itself — callers that
    need the id index back through ``rows``), ``cols`` the column indices and
    ``vals`` the values (``None`` if ``values`` is ``None``).
    """
    rows = np.asarray(rows, dtype=np.int64)
    counts = csr_row_lengths(indptr, rows)
    flat = concat_ranges(indptr[rows], counts)
    row_rep = np.repeat(np.arange(rows.size, dtype=np.int64), counts)
    cols = indices[flat]
    vals = values[flat] if values is not None else None
    return row_rep, cols, vals


def expand_rows(indptr: np.ndarray, nrows: int) -> np.ndarray:
    """Row index of every stored entry of a CSR matrix (COO expansion)."""
    counts = np.diff(indptr)
    return np.repeat(np.arange(nrows, dtype=np.int64), counts)


def hyper_expand_rows(live_rows: np.ndarray, hindptr: np.ndarray) -> np.ndarray:
    """Row id of every entry of a hypersparse matrix — O(live + nnz).

    The format-aware twin of :func:`expand_rows`: the empty rows a CSR
    ``indptr`` walk would touch are never visited.
    """
    return np.repeat(live_rows, np.diff(hindptr))


def hyper_gather_rows(
    live_rows: np.ndarray,
    hindptr: np.ndarray,
    indices: np.ndarray,
    values: np.ndarray | None,
    rows: np.ndarray,
):
    """Gather the entries of ``rows`` from a hypersparse structure.

    Same contract as :func:`csr_gather_rows`; rows absent from
    ``live_rows`` contribute nothing.  Cost is O(|rows| log live + output).
    """
    rows = np.asarray(rows, dtype=np.int64)
    pos = np.searchsorted(live_rows, rows)
    pos_c = np.minimum(pos, max(live_rows.size - 1, 0))
    hit = live_rows.size > 0
    live = (live_rows[pos_c] == rows) if hit else np.zeros(rows.size, dtype=bool)
    counts = np.zeros(rows.size, dtype=np.int64)
    starts = np.zeros(rows.size, dtype=np.int64)
    counts[live] = hindptr[pos_c[live] + 1] - hindptr[pos_c[live]]
    starts[live] = hindptr[pos_c[live]]
    flat = concat_ranges(starts, counts)
    row_rep = np.repeat(np.arange(rows.size, dtype=np.int64), counts)
    cols = indices[flat]
    vals = values[flat] if values is not None else None
    return row_rep, cols, vals
