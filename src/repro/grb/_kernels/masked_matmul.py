"""Mask-driven SpGEMM: compute only what the mask keeps.

The paper's headline matrix algorithms hand SuiteSparse:GraphBLAS a mask it
exploits *inside* the multiply: triangle counting's ``C⟨s(L)⟩ = L plus.pair
Uᵀ`` (Sec. IV-E / Alg. 6) touches one dot product per stored edge of ``L``,
never the full wedge count, and batched BC's per-level masked ``plus.first``
products (Sec. IV-B / Alg. 3) skip everything the mask will discard anyway.
This module gives :func:`repro.grb.operations.mxm` the same power:

``masked_dot``
    The *dot3* kernel (named after cuSPARSE/GraphBLAS "SDDMM-style" masked
    SpGEMM).  For every mask entry ``(i, j)`` it intersects CSR row
    ``A(i,:)`` with row ``j`` of ``Bᵀ`` (= column ``j`` of ``B``) — fully
    vectorised: the *shorter* of the two rows is expanded with
    :func:`~repro.grb._kernels.gather.concat_ranges` and probed into the
    other operand's globally sorted ``row·inner + k`` key array with one
    ``searchsorted`` (the same probe idiom as
    :func:`~repro.grb._kernels.matmul.mxv_pull_probe`).  Cost is
    ``O(Σ_(i,j)∈M min(|A(i,:)|, |B(:,j)|) · log nnz)`` — proportional to the
    mask, not to the flop count of the full product.

``mask-restricted expand`` (implemented in
:func:`~repro.grb._kernels.matmul.mxm_expand` via ``rows`` / ``key_keep``)
    For masks the dot kernel cannot serve — complemented masks (BC's
    ``⟨¬s(P)⟩`` frontier expansion) and exotic semirings — the flop-order
    expand kernel is restricted to the rows the mask can still write
    (non-complemented: mask-live rows; complemented: rows whose mask row is
    not yet full) and its per-flop output is filtered against the mask
    *before* the group-reduce, so dead contributions never pay the sort.

Cost model / chooser
--------------------
:func:`choose_masked_method` compares the exact dot probe count
(``Σ min(|A row|, |Bᵀ row|)`` over mask entries — O(mask) to compute)
against a *sampled* flop estimate for the expand/SciPy path, weighted by the
per-unit cost constants below.  Like :mod:`repro.grb.storage.policy`, every
threshold is a module-level constant that benchmarks and tests monkeypatch
to force a path; :data:`DOT_ENABLED` / :data:`MASK_RESTRICT_ENABLED` switch
the whole engine off for ablation (``benchmarks/bench_masked_mxm.py``).

Bit-identity contract
---------------------
Whatever the chooser picks, results are bit-identical to the reference
"compute the full product, then discard non-mask entries in the write-back"
pipeline: the dot kernel replays the fallback path's value arithmetic —
operand casts and k-ascending accumulation order for SciPy-reducible
semirings, the semiring's own ops in storage order otherwise — and entries
exist exactly where the pattern product intersects the mask (explicit zeros
from cancellation survive, as the spec requires).  The property suite in
``tests/grb/test_masked_mxm.py`` pins this across semirings, mask kinds and
storage formats.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..ops.monoid import PLUS_MONOID
from ..ops.semiring import Semiring
from .gather import concat_ranges, expand_rows

__all__ = [
    "DOT_ENABLED", "MASK_RESTRICT_ENABLED", "DOT_PROBE_COST",
    "SCIPY_FLOP_COST", "EXPAND_FLOP_COST", "FLOP_SAMPLE",
    "MASKED_MIN_NNZ", "LIVE_ROW_FRACTION", "DOT_DENSE_GRID_CAP",
    "dot_supported", "mask_row_lengths", "dot_probe_cost",
    "expand_flops_estimate", "expand_flops_exact", "choose_masked_method",
    "masked_dot",
]

#: Master switch for the dot3 kernel (ablation / bisection aid).
DOT_ENABLED = True
#: Master switch for mask-driven row restriction + pre-reduce filtering on
#: the fallback (SciPy / expand) paths.
MASK_RESTRICT_ENABLED = True

#: Relative cost of one dot probe lane (a flag gather / searchsorted) ...
DOT_PROBE_COST = 0.4
#: ... versus one flop on SciPy's compiled CSR kernel — whose path also
#: pays the full product's materialisation and masked write-back, which is
#: why a probe lane prices close to a compiled flop (measured on kron) ...
SCIPY_FLOP_COST = 1.0
#: ... versus one flop on the vectorised gather/sort expand kernel.
EXPAND_FLOP_COST = 4.0
#: A-entries sampled for the expand-path flop estimate.
FLOP_SAMPLE = 512

#: Combined operand nnz below which the masked engine stands down entirely
#: (no chooser, no row restriction): tiny products are cheaper to compute
#: in full than to analyse.  The road-grid TC at small scale sits under
#: this floor; kron sits well above it.
MASKED_MIN_NNZ = 1 << 15

#: Row restriction only engages when the mask leaves at most this fraction
#: of the output rows alive — slicing the operand to skip a handful of dead
#: rows costs more than computing them.
LIVE_ROW_FRACTION = 0.75

#: ⊗ operators the dot kernel can replay bit-identically.
_DOT_MULTS = ("pair", "times", "first", "second")
#: ⊕ monoids whose grouped reduction the dot kernel can replay.
_DOT_MONOIDS = ("plus", "min", "any")


def dot_supported(semiring: Semiring) -> bool:
    """Whether :func:`masked_dot` can execute this semiring."""
    return (not semiring.positional
            and semiring.mult.name in _DOT_MULTS
            and semiring.add.name in _DOT_MONOIDS)


def mask_row_lengths(a_indptr: np.ndarray, bt_indptr: np.ndarray,
                     rows: np.ndarray, cols: np.ndarray):
    """``(|A(i,:)|, |Bᵀ(j,:)|)`` per mask entry — shared by the chooser's
    probe-cost estimate and :func:`masked_dot` (computed once per call)."""
    return (a_indptr[rows + 1] - a_indptr[rows],
            bt_indptr[cols + 1] - bt_indptr[cols])


def dot_probe_cost(la: np.ndarray, lb: np.ndarray) -> int:
    """Exact probe count of the dot kernel: ``Σ min(|A(i,:)|, |Bᵀ(j,:)|)``.

    O(mask nvals) — cheap enough that the chooser uses the exact value
    rather than the ``mask nvals × avg degree`` approximation.
    """
    return int(np.minimum(la, lb).sum())


def expand_flops_estimate(a_indices: np.ndarray,
                          b_row_lengths: np.ndarray) -> float:
    """Sampled flop estimate for the unmasked product ``A ⊕.⊗ B``.

    Samples every ``nnz(A) / FLOP_SAMPLE``-th A entry (deterministic — no
    RNG) and extrapolates the mean B-row length to the full entry count.
    """
    nnz = a_indices.size
    if nnz == 0:
        return 0.0
    step = max(1, nnz // FLOP_SAMPLE)
    sampled = a_indices[::step]
    return float(b_row_lengths[sampled].mean()) * nnz


def expand_flops_exact(a_indices: np.ndarray,
                       b_row_lengths: np.ndarray) -> int:
    """Exact flop count of the unmasked product (telemetry only — O(nnz))."""
    if a_indices.size == 0:
        return 0
    return int(b_row_lengths[a_indices].sum())


def choose_masked_method(cost_dot: float, est_flops: float,
                         scipy_path: bool) -> str:
    """``"dot"`` or ``"expand"`` from the weighted cost comparison."""
    if not DOT_ENABLED:
        return "expand"
    flop_cost = SCIPY_FLOP_COST if scipy_path else EXPAND_FLOP_COST
    return "dot" if cost_dot * DOT_PROBE_COST <= est_flops * flop_cost \
        else "expand"


#: Largest ``nrows × inner`` grid for which a probed operand's structure is
#: densified into a flat bool flag array (O(1) membership per probe lane
#: instead of an O(log nnz) searchsorted).  Only reachable when the probe
#: does not need the probed side's *values* (``pair`` / the pattern side of
#: ``first``/``second``) — which is exactly TC's ``plus.pair`` and BC's
#: ``plus.first``.
DOT_DENSE_GRID_CAP = 1 << 26


def _row_key_array(indptr: np.ndarray, indices: np.ndarray,
                   inner: np.int64) -> np.ndarray:
    """Globally sorted ``row · inner + col`` key of every CSR entry.

    Strictly increasing (rows ascend, columns ascend within each row and are
    unique), so a single ``searchsorted`` resolves membership of any
    ``(row, k)`` pair in O(log nnz).
    """
    nrows = indptr.size - 1
    return expand_rows(indptr, nrows) * inner + indices


def _probe_membership(indptr: np.ndarray, indices: np.ndarray,
                      seek: np.ndarray, inner: np.int64, need_pos: bool):
    """Resolve probe keys against a CSR structure.

    Returns ``(hit, pos)``: a bool mask over ``seek`` and — only when
    ``need_pos`` (the probed side's values feed the multiply) — the entry
    position of each probe.  Without positions and within
    :data:`DOT_DENSE_GRID_CAP`, membership is a single gather from a dense
    flag array; otherwise one ``searchsorted`` against the sorted
    ``row·inner + col`` keys.
    """
    nrows = indptr.size - 1
    grid = int(nrows) * int(inner)
    if not need_pos and grid <= DOT_DENSE_GRID_CAP:
        flags = np.zeros(grid, dtype=bool)
        flags[_row_key_array(indptr, indices, inner)] = True
        return flags[seek], None
    hay = _row_key_array(indptr, indices, inner)
    if hay.size == 0:
        return (np.zeros(seek.size, dtype=bool),
                np.zeros(seek.size, dtype=np.int64) if need_pos else None)
    pos = np.searchsorted(hay, seek)
    safe = np.minimum(pos, hay.size - 1)
    hit = hay[safe] == seek
    return hit, (pos if need_pos else None)


def masked_dot(
    a_indptr: np.ndarray,
    a_indices: np.ndarray,
    a_values: Optional[np.ndarray],
    bt_indptr: np.ndarray,
    bt_indices: np.ndarray,
    bt_values: Optional[np.ndarray],
    rows: np.ndarray,
    cols: np.ndarray,
    inner: int,
    semiring: Semiring,
    cast_dtype: Optional[np.dtype] = None,
    lengths=None,
):
    """Dot products of ``A(i,:) · B(:,j)`` for each mask entry ``(i, j)``.

    Parameters
    ----------
    a_indptr, a_indices, a_values:
        ``A`` in canonical CSR.
    bt_indptr, bt_indices, bt_values:
        ``Bᵀ`` in canonical CSR — i.e. the CSC view of ``B``.  For
        ``mxm(..., transpose_b=True)`` call sites (TC's ``L plus.pair Uᵀ``)
        this is the *untransposed* operand's own CSR arrays: the golden case
        where the kernel runs with zero layout conversion.
    rows, cols:
        Mask coordinates, aligned, sorted by ``(row, col)`` (the mask's own
        allowed-key order).
    inner:
        The contracted dimension ``A.ncols == B.nrows``.
    semiring:
        Must satisfy :func:`dot_supported`.
    cast_dtype:
        When set, replay SciPy-fast-path semantics: operands are cast to
        this dtype before multiplying and accumulation is plain ``+`` in
        k-ascending order — bit-identical to
        :func:`repro.grb.operations._scipy_mxm`.  When ``None``, replay
        :func:`~repro.grb._kernels.matmul.mxm_expand` semantics (the
        semiring's own ops on the operands' native dtypes).
    lengths:
        Optional precomputed :func:`mask_row_lengths` pair — the chooser
        already derived it, so the kernel need not gather it again.

    Returns
    -------
    ``(hit, vals)`` where ``hit`` indexes into ``rows``/``cols`` selecting
    the mask entries whose dot product has at least one structural
    contribution (ascending), and ``vals`` holds the ⊕-reduced values.
    Structure-only multiplies (``pair``) never touch either operand's value
    array.
    """
    mult_name = semiring.mult.name
    need_av = mult_name in ("times", "first")
    need_bv = mult_name in ("times", "second")
    la, lb = lengths if lengths is not None else \
        mask_row_lengths(a_indptr, bt_indptr, rows, cols)
    cand = np.flatnonzero((la > 0) & (lb > 0)).astype(np.int64)
    inner64 = np.int64(inner)

    t_parts: list = []
    apos_parts: list = []
    bpos_parts: list = []
    if cand.size:
        probe_a = la[cand] <= lb[cand]
        group_a = cand[probe_a]
        group_b = cand[~probe_a]
        if group_a.size:
            # expand A-side elements, probe them into B's (j, k) structure
            counts = la[group_a]
            flat = concat_ranges(a_indptr[rows[group_a]], counts)
            seek = (np.repeat(cols[group_a], counts) * inner64
                    + a_indices[flat])
            hit, pos = _probe_membership(bt_indptr, bt_indices, seek,
                                         inner64, need_bv)
            t_parts.append(np.repeat(group_a, counts)[hit])
            apos_parts.append(flat[hit] if need_av else None)
            bpos_parts.append(pos[hit] if need_bv else None)
        if group_b.size:
            # expand B-side elements, probe them into A's (i, k) structure
            counts = lb[group_b]
            flat = concat_ranges(bt_indptr[cols[group_b]], counts)
            seek = (np.repeat(rows[group_b], counts) * inner64
                    + bt_indices[flat])
            hit, pos = _probe_membership(a_indptr, a_indices, seek,
                                         inner64, need_av)
            t_parts.append(np.repeat(group_b, counts)[hit])
            apos_parts.append(pos[hit] if need_av else None)
            bpos_parts.append(flat[hit] if need_bv else None)

    if t_parts:
        t = np.concatenate(t_parts)
        apos = np.concatenate(apos_parts) if need_av else None
        bpos = np.concatenate(bpos_parts) if need_bv else None
    else:
        t = np.empty(0, dtype=np.int64)
        apos = bpos = t

    # Per-hit multiply.  Within one mask entry, hits arrive in ascending-k
    # order (both operand rows are sorted), which is exactly the
    # accumulation order of the SciPy kernel and of mxm_expand's stable
    # group-reduce — the basis of the bit-identity guarantee.
    if cast_dtype is not None:
        dt = np.dtype(cast_dtype)
        if mult_name == "pair":
            mult = np.ones(t.size, dtype=dt)
        elif mult_name == "first":
            mult = a_values[apos].astype(dt, copy=False)
        elif mult_name == "second":
            mult = bt_values[bpos].astype(dt, copy=False)
        else:
            mult = (a_values[apos].astype(dt, copy=False)
                    * bt_values[bpos].astype(dt, copy=False))
        return _sequential_group_sums(t, mult, rows.size)
    if mult_name == "pair":
        mult = np.ones(t.size, dtype=np.uint64)
    elif mult_name == "first":
        av = a_values[apos]
        mult = semiring.mult(av, av)
    elif mult_name == "second":
        bv = bt_values[bpos]
        mult = semiring.mult(bv, bv)
    else:
        mult = semiring.mult(a_values[apos], bt_values[bpos])
    return semiring.add.reduce_groups(t, mult)


def _sequential_group_sums(t: np.ndarray, mult: np.ndarray, n_groups: int):
    """Per-group ``+`` reduction in strict input order.

    SciPy's compiled CSR matmul accumulates each output with a plain
    sequential loop; ``np.add.reduceat`` switches to pairwise summation on
    longer segments, which changes the last bits of float sums.  To stay
    bit-identical to the fast path this replays the sequential order:
    ``np.bincount``/``np.add.at`` both add contributions in array order.
    Integer sums are order-independent (wrapping ``+`` is associative), so
    they take the cheaper sorted ``reduceat`` route.
    """
    if t.size == 0:
        return t, mult
    dt = mult.dtype
    if np.issubdtype(dt, np.inexact):
        seen = np.zeros(n_groups, dtype=bool)
        seen[t] = True
        hit = np.flatnonzero(seen).astype(np.int64)
        if dt == np.float64:
            sums = np.bincount(t, weights=mult, minlength=n_groups)
            return hit, sums[hit]
        buf = np.zeros(n_groups, dtype=dt)
        np.add.at(buf, t, mult)
        return hit, buf[hit]
    return PLUS_MONOID.reduce_groups(t, mult)
