"""Mask-driven SpGEMM: compute only what the mask keeps.

The paper's headline matrix algorithms hand SuiteSparse:GraphBLAS a mask it
exploits *inside* the multiply: triangle counting's ``C⟨s(L)⟩ = L plus.pair
Uᵀ`` (Sec. IV-E / Alg. 6) touches one dot product per stored edge of ``L``,
never the full wedge count, and batched BC's per-level masked ``plus.first``
products (Sec. IV-B / Alg. 3) skip everything the mask will discard anyway.
This module is the *kernel*; which multiplies run it is decided by the
``mxm-masked-dot`` planner rule in :mod:`repro.grb.engine.executors`, under
the unified cost model in :mod:`repro.grb.engine.cost` (probe count + one
write per mask entry versus estimated flops + product materialisation).

``masked_dot``
    The *dot3* kernel (named after cuSPARSE/GraphBLAS "SDDMM-style" masked
    SpGEMM).  For every mask entry ``(i, j)`` it intersects CSR row
    ``A(i,:)`` with row ``j`` of ``Bᵀ`` (= column ``j`` of ``B``) — fully
    vectorised: the *shorter* of the two rows is expanded with
    :func:`~repro.grb._kernels.gather.concat_ranges` and probed into the
    other operand.  Cost is ``O(Σ_(i,j)∈M min(|A(i,:)|, |B(:,j)|))`` probe
    lanes — proportional to the mask, not to the flop count of the full
    product.

Probe resolution is itself a small per-call chooser with three
mechanisms, all bit-identical:

* **dense flags** — when the probed side's values are unused and its grid
  fits :data:`DOT_DENSE_GRID_CAP`, membership is one O(1) gather from a
  dense bool array (TC's ``plus.pair``, BC's ``plus.first``);
* **bounded (galloping) search** — when the probe lanes are few relative
  to the probed operand's nnz (:data:`BOUNDED_PROBE_NNZ_RATIO`, the very
  asymmetric-rows regime), each lane binary-searches only its target
  *row span* — O(lanes · log max-row) — and the O(nnz) global key array is
  never materialised;
* **global searchsorted** — otherwise: one ``searchsorted`` against the
  sorted ``row·inner + col`` keys of every entry.

Bit-identity contract
---------------------
Whatever path resolves a probe, results are bit-identical to the reference
"compute the full product, then discard non-mask entries in the write-back"
pipeline: the dot kernel replays the fallback path's value arithmetic —
operand casts and k-ascending accumulation order for SciPy-reducible
semirings, the semiring's own ops in storage order otherwise — and entries
exist exactly where the pattern product intersects the mask (explicit zeros
from cancellation survive, as the spec requires).  The property suites in
``tests/grb/test_masked_mxm.py`` and ``tests/grb/engine/`` pin this across
semirings, mask kinds and storage formats.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..ops.monoid import PLUS_MONOID
from ..ops.semiring import Semiring
from .gather import concat_ranges, expand_rows
from ...obs.profile import profiled

__all__ = [
    "masked_dot_probe", "masked_dot_reduce",
    "DOT_DENSE_GRID_CAP", "BOUNDED_PROBE_NNZ_RATIO",
    "dot_supported", "bounded_searchsorted", "masked_dot",
]

#: ⊗ operators the dot kernel can replay bit-identically.
_DOT_MULTS = ("pair", "times", "first", "second")
#: ⊕ monoids whose grouped reduction the dot kernel can replay.
_DOT_MONOIDS = ("plus", "min", "any")


def dot_supported(semiring: Semiring) -> bool:
    """Whether :func:`masked_dot` can execute this semiring."""
    return (not semiring.positional
            and semiring.mult.name in _DOT_MULTS
            and semiring.add.name in _DOT_MONOIDS)


#: Largest ``nrows × inner`` grid for which a probed operand's structure is
#: densified into a flat bool flag array (O(1) membership per probe lane).
#: Only reachable when the probe does not need the probed side's *values*
#: (``pair`` / the pattern side of ``first``/``second``) — which is exactly
#: TC's ``plus.pair`` and BC's ``plus.first``.  A kernel-mechanism cap, not
#: a planner constant — it tunes how a chosen kernel executes.
DOT_DENSE_GRID_CAP = 1 << 26  # cost: mechanism-cap (tunes how the chosen dot kernel executes; tests monkeypatch it here)

#: Probe-lane count below this fraction of the probed operand's nnz takes
#: the bounded (galloping) search: building the O(nnz) dense flags / global
#: key array would dominate, so each lane binary-searches its target row
#: span instead.  This is the very-asymmetric-rows regime — a small mask
#: whose entries intersect short rows against a huge operand.
BOUNDED_PROBE_NNZ_RATIO = 0.125  # cost: mechanism-cap (probe-strategy switch inside the dot kernel, not a planner constant)


def _row_key_array(indptr: np.ndarray, indices: np.ndarray,
                   inner: np.int64) -> np.ndarray:
    """Globally sorted ``row · inner + col`` key of every CSR entry.

    Strictly increasing (rows ascend, columns ascend within each row and are
    unique), so a single ``searchsorted`` resolves membership of any
    ``(row, k)`` pair in O(log nnz).
    """
    nrows = indptr.size - 1
    return expand_rows(indptr, nrows) * inner + indices


def bounded_searchsorted(arr: np.ndarray, lo: np.ndarray, hi: np.ndarray,
                         targets: np.ndarray) -> np.ndarray:
    """Vectorised binary search of ``targets[t]`` in ``arr[lo[t]:hi[t])``.

    Each span must be sorted ascending (CSR row invariant).  Returns the
    per-lane insertion point — the same contract as ``np.searchsorted``
    restricted to the span, expressed as a global position into ``arr``.
    Runs ``ceil(log2(max span))`` full-vector rounds: the classic
    branch-free bisection, which is what makes the asymmetric-row probe
    O(lanes · log max-row) instead of O(nnz + lanes · log nnz).
    """
    lo = lo.astype(np.int64, copy=True)
    hi = hi.astype(np.int64, copy=True)
    if lo.size == 0:
        return lo
    max_span = int((hi - lo).max())
    while max_span > 0:
        active = lo < hi
        mid = (lo + hi) >> 1
        # inactive lanes read a safe position; their lo/hi never move
        probe = np.where(active, mid, 0)
        go_right = active & (arr[probe] < targets)
        lo = np.where(go_right, mid + 1, lo)
        hi = np.where(active & ~go_right, mid, hi)
        max_span >>= 1
    return lo


def _probe_bounded(indptr: np.ndarray, indices: np.ndarray,
                   probe_rows: np.ndarray, probe_cols: np.ndarray,
                   need_pos: bool):
    """Span-bounded (galloping) probe resolution.

    Each lane binary-searches only ``indices[indptr[row]:indptr[row+1])``
    — O(lanes · log max-row), and the probed operand's O(nnz) key/flag
    arrays are never materialised.  Chosen by :func:`masked_dot` when the
    lane count is small relative to the probed nnz (the very
    asymmetric-rows regime).
    """
    nnz = indices.size
    if nnz == 0:
        return (np.zeros(probe_rows.size, dtype=bool),
                np.zeros(probe_rows.size, dtype=np.int64) if need_pos
                else None)
    lo = indptr[probe_rows]
    hi = indptr[probe_rows + 1]
    pos = bounded_searchsorted(indices, lo, hi, probe_cols)
    safe = np.minimum(pos, nnz - 1)
    hit = (pos < hi) & (indices[safe] == probe_cols)
    return hit, (pos if need_pos else None)


def _probe_membership(indptr: np.ndarray, indices: np.ndarray,
                      seek: np.ndarray, inner: np.int64, need_pos: bool):
    """Resolve linearised ``row · inner + col`` probe keys against a CSR
    structure (dense flags within :data:`DOT_DENSE_GRID_CAP`, one global
    ``searchsorted`` otherwise).

    ``seek`` must be built by the caller as one expression over
    refcount-1 temporaries so NumPy's in-place temporary elision kicks in
    — computing it here from named factor arrays would force an extra
    lanes-sized allocation per probe group.

    Returns ``(hit, pos)``: a bool mask over the probe lanes and — only
    when ``need_pos`` (the probed side's values feed the multiply) — the
    entry position of each probe.
    """
    nrows = indptr.size - 1
    grid = int(nrows) * int(inner)
    if not need_pos and grid <= DOT_DENSE_GRID_CAP:
        flags = np.zeros(grid, dtype=bool)
        flags[_row_key_array(indptr, indices, inner)] = True
        return flags[seek], None
    hay = _row_key_array(indptr, indices, inner)
    if hay.size == 0:
        return (np.zeros(seek.size, dtype=bool),
                np.zeros(seek.size, dtype=np.int64) if need_pos else None)
    pos = np.searchsorted(hay, seek)
    safe = np.minimum(pos, hay.size - 1)
    hit = hay[safe] == seek
    return hit, (pos if need_pos else None)


@profiled("masked_dot")
def masked_dot(
    a_indptr: np.ndarray,
    a_indices: np.ndarray,
    a_values: Optional[np.ndarray],
    bt_indptr: np.ndarray,
    bt_indices: np.ndarray,
    bt_values: Optional[np.ndarray],
    rows: np.ndarray,
    cols: np.ndarray,
    inner: int,
    semiring: Semiring,
    cast_dtype: Optional[np.dtype] = None,
    lengths=None,
):
    """Dot products of ``A(i,:) · B(:,j)`` for each mask entry ``(i, j)``.

    Parameters
    ----------
    a_indptr, a_indices, a_values:
        ``A`` in canonical CSR.
    bt_indptr, bt_indices, bt_values:
        ``Bᵀ`` in canonical CSR — i.e. the CSC view of ``B``.  For
        ``mxm(..., transpose_b=True)`` call sites (TC's ``L plus.pair Uᵀ``)
        this is the *untransposed* operand's own CSR arrays: the golden case
        where the kernel runs with zero layout conversion.
    rows, cols:
        Mask coordinates, aligned, sorted by ``(row, col)`` (the mask's own
        allowed-key order).
    inner:
        The contracted dimension ``A.ncols == B.nrows``.
    semiring:
        Must satisfy :func:`dot_supported`.
    cast_dtype:
        When set, replay SciPy-fast-path semantics: operands are cast to
        this dtype before multiplying and accumulation is plain ``+`` in
        k-ascending order — bit-identical to
        :func:`repro.grb.engine.executors.scipy_mxm`.  When ``None``,
        replay :func:`~repro.grb._kernels.matmul.mxm_expand` semantics (the
        semiring's own ops on the operands' native dtypes).
    lengths:
        Optional precomputed ``(|A(i,:)|, |Bᵀ(j,:)|)`` pair per mask entry
        — the chooser already derived it (from per-row/per-column entry
        counts, without materialising any layout conversion), so the
        kernel need not gather it again.

    Returns
    -------
    ``(hit, vals)`` where ``hit`` indexes into ``rows``/``cols`` selecting
    the mask entries whose dot product has at least one structural
    contribution (ascending), and ``vals`` holds the ⊕-reduced values.
    Structure-only multiplies (``pair``) never touch either operand's value
    array.
    """
    mult_name = semiring.mult.name
    need_av = mult_name in ("times", "first")
    need_bv = mult_name in ("times", "second")
    probe = masked_dot_probe(a_indptr, a_indices, bt_indptr, bt_indices,
                             rows, cols, inner, need_av, need_bv,
                             lengths=lengths)
    return masked_dot_reduce(probe, a_values, bt_values, rows.size,
                             semiring, cast_dtype=cast_dtype)


@profiled("masked_dot_probe")
def masked_dot_probe(
    a_indptr: np.ndarray,
    a_indices: np.ndarray,
    bt_indptr: np.ndarray,
    bt_indices: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    inner: int,
    need_av: bool,
    need_bv: bool,
    lengths=None,
):
    """The structure-resolution stage of :func:`masked_dot`.

    Returns ``(t, apos, bpos)``: per structural hit, the mask-entry group
    id and — when the respective side's values feed the multiply — the
    operand entry positions.  A pure function of the operand *structures*
    and the mask coordinates, which is what makes it a reusable plan-cache
    operand feed (:mod:`repro.grb.engine.plancache`): repeated identical
    masked multiplies skip every probe and re-run only the value stage.
    """
    if lengths is not None:
        la, lb = lengths
    else:
        la = a_indptr[rows + 1] - a_indptr[rows]
        lb = bt_indptr[cols + 1] - bt_indptr[cols]
    cand = np.flatnonzero((la > 0) & (lb > 0)).astype(np.int64)
    inner64 = np.int64(inner)

    t_parts: list = []
    apos_parts: list = []
    bpos_parts: list = []
    if cand.size:
        probe_a = la[cand] <= lb[cand]
        group_a = cand[probe_a]
        group_b = cand[~probe_a]
        if group_a.size:
            # expand A-side elements, probe them into B's (j, k) structure
            counts = la[group_a]
            flat = concat_ranges(a_indptr[rows[group_a]], counts)
            if flat.size < BOUNDED_PROBE_NNZ_RATIO * bt_indices.size:
                hit, pos = _probe_bounded(bt_indptr, bt_indices,
                                          np.repeat(cols[group_a], counts),
                                          a_indices[flat], need_bv)
            else:
                # one expression over refcount-1 temporaries: the multiply
                # and add elide in place (no extra lanes-sized allocation)
                seek = np.repeat(cols[group_a], counts) * inner64 \
                    + a_indices[flat]
                hit, pos = _probe_membership(bt_indptr, bt_indices, seek,
                                             inner64, need_bv)
            t_parts.append(np.repeat(group_a, counts)[hit])
            apos_parts.append(flat[hit] if need_av else None)
            bpos_parts.append(pos[hit] if need_bv else None)
        if group_b.size:
            # expand B-side elements, probe them into A's (i, k) structure
            counts = lb[group_b]
            flat = concat_ranges(bt_indptr[cols[group_b]], counts)
            if flat.size < BOUNDED_PROBE_NNZ_RATIO * a_indices.size:
                hit, pos = _probe_bounded(a_indptr, a_indices,
                                          np.repeat(rows[group_b], counts),
                                          bt_indices[flat], need_av)
            else:
                seek = np.repeat(rows[group_b], counts) * inner64 \
                    + bt_indices[flat]
                hit, pos = _probe_membership(a_indptr, a_indices, seek,
                                             inner64, need_av)
            t_parts.append(np.repeat(group_b, counts)[hit])
            apos_parts.append(pos[hit] if need_av else None)
            bpos_parts.append(flat[hit] if need_bv else None)

    if t_parts:
        t = np.concatenate(t_parts)
        apos = np.concatenate(apos_parts) if need_av else None
        bpos = np.concatenate(bpos_parts) if need_bv else None
    else:
        t = np.empty(0, dtype=np.int64)
        apos = bpos = t
    return t, apos, bpos


@profiled("masked_dot_reduce")
def masked_dot_reduce(
    probe,
    a_values: Optional[np.ndarray],
    bt_values: Optional[np.ndarray],
    n_mask: int,
    semiring: Semiring,
    cast_dtype: Optional[np.dtype] = None,
):
    """The value stage of :func:`masked_dot`: multiply + ⊕-reduce the
    structural hits resolved by :func:`masked_dot_probe`."""
    t, apos, bpos = probe
    rows_size = n_mask
    mult_name = semiring.mult.name

    # Per-hit multiply.  Within one mask entry, hits arrive in ascending-k
    # order (both operand rows are sorted), which is exactly the
    # accumulation order of the SciPy kernel and of mxm_expand's stable
    # group-reduce — the basis of the bit-identity guarantee.
    if cast_dtype is not None:
        dt = np.dtype(cast_dtype)
        if mult_name == "pair":
            mult = np.ones(t.size, dtype=dt)
        elif mult_name == "first":
            mult = a_values[apos].astype(dt, copy=False)
        elif mult_name == "second":
            mult = bt_values[bpos].astype(dt, copy=False)
        else:
            mult = (a_values[apos].astype(dt, copy=False)
                    * bt_values[bpos].astype(dt, copy=False))
        return _sequential_group_sums(t, mult, rows_size)
    if mult_name == "pair":
        mult = np.ones(t.size, dtype=np.uint64)
    elif mult_name == "first":
        av = a_values[apos]
        mult = semiring.mult(av, av)
    elif mult_name == "second":
        bv = bt_values[bpos]
        mult = semiring.mult(bv, bv)
    else:
        mult = semiring.mult(a_values[apos], bt_values[bpos])
    return semiring.add.reduce_groups(t, mult)


def _sequential_group_sums(t: np.ndarray, mult: np.ndarray, n_groups: int):
    """Per-group ``+`` reduction in strict input order.

    SciPy's compiled CSR matmul accumulates each output with a plain
    sequential loop; ``np.add.reduceat`` switches to pairwise summation on
    longer segments, which changes the last bits of float sums.  To stay
    bit-identical to the fast path this replays the sequential order:
    ``np.bincount``/``np.add.at`` both add contributions in array order.
    Integer sums are order-independent (wrapping ``+`` is associative), so
    they take the cheaper sorted ``reduceat`` route.
    """
    if t.size == 0:
        return t, mult
    dt = mult.dtype
    if np.issubdtype(dt, np.inexact):
        seen = np.zeros(n_groups, dtype=bool)
        seen[t] = True
        hit = np.flatnonzero(seen).astype(np.int64)
        if dt == np.float64:
            sums = np.bincount(t, weights=mult, minlength=n_groups)
            return hit, sums[hit]
        buf = np.zeros(n_groups, dtype=dt)
        np.add.at(buf, t, mult)
        return hit, buf[hit]
    return PLUS_MONOID.reduce_groups(t, mult)
