"""Opt-in kernel telemetry.

Performance choosers (the masked-SpGEMM dot-vs-expand decision in
:func:`repro.grb.operations.mxm`, via
:mod:`repro.grb._kernels.masked_matmul`) normally run silently.  Installing
a hook makes every decision observable — estimated versus actual work, the
method picked, the mask size — so benchmarks such as
``benchmarks/bench_ablation_tc_methods.py`` can report *mispredictions*
(cases where the chooser picked the slower path) instead of leaving slow
paths silent.

The hook is process-global and **off by default**: with no hook installed,
recording is a single ``is None`` check and no event dictionaries (or the
exact-flop counts some events carry) are ever materialised.

Usage::

    from repro.grb import telemetry

    events = []
    with telemetry.capture(events.append):
        triangle_count(g)
    mispredicted = [e for e in events if e.get("mispredicted")]
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Optional

__all__ = ["set_hook", "clear_hook", "active", "record", "capture"]

_hook: Optional[Callable[[dict], None]] = None


def set_hook(fn: Optional[Callable[[dict], None]]):
    """Install ``fn`` as the telemetry sink; returns the previous hook.

    ``fn`` receives one ``dict`` per recorded event, synchronously, on the
    thread that made the decision — keep it cheap (append to a list).
    """
    global _hook
    prev = _hook
    _hook = fn
    return prev


def clear_hook() -> None:
    """Remove the installed hook (telemetry goes back to zero-cost)."""
    set_hook(None)


def active() -> bool:
    """Whether a hook is installed (kernels gate expensive-to-compute
    event fields — e.g. exact flop counts — on this)."""
    return _hook is not None


def record(event: dict) -> None:
    """Deliver ``event`` to the hook, if any."""
    if _hook is not None:
        _hook(event)


@contextmanager
def capture(fn: Callable[[dict], None]):
    """Scoped hook installation (restores the previous hook on exit)."""
    prev = set_hook(fn)
    try:
        yield
    finally:
        set_hook(prev)
