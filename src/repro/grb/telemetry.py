"""Opt-in, context-local kernel telemetry.

Planner rules (:mod:`repro.grb.engine`) normally decide silently.
Installing a hook makes every decision observable — the rule picked, the
estimated versus actual work, the mask size — so benchmarks such as
``benchmarks/bench_ablation_tc_methods.py`` can report *mispredictions*
(cases where the chooser picked the slower path) instead of leaving slow
paths silent.

The hook is **context-local** (:mod:`contextvars`) and off by default:
with no hook installed, recording is a single ``ContextVar`` read and no
event dictionaries (or the exact-flop counts some events carry) are ever
materialised.  Context locality is what makes telemetry safe under the
concurrent serving engine: two requests capturing events in parallel each
see exactly their own decisions — a worker thread executing a request runs
under a copy of the *submitter's* context
(:mod:`repro.serve.service`), so events neither interleave across
requests nor leak into unrelated threads.  (A plain ``threading.Thread``
starts with a fresh context and therefore no hook; propagate one
explicitly with ``contextvars.copy_context()`` when needed.)

Usage::

    from repro.grb import telemetry

    events = []
    with telemetry.capture(events.append):
        triangle_count(g)
    mispredicted = [e for e in events if e.get("mispredicted")]
"""

from __future__ import annotations

import contextvars
import functools
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Optional

from ..obs import profile as _obs_profile

__all__ = ["Event", "set_hook", "clear_hook", "active", "record", "capture",
           "propagate"]

_hook_var: ContextVar[Optional[Callable[[dict], None]]] = ContextVar(
    "repro_grb_telemetry_hook", default=None)


class Event(dict):
    """A typed telemetry event: a dict with attribute access and a kind.

    Every event is still a plain mapping (existing hooks keep working
    unchanged); the subclass adds the identity the obs layer keys on —
    ``event.kind`` is the operation (``"mxm"``, ``"plancache"``,
    ``"multiplan"`` …) and ``event.rule`` the claiming rule, both
    readable as attributes::

        with telemetry.capture(events.append):
            ...
        [e.kind for e in events if e.rule == "mxm-masked-dot"]
    """

    __slots__ = ()

    @property
    def kind(self) -> str:
        return self.get("op", "event")

    def __getattr__(self, name: str):
        try:
            return self[name]
        except KeyError:
            raise AttributeError(name) from None


def set_hook(fn: Optional[Callable[[dict], None]]):
    """Install ``fn`` as the telemetry sink *in this context*; returns the
    previously installed hook.

    ``fn`` receives one ``dict`` per recorded event, synchronously, on the
    thread that made the decision — keep it cheap (append to a list).
    """
    prev = _hook_var.get()
    _hook_var.set(fn)
    return prev


def clear_hook() -> None:
    """Remove the installed hook (telemetry goes back to zero-cost)."""
    set_hook(None)


def active() -> bool:
    """Whether anything in this context consumes decision events: a hook,
    or a :func:`repro.obs.profile.profiling` block (the profiler re-judges
    chooser decisions, so it needs the same exact-count fields hooks get).
    Kernels gate expensive-to-compute event fields on this."""
    return _hook_var.get() is not None or _obs_profile.deep_active()


def record(event: dict) -> None:
    """Deliver ``event`` to this context's consumers: the installed hook,
    and — when deep profiling is on — the obs decision aggregator."""
    if not isinstance(event, Event):
        event = Event(event)
    hook = _hook_var.get()
    if hook is not None:
        hook(event)
    if _obs_profile.deep_active():
        _obs_profile.on_event(event)


@contextmanager
def capture(fn: Callable[[dict], None]):
    """Scoped hook installation (restores the previous hook on exit)."""
    prev = set_hook(fn)
    try:
        yield
    finally:
        set_hook(prev)


def propagate(fn: Callable) -> Callable:
    """Wrap ``fn`` to run under a snapshot of the *caller's* context.

    A plain ``threading.Thread`` starts with a fresh :mod:`contextvars`
    context — hookless by design — while serve drain workers run each
    kernel under the submitting request's context snapshot.  ``propagate``
    gives user-managed threads the same opt-in: the snapshot is taken
    here, at wrapping time (i.e. on the submitting thread), and every
    invocation of the wrapper runs under its own *copy* of that snapshot,
    so concurrent calls never contend for one context (a
    ``contextvars.Context`` cannot be entered twice) and hooks installed
    inside ``fn`` never leak back out.

    Usage::

        with telemetry.capture(events.append):
            t = threading.Thread(target=telemetry.propagate(work))
            t.start()          # work() sees the events hook

    Works for any context-local state this package keeps — the telemetry
    hook and :func:`repro.grb.engine.force_rule` pins alike.  (Do not use
    it to share a live :func:`repro.grb.deferred` scope across threads:
    an expression DAG is a single-threaded recording structure.)
    """
    snapshot = contextvars.copy_context()

    @functools.wraps(fn)
    def runner(*args, **kwargs):
        ctx = snapshot.run(contextvars.copy_context)  # fresh copy per call
        return ctx.run(fn, *args, **kwargs)

    return runner
