"""Masked GraphBLAS operations (Table I of the paper).

Each function mirrors one row of Table I, written in the C API's
"output-first" style::

    vxm(w, u, A, semiring, mask=..., accum=..., replace=...)   # wᵀ⟨mᵀ⟩⊙= uᵀ ⊕.⊗ A

All operations share the write-back transaction implemented in
:mod:`repro.grb._kernels.maskwrite`: compute ``T``, merge with the
accumulator, then write through the (possibly structural / complemented)
mask, honouring replace semantics.  The output object always keeps its
declared type; computed values are cast into it.

Matmul dispatch
---------------
* masked ``mxm`` with a non-complemented mask and a dot-replayable semiring
  (⊗ ∈ {pair, times, first, second}, ⊕ ∈ {plus, min, any}) may run on the
  *dot3* masked-SpGEMM kernel
  (:mod:`repro.grb._kernels.masked_matmul`): one sorted-intersection dot
  product per mask entry, never the full wedge count.  A cost model
  (exact probe count vs. sampled flop estimate, constants monkeypatchable
  like :mod:`repro.grb.storage.policy`) decides per call; decisions are
  observable through :mod:`repro.grb.telemetry`.  This is what makes
  triangle counting's ``C⟨s(L)⟩ = L plus.pair Uᵀ`` (Alg. 6) and batched
  BC's backward ``W⟨s(S)⟩ = W plus.first Aᵀ`` levels pay only for
  mask-resident dot products, with zero call-site changes.
* ``plus.times``-reducible semirings (Table II's ``plus.first``,
  ``plus.second``, ``plus.pair`` and the conventional semiring) otherwise
  run on SciPy's compiled CSR kernels, substituting the *pattern*
  (all-ones values, cached per store version) of an operand where the
  multiply op ignores that side's values.  A mask restricts the product to
  mask-live rows before the ``@``; ``≥ 1``-valued float operands skip the
  cancellation-proof pattern pass.
* every other semiring (``min.plus``, ``any.secondi``, ...) runs on the
  vectorised gather/group-reduce kernels in
  :mod:`repro.grb._kernels.matmul`, mask-restricted the same way (for
  complemented masks — BC's ``⟨¬s(P)⟩`` — rows whose mask row is already
  full are skipped and dead contributions are filtered before the reduce).
* ``mxv`` restricts computation to the mask-allowed rows *before* doing any
  work — this is what makes the "pull" step of direction-optimised BFS cost
  only the in-degrees of the unvisited nodes (Sec. VI-A).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from . import telemetry
from ._kernels import apply_select as _selectops
from ._kernels import masked_matmul as _mm
from ._kernels.ewise import merge_objects, setdiff_keys
from ._kernels.gather import expand_rows
from ._kernels.maskwrite import masked_write
from ._kernels.matmul import mxm_expand, mxv_gather, vxm_sparse
from .errors import DimensionMismatch
from .mask import Mask, as_mask
from .matrix import Matrix
from .ops.binary import BinaryOp
from .ops.monoid import Monoid
from .ops.semiring import Semiring
from .ops.unary import UnaryOp
from .vector import Vector

__all__ = [
    "vxm", "mxv", "mxm", "ewise_add", "ewise_mult", "apply", "select",
    "assign", "assign_scalar", "extract", "update", "reduce_rowwise",
    "reduce_colwise", "transpose", "kronecker", "DENSE_PULL_FRACTION",
]

#: Frontier density above which plus-reducible mxv/vxm switch to the dense
#: (SciPy) path.  Mirrors SS:GrB's sparse→bitmap heuristic.
DENSE_PULL_FRACTION = 0.10

# SciPy keeps explicit zeros produced by cancellation in sparse matmul; probe
# once so the fast path knows whether structure needs a separate pattern
# product.
_probe = sp.csr_matrix(np.array([[1.0, -1.0]])) @ sp.csr_matrix(np.array([[1.0], [1.0]]))
_SCIPY_KEEPS_ZEROS = _probe.nnz == 1
del _probe


# ---------------------------------------------------------------------------
# write-back helpers
# ---------------------------------------------------------------------------

def _mask_selection(mask: Optional[Mask]):
    """(allowed_keys, allowed_present, complemented) for the write-back.

    Bitmap-resident mask objects resolve through their dense flag array
    (O(1) membership per key — the storage-layer fast path); everything
    else materialises the sorted allowed-key set as before.
    """
    if mask is None:
        return None, None, False
    present = mask.allowed_present()
    if present is not None:
        return None, present, mask.complemented
    return mask.allowed_keys(), None, mask.complemented


def _write_vector(w: Vector, t_idx, t_vals, mask: Optional[Mask], accum,
                  replace: bool):
    allowed, present, complemented = _mask_selection(mask)
    keys, vals = masked_write(
        w._idx, w._vals, t_idx, t_vals,
        accum=accum, allowed_keys=allowed, allowed_present=present,
        complement=complemented, replace=replace, out_dtype=w.type.dtype,
    )
    w._set_sparse(keys, vals)
    return w


def _write_matrix(c: Matrix, t_keys, t_vals, mask: Optional[Mask], accum,
                  replace: bool):
    allowed, present, complemented = _mask_selection(mask)
    keys, vals = masked_write(
        c.keys(), c.values, t_keys, t_vals,
        accum=accum, allowed_keys=allowed, allowed_present=present,
        complement=complemented, replace=replace, out_dtype=c.type.dtype,
    )
    c._set_from_keys(keys, vals)
    return c


def _check(cond: bool, msg: str):
    if not cond:
        raise DimensionMismatch(msg)


# ---------------------------------------------------------------------------
# matmul fast-path helpers
# ---------------------------------------------------------------------------

def _scipy_operand(m: Matrix, use_values: bool, dtype):
    """SciPy CSR of ``m`` with values (cast) or the all-ones pattern.

    Pattern operands come from the per-store-version cache
    (:meth:`Matrix.pattern_operand`) instead of being rebuilt per call.
    Both views are cached CSR: SciPy's spmatmul converts non-CSR operands
    internally *per call*, so feeding a CSC-pinned operand "natively" here
    would re-pay that conversion every multiply — the cached canonical view
    pays it once.  (CSC-pinned operands do feed the dot kernel natively:
    its ``Bᵀ`` input is ``transpose_csr()``, free on a CSC store.)
    """
    if use_values:
        s = m.to_scipy()
        return s.astype(dtype, copy=False) if s.dtype != dtype else s
    return m.pattern_operand(dtype)


def _mult_uses(semiring: Semiring):
    """Which operands' values the multiply op reads: (use_a, use_b)."""
    name = semiring.mult.name
    return name in ("times", "first"), name in ("times", "second")


def _scipy_dtype(a: Matrix, b: Matrix, semiring: Semiring) -> np.dtype:
    """The computation dtype of the SciPy fast path for these operands."""
    if semiring.mult.name == "pair":
        return np.dtype(np.int64)
    dt = semiring.mult_dtype(a.dtype, b.dtype)
    return np.dtype(np.int64) if dt == np.bool_ else np.dtype(dt)


def _scipy_mxm(a: Matrix, b: Matrix, semiring: Semiring,
               rows: Optional[np.ndarray] = None):
    """plus.times-reducible ``C = A ⊕.⊗ B`` on SciPy; returns (keys, vals).

    ``rows`` restricts the product to a subset of A's rows (the mask-live
    rows — dead rows can never survive the write-back, so they are sliced
    off *before* the ``@``).  The per-(i,j) accumulation order is k-
    ascending either way, so restricted and full products are bit-identical
    on the surviving rows.
    """
    use_a, use_b = _mult_uses(semiring)
    dt = _scipy_dtype(a, b, semiring)
    sa = _scipy_operand(a, use_a, dt)
    if rows is not None:
        sa = sa[rows]
    prod = sa @ _scipy_operand(b, use_b, dt)
    prod = prod.tocsr()
    prod.sort_indices()
    prow = expand_rows(prod.indptr.astype(np.int64), prod.shape[0])
    row_ids = rows[prow] if rows is not None else prow
    keys = row_ids * np.int64(prod.shape[1]) + prod.indices.astype(np.int64)
    vals = prod.data
    if (not _SCIPY_KEEPS_ZEROS and (use_a or use_b)
            and not ((not use_a or a.values_all_ge_one())
                     and (not use_b or b.values_all_ge_one()))):
        # structure must come from a cancellation-proof pattern product;
        # skipped when every value-carrying operand is float with values
        # ≥ 1 (such products/sums stay ≥ 1 — no underflow-to-zero, no
        # integer wrap — so SciPy can never have pruned an entry)
        pa = _scipy_operand(a, False, np.int64)
        if rows is not None:
            pa = pa[rows]
        pat = (pa @ _scipy_operand(b, False, np.int64)).tocsr()
        pat.sort_indices()
        prow = expand_rows(pat.indptr.astype(np.int64), pat.shape[0])
        prow_ids = rows[prow] if rows is not None else prow
        pkeys = prow_ids * np.int64(pat.shape[1]) + pat.indices.astype(np.int64)
        out = np.zeros(pkeys.size, dtype=vals.dtype)
        pos = np.searchsorted(pkeys, keys)
        out[pos] = vals
        return pkeys, out
    return keys, vals


def _scipy_mxv(a: Matrix, u: Vector, semiring: Semiring, *,
               swap_operands: bool = False):
    """plus-reducible dense ``w = A ⊕.⊗ u``; returns (idx, vals).

    ``swap_operands=True`` is used by vxm (``uᵀ A`` computed as ``Aᵀ u``):
    there the vector is the *first* multiply operand, so ``first``/``second``
    exchange which side's values they read.  Value structure: absent vector
    entries carry 0 in the bitmap and therefore vanish under plus.times
    arithmetic; the entry *structure* comes from a cancellation-proof
    pattern product.
    """
    use_a, use_b = _mult_uses(semiring)
    if swap_operands and semiring.mult.name in ("first", "second"):
        use_a, use_b = use_b, use_a
    if semiring.mult.name == "pair":
        dt = np.dtype(np.int64)
    else:
        dt = semiring.mult_dtype(a.dtype, u.dtype)
    if dt == np.bool_:
        dt = np.dtype(np.int64)
    present, dense = u.bitmap()
    sa = _scipy_operand(a, use_a, dt)
    uvec = dense.astype(dt, copy=False) if use_b else present.astype(dt)
    w_dense = sa @ uvec
    counts = _scipy_operand(a, False, np.int64) @ present.astype(np.int64)
    idx = np.flatnonzero(counts > 0).astype(np.int64)
    return idx, w_dense[idx]


def _mask_rows(mask: Optional[Mask], nrows: int) -> Optional[np.ndarray]:
    """Row set selected by a vector mask (pre-computation restriction)."""
    if mask is None:
        return None
    present = mask.allowed_present()
    if present is not None:       # bitmap-resident mask: flags are storage
        if mask.complemented:
            return np.flatnonzero(~present).astype(np.int64)
        return np.flatnonzero(present).astype(np.int64)
    allowed = mask.allowed_keys()
    if mask.complemented:
        present = np.zeros(nrows, dtype=bool)
        present[allowed] = True
        return np.flatnonzero(~present).astype(np.int64)
    return allowed


# ---------------------------------------------------------------------------
# matrix multiplication (mxm / mxv / vxm)
# ---------------------------------------------------------------------------

def vxm(w: Vector, u: Vector, a: Matrix, semiring: Semiring, *,
        mask=None, accum: Optional[BinaryOp] = None, replace: bool = False):
    """``wᵀ⟨mᵀ⟩⊙= uᵀ ⊕.⊗ A`` — the "push" direction.

    Cost is proportional to the total out-degree of ``u``'s entries on the
    sparse path; dense plus-reducible inputs take the SciPy path.
    """
    _check(u.size == a.nrows, f"vxm: u.size {u.size} != A.nrows {a.nrows}")
    _check(w.size == a.ncols, f"vxm: w.size {w.size} != A.ncols {a.ncols}")
    mask = as_mask(mask)
    if (semiring.scipy_reducible() and u.nvals > DENSE_PULL_FRACTION * u.size
            and a.nvals > 0 and u.nvals > 0):
        t_idx, t_vals = _scipy_mxv(a.T, u, semiring, swap_operands=True)
    else:
        t_idx, t_vals = vxm_sparse(u._idx, u._vals, a.indptr, a.indices,
                                   a.values, semiring)
    return _write_vector(w, t_idx, t_vals, mask, accum, replace)


def mxv(w: Vector, a: Matrix, u: Vector, semiring: Semiring, *,
        mask=None, accum: Optional[BinaryOp] = None, replace: bool = False):
    """``w⟨m⟩⊙= A ⊕.⊗ u`` — the "pull" direction.

    When a mask is supplied, only the mask-selected rows of ``A`` are
    examined (the complemented-structural-mask BFS pull touches exactly the
    unvisited rows).
    """
    _check(u.size == a.ncols, f"mxv: u.size {u.size} != A.ncols {a.ncols}")
    _check(w.size == a.nrows, f"mxv: w.size {w.size} != A.nrows {a.nrows}")
    mask = as_mask(mask)
    if (semiring.scipy_reducible() and mask is None
            and u.nvals > DENSE_PULL_FRACTION * u.size
            and a.nvals > 0 and u.nvals > 0):
        t_idx, t_vals = _scipy_mxv(a, u, semiring)
    else:
        rows = _mask_rows(mask, a.nrows)
        if rows is None:
            rows = np.arange(a.nrows, dtype=np.int64)
        present, dense = u.bitmap()
        t_idx, t_vals = mxv_gather(a.indptr, a.indices, a.values,
                                   present, dense, rows, semiring)
    return _write_vector(w, t_idx, t_vals, mask, accum, replace)


def _mask_live_rows(mask: Optional[Mask], nrows: int,
                    ncols: int) -> Optional[np.ndarray]:
    """Output rows a masked write can still touch (``None`` = all of them).

    Non-complemented masks: rows holding at least one allowed mask entry.
    Complemented masks: rows whose mask row is not yet *full* (a full row
    blocks every position — BC's ``⟨¬s(P)⟩`` once a source has reached the
    whole graph).  Dead rows are sliced off before the product is computed.
    """
    if mask is None or not _mm.MASK_RESTRICT_ENABLED:
        return None
    present = mask.allowed_present()
    if present is not None:
        counts = present.reshape(nrows, ncols).sum(axis=1)
    elif mask.structural and getattr(mask.obj, "nrows", None) == nrows:
        # structural matrix mask: per-row allowed counts are just the
        # stored-entry counts — O(nrows), no key materialisation
        counts = np.diff(mask.obj.indptr)
    else:
        allowed = mask.allowed_keys()
        counts = np.bincount(allowed // np.int64(ncols), minlength=nrows)
    live = (counts < ncols) if mask.complemented else (counts > 0)
    n_live = int(np.count_nonzero(live))
    if n_live > _mm.LIVE_ROW_FRACTION * nrows:
        # pruning a sliver of rows costs more (operand slicing) than it saves
        return None
    return np.flatnonzero(live).astype(np.int64)


def _mask_key_filter(mask: Optional[Mask]):
    """``keys -> keep`` predicate matching the write-back's mask selection.

    Applied by the expand kernel *before* its group-reduce so contributions
    the mask would discard never pay the sort.  Bitmap-resident masks
    resolve with O(1) flag gathers; everything else searches the sorted
    allowed-key set (the same machinery :func:`masked_write` uses, so the
    selection is identical by construction).
    """
    if mask is None or not _mm.MASK_RESTRICT_ENABLED:
        return None
    present = mask.allowed_present()
    if present is not None:
        if mask.complemented:
            return lambda keys: ~present[keys]
        return lambda keys: present[keys]
    allowed = mask.allowed_keys()
    if mask.complemented:
        return lambda keys: setdiff_keys(keys, allowed)
    return lambda keys: ~setdiff_keys(keys, allowed)


def _masked_dot_mxm(a: Matrix, b: Matrix, transpose_b: bool,
                    semiring: Semiring, mask: Optional[Mask],
                    bn_cols: int):
    """Try the dot3 masked-SpGEMM path; ``None`` means "fall back".

    Feeds the kernel ``Bᵀ`` in CSR form without materialising a transpose:
    for ``transpose_b=True`` (TC's ``L plus.pair Uᵀ``) that is the operand's
    own CSR arrays, otherwise the store's cached CSC view — native for
    CSC-pinned operands (the PR-2 follow-up: no conversion at all).
    """
    if (mask is None or mask.complemented or not _mm.DOT_ENABLED
            or not _mm.dot_supported(semiring)
            or not a.nvals or not b.nvals):
        return None
    allowed = mask.allowed_keys()
    if allowed.size == 0:
        return np.empty(0, np.int64), np.empty(0, _scipy_dtype(a, b, semiring))
    a_ip, a_ix, a_vv = a._S().csr()
    if transpose_b:
        bt_ip, bt_ix, bt_vv = b._S().csr()
        beff_lengths = np.bincount(bt_ix, minlength=b.ncols)
    else:
        bt_ip, bt_ix, bt_vv = b._S().transpose_csr()
        beff_lengths = np.diff(b.indptr)
    ncols64 = np.int64(bn_cols)
    rows_m = allowed // ncols64
    cols_m = allowed - rows_m * ncols64
    lengths = _mm.mask_row_lengths(a_ip, bt_ip, rows_m, cols_m)
    cost_dot = _mm.dot_probe_cost(*lengths)
    est_flops = _mm.expand_flops_estimate(a_ix, beff_lengths)
    scipy_path = semiring.scipy_reducible()
    method = _mm.choose_masked_method(cost_dot, est_flops, scipy_path)
    if telemetry.active():
        telemetry.record({
            "op": "mxm", "method": method, "semiring": semiring.name,
            "mask_nvals": int(allowed.size),
            "dot_probes": int(cost_dot),
            "expand_flops_est": float(est_flops),
            "expand_flops": _mm.expand_flops_exact(a_ix, beff_lengths),
            "scipy_path": scipy_path,
        })
    if method != "dot":
        return None
    cast_dt = _scipy_dtype(a, b, semiring) if scipy_path else None
    hit, vals = _mm.masked_dot(a_ip, a_ix, a_vv, bt_ip, bt_ix, bt_vv,
                               rows_m, cols_m, a.ncols, semiring,
                               cast_dtype=cast_dt, lengths=lengths)
    return allowed[hit], vals


def mxm(c: Matrix, a: Matrix, b: Matrix, semiring: Semiring, *,
        mask=None, accum: Optional[BinaryOp] = None, replace: bool = False,
        transpose_a: bool = False, transpose_b: bool = False):
    """``C⟨M⟩⊙= A ⊕.⊗ B`` with optional operand transposition.

    ``transpose_b=True`` mirrors the descriptor-based ``F Bᵀ`` pull step of
    the paper's BC (Sec. IV-B): the transpose is taken from the operand's
    cache, never re-materialised per call.

    With a mask, the multiply itself is mask-driven (see the module
    docstring and :mod:`repro.grb._kernels.masked_matmul`): a cost model
    routes non-complemented masks to the dot3 kernel when cheaper, and
    restricts the SciPy / expand fallbacks to mask-live rows either way.
    Results are bit-identical to the unmasked-then-write reference on every
    path.
    """
    if transpose_a:
        a = a.T
    bn_rows = b.ncols if transpose_b else b.nrows
    bn_cols = b.nrows if transpose_b else b.ncols
    _check(a.ncols == bn_rows, f"mxm: A.ncols {a.ncols} != B.nrows {bn_rows}")
    _check(c.nrows == a.nrows and c.ncols == bn_cols,
           f"mxm: C shape {c.shape} != ({a.nrows}, {bn_cols})")
    mask = as_mask(mask)
    # tiny products are cheaper to compute in full than to analyse
    engine = mask is not None and a.nvals + b.nvals >= _mm.MASKED_MIN_NNZ
    t = _masked_dot_mxm(a, b, transpose_b, semiring, mask, bn_cols) \
        if engine else None
    if t is None:
        if transpose_b:
            b = b.T
        rows = _mask_live_rows(mask, a.nrows, b.ncols) if engine else None
        if semiring.scipy_reducible() and a.nvals and b.nvals:
            t = _scipy_mxm(a, b, semiring, rows=rows)
        else:
            # hypersparse A supplies per-entry row ids in O(live rows)
            t = mxm_expand(a.indptr, a.indices, a.values, a.nrows,
                           b.indptr, b.indices, b.values, b.ncols, semiring,
                           a_rows=a._S().entry_rows() if rows is None else None,
                           rows=rows,
                           key_keep=_mask_key_filter(mask) if engine else None)
    return _write_matrix(c, t[0], t[1], mask, accum, replace)


# ---------------------------------------------------------------------------
# element-wise
# ---------------------------------------------------------------------------

def _is_vector(x) -> bool:
    return isinstance(x, Vector)


def ewise_add(out, a, b, op: BinaryOp, *, mask=None, accum=None,
              replace: bool = False):
    """``C⟨M⟩⊙= A op∪ B`` (union of structures; op only on the overlap)."""
    mask = as_mask(mask)
    if _is_vector(out):
        a._check_same_size(b)
        _check(out.size == a.size, "ewise_add: output size mismatch")
        keys, vals = merge_objects(a, b, op, union=True)
        return _write_vector(out, keys, vals, mask, accum, replace)
    a._check_same_shape(b)
    _check(out.shape == a.shape, "ewise_add: output shape mismatch")
    keys, vals = merge_objects(a, b, op, union=True)
    return _write_matrix(out, keys, vals, mask, accum, replace)


def ewise_mult(out, a, b, op: BinaryOp, *, mask=None, accum=None,
               replace: bool = False):
    """``C⟨M⟩⊙= A op∩ B`` (intersection of structures)."""
    mask = as_mask(mask)
    if _is_vector(out):
        a._check_same_size(b)
        _check(out.size == a.size, "ewise_mult: output size mismatch")
        keys, vals = merge_objects(a, b, op, union=False)
        return _write_vector(out, keys, vals, mask, accum, replace)
    a._check_same_shape(b)
    _check(out.shape == a.shape, "ewise_mult: output shape mismatch")
    keys, vals = merge_objects(a, b, op, union=False)
    return _write_matrix(out, keys, vals, mask, accum, replace)


# ---------------------------------------------------------------------------
# apply / select / update
# ---------------------------------------------------------------------------

def apply(out, src, op: UnaryOp, thunk=None, *, mask=None, accum=None,
          replace: bool = False):
    """``C⟨M⟩⊙= f(A, k)``."""
    t = src.apply(op, thunk)
    mask = as_mask(mask)
    if _is_vector(out):
        return _write_vector(out, t._idx, t._vals, mask, accum, replace)
    return _write_matrix(out, t.keys(), t.values, mask, accum, replace)


def select(out, src, op, thunk=None, *, mask=None, accum=None,
           replace: bool = False):
    """``C⟨M⟩⊙= A⟨f(A, k)⟩``: filter entries by a predicate."""
    if isinstance(op, str):
        op = _selectops.by_name(op)
    t = src.select(op, thunk)
    mask = as_mask(mask)
    if _is_vector(out):
        return _write_vector(out, t._idx, t._vals, mask, accum, replace)
    return _write_matrix(out, t.keys(), t.values, mask, accum, replace)


def update(out, t, *, mask=None, accum=None, replace: bool = False):
    """``C⟨M⟩⊙= T``: write an already computed object through the mask.

    With ``accum`` this is the paper's ``P += F`` idiom; with a mask it is
    ``p⟨s(q)⟩ = q``.
    """
    mask = as_mask(mask)
    if _is_vector(out):
        _check(out.size == t.size, "update: size mismatch")
        return _write_vector(out, t._idx, t._vals, mask, accum, replace)
    _check(out.shape == t.shape, "update: shape mismatch")
    return _write_matrix(out, t.keys(), t.values, mask, accum, replace)


# ---------------------------------------------------------------------------
# assign / extract
# ---------------------------------------------------------------------------

def _region_write(out, region_keys, t_keys, t_vals, mask: Optional[Mask],
                  accum, replace: bool):
    """Write ``T`` into the sub-range ``region_keys`` of ``out``.

    Assign semantics: inside the region (∩ mask) the output becomes exactly
    ``Z``; positions outside the region are never touched.  The effective
    allowed set is the region intersected with the (possibly complemented)
    mask, after which the write-back runs un-complemented.  With
    ``replace=True`` entries inside the region but outside the mask are
    cleared (subassign-style replace).
    """
    if mask is None:
        allowed = region_keys
    else:
        m_allowed = mask.allowed_keys()
        if mask.complemented:
            keep = ~np.isin(region_keys, m_allowed, assume_unique=False)
        else:
            keep = np.isin(region_keys, m_allowed, assume_unique=False)
        allowed = region_keys[keep]
        if replace:
            # subassign replace: clear region entries the mask rejects
            allowed_for_clear = region_keys
            if _is_vector(out):
                keys, vals = masked_write(
                    out._idx, out._vals, np.empty(0, np.int64),
                    np.empty(0, out.type.dtype), accum=None,
                    allowed_keys=allowed_for_clear[~keep], complement=False,
                    replace=False, out_dtype=out.type.dtype)
                out._set_sparse(keys, vals)
            else:
                keys, vals = masked_write(
                    out.keys(), out.values, np.empty(0, np.int64),
                    np.empty(0, out.type.dtype), accum=None,
                    allowed_keys=allowed_for_clear[~keep], complement=False,
                    replace=False, out_dtype=out.type.dtype)
                out._set_from_keys(keys, vals)
    if _is_vector(out):
        keys, vals = masked_write(
            out._idx, out._vals, t_keys, t_vals, accum=accum,
            allowed_keys=allowed, complement=False, replace=False,
            out_dtype=out.type.dtype)
        out._set_sparse(keys, vals)
    else:
        keys, vals = masked_write(
            out.keys(), out.values, t_keys, t_vals, accum=accum,
            allowed_keys=allowed, complement=False, replace=False,
            out_dtype=out.type.dtype)
        out._set_from_keys(keys, vals)
    return out


def assign(w, u, indices=None, *, mask=None, accum=None, replace: bool = False):
    """``w⟨m⟩(i)⊙= u`` — assign a vector (or matrix) into a sub-range.

    ``indices=None`` means ``GrB_ALL``.  For matrices pass
    ``indices=(rows, cols)``.  Positions outside the index range are never
    modified; inside the range the output takes ``u``'s pattern (so range
    positions absent from ``u`` lose their entry, per the spec).
    """
    mask = as_mask(mask)
    if _is_vector(w):
        if indices is None:
            return _write_vector(w, u._idx, u._vals, mask, accum, replace)
        indices = np.asarray(indices, dtype=np.int64)
        _check(u.size == indices.size, "assign: index list size mismatch")
        t_idx = indices[u._idx]
        t_vals = u._vals
        order = np.argsort(t_idx, kind="stable")
        region = np.unique(indices)
        return _region_write(w, region, t_idx[order], t_vals[order], mask,
                             accum, replace)
    rows, cols = (None, None) if indices is None else indices
    whole = rows is None and cols is None
    rows = np.arange(w.nrows, dtype=np.int64) if rows is None \
        else np.asarray(rows, dtype=np.int64)
    cols = np.arange(w.ncols, dtype=np.int64) if cols is None \
        else np.asarray(cols, dtype=np.int64)
    _check(u.nrows == rows.size and u.ncols == cols.size,
           "assign: submatrix shape mismatch")
    ur, uc, uv = u.to_coo()
    t_keys = rows[ur] * np.int64(w.ncols) + cols[uc]
    order = np.argsort(t_keys, kind="stable")
    if whole:
        return _write_matrix(w, t_keys[order], uv[order], mask, accum, replace)
    region = np.unique(
        (np.unique(rows)[:, None] * np.int64(w.ncols) +
         np.unique(cols)[None, :]).ravel())
    return _region_write(w, region, t_keys[order], uv[order], mask, accum,
                         replace)


def assign_scalar(w, value, indices=None, *, mask=None, accum=None,
                  replace: bool = False):
    """``w⟨m⟩(i)⊙= s`` — assign a scalar to a sub-range (or everywhere).

    The scalar lands on *every selected position* (subject to the mask), not
    just existing entries — this is how the paper densifies vectors
    (``r(0:n-1) = teleport``, ``B(:) = 1.0``).  Positions outside the index
    range are never modified.
    """
    mask = as_mask(mask)
    if _is_vector(w):
        whole = indices is None
        idx = np.arange(w.size, dtype=np.int64) if whole \
            else np.unique(np.asarray(indices, dtype=np.int64))
        vals = np.full(idx.size, value, dtype=w.type.dtype)
        if whole:
            return _write_vector(w, idx, vals, mask, accum, replace)
        return _region_write(w, idx, idx, vals, mask, accum, replace)
    rows, cols = (None, None) if indices is None else indices
    whole = rows is None and cols is None
    rows = np.arange(w.nrows, dtype=np.int64) if rows is None \
        else np.unique(np.asarray(rows, dtype=np.int64))
    cols = np.arange(w.ncols, dtype=np.int64) if cols is None \
        else np.unique(np.asarray(cols, dtype=np.int64))
    t_keys = (rows[:, None] * np.int64(w.ncols) + cols[None, :]).ravel()
    t_vals = np.full(t_keys.size, value, dtype=w.type.dtype)
    if whole:
        return _write_matrix(w, t_keys, t_vals, mask, accum, replace)
    return _region_write(w, t_keys, t_keys, t_vals, mask, accum, replace)


def extract(w, u, indices, *, mask=None, accum=None, replace: bool = False):
    """``w⟨m⟩⊙= u(i)``: subvector extract (Sec. III-B-d).

    ``w[k] = u[indices[k]]`` for positions where ``u`` has an entry.
    Duplicate indices are allowed (the same source entry fans out).
    """
    mask = as_mask(mask)
    indices = np.asarray(indices, dtype=np.int64)
    _check(w.size == indices.size, "extract: output size mismatch")
    present, dense = u.bitmap()
    hit = present[indices]
    t_idx = np.flatnonzero(hit).astype(np.int64)
    t_vals = dense[indices[t_idx]]
    return _write_vector(w, t_idx, t_vals, mask, accum, replace)


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------

def reduce_rowwise(w: Vector, a: Matrix, monoid: Monoid, *, mask=None,
                   accum=None, replace: bool = False):
    """``w⟨m⟩⊙= [⊕ⱼ A(:, j)]``: per-row reduction into a vector."""
    _check(w.size == a.nrows, "reduce_rowwise: output size mismatch")
    t = a.reduce_rowwise(monoid)
    return _write_vector(w, t._idx, t._vals, as_mask(mask), accum, replace)


def reduce_colwise(w: Vector, a: Matrix, monoid: Monoid, *, mask=None,
                   accum=None, replace: bool = False):
    """``w⟨m⟩⊙= [⊕ᵢ A(i, :)]``: per-column reduction into a vector."""
    _check(w.size == a.ncols, "reduce_colwise: output size mismatch")
    t = a.reduce_colwise(monoid)
    return _write_vector(w, t._idx, t._vals, as_mask(mask), accum, replace)


def transpose(c: Matrix, a: Matrix, *, mask=None, accum=None,
              replace: bool = False):
    """``C⟨M⟩⊙= Aᵀ``: transposition as a standalone masked operation."""
    _check(c.nrows == a.ncols and c.ncols == a.nrows,
           f"transpose: C shape {c.shape} != ({a.ncols}, {a.nrows})")
    t = a.T
    return _write_matrix(c, t.keys(), t.values, as_mask(mask), accum, replace)


# ---------------------------------------------------------------------------
# kronecker
# ---------------------------------------------------------------------------

def kronecker(a: Matrix, b: Matrix, op: BinaryOp) -> Matrix:
    """``C = A ⊗kron B``: the Kronecker product with multiply op ``op``.

    Used by the Graph500-style Kron generator.  Fully vectorised expansion:
    one output entry per (A entry, B entry) pair.
    """
    ar, ac, av = a.to_coo()
    br, bc, bv = b.to_coo()
    na = av.size
    nb = bv.size
    i = (np.repeat(ar, nb) * np.int64(b.nrows)) + np.tile(br, na)
    j = (np.repeat(ac, nb) * np.int64(b.ncols)) + np.tile(bc, na)
    vals = op(np.repeat(av, nb), np.tile(bv, na))
    return Matrix.from_coo(i, j, vals, a.nrows * b.nrows, a.ncols * b.ncols)
