"""Masked GraphBLAS operations (Table I of the paper).

Each function mirrors one row of Table I, written in the C API's
"output-first" style::

    vxm(w, u, A, semiring, mask=..., accum=..., replace=...)   # wᵀ⟨mᵀ⟩⊙= uᵀ ⊕.⊗ A

Every call is *described before it is executed*: the function builds a
:class:`~repro.grb.engine.plan.Plan` (op, operands, mask kind, accumulator,
descriptor bits, output target) and submits it through the lazy layer
(:func:`repro.grb.expr.submit`).  In blocking mode — the default — that is
one ``ContextVar`` read away from :func:`repro.grb.engine.execute`, which
routes the plan through the registered planner rules under the unified
cost model (:mod:`repro.grb.engine.cost`); inside a
:func:`repro.grb.deferred` scope (or with the ``lazy`` descriptor bit) the
call records into the expression DAG instead and returns a
:class:`~repro.grb.expr.Deferred` handle.  The kernel strategies
themselves — the dot3 masked SpGEMM, the SciPy dense paths, the bitmap
merges, the gather references — live in
:mod:`repro.grb.engine.executors`; their decisions are observable through
:mod:`repro.grb.telemetry`, forceable through the cost constants (or
:func:`repro.grb.engine.force_rule`), and memoized across repeated
identical dispatches by the keyed plan cache
(:mod:`repro.grb.engine.plancache`).

All operations share the write-back transaction implemented in
:mod:`repro.grb._kernels.maskwrite`: compute ``T``, merge with the
accumulator, then write through the (possibly structural / complemented)
mask, honouring replace semantics.  The output object always keeps its
declared type; computed values are cast into it.

Algorithm hot loops that want more than one operation per output pass use
the engine's *fused plans* directly (``plan_mxv(...).then_select(...)``,
``plan_mxm(...).then_reduce_rowwise(...)``) — see the "Execution engine"
section of the README.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import engine
from . import expr as _expr
from ._kernels import apply_select as _selectops
from .descriptor import Descriptor
from .errors import DimensionMismatch, InvalidValue
from .mask import as_mask, complement as _complement, structure as _structure
from .matrix import Matrix
from .ops.binary import BinaryOp
from .ops.monoid import Monoid
from .ops.semiring import Semiring
from .ops.unary import UnaryOp
from .vector import Vector

__all__ = [
    "vxm", "mxv", "mxm", "ewise_add", "ewise_mult", "apply", "select",
    "assign", "assign_scalar", "extract", "update", "reduce_rowwise",
    "reduce_colwise", "transpose", "kronecker",
]


def _check(cond: bool, msg: str):
    if not cond:
        raise DimensionMismatch(msg)


def _is_vector(x) -> bool:
    return isinstance(x, Vector)


def _resolve_desc(desc: Optional[Descriptor], mask, replace: bool, *,
                  op: str = "", transposes: bool = False):
    """Fold a bundled :class:`~repro.grb.descriptor.Descriptor` into the
    keyword form; returns ``(mask, replace, lazy)``.

    The structural/complement bits apply to a supplied mask object (they
    are no-ops without one); ``replace`` ORs with the keyword.  The
    ``lazy`` bit requests non-blocking recording even outside a
    :func:`repro.grb.deferred` scope — the descriptor spelling of lazy
    mode.  Transposition bits are honoured only where the operation
    defines them (``mxm``) — anywhere else they raise rather than being
    silently dropped.
    """
    if desc is None:
        return mask, replace, False
    if not transposes and (desc.transpose_a or desc.transpose_b):
        raise InvalidValue(
            f"{op or 'operation'}: descriptor transpose bits are only "
            f"supported on mxm (transpose operands explicitly instead)")
    if mask is not None:
        if desc.mask_structural:
            mask = _structure(as_mask(mask))
        if desc.mask_complement:
            mask = _complement(as_mask(mask))
    return mask, replace or desc.replace, desc.lazy


# ---------------------------------------------------------------------------
# matrix multiplication (mxm / mxv / vxm)
# ---------------------------------------------------------------------------

def vxm(w: Vector, u: Vector, a: Matrix, semiring: Semiring, *,
        mask=None, accum: Optional[BinaryOp] = None, replace: bool = False,
        desc: Optional[Descriptor] = None):
    """``wᵀ⟨mᵀ⟩⊙= uᵀ ⊕.⊗ A`` — the "push" direction.

    Cost is proportional to the total out-degree of ``u``'s entries on the
    sparse path; dense plus-reducible inputs take the SciPy path
    (``vxm-scipy-dense`` above ``cost.DENSE_PULL_FRACTION`` density).
    """
    mask, replace, lazy = _resolve_desc(desc, mask, replace, op="vxm")
    return _expr.submit(engine.plan_vxm(
        w, u, a, semiring, mask=mask, accum=accum, replace=replace), lazy)


def mxv(w: Vector, a: Matrix, u: Vector, semiring: Semiring, *,
        mask=None, accum: Optional[BinaryOp] = None, replace: bool = False,
        desc: Optional[Descriptor] = None):
    """``w⟨m⟩⊙= A ⊕.⊗ u`` — the "pull" direction.

    When a mask is supplied, only the mask-selected rows of ``A`` are
    examined (the complemented-structural-mask BFS pull touches exactly the
    unvisited rows).  A plain-``plus`` accumulate into a *full* float
    output fuses the write-back into the multiply's output pass
    (``mxv-fused-dense-accum`` — PageRank's hot step).
    """
    mask, replace, lazy = _resolve_desc(desc, mask, replace, op="mxv")
    return _expr.submit(engine.plan_mxv(
        w, a, u, semiring, mask=mask, accum=accum, replace=replace), lazy)


def mxm(c: Matrix, a: Matrix, b: Matrix, semiring: Semiring, *,
        mask=None, accum: Optional[BinaryOp] = None, replace: bool = False,
        transpose_a: bool = False, transpose_b: bool = False,
        desc: Optional[Descriptor] = None):
    """``C⟨M⟩⊙= A ⊕.⊗ B`` with optional operand transposition.

    ``transpose_b=True`` mirrors the descriptor-based ``F Bᵀ`` pull step of
    the paper's BC (Sec. IV-B): the transpose is taken from the operand's
    cache, never re-materialised per call.

    With a mask, the multiply itself is mask-driven: the planner routes
    non-complemented masks to the dot3 kernel
    (:mod:`repro.grb._kernels.masked_matmul`) when the unified cost model
    prices it cheaper, and restricts the SciPy / expand fallbacks to
    mask-live rows either way.  Results are bit-identical to the
    unmasked-then-write reference on every path.
    """
    mask, replace, lazy = _resolve_desc(desc, mask, replace, op="mxm",
                                        transposes=True)
    if desc is not None:
        transpose_a = transpose_a or desc.transpose_a
        transpose_b = transpose_b or desc.transpose_b
    return _expr.submit(engine.plan_mxm(
        c, a, b, semiring, mask=mask, accum=accum, replace=replace,
        transpose_a=transpose_a, transpose_b=transpose_b), lazy)


# ---------------------------------------------------------------------------
# element-wise
# ---------------------------------------------------------------------------

def ewise_add(out, a, b, op: BinaryOp, *, mask=None, accum=None,
              replace: bool = False, desc: Optional[Descriptor] = None):
    """``C⟨M⟩⊙= A op∪ B`` (union of structures; op only on the overlap)."""
    mask, replace, lazy = _resolve_desc(desc, mask, replace, op="ewise_add")
    return _expr.submit(engine.plan_ewise_add(
        out, a, b, op, mask=mask, accum=accum, replace=replace), lazy)


def ewise_mult(out, a, b, op: BinaryOp, *, mask=None, accum=None,
               replace: bool = False, desc: Optional[Descriptor] = None):
    """``C⟨M⟩⊙= A op∩ B`` (intersection of structures)."""
    mask, replace, lazy = _resolve_desc(desc, mask, replace, op="ewise_mult")
    return _expr.submit(engine.plan_ewise_mult(
        out, a, b, op, mask=mask, accum=accum, replace=replace), lazy)


# ---------------------------------------------------------------------------
# apply / select / update
# ---------------------------------------------------------------------------

def apply(out, src, op: UnaryOp, thunk=None, *, mask=None, accum=None,
          replace: bool = False, desc: Optional[Descriptor] = None):
    """``C⟨M⟩⊙= f(A, k)``."""
    mask, replace, lazy = _resolve_desc(desc, mask, replace, op="apply")
    return _expr.submit(engine.plan_apply(
        out, src, op, thunk, mask=mask, accum=accum, replace=replace), lazy)


def select(out, src, op, thunk=None, *, mask=None, accum=None,
           replace: bool = False, desc: Optional[Descriptor] = None):
    """``C⟨M⟩⊙= A⟨f(A, k)⟩``: filter entries by a predicate."""
    if isinstance(op, str):
        op = _selectops.by_name(op)
    mask, replace, lazy = _resolve_desc(desc, mask, replace, op="select")
    return _expr.submit(engine.plan_select(
        out, src, op, thunk, mask=mask, accum=accum, replace=replace), lazy)


def update(out, t, *, mask=None, accum=None, replace: bool = False,
           desc: Optional[Descriptor] = None):
    """``C⟨M⟩⊙= T``: write an already computed object through the mask.

    With ``accum`` this is the paper's ``P += F`` idiom; with a mask it is
    ``p⟨s(q)⟩ = q``.  Plan-routed like every other call, so a lazy scope
    can record it — and the multi-output fusion rules can run it inside
    the producing kernel's output pass (the BFS parent update).
    """
    mask, replace, lazy = _resolve_desc(desc, mask, replace, op="update")
    return _expr.submit(engine.plan_update(
        out, t, mask=mask, accum=accum, replace=replace), lazy)


# ---------------------------------------------------------------------------
# assign / extract
# ---------------------------------------------------------------------------

def assign(w, u, indices=None, *, mask=None, accum=None,
           replace: bool = False, desc: Optional[Descriptor] = None):
    """``w⟨m⟩(i)⊙= u`` — assign a vector (or matrix) into a sub-range.

    ``indices=None`` means ``GrB_ALL``.  For matrices pass
    ``indices=(rows, cols)``.  Positions outside the index range are never
    modified; inside the range the output takes ``u``'s pattern (so range
    positions absent from ``u`` lose their entry, per the spec).
    """
    mask, replace, lazy = _resolve_desc(desc, mask, replace, op="assign")
    return _expr.submit(engine.plan_assign(
        w, u, indices, mask=mask, accum=accum, replace=replace), lazy)


def assign_scalar(w, value, indices=None, *, mask=None, accum=None,
                  replace: bool = False, desc: Optional[Descriptor] = None):
    """``w⟨m⟩(i)⊙= s`` — assign a scalar to a sub-range (or everywhere).

    The scalar lands on *every selected position* (subject to the mask), not
    just existing entries — this is how the paper densifies vectors
    (``r(0:n-1) = teleport``, ``B(:) = 1.0``).  Positions outside the index
    range are never modified.
    """
    mask, replace, lazy = _resolve_desc(desc, mask, replace, op="assign_scalar")
    return _expr.submit(engine.plan_assign_scalar(
        w, value, indices, mask=mask, accum=accum, replace=replace), lazy)


def extract(w, u, indices, *, mask=None, accum=None, replace: bool = False):
    """``w⟨m⟩⊙= u(i)``: subvector extract (Sec. III-B-d).

    ``w[k] = u[indices[k]]`` for positions where ``u`` has an entry.
    Duplicate indices are allowed (the same source entry fans out).
    """
    mask = as_mask(mask)
    indices = np.asarray(indices, dtype=np.int64)
    _check(w.size == indices.size, "extract: output size mismatch")
    present, dense = u.bitmap()
    hit = present[indices]
    t_idx = np.flatnonzero(hit).astype(np.int64)
    t_vals = dense[indices[t_idx]]
    return engine.write_vector(w, t_idx, t_vals, mask, accum, replace)


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------

def reduce_rowwise(w: Vector, a: Matrix, monoid: Monoid, *, mask=None,
                   accum=None, replace: bool = False):
    """``w⟨m⟩⊙= [⊕ⱼ A(:, j)]``: per-row reduction into a vector."""
    _check(w.size == a.nrows, "reduce_rowwise: output size mismatch")
    t = a.reduce_rowwise(monoid)
    return engine.write_vector(w, t._idx, t._vals, as_mask(mask), accum,
                               replace)


def reduce_colwise(w: Vector, a: Matrix, monoid: Monoid, *, mask=None,
                   accum=None, replace: bool = False):
    """``w⟨m⟩⊙= [⊕ᵢ A(i, :)]``: per-column reduction into a vector."""
    _check(w.size == a.ncols, "reduce_colwise: output size mismatch")
    t = a.reduce_colwise(monoid)
    return engine.write_vector(w, t._idx, t._vals, as_mask(mask), accum,
                               replace)


def transpose(c: Matrix, a: Matrix, *, mask=None, accum=None,
              replace: bool = False):
    """``C⟨M⟩⊙= Aᵀ``: transposition as a standalone masked operation."""
    _check(c.nrows == a.ncols and c.ncols == a.nrows,
           f"transpose: C shape {c.shape} != ({a.ncols}, {a.nrows})")
    t = a.T
    return engine.write_matrix(c, t.keys(), t.values, as_mask(mask), accum,
                               replace)


# ---------------------------------------------------------------------------
# kronecker
# ---------------------------------------------------------------------------

def kronecker(a: Matrix, b: Matrix, op: BinaryOp) -> Matrix:
    """``C = A ⊗kron B``: the Kronecker product with multiply op ``op``.

    Used by the Graph500-style Kron generator.  Fully vectorised expansion:
    one output entry per (A entry, B entry) pair.
    """
    ar, ac, av = a.to_coo()
    br, bc, bv = b.to_coo()
    na = av.size
    nb = bv.size
    i = (np.repeat(ar, nb) * np.int64(b.nrows)) + np.tile(br, na)
    j = (np.repeat(ac, nb) * np.int64(b.ncols)) + np.tile(bc, na)
    vals = op(np.repeat(av, nb), np.tile(bv, na))
    return Matrix.from_coo(i, j, vals, a.nrows * b.nrows, a.ncols * b.ncols)
