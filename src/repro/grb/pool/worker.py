"""Worker-process entry point: the spawn target serving sharded kernels.

``_worker_main`` runs in a fresh spawned interpreter (the parent carries
serve/drain threads, so fork is off the table) and serves one request at
a time over its private pipe.  Messages are dicts keyed by ``kind``:

``ping``
    liveness probe; replies with the worker's pid.
``faults``
    replace the worker's installed fault injectors with the parent's
    compiled specs (:func:`repro.testing.faults.install_specs`) — how a
    chaos test's injectors reach the other side of the process boundary.
``mxm-block``
    :func:`repro.grb.engine.executors.scipy_mxm` restricted to one row
    block; returns the block's ``(keys, vals)``.
``dot-block``
    masked-dot probe + reduce over one contiguous mask-entry chunk;
    returns ``(hit, vals)`` with chunk-relative hit indices.
``shutdown``
    drain and exit.

Every task reply is ``(status, payload, counter_deltas)``: kernels in the
worker bump the same obs counters they would in-process, and the deltas
since the previous reply ride home with each result so the parent can
merge them into its registry — pool execution stays observable without a
second metrics endpoint.

Operand references resolve through an LRU attach-cache: a shared-memory
placement is mapped once per worker and reused across tasks (eviction
closes the mapping; the parent owns the unlink).  The ``pool-task`` fault
site fires here, *inside* the worker, before each task runs — a ``crash``
spec at that site kills this process mid-block, which is exactly what the
worker-death ladder tests need.

Engine imports stay inside functions: the parent imports this module via
``pool.py`` while ``engine/__init__`` is still importing ``executors``
(which registers the pool rules), so a top-level engine import would bite
its own tail.
"""

from __future__ import annotations

import os
import pickle
import time
from collections import OrderedDict

__all__ = ["_worker_main"]


class _AttachCache:
    """LRU of mapped placements: key -> (shm, store, wrapped Matrix)."""

    def __init__(self, limit: int = 16):
        self._limit = limit
        self._entries = OrderedDict()

    def _entry(self, placement):
        key = placement.key
        ent = self._entries.get(key)
        if ent is None:
            from .shm import attach_placement
            store, shm = attach_placement(placement)
            ent = {"shm": shm, "store": store, "matrix": None}
            self._entries[key] = ent
            while len(self._entries) > self._limit:
                _, old = self._entries.popitem(last=False)
                old["shm"].close()
        else:
            self._entries.move_to_end(key)
        return ent

    def store(self, placement):
        return self._entry(placement)["store"]

    def matrix(self, placement):
        ent = self._entry(placement)
        if ent["matrix"] is None:
            ent["matrix"] = _wrap_matrix(ent["store"])
        return ent["matrix"]

    def close(self) -> None:
        for ent in self._entries.values():
            ent["shm"].close()
        self._entries.clear()


def _wrap_matrix(store):
    """A Matrix façade over an attached store (value caches start cold)."""
    from ..matrix import Matrix
    vals = getattr(store, "values", None)
    if vals is None:
        vals = getattr(store, "cvalues", None)   # CSC
    if vals is None:
        vals = getattr(store, "dense", None)     # bitmap
    m = Matrix(vals.dtype, store.nrows, store.ncols)
    m._store = store
    return m


def _store_from_ref(ref, attached):
    if ref[0] == "shm":
        return attached.store(ref[1])
    from ..storage import attach_store
    return attach_store(ref[1], ref[2])


def _matrix_from_ref(ref, attached):
    if ref[0] == "shm":
        return attached.matrix(ref[1])
    return _wrap_matrix(_store_from_ref(ref, attached))


def _compute(task: dict, attached: _AttachCache):
    from ..ops.semiring import by_name
    kind = task["kind"]
    if kind == "mxm-block":
        from ..engine import executors as _ex
        a = _matrix_from_ref(task["a"], attached)
        b = _matrix_from_ref(task["b"], attached)
        keys, vals = _ex.scipy_mxm(a, b, by_name(task["semiring"]),
                                   rows=task["rows"])
        return keys, vals
    if kind == "dot-block":
        import numpy as np
        from .._kernels import masked_matmul as _mm
        sr = by_name(task["semiring"])
        a_st = _store_from_ref(task["a"], attached)
        bt_st = _store_from_ref(task["bt"], attached)
        mult = sr.mult.name
        probe = _mm.masked_dot_probe(
            a_st.indptr, a_st.indices, bt_st.indptr, bt_st.indices,
            task["rows"], task["cols"], task["inner"],
            mult in ("times", "first"), mult in ("times", "second"),
            lengths=task["lengths"])
        cast = task["cast"]
        hit, vals = _mm.masked_dot_reduce(
            probe, a_st.values, bt_st.values, task["rows"].size, sr,
            cast_dtype=None if cast is None else np.dtype(cast))
        return hit, vals
    raise ValueError(f"unknown pool task kind {kind!r}")


def _run_task(task: dict, attached: _AttachCache):
    from ...testing import faults as _faults
    from .. import cancel as _cancel
    if _faults.ACTIVE:
        _faults.fire("pool-task", kind=task["kind"], op=task.get("op", "mxm"))
    rem = task.get("deadline")
    if rem is None:
        return _compute(task, attached)
    token = _cancel.CancelToken(deadline=time.monotonic() + max(rem, 0.0))
    with _cancel.cancel_scope(token):
        token.check()
        return _compute(task, attached)


def _counter_deltas(baseline: dict) -> tuple:
    """Counter movement since the previous reply: (name, labels, delta)."""
    from ...obs import metrics as _metrics
    out = []
    for metric in _metrics.collect():
        if metric.kind != "counter":
            continue
        for labelvalues, child in metric.samples():
            cur = child.value
            key = (metric.name, labelvalues)
            delta = cur - baseline.get(key, 0)
            if delta:
                baseline[key] = cur
                out.append((metric.name, labelvalues, delta))
    return tuple(out)


def _shippable(exc: BaseException) -> BaseException:
    """The exception itself when picklable, a faithful stand-in otherwise."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _worker_main(conn, settings: dict) -> None:
    from ...obs import metrics as _metrics
    from ...testing import faults as _faults
    _metrics.ENABLED = bool(settings.get("metrics_enabled", True))
    attached = _AttachCache(limit=int(settings.get("attach_limit", 16)))
    baseline: dict = {}
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):     # parent is gone
                break
            kind = msg.get("kind")
            if kind == "shutdown":
                break
            try:
                if kind == "ping":
                    reply = ("ok", os.getpid(), ())
                elif kind == "faults":
                    _faults.clear()
                    _faults.install_specs(msg["specs"])
                    reply = ("ok", None, ())
                else:
                    reply = ("ok", _run_task(msg, attached),
                             _counter_deltas(baseline))
            except BaseException as exc:    # ship the failure, keep serving
                reply = ("err", _shippable(exc), _counter_deltas(baseline))
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
    finally:
        attached.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
