"""The persistent worker pool: spawn-safe processes serving sharded tasks.

One :class:`WorkerPool` holds N spawned workers, each with a private
duplex pipe.  Submission is checkout-based: a task takes an idle worker
off the queue, holds it across the send/recv round-trip (so concurrent
callers — serve drain threads, MultiPlan node threads — can never
interleave frames on one pipe), and returns it.  ``run_tasks`` fans a
block list out over as many workers as there are blocks and preserves
task order in the result list.

Failure ladder (the process analogue of the serve layer's):

* a dead pipe during the round-trip means the worker died mid-task — the
  corpse is reaped, a fresh worker is spawned in its slot, and the task
  retries once on a sibling (``grb_pool_worker_deaths_total`` /
  ``grb_pool_retries_total``);
* a second death for the same task raises :class:`PoolTaskError`, which
  is non-retryable by construction: the input reproducibly kills
  workers, so the serve resilience ladder quarantines it instead of
  burning more processes;
* an exception *raised inside* the worker ships back intact and re-raises
  here with its own retryability (a ``TransientFault`` from a pool-task
  injector still climbs the serve retry ladder like an in-process one).

Fault sync: before each round-trip the worker's installed injector set is
reconciled against the parent's compiled specs
(:func:`repro.testing.faults.compiled_specs`), keyed by a signature so
the common no-faults case costs one string compare.  Replacement workers
start clean and pick up the live specs the same way — a crash spec with
per-process counting therefore also fells the retry sibling, which is
what the quarantine chaos test pins.
"""

from __future__ import annotations

import multiprocessing as mp
import queue
import threading
from typing import List

from ...obs import metrics as _metrics
from ...testing import faults as _faults
from .worker import _worker_main

__all__ = ["WorkerPool", "PoolTaskError"]

POOL_TASKS = _metrics.counter(
    "grb_pool_tasks_total", "Sharded tasks completed by pool workers",
    labels=("kind",))
POOL_DEATHS = _metrics.counter(
    "grb_pool_worker_deaths_total", "Worker processes that died mid-task")
POOL_RETRIES = _metrics.counter(
    "grb_pool_retries_total", "Tasks retried on a sibling after a death")
POOL_WORKERS = _metrics.gauge(
    "grb_pool_workers", "Live worker processes in the pool")

_NO_FAULTS_SIG = repr([])


class PoolTaskError(RuntimeError):
    """A task lost its worker twice (original + sibling retry).

    Non-retryable by construction: the input reproducibly kills worker
    processes, so retrying it anywhere else just burns more of them —
    the serve ladder's quarantine tier is the right destination.
    """

    retryable = False


class _Worker:
    __slots__ = ("proc", "conn", "fault_sig")

    def __init__(self, ctx, settings: dict):
        parent_conn, child_conn = ctx.Pipe()
        self.proc = ctx.Process(target=_worker_main,
                                args=(child_conn, settings),
                                name="repro-pool-worker", daemon=True)
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn
        self.fault_sig = _NO_FAULTS_SIG   # spawned with no injectors

    def reap(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass
        if self.proc.is_alive():
            self.proc.terminate()
        self.proc.join(timeout=5)


class WorkerPool:
    """N spawned workers behind an idle queue; see module docstring."""

    def __init__(self, workers: int):
        self.size = int(workers)
        # the parent runs serve/drain threads — fork would clone held
        # locks mid-flight, so the pool is spawn-only
        self._ctx = mp.get_context("spawn")
        self._settings = {"metrics_enabled": _metrics.ENABLED}
        self._lock = threading.Lock()
        self._workers: List[_Worker] = []
        self._idle: queue.Queue = queue.Queue()
        self._closed = False
        for _ in range(self.size):
            w = _Worker(self._ctx, self._settings)
            self._workers.append(w)
            self._idle.put(w)
        if _metrics.ENABLED:
            POOL_WORKERS.set(self.size)

    # -- submission --------------------------------------------------------

    def run_tasks(self, tasks: List[dict]) -> list:
        """Run every task (one worker each); results in task order."""
        if not tasks:
            return []
        if len(tasks) == 1:
            return [self._run_one(tasks[0])]
        results = [None] * len(tasks)
        errors: list = []

        def _go(i: int, task: dict) -> None:
            try:
                results[i] = self._run_one(task)
            except BaseException as exc:  # noqa: BLE001 - relayed below
                errors.append(exc)

        threads = [threading.Thread(target=_go, args=(i, t), daemon=True)
                   for i, t in enumerate(tasks)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]
        return results

    def ping(self) -> list:
        """Liveness round-trip to one worker; returns its pid."""
        return self.run_tasks([{"kind": "ping"}])

    # -- internals ---------------------------------------------------------

    def _run_one(self, task: dict):
        for attempt in (0, 1):
            worker = self._idle.get()
            died = False
            try:
                self._sync_faults(worker)
                worker.conn.send(task)
                status, payload, deltas = worker.conn.recv()
            except (EOFError, OSError, BrokenPipeError):
                died = True
            finally:
                self._idle.put(self._replace(worker) if died else worker)
            if died:
                if _metrics.ENABLED:
                    POOL_DEATHS.inc()
                    if attempt == 0:
                        POOL_RETRIES.inc()
                continue
            self._merge_deltas(deltas)
            if _metrics.ENABLED:
                POOL_TASKS.labels(str(task.get("kind", "?"))).inc()
            if status == "ok":
                return payload
            raise payload
        raise PoolTaskError(
            f"sharded task {task.get('kind', '?')!r} killed its worker and "
            "the sibling retry — input quarantined as poisonous")

    def _replace(self, worker: _Worker) -> _Worker:
        worker.reap()
        with self._lock:
            try:
                self._workers.remove(worker)
            except ValueError:  # pragma: no cover - already reaped
                pass
            fresh = _Worker(self._ctx, self._settings)
            self._workers.append(fresh)
        return fresh

    def _sync_faults(self, worker: _Worker) -> None:
        specs = _faults.compiled_specs() if _faults.ACTIVE else []
        sig = repr(specs)
        if worker.fault_sig == sig:
            return
        worker.conn.send({"kind": "faults", "specs": specs})
        status, payload, _ = worker.conn.recv()
        if status != "ok":  # pragma: no cover - spec rebuild is total
            raise payload
        worker.fault_sig = sig

    def _merge_deltas(self, deltas) -> None:
        if not deltas or not _metrics.ENABLED:
            return
        for name, labelvalues, delta in deltas:
            metric = _metrics.REGISTRY.get(name)
            if metric is not None and metric.kind == "counter":
                metric.labels(*labelvalues).inc(delta)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers, self._workers = self._workers, []
        for w in workers:
            try:
                w.conn.send({"kind": "shutdown"})
            except (BrokenPipeError, OSError):
                pass
        for w in workers:
            w.proc.join(timeout=2)
            w.reap()
        if _metrics.ENABLED:
            POOL_WORKERS.set(0)

    def worker_pids(self) -> List[int]:
        with self._lock:
            return [w.proc.pid for w in self._workers]
