"""Zero-copy graph placement: store buffers in named shared-memory segments.

One placement = one segment.  The parent exports a store's authoritative
arrays (:meth:`export_buffers`), packs them into a single named segment
with a 64-byte-aligned offset table, and ships workers a tiny picklable
:class:`Placement` descriptor.  A worker maps the segment once and
rebuilds the store as numpy views over the mapping
(:func:`repro.grb.storage.attach_store`) — the graph's arrays cross the
process boundary exactly once, at placement time, never per task.

Lifecycle is owned parent-side by :class:`ShmArena`:

* placements are keyed (typically ``(uid, version, view)``) so repeated
  dispatches against an unchanged operand reuse the segment;
* each placement holds a weak finalizer on its owning object — when the
  owner is collected the key lands on a dead-list that the next arena
  touchpoint drains, closing and unlinking the segment (the same
  deferred-reclaim shape :mod:`repro.obs.memory` uses for store gauges);
* ``grb_shm_bytes`` / ``grb_shm_segments`` gauges account live placements
  with delta accounting: additions are recorded only while metrics are
  enabled, and every removal subtracts exactly what its addition added,
  so flipping the kill switch mid-run can never strand phantom bytes.

Attach side: :func:`attach_placement` opens untracked (``track=False``,
Python 3.13+) so an attaching process never claims cleanup ownership of a
segment it does not own (bpo-39959).  On older Pythons the duplicate
registration is benign — spawn children share the parent's resource
tracker, where registration is set-shaped.
"""

from __future__ import annotations

import threading
import weakref
from collections import deque
from multiprocessing import shared_memory
from typing import Optional

import numpy as np

from ...obs import metrics as _metrics

__all__ = ["Placement", "ShmArena", "attach_placement"]

SHM_BYTES = _metrics.gauge(
    "grb_shm_bytes", "Bytes held in live shared-memory placements")
SHM_SEGMENTS = _metrics.gauge(
    "grb_shm_segments", "Live shared-memory segments owned by the arena")

_ALIGN = 64


def _bump(metric, amount) -> None:
    # Deliberately bypasses metrics.ENABLED (obs: gated-by-caller): each
    # placement records how much it added, and its removal must subtract
    # exactly that even if the kill switch flipped in between — otherwise
    # the gauges drift away from the true segment census.
    child = metric.labels()
    with child._lock:
        child.value += amount


class Placement:
    """Picklable descriptor of one store placed in a shared segment.

    ``layout`` maps the store's ``export_buffers()`` components onto the
    segment: ``(name, dtype_str, shape, offset)`` per array.
    """

    __slots__ = ("key", "segment", "meta", "layout", "nbytes")

    def __init__(self, key, segment: str, meta: dict, layout: tuple,
                 nbytes: int):
        self.key = key
        self.segment = segment
        self.meta = meta
        self.layout = layout
        self.nbytes = nbytes

    def __getstate__(self):
        return (self.key, self.segment, self.meta, self.layout, self.nbytes)

    def __setstate__(self, state):
        self.key, self.segment, self.meta, self.layout, self.nbytes = state

    def __repr__(self):  # pragma: no cover - cosmetic
        return (f"Placement({self.key!r}, segment={self.segment!r}, "
                f"nbytes={self.nbytes})")


class _Seg:
    __slots__ = ("shm", "placement", "accounted", "finalizer")

    def __init__(self, shm, placement, accounted, finalizer):
        self.shm = shm
        self.placement = placement
        self.accounted = accounted
        self.finalizer = finalizer


class ShmArena:
    """Parent-side owner of every placement segment this process created."""

    def __init__(self):
        self._lock = threading.Lock()
        self._segs = {}            # key -> _Seg
        self._dead: deque = deque()  # keys whose owner was collected

    # -- internal ----------------------------------------------------------

    def _on_owner_dead(self, key) -> None:
        # may run on any thread, mid-GC: just enqueue (lock-free)
        self._dead.append(key)

    def _drop_locked(self, key) -> None:
        seg = self._segs.pop(key, None)
        if seg is None:
            return
        if seg.finalizer is not None:
            seg.finalizer.detach()
        try:
            seg.shm.close()
            seg.shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - racy unlink
            pass
        if seg.accounted:
            # obs: gated-by-caller (subtracts exactly what place() added,
            # even if metrics.ENABLED flipped since — gauges must net to 0)
            _bump(SHM_BYTES, -seg.accounted)
        _bump(SHM_SEGMENTS, -1)  # obs: gated-by-caller (exact segment census)

    def _flush_dead_locked(self) -> None:
        while True:
            try:
                key = self._dead.popleft()
            except IndexError:
                return
            self._drop_locked(key)

    # -- API ---------------------------------------------------------------

    def place(self, key, store, owner=None) -> Placement:
        """Publish ``store`` under ``key`` (reuses an existing placement)."""
        with self._lock:
            self._flush_dead_locked()
            seg = self._segs.get(key)
            if seg is not None:
                return seg.placement
            meta, comps = store.export_buffers()
            layout, arrays, off = [], [], 0
            for name, arr in comps.items():
                arr = np.ascontiguousarray(arr)
                off = (off + _ALIGN - 1) & ~(_ALIGN - 1)
                layout.append((name, arr.dtype.str, arr.shape, off))
                arrays.append(arr)
                off += arr.nbytes
            shm = shared_memory.SharedMemory(create=True, size=max(off, 1))
            for (name, dstr, shape, o), arr in zip(layout, arrays):
                dst = np.ndarray(shape, dtype=np.dtype(dstr),
                                 buffer=shm.buf, offset=o)
                dst[...] = arr
            placement = Placement(key, shm.name, dict(meta), tuple(layout),
                                  max(off, 1))
            accounted = placement.nbytes if _metrics.ENABLED else 0
            if accounted:
                # obs: gated-by-caller (``accounted`` is the ENABLED gate;
                # kept outside the bump so _drop_locked mirrors it exactly)
                _bump(SHM_BYTES, accounted)
            _bump(SHM_SEGMENTS, 1)  # obs: gated-by-caller (exact census)
            finalizer = None
            if owner is not None:
                finalizer = weakref.finalize(owner, self._on_owner_dead, key)
                finalizer.atexit = False
            self._segs[key] = _Seg(shm, placement, accounted, finalizer)
            return placement

    def get(self, key) -> Optional[Placement]:
        with self._lock:
            seg = self._segs.get(key)
            return None if seg is None else seg.placement

    def drop(self, key) -> None:
        with self._lock:
            self._drop_locked(key)

    def drop_stale(self, uid, view, keep_version) -> None:
        """Unlink placements of older versions of one operand view."""
        with self._lock:
            stale = [k for k in self._segs
                     if isinstance(k, tuple) and len(k) == 3
                     and k[0] == uid and k[2] == view
                     and k[1] != keep_version]
            for k in stale:
                self._drop_locked(k)

    def segment_count(self) -> int:
        with self._lock:
            self._flush_dead_locked()
            return len(self._segs)

    def total_bytes(self) -> int:
        with self._lock:
            self._flush_dead_locked()
            return sum(seg.placement.nbytes for seg in self._segs.values())

    def close(self) -> None:
        with self._lock:
            for key in list(self._segs):
                self._drop_locked(key)
            self._dead.clear()


def attach_placement(placement: Placement):
    """Map a placement and rebuild its store over the mapping (worker side).

    Returns ``(store, shm)`` — the caller must keep ``shm`` alive for as
    long as the store's arrays are in use, and ``close()`` it (never
    ``unlink()``, the parent owns the segment) when done.
    """
    try:
        shm = shared_memory.SharedMemory(name=placement.segment, track=False)
    except TypeError:
        # Python < 3.13 has no track=False (bpo-39959): the attach also
        # registers the name with the resource tracker.  Pool workers are
        # spawn children sharing the *parent's* tracker process, where
        # registrations are a set — the duplicate is a no-op and the
        # parent's unlink-time unregister still removes the single entry,
        # so no compensating unregister is needed (issuing one here would
        # make the parent's later unregister a tracker KeyError).
        shm = shared_memory.SharedMemory(name=placement.segment)
    comps = {name: np.ndarray(shape, dtype=np.dtype(dstr),
                              buffer=shm.buf, offset=off)
             for name, dstr, shape, off in placement.layout}
    from ..storage import attach_store
    return attach_store(placement.meta, comps), shm
