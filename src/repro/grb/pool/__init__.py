"""``repro.grb.pool`` — multiprocess shared-memory execution.

The paper's measurements lean on SuiteSparse's internal OpenMP
parallelism; a pure-Python substrate gets none of that for free — the
GIL serialises every numpy epilogue and SciPy's released-GIL sections
are too fine-grained to scale a whole kernel.  This package takes the
process route instead:

* **Placement** (:mod:`.shm`): operand stores are published once into
  named shared-memory segments; workers attach zero-copy numpy views.
* **Workers** (:mod:`.worker`, :mod:`.pool`): a persistent spawn-safe
  pool serves row-blocked kernel tasks over private pipes, with
  death-detection, sibling retry, and per-task obs counter merging.
* **Rules** (:mod:`repro.grb.engine.pool_rules`): planner rules shard
  mask-live / frontier rows into blocks and reassemble worker results
  with the same merges the serial kernels use — bit-identical by
  construction.

Everything is off by default: ``REPRO_POOL_WORKERS=0`` (or unset) keeps
execution in-process and bit-for-bit identical to the serial engine; the
rules never claim a plan and no process is ever spawned.

Public surface
--------------
``configured_workers() / pool_enabled()``
    the ``REPRO_POOL_WORKERS`` knob, read fresh each call (tests flip it
    with ``monkeypatch.setenv``).
``get_pool() / shutdown_pool()``
    the process-global :class:`~repro.grb.pool.pool.WorkerPool`,
    (re)built lazily to the configured size and torn down at interpreter
    exit.
``matrix_ref() / publish_graph()``
    picklable operand references — a shared-memory placement for big
    operands, inline buffers for small ones — and the serve layer's
    register-time pre-placement of a graph's operand feeds.
"""

from __future__ import annotations

import atexit
import os
import threading
from typing import List, Optional

import numpy as np

__all__ = [
    "ENV_WORKERS", "configured_workers", "pool_enabled",
    "get_pool", "shutdown_pool", "arena",
    "matrix_ref", "publish_graph", "PoolTaskError",
]

#: Worker-count environment knob.  0 / unset = fully in-process (default).
ENV_WORKERS = "REPRO_POOL_WORKERS"

_lock = threading.Lock()
_pool = None
_arena = None


def configured_workers() -> int:
    """The requested worker count (0 = pool disabled)."""
    raw = os.environ.get(ENV_WORKERS, "").strip()
    if not raw:
        return 0
    try:
        return max(int(raw), 0)
    except ValueError:
        return 0


def pool_enabled() -> bool:
    return configured_workers() > 0


def get_pool():
    """The live pool at the configured size, or ``None`` when disabled.

    A size change (bench legs sweep 0/2/4 workers in one process) tears
    the old pool down and spawns a fresh one.
    """
    global _pool
    n = configured_workers()
    if n <= 0:
        return None
    with _lock:
        if _pool is not None and _pool.size != n:
            _pool.close()
            _pool = None
        if _pool is None:
            from .pool import WorkerPool
            _pool = WorkerPool(n)
        return _pool


def arena():
    """The process-global placement arena (created on first touch)."""
    global _arena
    with _lock:
        if _arena is None:
            from .shm import ShmArena
            _arena = ShmArena()
        return _arena


def shutdown_pool() -> None:
    """Tear down workers and unlink every placement segment.

    Runs as an ``atexit`` callback, where an unbounded lock wait could
    wedge interpreter shutdown behind a thread that died holding ``_lock``
    — so the acquire is bounded; on timeout the segments leak to the OS
    rather than the exit hanging.
    """
    global _pool, _arena
    if not _lock.acquire(timeout=2.0):
        return
    try:
        pool, ar = _pool, _arena
        _pool = _arena = None
    finally:
        _lock.release()
    if pool is not None:
        pool.close()
    if ar is not None:
        ar.close()


atexit.register(shutdown_pool)


# ---------------------------------------------------------------------------
# operand references
# ---------------------------------------------------------------------------

def _view_store(m, view: str):
    """The store a view name denotes — always CSR-triple shaped, so a
    worker reconstructs exactly the arrays the serial kernel would read."""
    from ..storage import CSRStore
    st = m._S()
    if view == "csr":
        ip, ix, vv = st.csr()
        return CSRStore(m.nrows, m.ncols, ip, ix, vv)
    if view == "tcsr":
        ip, ix, vv = st.transpose_csr()
        return CSRStore(m.ncols, m.nrows, ip, ix, vv)
    raise ValueError(f"unknown operand view {view!r}")


def matrix_ref(m, view: str = "csr"):
    """A picklable operand reference for worker tasks.

    Small operands (``cost.POOL_INLINE_LIMIT``) ship inline in the task
    message — one pickle beats a segment create + attach round-trip.
    Everything else goes through the arena keyed ``(uid, version, view)``
    so repeated dispatches against an unchanged operand reuse the
    segment; older versions of the same view are unlinked on the way.
    """
    from ..engine import cost as _cost
    store = _view_store(m, view)
    meta, comps = store.export_buffers()
    seen, nbytes = set(), 0
    for arr in comps.values():
        if id(arr) not in seen:
            seen.add(id(arr))
            nbytes += int(arr.nbytes)
    if nbytes <= _cost.POOL_INLINE_LIMIT:
        return ("inline", meta,
                {k: np.ascontiguousarray(v) for k, v in comps.items()})
    key = (m._uid, m._version, view)
    ar = arena()
    ar.drop_stale(m._uid, view, m._version)
    return ("shm", ar.place(key, store, owner=m))


def publish_graph(graph) -> List[tuple]:
    """Pre-place a graph's operand feeds (serve ``register(place="shm")``).

    Publishes the adjacency's canonical CSR and its transpose — the two
    views every sharded mxm / masked-dot task reads — so the first query
    against the graph never pays placement latency.  A no-op (empty
    list) when the pool is disabled: registration stays cheap and the
    segment census stays empty in serial runs.
    """
    if not pool_enabled():
        return []
    return [matrix_ref(graph.A, "csr"), matrix_ref(graph.A, "tcsr")]


def _remaining_deadline() -> Optional[float]:
    """Seconds left on the ambient cancel scope, for task propagation."""
    from .. import cancel as _cancel
    token = _cancel.current_token()
    return None if token is None else token.remaining()


# re-exported for isinstance checks without importing .pool eagerly
def __getattr__(name: str):
    if name == "PoolTaskError":
        from .pool import PoolTaskError
        return PoolTaskError
    raise AttributeError(name)
