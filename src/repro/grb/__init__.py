"""``repro.grb`` — a from-scratch, pure-Python GraphBLAS substrate.

This package plays the role SuiteSparse:GraphBLAS plays in the paper: the
low-level building blocks (Sec. III) that the LAGraph layer
(:mod:`repro.lagraph`) is written against.

Quick tour::

    from repro import grb

    A = grb.Matrix.from_coo([0, 1], [1, 2], [1.0, 2.0], 3, 3)
    u = grb.Vector.from_coo([0], [1.0], 3)
    w = grb.Vector(grb.FP64, 3)
    grb.vxm(w, u, A, grb.semiring("min", "plus"))      # wᵀ = uᵀ min.plus A

Masks follow the paper's notation: ``grb.structure(p)`` is ``s(p)``,
``grb.complement(...)`` is ``¬``, and ``replace=True`` is the ``r`` flag.
"""

from . import operations as ops_module  # noqa: F401  (kept importable)
from .descriptor import (
    DESC_C,
    DESC_DEFAULT,
    DESC_LAZY,
    DESC_R,
    DESC_RC,
    DESC_RS,
    DESC_RSC,
    DESC_S,
    DESC_SC,
    DESC_T0,
    DESC_T1,
    Descriptor,
)
from .expr import Deferred, deferred, evaluate
from .errors import (
    DimensionMismatch,
    DomainMismatch,
    EmptyObject,
    GraphBLASError,
    GrBInfo,
    IndexOutOfBounds,
    InvalidObject,
    InvalidValue,
    NoValue,
    OutputNotEmpty,
)
from .mask import Mask, as_mask, complement, structure
from .matrix import Matrix
from .operations import (
    apply,
    assign,
    assign_scalar,
    ewise_add,
    ewise_mult,
    extract,
    kronecker,
    mxm,
    mxv,
    reduce_colwise,
    reduce_rowwise,
    select,
    transpose,
    update,
    vxm,
)
from .ops import binary, monoid, positional, unary
from .ops.semiring import Semiring, by_name as semiring_by_name, semiring
from .types import (
    ALL_TYPES,
    BOOL,
    FP32,
    FP64,
    INT8,
    INT16,
    INT32,
    INT64,
    UINT8,
    UINT16,
    UINT32,
    UINT64,
    Type,
    from_dtype,
    type_name,
)
from .vector import Vector
from ._kernels import apply_select as selectops
from . import cancel
from .cancel import CancelToken, Cancelled, DeadlineExceeded, \
    cancel_scope, checkpoint
from . import storage
from . import telemetry
from . import engine
from . import expr

__all__ = [
    # objects
    "Matrix", "Vector", "Type", "Mask", "Descriptor", "Semiring",
    # execution engine / storage engine / instrumentation / lazy layer
    "engine", "storage", "telemetry", "expr",
    # cooperative cancellation
    "cancel", "CancelToken", "Cancelled", "DeadlineExceeded",
    "cancel_scope", "checkpoint",
    # non-blocking mode
    "deferred", "evaluate", "Deferred",
    # types
    "BOOL", "INT8", "INT16", "INT32", "INT64",
    "UINT8", "UINT16", "UINT32", "UINT64", "FP32", "FP64",
    "ALL_TYPES", "from_dtype", "type_name",
    # masks
    "structure", "complement", "as_mask",
    # operations
    "mxm", "mxv", "vxm", "ewise_add", "ewise_mult", "apply", "select",
    "assign", "assign_scalar", "extract", "update", "transpose",
    "reduce_rowwise", "reduce_colwise", "kronecker",
    # operator namespaces
    "unary", "binary", "monoid", "positional", "semiring", "semiring_by_name",
    "selectops",
    # descriptors
    "DESC_DEFAULT", "DESC_R", "DESC_S", "DESC_C", "DESC_SC", "DESC_RS",
    "DESC_RC", "DESC_RSC", "DESC_T0", "DESC_T1", "DESC_LAZY",
    # errors
    "GraphBLASError", "GrBInfo", "NoValue", "DimensionMismatch",
    "DomainMismatch", "IndexOutOfBounds", "InvalidValue", "InvalidObject",
    "EmptyObject", "OutputNotEmpty",
]
