"""Descriptors (``GrB_Descriptor`` equivalents).

The pythonic API of this substrate expresses descriptor settings directly:
``replace=True`` keyword, :func:`~repro.grb.mask.structure` /
:func:`~repro.grb.mask.complement` mask wrappers, and ``transpose_a`` /
``transpose_b`` keywords on matmul.  This module provides the bundled-object
form used by the C-style compatibility layer, including the named constants
from the spec (``DESC_RSC`` etc. as used in Sec. VI-B of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Descriptor",
    "DESC_DEFAULT",
    "DESC_R",
    "DESC_S",
    "DESC_C",
    "DESC_SC",
    "DESC_RS",
    "DESC_RC",
    "DESC_RSC",
    "DESC_T0",
    "DESC_T1",
    "DESC_LAZY",
]


@dataclass(frozen=True)
class Descriptor:
    """Bundle of operation modifiers.

    Attributes
    ----------
    replace:
        Clear output entries outside the mask after the write-back.
    mask_structural:
        Treat the mask structurally (pattern only).
    mask_complement:
        Complement the mask.
    transpose_a / transpose_b:
        Use the transpose of the first / second matrix operand.
    lazy:
        Non-blocking mode for this one call: record it into the
        expression DAG (:mod:`repro.grb.expr`) and return a ``Deferred``
        handle instead of executing — even outside a
        :func:`repro.grb.deferred` scope.  Materialisation happens at the
        output's next read boundary or an explicit ``.new()`` /
        ``evaluate()``.
    """

    replace: bool = False
    mask_structural: bool = False
    mask_complement: bool = False
    transpose_a: bool = False
    transpose_b: bool = False
    lazy: bool = False


DESC_DEFAULT = Descriptor()
DESC_R = Descriptor(replace=True)
DESC_S = Descriptor(mask_structural=True)
DESC_C = Descriptor(mask_complement=True)
DESC_SC = Descriptor(mask_structural=True, mask_complement=True)
DESC_RS = Descriptor(replace=True, mask_structural=True)
DESC_RC = Descriptor(replace=True, mask_complement=True)
DESC_RSC = Descriptor(replace=True, mask_structural=True, mask_complement=True)
DESC_T0 = Descriptor(transpose_a=True)
DESC_T1 = Descriptor(transpose_b=True)
#: Non-blocking mode for one call (see :mod:`repro.grb.expr`).
DESC_LAZY = Descriptor(lazy=True)
