"""Seeded, scoped fault injection.

The chaos suite needs to make real code paths fail *deterministically*:
the Nth kernel dispatch raises, a storage build sleeps 50 ms, a drain
worker sees a transient error on a seeded schedule.  This module is that
switchboard.  Three hook sites are compiled into the stack:

``"kernel"``
    :func:`repro.grb.engine.rules.dispatch` — every executed plan; info
    carries ``op`` (and ``rule`` once claimed is too late — the hook
    fires before claiming so injected faults model kernel failure, not
    chooser failure).
``"storage"``
    :func:`repro.grb.storage.policy.matrix_store_from_csr` — every
    matrix store build; info carries ``fmt``/``nrows``/``nvals``.
``"drain"``
    ``GraphService._run_batch`` — once per executed serve batch; info
    carries ``graph``/``queries``.
``"serve-kernel"``
    ``GraphService`` leaf kernel execution — once per kernel-level unit
    of serve work (a coalesced group or a singleton query); info carries
    ``graph``/``kernel``/``queries`` so a predicate can poison one
    specific query inside a batch.
``"pool-task"``
    ``repro.grb.pool`` worker task execution — once per sharded block a
    worker process runs; info carries ``kind`` (the task kind) and
    ``op``.  This site fires *inside the worker process*: injectors
    built from declarative pieces (:func:`match_info`, the stock
    exception classes) compile to picklable specs
    (:func:`compiled_specs`) that the pool ships to its workers, so a
    chaos scenario installed in the parent reaches true child-process
    execution — including hard death via :func:`crash`.

Each site costs one module-global bool read when no injector is
installed (``if faults.ACTIVE: faults.fire(...)``), preserving the ≤2%
no-fault overhead budget.

Injectors are *scoped*: install them with the :func:`installed` context
manager (or ``Injector.install()`` / ``.remove()``) and they disappear
deterministically at scope exit, so a failing test cannot leak faults
into its neighbours.  All randomness comes from ``random.Random(seed)``
instances owned by the injector — the same seed always yields the same
fault schedule, which is what makes chaos runs replayable.

Cookbook (see ``docs/RESILIENCE.md`` for more)::

    from repro.testing import faults

    # fail the 3rd mxv dispatch, once
    with faults.installed(faults.raise_on_nth(
            "kernel", 3, match=lambda info: info.get("op") == "mxv")):
        ...

    # 50ms latency on every serve batch
    with faults.installed(faults.latency("drain", 0.05)):
        ...

    # seeded random transient faults on 20% of kernel dispatches
    with faults.installed(faults.seeded_faults("kernel", seed=7, rate=0.2)):
        ...
"""

from __future__ import annotations

import os
import random
import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional

__all__ = [
    "ACTIVE", "SITES",
    "FaultInjected", "TransientFault", "Injector",
    "fire", "installed", "install", "remove", "clear",
    "raise_on_nth", "raise_when", "latency", "memory_pressure",
    "seeded_faults", "crash", "match_info",
    "compiled_specs", "install_specs",
]

#: The hook sites compiled into the stack (documentation + validation).
SITES = ("kernel", "storage", "drain", "serve-kernel", "pool-task")

#: Module-global fast guard, read *without* the lock at every hook site.
#: Only ever flipped under :data:`_lock`, and only True while at least
#: one injector is installed.
ACTIVE = False

_lock = threading.Lock()
_installed: List["Injector"] = []


class FaultInjected(RuntimeError):
    """An error raised by an installed fault injector.

    ``retryable`` is the classification the serve retry policy consults:
    the base class models a *permanent* fault (retries are pointless).
    """

    retryable = False

    def __init__(self, message: str = "injected fault", *, site: str = "?",
                 nth: Optional[int] = None):
        super().__init__(message)
        self.site = site
        self.nth = nth


class TransientFault(FaultInjected):
    """An injected fault that a retry may clear (models flaky I/O,
    allocation pressure, racing invalidation ...)."""

    retryable = True


class Injector:
    """One installed fault: a site, a match predicate, and an action.

    ``action(info)`` runs for every matching call — it may raise, sleep,
    allocate, or mutate its own state (counters are protected by the
    injector's lock, so concurrent drain workers see one global call
    ordering).
    """

    def __init__(self, site: str, action: Callable[[Dict], None], *,
                 match: Optional[Callable[[Dict], bool]] = None,
                 name: str = "injector"):
        if site not in SITES and site != "*":
            raise ValueError(f"unknown fault site {site!r}; one of {SITES}")
        self.site = site
        self.action = action
        self.match = match
        self.name = name
        self.spec = None         # picklable rebuild recipe, when one exists
        self.calls = 0           # matching calls seen (under self._lock)
        self.fired = 0           # actions that actually did something
        self._lock = threading.Lock()

    def __call__(self, site: str, info: Dict) -> None:
        if self.site != "*" and site != self.site:
            return
        if self.match is not None and not self.match(info):
            return
        with self._lock:
            self.calls += 1
            info = dict(info, _nth=self.calls)
        self.action(info)

    def install(self) -> "Injector":
        install(self)
        return self

    def remove(self) -> None:
        remove(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Injector({self.name!r}, site={self.site!r}, "
                f"calls={self.calls}, fired={self.fired})")


def install(injector: Injector) -> Injector:
    global ACTIVE
    with _lock:
        _installed.append(injector)
        ACTIVE = True
    return injector


def remove(injector: Injector) -> None:
    global ACTIVE
    with _lock:
        try:
            _installed.remove(injector)
        except ValueError:
            pass
        ACTIVE = bool(_installed)


def clear() -> None:
    """Remove every installed injector (test teardown safety net)."""
    global ACTIVE
    with _lock:
        _installed.clear()
        ACTIVE = False


@contextmanager
def installed(*injectors: Injector):
    """Scope-install ``injectors``; they are removed on exit no matter
    how the body ends."""
    for inj in injectors:
        install(inj)
    try:
        yield injectors if len(injectors) != 1 else injectors[0]
    finally:
        for inj in injectors:
            remove(inj)


def fire(site: str, **info) -> None:
    """Run every installed injector for ``site`` (hook-site entry point).

    Call sites guard with ``if faults.ACTIVE:`` so the disabled path is
    one global read; this function itself snapshots the injector list
    under the lock but runs actions outside it (actions sleep/raise).
    """
    with _lock:
        if not _installed:
            return
        snapshot = list(_installed)
    for inj in snapshot:
        inj(site, info)


# ---------------------------------------------------------------------------
# declarative pieces (picklable — they cross the process boundary)
# ---------------------------------------------------------------------------

_EXC_BY_NAME = {"FaultInjected": FaultInjected,
                "TransientFault": TransientFault}


def match_info(**expected) -> Callable[[Dict], bool]:
    """A declarative match predicate: every ``expected`` key equals.

    Unlike a hand-written closure, the returned predicate carries its own
    rebuild recipe (``.spec``), so injectors using it stay *compilable*
    (:func:`compiled_specs`) and propagate into pool worker processes.
    """
    def predicate(info: Dict) -> bool:
        return all(info.get(k) == v for k, v in expected.items())

    predicate.spec = dict(expected)
    return predicate


def _compile_spec(factory: str, site: str, match, exc=None,
                  **args) -> Optional[dict]:
    """The picklable rebuild recipe for a factory call, or ``None`` when
    any piece is an opaque closure / custom exception the other side
    could not reconstruct."""
    mspec = None
    if match is not None:
        mspec = getattr(match, "spec", None)
        if mspec is None:
            return None
    if exc is not None:
        name = getattr(exc, "__name__", None)
        if _EXC_BY_NAME.get(name) is not exc:
            return None
        args["exc"] = name
    return {"factory": factory, "site": site, "match": mspec, "args": args}


def compiled_specs() -> List[dict]:
    """Picklable specs of every installed injector that has one.

    The pool ships these to its worker processes (``install-faults``
    tasks) so a scenario installed in the parent also governs the
    ``"pool-task"`` site inside workers.  Injectors built around opaque
    closures have no spec and simply stay parent-side.
    """
    with _lock:
        return [dict(inj.spec) for inj in _installed if inj.spec is not None]


def install_specs(specs: List[dict]) -> List[Injector]:
    """Rebuild and install injectors from :func:`compiled_specs` output
    (the worker-process side of fault propagation)."""
    out = []
    for spec in specs:
        factory = _FACTORIES[spec["factory"]]
        args = dict(spec["args"])
        if "exc" in args:
            args["exc"] = _EXC_BY_NAME[args["exc"]]
        if spec.get("match") is not None:
            args["match"] = match_info(**spec["match"])
        out.append(install(factory(spec["site"], **args)))
    return out


# ---------------------------------------------------------------------------
# injector factories
# ---------------------------------------------------------------------------
def raise_on_nth(site: str, nth: int, *, exc=TransientFault,
                 match: Optional[Callable[[Dict], bool]] = None,
                 repeat: int = 1) -> Injector:
    """Raise on the ``nth`` matching call (1-based), then on the next
    ``repeat - 1`` matching calls too, then go quiet.

    ``exc`` is an exception class (instantiated with a descriptive
    message) or a ready exception instance.
    """
    inj: Injector

    def action(info: Dict) -> None:
        n = info["_nth"]
        if nth <= n < nth + repeat:
            inj.fired += 1
            raise _make_exc(exc, site, n)

    inj = Injector(site, action, match=match,
                   name=f"raise_on_nth({site}, {nth})")
    inj.spec = _compile_spec("raise_on_nth", site, match, exc,
                             nth=nth, repeat=repeat)
    return inj


def raise_when(site: str, predicate: Callable[[Dict], bool], *,
               exc=FaultInjected) -> Injector:
    """Raise on *every* call matching ``predicate`` — the poisoned-query
    primitive (the predicate inspects the info dict, e.g. the queries a
    serve kernel unit is about to answer)."""
    inj: Injector

    def action(info: Dict) -> None:
        inj.fired += 1
        raise _make_exc(exc, site, info["_nth"])

    inj = Injector(site, action, match=predicate,
                   name=f"raise_when({site})")
    return inj


def latency(site: str, seconds: float, *, jitter: float = 0.0,
            seed: int = 0,
            match: Optional[Callable[[Dict], bool]] = None) -> Injector:
    """Sleep ``seconds`` (plus seeded uniform jitter) on each matching
    call — the slow-kernel / slow-storage model."""
    rng = random.Random(seed)
    inj: Injector

    def action(info: Dict) -> None:
        inj.fired += 1
        time.sleep(seconds + (rng.uniform(0.0, jitter) if jitter else 0.0))

    inj = Injector(site, action, match=match,
                   name=f"latency({site}, {seconds}s)")
    inj.spec = _compile_spec("latency", site, match,
                             seconds=seconds, jitter=jitter, seed=seed)
    return inj


def memory_pressure(site: str, nbytes: int, *, hold: float = 0.0,
                    match: Optional[Callable[[Dict], bool]] = None
                    ) -> Injector:
    """Allocate (touch) ``nbytes`` on each matching call, optionally hold
    it for ``hold`` seconds, then release — a transient allocation spike
    that exercises store-footprint accounting and allocator behaviour
    without OOMing the process."""
    inj: Injector

    def action(info: Dict) -> None:
        inj.fired += 1
        ballast = bytearray(nbytes)
        ballast[::4096] = b"x" * len(ballast[::4096])   # touch the pages
        if hold:
            time.sleep(hold)
        del ballast

    inj = Injector(site, action, match=match,
                   name=f"memory_pressure({site}, {nbytes}B)")
    return inj


def seeded_faults(site: str, *, seed: int, rate: float,
                  exc=TransientFault,
                  match: Optional[Callable[[Dict], bool]] = None
                  ) -> Injector:
    """Raise on a seeded Bernoulli schedule: each matching call draws
    from ``random.Random(seed)`` and raises with probability ``rate``.

    The draw sequence is a pure function of the seed and the matching
    call order, so a chaos run replays exactly under the same seed.
    """
    rng = random.Random(seed)
    rng_lock = threading.Lock()
    inj: Injector

    def action(info: Dict) -> None:
        with rng_lock:
            hit = rng.random() < rate
        if hit:
            inj.fired += 1
            raise _make_exc(exc, site, info["_nth"])

    inj = Injector(site, action, match=match,
                   name=f"seeded_faults({site}, seed={seed}, rate={rate})")
    inj.spec = _compile_spec("seeded_faults", site, match, exc,
                             seed=seed, rate=rate)
    return inj


def crash(site: str, nth: int = 1, *,
          match: Optional[Callable[[Dict], bool]] = None,
          repeat: int = 1) -> Injector:
    """Kill the *process* on the ``nth`` matching call (``os._exit``) —
    the hard-death model for pool worker chaos.

    Unlike an exception this cannot be caught: the worker vanishes
    mid-task and the parent observes a closed pipe, exactly what a
    segfault or OOM kill looks like.  Only meaningful at sites that run
    inside expendable worker processes (``"pool-task"``); installing it
    parent-side without propagation would kill the test runner.
    """
    inj: Injector

    def action(info: Dict) -> None:
        n = info["_nth"]
        if nth <= n < nth + repeat:
            inj.fired += 1
            os._exit(87)

    inj = Injector(site, action, match=match, name=f"crash({site}, {nth})")
    inj.spec = _compile_spec("crash", site, match, nth=nth, repeat=repeat)
    return inj


#: Factory registry for :func:`install_specs` (name -> callable).
_FACTORIES: Dict[str, Callable] = {
    "raise_on_nth": raise_on_nth,
    "latency": latency,
    "seeded_faults": seeded_faults,
    "crash": crash,
}


def _make_exc(exc, site: str, nth: int) -> BaseException:
    if isinstance(exc, BaseException):
        return exc
    if isinstance(exc, type) and issubclass(exc, FaultInjected):
        return exc(f"injected fault at {site!r} (call #{nth})",
                   site=site, nth=nth)
    return exc(f"injected fault at {site!r} (call #{nth})")
