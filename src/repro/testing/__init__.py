"""``repro.testing`` — deterministic test harnesses for the stack.

Currently one member: :mod:`repro.testing.faults`, the seeded
fault-injection harness the serve-layer chaos suite drives.  Production
code never imports this package except for the near-zero-cost
``faults.ACTIVE`` guard at the injection sites.
"""

from . import faults
from .faults import (
    FaultInjected,
    TransientFault,
    Injector,
    installed,
    latency,
    memory_pressure,
    raise_on_nth,
    raise_when,
    seeded_faults,
)

__all__ = [
    "faults",
    "FaultInjected", "TransientFault", "Injector",
    "installed", "latency", "memory_pressure",
    "raise_on_nth", "raise_when", "seeded_faults",
]
