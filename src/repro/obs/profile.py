"""Deep kernel profiling: wall + CPU time, nnz, chooser mispredictions.

Two cost tiers, mirroring the telemetry design:

* **Off** (default): every :func:`profiled` kernel pays one ``ContextVar``
  read; nothing else happens.
* **On** (inside a :func:`profiling` block, context-local like the
  telemetry hook): kernel wrappers measure wall (``perf_counter``) and CPU
  (``process_time``) time plus input/output nnz and bytes, rule dispatches
  report per-rule timings, and decision events stream in through
  :func:`on_event` — chooser decisions carrying exact work counts are
  re-judged against the cost model, so the aggregate tables report a
  **misprediction rate** per rule, not just call counts.

While profiling is active, ``grb.telemetry.active()`` reports True even
with no hook installed: the decision events (and the exact-flop fields
they gate) are materialised for the profiler sink instead.

Aggregation is process-global and locked: concurrent profiled requests
merge into one set of tables, read via :func:`kernel_table`,
:func:`rule_table` and :func:`decision_table` (or the combined
``obs.report()``).

This module must stay importable before :mod:`repro.grb` exists —
``grb.telemetry`` imports it — so the cost model is imported lazily,
inside the one function that needs it.
"""

from __future__ import annotations

import functools
import threading
import time
import tracemalloc
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Optional

from . import trace as _trace

__all__ = ["deep_active", "memory_active", "profiling", "profiled",
           "record_kernel", "record_rule", "on_event", "kernel_table",
           "rule_table", "decision_table", "reset"]

_deep_var: ContextVar[bool] = ContextVar("repro_obs_deep", default=False)
_mem_var: ContextVar[bool] = ContextVar("repro_obs_deep_mem", default=False)


def deep_active() -> bool:
    """Whether deep profiling is on in this context (kernel wrappers and
    expensive-field computation gate on this)."""
    return _deep_var.get()


def memory_active() -> bool:
    """Whether the tracemalloc memory tier is armed in this context."""
    return _mem_var.get()


@contextmanager
def profiling(memory: bool = False):
    """Enable deep profiling for the block (context-local).

    ``memory=True`` additionally arms :mod:`tracemalloc` for the block:
    every profiled kernel then records its allocation delta and peak
    working set (the ``mem_alloc`` / ``mem_peak`` columns of
    :func:`kernel_table`) and emits a ``memory:<kernel>`` instant when a
    trace collector is active.  Tracemalloc costs ~2-4× on allocation-
    heavy code, which is why it is a separate opt-in inside an opt-in;
    it is started only if not already tracing and stopped on exit only
    if this block started it.
    """
    token = _deep_var.set(True)
    mem_token = None
    started_tracing = False
    if memory:
        mem_token = _mem_var.set(True)
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            started_tracing = True
    try:
        yield
    finally:
        _deep_var.reset(token)
        if mem_token is not None:
            _mem_var.reset(mem_token)
            if started_tracing:
                tracemalloc.stop()


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------

class _Stat:
    __slots__ = ("calls", "wall", "cpu", "nnz_in", "nnz_out", "bytes",
                 "mem_alloc", "mem_peak")

    def __init__(self):
        self.calls = 0
        self.wall = 0.0
        self.cpu = 0.0
        self.nnz_in = 0
        self.nnz_out = 0
        self.bytes = 0
        self.mem_alloc = 0      # summed allocation delta (may be negative)
        self.mem_peak = 0       # max per-call peak working set

    def add(self, wall, cpu, nnz_in, nnz_out, nbytes,
            mem_alloc=0, mem_peak=0):
        self.calls += 1
        self.wall += wall
        self.cpu += cpu
        self.nnz_in += nnz_in
        self.nnz_out += nnz_out
        self.bytes += nbytes
        self.mem_alloc += mem_alloc
        if mem_peak > self.mem_peak:
            self.mem_peak = mem_peak

    def row(self) -> dict:
        return {"calls": self.calls, "wall_s": self.wall, "cpu_s": self.cpu,
                "nnz_in": self.nnz_in, "nnz_out": self.nnz_out,
                "bytes": self.bytes, "mem_alloc": self.mem_alloc,
                "mem_peak": self.mem_peak}


class _Decision:
    __slots__ = ("calls", "judged", "mispredicted")

    def __init__(self):
        self.calls = 0
        self.judged = 0
        self.mispredicted = 0

    def row(self) -> dict:
        rate = self.mispredicted / self.judged if self.judged else 0.0
        return {"calls": self.calls, "judged": self.judged,
                "mispredicted": self.mispredicted,
                "misprediction_rate": rate}


_lock = threading.Lock()
_kernels: Dict[str, _Stat] = {}
_rules: Dict[tuple, _Stat] = {}
_decisions: Dict[tuple, _Decision] = {}


def record_kernel(name: str, wall: float, cpu: float, nnz_in: int = 0,
                  nnz_out: int = 0, nbytes: int = 0, mem_alloc: int = 0,
                  mem_peak: int = 0) -> None:
    with _lock:
        stat = _kernels.get(name)
        if stat is None:
            stat = _kernels[name] = _Stat()
        stat.add(wall, cpu, nnz_in, nnz_out, nbytes, mem_alloc, mem_peak)


def record_rule(op: str, rule: str, wall: float, cpu: float,
                nnz_in: int = 0, nnz_out: int = 0) -> None:
    with _lock:
        stat = _rules.get((op, rule))
        if stat is None:
            stat = _rules[(op, rule)] = _Stat()
        stat.add(wall, cpu, nnz_in, nnz_out, 0)


def kernel_table() -> Dict[str, dict]:
    with _lock:
        return {k: s.row() for k, s in sorted(_kernels.items())}


def rule_table() -> Dict[str, dict]:
    with _lock:
        return {f"{op}/{rule}": s.row()
                for (op, rule), s in sorted(_rules.items())}


def decision_table() -> Dict[str, dict]:
    with _lock:
        return {f"{op}/{rule}": d.row()
                for (op, rule), d in sorted(_decisions.items())}


def reset() -> None:
    with _lock:
        _kernels.clear()
        _rules.clear()
        _decisions.clear()


# ---------------------------------------------------------------------------
# telemetry bridge
# ---------------------------------------------------------------------------

def on_event(event: dict) -> None:
    """Fold one ``grb.telemetry`` decision event into the decision table.

    ``mxm`` chooser events carrying exact work counts are re-judged: the
    cost model is re-run on the recorded counts, and a decision whose
    chosen method differs from the judged ideal counts as a misprediction
    (the pattern ``benchmarks/bench_ablation_tc_methods.py`` established,
    running continuously instead of per-benchmark).
    """
    rule = event.get("rule")
    if rule is None:
        return
    op = event.get("op", "?")
    verdict: Optional[bool] = None
    if op == "mxm" and "dot_probes" in event and "expand_flops" in event:
        from ..grb.engine import cost  # lazy: obs must import before grb
        ideal = cost.choose_masked_method(
            event["dot_probes"], event["expand_flops"],
            scipy_path=event.get("scipy_path", False),
            mask_nvals=event.get("mask_nvals", 0),
            est_out_nnz=event.get("est_out_nnz", 0.0))
        verdict = event.get("method") != ideal
    with _lock:
        d = _decisions.get((op, rule))
        if d is None:
            d = _decisions[(op, rule)] = _Decision()
        d.calls += 1
        if verdict is not None:
            d.judged += 1
            if verdict:
                d.mispredicted += 1


# ---------------------------------------------------------------------------
# kernel wrapper
# ---------------------------------------------------------------------------

def _nnz_of(args) -> int:
    total = 0
    for a in args:
        size = getattr(a, "size", None)
        if size is not None and getattr(a, "ndim", None) is not None:
            total += int(size)
    return total


def _nbytes_of(args) -> int:
    total = 0
    for a in args:
        nb = getattr(a, "nbytes", 0)
        if callable(nb):     # a storage object (nbytes is a method there)
            try:
                nb = nb()
            except Exception:
                nb = 0
        total += int(nb)
    return total


def _out_nnz(out) -> int:
    if isinstance(out, tuple):
        return _nnz_of(out)
    size = getattr(out, "size", None)
    if size is not None and getattr(out, "ndim", None) is not None:
        return int(size)
    return 0


def profiled(name: str):
    """Decorate a ``_kernels`` primitive with deep-profiling measurement.

    Inactive cost is one ``ContextVar`` read; active cost adds two clock
    pairs and the nnz/bytes scans of the positional array arguments —
    exact per-call input/output work, gated exactly like telemetry's
    expensive event fields.
    """
    def deco(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _deep_var.get():
                return fn(*args, **kwargs)
            nnz_in = _nnz_of(args)
            nbytes = _nbytes_of(args)
            mem = _mem_var.get() and tracemalloc.is_tracing()
            if mem:
                tracemalloc.reset_peak()
                cur0 = tracemalloc.get_traced_memory()[0]
            cpu0 = time.process_time()
            t0 = time.perf_counter()
            out = fn(*args, **kwargs)
            wall = time.perf_counter() - t0
            cpu = time.process_time() - cpu0
            mem_alloc = mem_peak = 0
            if mem:
                cur1, peak1 = tracemalloc.get_traced_memory()
                mem_alloc = cur1 - cur0
                mem_peak = max(0, peak1 - cur0)
                if _trace.current_sink() is not None:
                    _trace.instant(f"memory:{name}", "memory",
                                   alloc=mem_alloc, peak=mem_peak)
            record_kernel(name, wall, cpu, nnz_in, _out_nnz(out), nbytes,
                          mem_alloc, mem_peak)
            return out
        wrapper.__wrapped__ = fn
        return wrapper
    return deco
