"""Exposition formats for the metrics registry.

Two shapes, no client-library dependency:

* :func:`prometheus_text` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, one sample line per labelled child,
  cumulative ``_bucket``/``_sum``/``_count`` series for histograms).
* :func:`json_snapshot` — a plain-dict snapshot (the benchmark harness
  writes one per session when ``REPRO_OBS_ARTIFACT`` is set).

Trace export (Chrome trace-event JSON, JSONL) lives on
:class:`repro.obs.trace.TraceCollector` itself — a trace belongs to one
collector, not to the global registry.
"""

from __future__ import annotations

from typing import Optional

from . import memory as _memory
from . import metrics as _metrics
from . import profile as _profile

__all__ = ["prometheus_text", "json_snapshot"]


def _escape_label_value(v: str) -> str:
    # exposition format: backslash, double-quote and newline are escaped
    return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(s: str) -> str:
    # HELP text escapes backslash and newline (quotes are legal verbatim)
    return s.replace("\\", "\\\\").replace("\n", "\\n")


def _label_str(labelnames, labelvalues) -> str:
    if not labelnames:
        return ""
    pairs = ", ".join(f'{k}="{_escape_label_value(v)}"'
                      for k, v in zip(labelnames, labelvalues))
    return "{" + pairs + "}"


def _merge_labels(base: str, extra: str) -> str:
    if not base:
        return "{" + extra + "}"
    return base[:-1] + ", " + extra + "}"


def prometheus_text(registry: Optional[_metrics.Registry] = None) -> str:
    """The registry in Prometheus text exposition format."""
    reg = registry if registry is not None else _metrics.REGISTRY
    lines = []
    for metric in reg.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for labelvalues, child in metric.samples():
            labels = _label_str(metric.labelnames, labelvalues)
            if metric.kind == "histogram":
                snap = child.snapshot()
                cum = 0
                for bound, count in zip(snap["buckets"], snap["counts"]):
                    cum += count
                    le = 'le="%s"' % bound
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_merge_labels(labels, le)} {cum}")
                cum += snap["counts"][-1]
                le = 'le="+Inf"'
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_merge_labels(labels, le)} {cum}")
                lines.append(f"{metric.name}_sum{labels} {snap['sum']}")
                lines.append(f"{metric.name}_count{labels} {snap['count']}")
            else:
                lines.append(f"{metric.name}{labels} {child.value}")
    return "\n".join(lines) + "\n"


def json_snapshot(registry: Optional[_metrics.Registry] = None) -> dict:
    """Everything observable, as one JSON-serialisable dict.

    Includes the metric registry, the deep-profiling tables (empty unless
    a :func:`repro.obs.profile.profiling` block ran), and the plan cache
    counters when the engine is importable.
    """
    reg = registry if registry is not None else _metrics.REGISTRY
    out = {"metrics": {}}
    for metric in reg.collect():
        samples = []
        for labelvalues, child in metric.samples():
            labels = dict(zip(metric.labelnames, labelvalues))
            if metric.kind == "histogram":
                samples.append({"labels": labels, **child.snapshot()})
            else:
                samples.append({"labels": labels, "value": child.value})
        out["metrics"][metric.name] = {"kind": metric.kind,
                                       "help": metric.help,
                                       "samples": samples}
    out["kernels"] = _profile.kernel_table()
    out["rules"] = _profile.rule_table()
    out["decisions"] = _profile.decision_table()
    out["memory"] = {"stores": _memory.snapshot(),
                     "live_owners": _memory.live_count()}
    try:  # the engine may not be imported (obs is standalone)
        import sys
        engine = sys.modules.get("repro.grb.engine")
        if engine is not None:
            pc = engine.plancache.stats()
            out["plan_cache"] = {
                "hits": pc.hits, "misses": pc.misses,
                "invalidations": pc.invalidations, "entries": pc.entries,
                "feed_bytes": pc.feed_bytes, "hit_rate": pc.hit_rate}
    except Exception:
        pass
    return out
