"""``obs.report()`` — one pretty-printed summary of everything observable.

Sections, each omitted when empty:

* non-zero counters and gauges (grouped by metric, one line per child),
* histogram summaries (count / mean / per-bucket distribution),
* the plan cache counters (when the engine has been imported),
* deep-profiling kernel / rule / decision tables (when a
  :func:`repro.obs.profile.profiling` block ran).

Plain text on purpose — this is the thing a benchmark session or a REPL
prints, not an API (machine consumers use
:func:`repro.obs.export.json_snapshot`).
"""

from __future__ import annotations

import sys
from typing import List, Optional

from . import memory as _memory
from . import metrics as _metrics
from . import profile as _profile

__all__ = ["report"]


def _fmt_labels(names, values) -> str:
    if not names:
        return ""
    return "{" + ", ".join(f"{k}={v}" for k, v in zip(names, values)) + "}"


def _metric_lines(reg) -> List[str]:
    lines: List[str] = []
    for metric in reg.collect():
        rows = []
        for labelvalues, child in metric.samples():
            tag = _fmt_labels(metric.labelnames, labelvalues)
            if metric.kind == "histogram":
                snap = child.snapshot()
                if not snap["count"]:
                    continue
                mean = snap["sum"] / snap["count"]
                rows.append(f"  {metric.name}{tag}  count={snap['count']}"
                            f"  mean={mean:.6g}")
            elif child.value:
                rows.append(f"  {metric.name}{tag}  {child.value}")
        lines.extend(rows)
    return lines


def _table_lines(title: str, table: dict) -> List[str]:
    if not table:
        return []
    lines = [title]
    for name, row in table.items():
        cells = "  ".join(f"{k}={v:.6g}" if isinstance(v, float)
                          else f"{k}={v}" for k, v in row.items())
        lines.append(f"  {name}  {cells}")
    return lines


def report(*, registry: Optional[_metrics.Registry] = None,
           file=None) -> str:
    """Build (and print, unless ``file=False``) the summary text."""
    reg = registry if registry is not None else _metrics.REGISTRY
    lines: List[str] = ["== repro.obs report =="]

    metric_lines = _metric_lines(reg)
    if metric_lines:
        lines.append("-- metrics --")
        lines.extend(metric_lines)

    engine = sys.modules.get("repro.grb.engine")
    if engine is not None:
        pc = engine.plancache.stats()
        if pc.hits or pc.misses:
            lines.append("-- plan cache --")
            lines.append(f"  hits={pc.hits}  misses={pc.misses}"
                         f"  invalidations={pc.invalidations}"
                         f"  entries={pc.entries}"
                         f"  hit_rate={pc.hit_rate:.3f}")

    mem = {f: d for f, d in _memory.snapshot().items()
           if d["bytes"] or d["count"]}
    if mem:
        lines.append("-- memory (store footprint) --")
        for fmt, d in sorted(mem.items()):
            lines.append(f"  {fmt}  bytes={d['bytes']}  count={d['count']}")
        for row in _memory.top_stores(5):
            shape = "x".join(str(s) for s in row["shape"])
            graph = f"  graph={row['graph']}" if row["graph"] else ""
            lines.append(
                f"  top: {row['kind']} {shape} {row['format']}"
                f"  nvals={row['nvals']}  bytes={row['nbytes']}"
                f"  cache={row['cache_nbytes']}{graph}")
        audit = [r for r in _memory.format_audit() if r["savings_bytes"]]
        for row in audit[:5]:
            shape = "x".join(str(s) for s in row["shape"])
            lines.append(
                f"  audit: {row['kind']} {shape} {row['format']}"
                f" -> {row['best']} would save {row['savings_bytes']}B")

    lines.extend(_table_lines("-- kernels (deep profiling) --",
                              _profile.kernel_table()))
    lines.extend(_table_lines("-- rules (deep profiling) --",
                              _profile.rule_table()))
    lines.extend(_table_lines("-- decisions --",
                              _profile.decision_table()))

    text = "\n".join(lines)
    if file is not False:
        print(text, file=file)
    return text
