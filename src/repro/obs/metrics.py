"""Always-on metrics: counters, gauges, and fixed-bucket histograms.

The registry is process-global and deliberately tiny: a metric is a name,
a help string, and a dict of label-tuple → child.  Children are cached at
the call site (``_DISPATCHES = metrics.counter(...)`` at import,
``_DISPATCHES.labels(op, rule).inc()`` on the hot path), so a bump is one
dict probe plus one locked integer add — cheap enough to leave on in
production paths.  Hot call sites additionally guard on the module-level
:data:`ENABLED` kill switch, which the overhead benchmark
(``benchmarks/bench_obs_overhead.py``) uses to measure the instrumentation
floor.

No external client library: exposition formats live in
:mod:`repro.obs.export` (Prometheus text, JSON snapshot) and read the
registry through :func:`collect`.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ENABLED", "Counter", "Gauge", "Histogram", "Registry",
           "REGISTRY", "counter", "gauge", "histogram", "collect", "reset",
           "DEFAULT_BUCKETS"]

#: Global kill switch: child ``inc``/``set``/``observe`` become no-ops when
#: False.  Call sites *also* guard on this before computing label values —
#: the benchmark's "off" leg then measures pure guard cost.
ENABLED = True

#: Default histogram buckets, tuned for kernel/request latencies in seconds.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


def _normalise_buckets(buckets) -> tuple:
    """Validated boundaries: non-empty, finite, sorted, duplicate-free.

    Values are kept as given (not coerced to float) so the Prometheus
    ``le`` label strings stay exactly what the call site wrote — ``le="1"``
    for an integer batch-size bucket, ``le="1.0"`` for a latency one.
    """
    vals = tuple(buckets)
    if not vals:
        raise ValueError("histogram buckets must be non-empty "
                         "(the +Inf bucket is implicit)")
    floats = []
    for b in vals:
        f = float(b)
        if not math.isfinite(f):
            raise ValueError(
                f"histogram bucket {b!r} must be finite (+Inf is implicit)")
        floats.append(f)
    order = sorted(range(len(vals)), key=floats.__getitem__)
    out, last = [], None
    for i in order:
        if floats[i] != last:
            out.append(vals[i])
            last = floats[i]
    return tuple(out)


class _CounterChild:
    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if not ENABLED:
            return
        with self._lock:
            self.value += amount


class _GaugeChild:
    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        if not ENABLED:
            return
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        if not ENABLED:
            return
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class _HistogramChild:
    __slots__ = ("_lock", "buckets", "counts", "total", "sum")

    def __init__(self, lock: threading.Lock, buckets: Sequence[float]):
        self._lock = lock
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # last = +Inf overflow
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        if not ENABLED:
            return
        i = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[i] += 1
            self.total += 1
            self.sum += value

    def snapshot(self) -> dict:
        with self._lock:
            return {"buckets": self.buckets, "counts": list(self.counts),
                    "count": self.total, "sum": self.sum}


class Metric:
    """Base: a named family of labelled children sharing one lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: Dict[tuple, object] = {}
        if not self.labelnames:
            self._children[()] = self._new_child()

    def _new_child(self):
        raise NotImplementedError

    def labels(self, *values):
        """The child for one label-value tuple (created on first use)."""
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is not None:
            return child
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"{self.name}: expected {len(self.labelnames)} label "
                f"values {self.labelnames}, got {values!r}")
        with self._lock:
            return self._children.setdefault(key, self._new_child())

    def samples(self) -> List[tuple]:
        """``[(labelvalues, child), ...]`` — stable snapshot for export."""
        with self._lock:
            return list(self._children.items())

    def reset(self) -> None:
        with self._lock:
            for key in list(self._children):
                self._children[key] = self._new_child()


class Counter(Metric):
    kind = "counter"

    def _new_child(self):
        return _CounterChild(self._lock)

    def inc(self, amount: int = 1) -> None:
        self.labels().inc(amount)

    @property
    def value(self):
        return self.labels().value


class Gauge(Metric):
    kind = "gauge"

    def _new_child(self):
        return _GaugeChild(self._lock)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    @property
    def value(self):
        return self.labels().value


class Histogram(Metric):
    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Optional[Sequence[float]] = None):
        self.buckets = _normalise_buckets(
            DEFAULT_BUCKETS if buckets is None else buckets)
        super().__init__(name, help, labelnames)

    def _new_child(self):
        return _HistogramChild(self._lock, self.buckets)

    def observe(self, value: float) -> None:
        self.labels().observe(value)


class Registry:
    """All registered metrics, by name; get-or-create with kind checking."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls, name, help, labelnames, **kw) -> Metric:
        with self._lock:
            m = self._metrics.get(name)
            if m is not None:
                if not isinstance(m, cls) or m.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{m.kind}{m.labelnames}")
                return m
            m = cls(name, help, labelnames, **kw)
            self._metrics[name] = m
            return m

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        """Get-or-create; ``buckets=None`` accepts whatever boundaries an
        existing registration chose, while explicit boundaries must match
        it exactly (two call sites silently disagreeing on buckets would
        corrupt the cumulative ``le`` series)."""
        m = self._get_or_create(Histogram, name, help, labels,
                                buckets=buckets)
        if buckets is not None:
            want = _normalise_buckets(buckets)
            if tuple(map(float, want)) != tuple(map(float, m.buckets)):
                raise ValueError(
                    f"metric {name!r} already registered with buckets "
                    f"{m.buckets}, conflicting with {want}")
        return m

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def collect(self) -> List[Metric]:
        with self._lock:
            return list(self._metrics.values())

    def reset(self) -> None:
        """Zero every metric's children (registrations survive)."""
        for m in self.collect():
            m.reset()


#: The default process-global registry every ``repro`` call site uses.
REGISTRY = Registry()


def counter(name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
    return REGISTRY.counter(name, help, labels)


def gauge(name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
    return REGISTRY.gauge(name, help, labels)


def histogram(name: str, help: str = "", labels: Sequence[str] = (),
              buckets: Optional[Sequence[float]] = None) -> Histogram:
    return REGISTRY.histogram(name, help, labels, buckets)


def collect() -> List[Metric]:
    return REGISTRY.collect()


def reset() -> None:
    REGISTRY.reset()
