"""Telemetry HTTP exporter — the scrape surface a deployment needs.

A stdlib ``http.server`` listener on a daemon thread serving four routes:

* ``/metrics`` — the registry in Prometheus text exposition format
  (``text/plain; version=0.0.4``) for a Prometheus scraper;
* ``/healthz`` — JSON liveness; HTTP 200 while healthy, 503 when the
  health callable reports degradation (the serve layer wires drain-pool
  liveness and a queue-depth threshold here);
* ``/stats`` — a JSON snapshot (by default :func:`repro.obs.json_snapshot`;
  the serve layer substitutes ``GraphService.stats()``);
* ``/trace`` — the most recent completed span trees from a
  :class:`TraceRing`, as Chrome trace-event JSON (load in Perfetto).

Cost model: zero on every engine/serve hot path — the exporter only
*reads* (the registry under its own locks, the ring under its) when a
scraper asks.  The ring's per-request cost is one bounded deque append of
an already-collected record list.

No framework dependency; :class:`ThreadingHTTPServer` with daemon threads
means a hung scraper can never wedge shutdown.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, List, Optional, Tuple

from . import export as _export
from . import metrics as _metrics
from . import trace as _trace

__all__ = ["TraceRing", "TelemetryServer", "start_server"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class TraceRing:
    """A bounded ring of recently completed traces (record lists).

    Producers push the raw record list of one finished
    :class:`~repro.obs.trace.TraceCollector`; the oldest trace falls off
    when ``capacity`` is exceeded.  Thread-safe; export merges every
    retained trace into one Chrome trace-event object.
    """

    def __init__(self, capacity: int = 64):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._traces: deque = deque(maxlen=self.capacity)

    def push(self, records: List[dict]) -> None:
        if not records:
            return
        with self._lock:
            self._traces.append(list(records))

    def traces(self) -> List[List[dict]]:
        with self._lock:
            return [list(t) for t in self._traces]

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def to_chrome_trace(self) -> dict:
        """All retained traces merged into one Chrome trace-event object."""
        coll = _trace.TraceCollector()
        for records in self.traces():
            for r in records:
                coll.add(r)
        return coll.to_chrome_trace()


class _Handler(BaseHTTPRequestHandler):
    # the server instance carries the data sources (set by start_server)
    server: "TelemetryServer"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass   # scrapes must not spam the process's stderr

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload) -> None:
        body = json.dumps(payload, default=str).encode("utf-8")
        self._send(status, "application/json", body)

    def do_GET(self):  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/metrics":
                text = _export.prometheus_text(self.server.registry)
                self._send(200, PROMETHEUS_CONTENT_TYPE,
                           text.encode("utf-8"))
            elif path == "/healthz":
                ok, payload = self.server.healthz()
                self._send_json(200 if ok else 503, payload)
            elif path == "/stats":
                self._send_json(200, self.server.stats())
            elif path == "/trace":
                ring = self.server.trace_ring
                payload = (ring.to_chrome_trace() if ring is not None
                           else {"traceEvents": [],
                                 "displayTimeUnit": "ms"})
                self._send_json(200, payload)
            elif path == "/":
                self._send_json(200, {"routes": ["/metrics", "/healthz",
                                                 "/stats", "/trace"]})
            else:
                self._send_json(404, {"error": f"no route {path!r}"})
        except BrokenPipeError:   # scraper hung up mid-response
            pass
        except Exception as exc:  # never let one bad snapshot kill the server
            try:
                self._send_json(500, {"error": repr(exc)})
            except Exception:
                pass


def _default_healthz() -> Tuple[bool, dict]:
    return True, {"status": "ok"}


class TelemetryServer(ThreadingHTTPServer):
    """The exporter; build via :func:`start_server`."""

    daemon_threads = True

    def __init__(self, addr, registry=None, healthz=None, stats=None,
                 trace_ring: Optional[TraceRing] = None):
        super().__init__(addr, _Handler)
        self.registry = registry if registry is not None else _metrics.REGISTRY
        self.healthz: Callable[[], Tuple[bool, dict]] = \
            healthz if healthz is not None else _default_healthz
        self.stats: Callable[[], dict] = \
            stats if stats is not None else _export.json_snapshot
        self.trace_ring = trace_ring
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"

    def stop(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


def start_server(host: str = "127.0.0.1", port: int = 0, *,
                 registry=None, healthz=None, stats=None,
                 trace_ring: Optional[TraceRing] = None) -> TelemetryServer:
    """Start the exporter on a daemon thread and return the live server.

    ``port=0`` binds an ephemeral port (read it back from ``server.port``).
    ``healthz`` returns ``(ok, payload)``; ``stats`` returns a
    JSON-serialisable dict; both default to obs-level sources when the
    caller (e.g. :meth:`repro.serve.service.GraphService.serve_telemetry`)
    doesn't supply richer ones.
    """
    server = TelemetryServer((host, port), registry=registry,
                             healthz=healthz, stats=stats,
                             trace_ring=trace_ring)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-obs-telemetry", daemon=True)
    server._thread = thread
    thread.start()
    return server
