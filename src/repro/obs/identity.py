"""Operand-identity labels: mapping plan signatures back to graph names.

The plan cache keys operands by their lineage/uid signatures — opaque
tuples like ``("M", 17)`` or ``("tril", ("pattern", ("M", 17)), -1)``.
For attribution ("which graph's plans are being invalidated?") the serve
layer registers each graph's adjacency signature here at ``register()``
time; :func:`find` then recovers the label from any nested shape tuple by
walking it for a registered leaf.

Process-global like the plan cache itself; label registration is an
explicit, cheap opt-in (one dict write per registered graph).
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

__all__ = ["register", "find", "clear"]

_lock = threading.Lock()
_labels: Dict[tuple, str] = {}


def register(ident, label: str) -> None:
    """Bind an operand identity tuple (e.g. ``graph.A._plan_sig()[0]``)
    to a human-readable label."""
    if not isinstance(ident, tuple):
        return
    with _lock:
        _labels[ident] = str(label)


def find(obj) -> Optional[str]:
    """The label of the first registered identity nested inside ``obj``.

    Walks tuples/lists depth-first: derived-operand lineage idents contain
    their parents' idents, so a plan shaped from ``A.pattern().tril(-1)``
    still resolves to ``A``'s registered graph.
    """
    if not _labels:
        return None
    return _find(obj)


def _find(obj) -> Optional[str]:
    if isinstance(obj, tuple):
        hit = _labels.get(obj)
        if hit is not None:
            return hit
    if isinstance(obj, (tuple, list)):
        for item in obj:
            hit = _find(item)
            if hit is not None:
                return hit
    return None


def clear() -> None:
    with _lock:
        _labels.clear()
