"""Store-footprint accounting: always-on byte gauges per storage format.

Every :class:`~repro.grb.matrix.Matrix` / :class:`~repro.grb.vector.Vector`
reports its store's authoritative ``nbytes()`` here at the same mutation
boundaries the auto-format policy hooks (``_set_from_keys`` /
``_set_sparse`` / ``set_format`` / ``clear`` / ``dup`` and the CSR array
setters).  The aggregate lands in two labelled gauges:

* ``grb_store_bytes{format}`` — authoritative bytes of live stores, and
* ``grb_store_count{format}`` — number of live stores,

maintained *by delta*: each owner is tracked in a keyed record, a
``weakref.finalize`` subtracts its contribution when the owner dies, so
the gauges are exact at every instant without ever walking the heap.

Cost model: one ``nbytes()`` call (a handful of attribute reads) per
mutation boundary — mutation boundaries rebuild whole arrays, so the
accounting is noise next to the work it measures.  Call sites gate on
``metrics.ENABLED`` like every other always-on bump; record *removal*
deliberately bypasses the kill switch so a disable/enable window can only
under-count, never leak (``resync()`` restores exactness from the live
records, and ``obs.reset()`` calls it).

The opt-in deep tier lives in :mod:`repro.obs.profile`
(``profiling(memory=True)`` arms ``tracemalloc``); this module also feeds
the ``obs.report()`` memory section via :func:`top_stores` (per-object
byte attribution, graph labels from :mod:`repro.obs.identity`) and
:func:`format_audit` (estimated footprint of every candidate format — the
first audit the auto-format policy has ever had).
"""

from __future__ import annotations

import threading
import weakref
from collections import deque
from typing import Dict, List, Optional

import numpy as np

from . import identity as _identity
from . import metrics as _metrics

__all__ = ["account", "snapshot", "top_stores", "format_audit", "resync",
           "live_count", "STORE_BYTES", "STORE_COUNT"]

STORE_BYTES = _metrics.gauge(
    "grb_store_bytes",
    "Authoritative bytes held by live Matrix/Vector stores",
    labels=("format",))
STORE_COUNT = _metrics.gauge(
    "grb_store_count",
    "Number of live Matrix/Vector stores",
    labels=("format",))


class _Record:
    __slots__ = ("fmt", "nbytes", "ref")

    def __init__(self, fmt: str, nbytes: int, ref):
        self.fmt = fmt
        self.nbytes = nbytes
        self.ref = ref


_lock = threading.Lock()
_live: Dict[int, _Record] = {}
#: Keys of finalized owners awaiting retirement.  ``_drop`` runs inside
#: garbage collection — which can trigger at ANY allocation, including on
#: a thread currently holding ``_lock`` or a metric lock — so the
#: finalizer itself must be lock-free (deque.append is atomic).  The
#: queue drains at the next accounting touchpoint.
_dead: deque = deque()


def _drop(key: int) -> None:
    _dead.append(key)


def _bump(metric, fmt: str, amount) -> None:
    # Deliberately bypasses metrics.ENABLED: these deltas keep each gauge
    # equal to the sum over tracked records, and a dead owner's drop must
    # land even while the kill switch is off or the gauge would leak.
    child = metric.labels(fmt)
    with child._lock:
        child.value += amount


def _flush_dead() -> None:
    """Retire finalized owners' contributions (never called from GC)."""
    while True:
        try:
            key = _dead.popleft()
        except IndexError:
            return
        with _lock:
            rec = _live.pop(key, None)
            if rec is not None:
                _bump(STORE_BYTES, rec.fmt, -rec.nbytes)
                _bump(STORE_COUNT, rec.fmt, -1)


def account(owner, store) -> None:
    """Fold ``owner``'s current store into the footprint gauges.

    Called by Matrix/Vector at every mutation boundary (the call site
    guards on ``metrics.ENABLED``; this re-check makes direct calls safe).
    First sight of an owner registers a finalizer that retires its
    contribution at garbage collection.
    """
    if not _metrics.ENABLED:
        return
    _flush_dead()
    fmt = store.fmt
    nbytes = int(store.nbytes())
    key = id(owner)
    with _lock:
        rec = _live.get(key)
        if rec is None:
            _live[key] = _Record(fmt, nbytes, weakref.ref(owner))
            weakref.finalize(owner, _drop, key)
            _bump(STORE_BYTES, fmt, nbytes)
            _bump(STORE_COUNT, fmt, 1)
        elif fmt == rec.fmt:
            if nbytes != rec.nbytes:
                _bump(STORE_BYTES, fmt, nbytes - rec.nbytes)
                rec.nbytes = nbytes
        else:
            _bump(STORE_BYTES, rec.fmt, -rec.nbytes)
            _bump(STORE_COUNT, rec.fmt, -1)
            _bump(STORE_BYTES, fmt, nbytes)
            _bump(STORE_COUNT, fmt, 1)
            rec.fmt = fmt
            rec.nbytes = nbytes


def live_count() -> int:
    """Number of tracked live owners (test/report hook)."""
    _flush_dead()
    with _lock:
        return len(_live)


def snapshot() -> Dict[str, dict]:
    """``{format: {"bytes": int, "count": int}}`` from the gauges."""
    _flush_dead()
    out: Dict[str, dict] = {}
    for labelvalues, child in STORE_BYTES.samples():
        out.setdefault(labelvalues[0], {"bytes": 0, "count": 0})["bytes"] = \
            int(child.value)
    for labelvalues, child in STORE_COUNT.samples():
        out.setdefault(labelvalues[0], {"bytes": 0, "count": 0})["count"] = \
            int(child.value)
    return out


# ---------------------------------------------------------------------------
# report tier: per-object attribution and the format-policy footprint audit
# ---------------------------------------------------------------------------

def _raw_store(owner):
    """The owner's raw store, never forcing lazy state.

    Vector keeps its store in the ``_st`` slot (its ``_store`` *property*
    forces pending lazy producers — off limits here); Matrix's ``_store``
    is a plain slot.
    """
    st = getattr(owner, "_st", None)
    if st is None:
        st = getattr(owner, "_store", None)
    return st


def _label_of(owner) -> Optional[str]:
    lin = getattr(owner, "_lineage", None)
    if lin is not None:
        hit = _identity.find(lin[1])
        if hit is not None:
            return hit
    kind = "M" if hasattr(owner, "ncols") else "V"
    return _identity.find((kind, owner._uid))


def _value_itemsize(st) -> int:
    for attr in ("values", "cvalues", "dense", "vals"):
        a = getattr(st, attr, None)
        if a is not None:
            return int(a.dtype.itemsize)
    return 8


def top_stores(n: int = 10) -> List[dict]:
    """The ``n`` largest live stores by authoritative bytes.

    Reads the raw stores (bytes refreshed, lazy state never forced) and
    labels each owner with its registered graph where
    :mod:`repro.obs.identity` knows one.
    """
    _flush_dead()
    with _lock:
        records = list(_live.values())
    rows = []
    for rec in records:
        owner = rec.ref()
        if owner is None:
            continue
        st = _raw_store(owner)
        if st is None:
            continue
        is_matrix = hasattr(owner, "ncols")
        rows.append({
            "kind": "Matrix" if is_matrix else "Vector",
            "shape": ((owner.nrows, owner.ncols) if is_matrix
                      else (owner.size,)),
            "format": st.fmt,
            "nvals": int(st.nvals),
            "nbytes": int(st.nbytes()),
            "cache_nbytes": int(st.cache_nbytes()),
            "graph": _label_of(owner),
        })
    rows.sort(key=lambda r: r["nbytes"], reverse=True)
    return rows[:n]


def _live_rows_of(st) -> int:
    """Live-row count without materialising a canonical CSR cache."""
    if st.fmt == "bitmap":
        if st.ncols == 0 or st.nrows == 0:
            return 0
        grid = st.present.reshape(st.nrows, st.ncols)
        return int(grid.any(axis=1).sum())
    if st.fmt == "csc":
        return int(np.unique(st.rindices).size)
    return int(st.live_row_count())   # O(live) for csr/hypersparse


def _matrix_estimates(st) -> Dict[str, int]:
    itemsize = _value_itemsize(st)
    nvals = int(st.nvals)
    live = _live_rows_of(st)
    return {
        "csr": (st.nrows + 1) * 8 + nvals * (8 + itemsize),
        "csc": (st.ncols + 1) * 8 + nvals * (8 + itemsize),
        "bitmap": st.nrows * st.ncols * (1 + itemsize),
        "hypersparse": live * 8 + (live + 1) * 8 + nvals * (8 + itemsize),
    }


def _vector_estimates(st) -> Dict[str, int]:
    itemsize = _value_itemsize(st)
    nvals = int(st.nvals)
    return {
        "sparse": nvals * (8 + itemsize),
        "bitmap": st.size * (1 + itemsize),
    }


def format_audit() -> List[dict]:
    """Estimated footprint of every candidate format, per live store.

    ``best`` names the smallest estimate; ``savings_bytes`` is what
    switching would reclaim (0 when the policy's choice is already the
    smallest).  Estimates use the array-shape arithmetic of each format,
    not materialised conversions, so the audit is read-only and cheap.
    """
    _flush_dead()
    with _lock:
        records = list(_live.values())
    rows = []
    for rec in records:
        owner = rec.ref()
        if owner is None:
            continue
        st = _raw_store(owner)
        if st is None:
            continue
        is_matrix = hasattr(owner, "ncols")
        est = _matrix_estimates(st) if is_matrix else _vector_estimates(st)
        best = min(est, key=est.get)
        actual = int(st.nbytes())
        rows.append({
            "kind": "Matrix" if is_matrix else "Vector",
            "shape": ((owner.nrows, owner.ncols) if is_matrix
                      else (owner.size,)),
            "format": st.fmt,
            "actual_bytes": actual,
            "estimates": est,
            "best": best,
            "savings_bytes": max(0, actual - est[best]),
            "graph": _label_of(owner),
        })
    rows.sort(key=lambda r: r["savings_bytes"], reverse=True)
    return rows


def resync() -> None:
    """Recompute both gauges exactly from the live records.

    Repairs any drift from accounting skipped while ``metrics.ENABLED``
    was off, and restores the footprint after ``metrics.reset()`` zeroes
    the children (``obs.reset()`` calls this automatically).
    """
    _flush_dead()
    with _lock:
        per_fmt: Dict[str, list] = {}
        for rec in _live.values():
            owner = rec.ref()
            if owner is None:
                continue     # its finalizer will retire the record
            st = _raw_store(owner)
            if st is None:
                continue
            rec.fmt = st.fmt
            rec.nbytes = int(st.nbytes())
            tally = per_fmt.setdefault(rec.fmt, [0, 0])
            tally[0] += rec.nbytes
            tally[1] += 1
        for metric, pos in ((STORE_BYTES, 0), (STORE_COUNT, 1)):
            seen = set()
            for labelvalues, child in metric.samples():
                fmt = labelvalues[0]
                seen.add(fmt)
                value = per_fmt.get(fmt, (0, 0))[pos]
                with child._lock:
                    child.value = value
            for fmt, tally in per_fmt.items():
                if fmt not in seen:
                    child = metric.labels(fmt)
                    with child._lock:
                        child.value = tally[pos]
