"""`repro.obs` — metrics, span tracing, and kernel profiling.

Three observation tiers, cheapest first, all safe under the concurrent
serving engine (span/profiling state is context-local, metric bumps are
locked):

* **Metrics** (:mod:`repro.obs.metrics`) — always-on counters / gauges /
  histograms with labels; export via :func:`prometheus_text` or
  :func:`json_snapshot`.
* **Span tracing** (:mod:`repro.obs.trace`) — opt-in per context::

      with obs.tracing() as trace:
          triangle_count(g)
      json.dump(trace.to_chrome_trace(), open("tc.json", "w"))

  covering record → plan-choose → kernel → epilogue → write, MultiPlan
  fusion, and the serve request lifecycle.
* **Deep profiling** (:mod:`repro.obs.profile`) — opt-in per context::

      with obs.profiling():
          triangle_count(g)
      obs.report()

  exact wall/CPU/nnz/bytes per kernel and per rule, plus chooser
  misprediction rates judged from the telemetry decision stream.

This package is standalone: it never imports :mod:`repro.grb` at module
level (``grb.telemetry`` imports *it*), so it is importable from any
layer without cycles.  See ``docs/OBSERVABILITY.md`` for the full schema
and cost model.
"""

from __future__ import annotations

from . import export, http, identity, memory, metrics, profile, trace
from .export import json_snapshot, prometheus_text
from .http import TraceRing, start_server
from .profile import deep_active, memory_active, profiled, profiling
from .report import report
from .trace import TraceCollector, instant, span, tracing

__all__ = [
    "metrics", "trace", "profile", "export", "identity", "memory", "http",
    "span", "instant", "tracing", "TraceCollector",
    "profiling", "profiled", "deep_active", "memory_active",
    "prometheus_text", "json_snapshot",
    "TraceRing", "start_server",
    "report", "reset",
]


def reset() -> None:
    """Zero the metric registry and the deep-profiling tables (labels and
    metric registrations survive; traces are per-collector and unaffected).
    The store-footprint gauges are then rebuilt from the live store records
    — footprint is a fact about the heap, not an event counter."""
    metrics.reset()
    profile.reset()
    memory.resync()
