"""Context-local span tracing for the plan and serve lifecycles.

A *span* is a named, timed interval with a parent: together they form the
tree of one request's execution — ``plan:mxm`` → ``plan-choose`` →
``kernel:mxm-masked-dot`` → ``epilogue:reduce_scalar`` → ``write``.  The
current sink and the current span are both :mod:`contextvars`
context-locals, exactly like the :mod:`repro.grb.telemetry` hook: with no
sink installed, :func:`span` returns a shared no-op object and the hot
path pays one ``ContextVar`` read; with one installed, spans record into a
thread-safe :class:`TraceCollector` whose records export as Chrome
trace-event JSON (load the file in Perfetto / ``chrome://tracing``) or
JSONL.

Context locality gives serve isolation for free: drain workers execute
kernels under the submitting request's ``copy_context()`` snapshot
(:mod:`repro.serve.service`), so two concurrent traced submitters each
collect exactly their own span tree.

Usage::

    from repro import obs

    with obs.tracing() as trace:
        triangle_count(g)
    trace.to_chrome_trace()          # dict — json.dump it for Perfetto
    roots = trace.span_tree()        # nested {record, children} dicts
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import List, Optional

__all__ = ["TraceCollector", "Span", "span", "instant", "tracing",
           "active", "current_sink", "current_span_id"]

_ids = itertools.count(1)

_sink_var: ContextVar[Optional["TraceCollector"]] = ContextVar(
    "repro_obs_trace_sink", default=None)
_span_var: ContextVar[Optional["Span"]] = ContextVar(
    "repro_obs_trace_span", default=None)


def active() -> bool:
    """Whether a trace sink is installed in this context (call sites gate
    attribute computation on this, like ``telemetry.active()``)."""
    return _sink_var.get() is not None


def current_sink() -> Optional["TraceCollector"]:
    """This context's collector, if any — capture it before handing work
    to a thread that must report into the same trace."""
    return _sink_var.get()


def current_span_id() -> Optional[int]:
    """The id of the innermost open span in this context, if any."""
    cur = _span_var.get()
    return cur.span_id if cur is not None else None


class TraceCollector:
    """A thread-safe append-only list of span/instant records."""

    def __init__(self):
        self._lock = threading.Lock()
        self._records: List[dict] = []

    def add(self, record: dict) -> None:
        with self._lock:
            self._records.append(record)

    def records(self) -> List[dict]:
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def span_tree(self) -> List[dict]:
        """Roots of the span forest as nested ``{record, children}`` dicts.

        Instants attach as leaves under their parent span."""
        records = self.records()
        nodes = {r["span_id"]: {"record": r, "children": []} for r in records}
        roots = []
        for r in records:
            node = nodes[r["span_id"]]
            parent = nodes.get(r.get("parent_id"))
            (parent["children"] if parent is not None else roots).append(node)
        return roots

    def names(self) -> List[str]:
        return [r["name"] for r in self.records()]

    def find(self, prefix: str) -> List[dict]:
        """All records whose name starts with ``prefix``."""
        return [r for r in self.records() if r["name"].startswith(prefix)]

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_chrome_trace(self) -> dict:
        """The Chrome trace-event JSON object (Perfetto-loadable).

        Spans become complete events (``ph: "X"``, microsecond ``ts`` /
        ``dur``); instants become ``ph: "i"`` thread-scoped events.  Span
        ids ride in ``args`` so the parent/child structure survives the
        round trip (Chrome's own nesting is per-thread stack-based).
        """
        pid = os.getpid()
        events = []
        for r in self.records():
            args = dict(r.get("args") or {})
            args["span_id"] = r["span_id"]
            if r.get("parent_id") is not None:
                args["parent_id"] = r["parent_id"]
            ev = {
                "name": r["name"],
                "cat": r.get("cat", "repro"),
                "pid": pid,
                "tid": r.get("tid", 0),
                "ts": r["ts"] * 1e6,
                "args": args,
            }
            if r["type"] == "span":
                ev["ph"] = "X"
                ev["dur"] = r["dur"] * 1e6
            else:
                ev["ph"] = "i"
                ev["s"] = "t"
            events.append(ev)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_chrome_json(self) -> str:
        return json.dumps(self.to_chrome_trace(), default=str)

    def to_jsonl(self) -> str:
        """One JSON object per record, newline-delimited."""
        return "\n".join(json.dumps(r, default=str)
                         for r in self.records())


class Span:
    """One open interval; use as a context manager.

    ``set(**attrs)`` adds attributes after entry (kernel output sizes,
    chosen methods) — they land in the record's ``args``.
    """

    __slots__ = ("name", "cat", "args", "_sink", "span_id", "parent_id",
                 "_t0", "_token")

    def __init__(self, sink: TraceCollector, name: str, cat: str,
                 args: dict):
        self.name = name
        self.cat = cat
        self.args = args
        self._sink = sink

    def set(self, **attrs) -> "Span":
        self.args.update(attrs)
        return self

    def __enter__(self) -> "Span":
        parent = _span_var.get()
        self.parent_id = parent.span_id if parent is not None else None
        self.span_id = next(_ids)
        self._token = _span_var.set(self)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        dur = time.perf_counter() - self._t0
        _span_var.reset(self._token)
        record = {
            "type": "span",
            "name": self.name,
            "cat": self.cat,
            "ts": self._t0,
            "dur": dur,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "tid": threading.get_ident(),
            "args": self.args,
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        self._sink.add(record)
        return False


class _NullSpan:
    """Shared no-op returned when no sink is installed (the fast path)."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


def span(name: str, cat: str = "engine", **attrs):
    """A span recording into this context's sink — or a shared no-op."""
    sink = _sink_var.get()
    if sink is None:
        return _NULL_SPAN
    return Span(sink, name, cat, attrs)


def instant(name: str, cat: str = "engine", *, sink=None, parent_id=None,
            **attrs) -> None:
    """Record a zero-duration marker under the current span.

    ``sink``/``parent_id`` override the context-local resolution: the
    serve answer path captures both at submit time and reports the
    completion from whatever thread resolves the future.
    """
    if sink is None:
        sink = _sink_var.get()
        if sink is None:
            return
        if parent_id is None:
            parent_id = current_span_id()
    sink.add({
        "type": "instant",
        "name": name,
        "cat": cat,
        "ts": time.perf_counter(),
        "span_id": next(_ids),
        "parent_id": parent_id,
        "tid": threading.get_ident(),
        "args": attrs,
    })


@contextmanager
def tracing(collector: Optional[TraceCollector] = None):
    """Install a trace sink for the block; yields the collector."""
    coll = collector if collector is not None else TraceCollector()
    token = _sink_var.set(coll)
    try:
        yield coll
    finally:
        _sink_var.reset(token)
