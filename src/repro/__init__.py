"""repro — a pure-Python reproduction of the LAGraph paper.

Subpackages
-----------
``repro.grb``
    A from-scratch GraphBLAS substrate (types, semirings, masks, vectors,
    matrices, masked operations) standing in for SuiteSparse:GraphBLAS.
``repro.lagraph``
    The paper's contribution: the LAGraph Graph object with cached
    properties, Basic/Advanced algorithm modes, utilities, and the six GAP
    algorithms (BFS, BC, PR, SSSP, TC, CC) plus an experimental tier.
``repro.gap``
    The evaluation substrate: GAP-style graph generators, hand-coded
    baseline implementations, verifiers, and the Table III / Table IV
    harness.
``repro.serve``
    A concurrent serving engine above ``repro.lagraph``: a versioned graph
    registry plus a GraphService that coalesces single-source requests into
    batched multi-source kernels and memoizes results per graph version.
"""

__version__ = "1.0.0"

from . import grb  # noqa: F401

__all__ = ["grb", "__version__"]
