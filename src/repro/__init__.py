"""repro — a pure-Python reproduction of the LAGraph paper.

Subpackages
-----------
``repro.grb``
    A from-scratch GraphBLAS substrate (types, semirings, masks, vectors,
    matrices, masked operations) standing in for SuiteSparse:GraphBLAS.
``repro.lagraph``
    The paper's contribution: the LAGraph Graph object with cached
    properties, Basic/Advanced algorithm modes, utilities, and the six GAP
    algorithms (BFS, BC, PR, SSSP, TC, CC) plus an experimental tier.
``repro.gap``
    The evaluation substrate: GAP-style graph generators, hand-coded
    baseline implementations, verifiers, and the Table III / Table IV
    harness.
"""

__version__ = "1.0.0"

from . import grb  # noqa: F401

__all__ = ["grb", "__version__"]
