"""Degree utilities (``LAGraph_SortByDegree`` / ``LAGraph_SampleDegree``).

Both are used by the triangle-counting heuristic (Alg. 6 of the paper):
``sample_degree`` cheaply estimates the mean and median degree to decide
whether to permute, and ``sort_by_degree`` produces the ascending-degree
permutation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import PropertyMissing
from ..graph import Graph

__all__ = ["sort_by_degree", "sample_degree"]


def _degrees(g: Graph, byrow: bool) -> np.ndarray:
    deg = g.row_degree if byrow else g.col_degree
    if deg is None:
        raise PropertyMissing(
            "degree property not cached; call cache_row_degree/cache_col_degree")
    return deg.to_dense()


def sort_by_degree(g: Graph, byrow: bool = True, ascending: bool = True) -> np.ndarray:
    """Permutation sorting the nodes by degree.

    Ties are broken by node id (stable), so the permutation is deterministic.
    Requires the corresponding degree property to be cached (Advanced-mode
    discipline).
    """
    deg = _degrees(g, byrow)
    key = deg if ascending else -deg
    return np.argsort(key, kind="stable").astype(np.int64)


def sample_degree(g: Graph, byrow: bool = True, nsamples: int = 1000,
                  seed: int = 0) -> Tuple[float, float]:
    """Quick estimate of the (mean, median) degree from a random sample."""
    deg = _degrees(g, byrow)
    n = deg.size
    if n == 0:
        return 0.0, 0.0
    if int(nsamples) >= n:
        return float(deg.mean()), float(np.median(deg))
    rng = np.random.default_rng(seed)
    sample = deg[rng.integers(0, n, size=int(nsamples))]
    return float(sample.mean()), float(np.median(sample))
