"""Integer array sorts (``LAGraph_Sort1/2/3``).

The C library provides these because graph algorithms constantly need to
co-sort index arrays; here they are thin, well-specified wrappers over
NumPy's stable sorts.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sort1", "sort2", "sort3"]


def sort1(a) -> np.ndarray:
    """Sort one integer array ascending; returns a new array."""
    return np.sort(np.asarray(a), kind="stable")


def sort2(a, b):
    """Co-sort two arrays by ``(a, b)`` lexicographic order.

    Returns new ``(a_sorted, b_sorted)`` arrays of the same dtypes.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError("sort2 requires equal-length arrays")
    order = np.lexsort((b, a))
    return a[order], b[order]


def sort3(a, b, c):
    """Co-sort three arrays by ``(a, b, c)`` lexicographic order."""
    a = np.asarray(a)
    b = np.asarray(b)
    c = np.asarray(c)
    if not (a.shape == b.shape == c.shape):
        raise ValueError("sort3 requires equal-length arrays")
    order = np.lexsort((c, b, a))
    return a[order], b[order], c[order]
