"""Matrix Market I/O (``LAGraph_MMRead`` / ``LAGraph_MMWrite``).

A self-contained reader/writer for the MatrixMarket *coordinate* format,
supporting the field types LAGraph handles: ``pattern``, ``integer`` and
``real``, with ``general`` / ``symmetric`` / ``skew-symmetric`` symmetry.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from ... import grb
from ...grb.matrix import Matrix
from ..errors import IOError_

__all__ = ["mmread", "mmwrite"]

_HEADER = "%%MatrixMarket matrix coordinate {field} {symmetry}\n"


def _open(path_or_file, mode: str):
    if isinstance(path_or_file, (str, Path)):
        return open(path_or_file, mode), True
    return path_or_file, False


def mmread(path_or_file) -> Matrix:
    """Read a Matrix Market coordinate file into a :class:`grb.Matrix`.

    Symmetric and skew-symmetric storage is expanded to the full matrix
    (diagonal entries are not mirrored; skew mirrors with negated values).
    """
    f, should_close = _open(path_or_file, "r")
    try:
        header = f.readline()
        parts = header.strip().split()
        if (len(parts) != 5 or parts[0] != "%%MatrixMarket"
                or parts[1].lower() != "matrix"
                or parts[2].lower() != "coordinate"):
            raise IOError_(f"not a MatrixMarket coordinate header: {header!r}")
        field = parts[3].lower()
        symmetry = parts[4].lower()
        if field not in ("pattern", "integer", "real"):
            raise IOError_(f"unsupported MatrixMarket field {field!r}")
        if symmetry not in ("general", "symmetric", "skew-symmetric"):
            raise IOError_(f"unsupported MatrixMarket symmetry {symmetry!r}")
        # skip comments
        line = f.readline()
        while line.startswith("%"):
            line = f.readline()
        dims = line.split()
        if len(dims) != 3:
            raise IOError_(f"bad size line: {line!r}")
        nrows, ncols, nnz = (int(x) for x in dims)
        body = f.read()
    finally:
        if should_close:
            f.close()

    if nnz == 0:
        data = np.empty((0, 3 if field != "pattern" else 2))
    else:
        data = np.loadtxt(io.StringIO(body), ndmin=2)
        if data.shape[0] != nnz:
            raise IOError_(f"expected {nnz} entries, found {data.shape[0]}")
    rows = data[:, 0].astype(np.int64) - 1  # 1-based on disk
    cols = data[:, 1].astype(np.int64) - 1
    if field == "pattern":
        vals = np.ones(rows.size, dtype=np.bool_)
    elif field == "integer":
        vals = data[:, 2].astype(np.int64)
    else:
        vals = data[:, 2].astype(np.float64)

    if symmetry in ("symmetric", "skew-symmetric"):
        off = rows != cols
        mr, mc = cols[off], rows[off]
        mv = vals[off]
        if symmetry == "skew-symmetric":
            mv = -mv
        rows = np.concatenate((rows, mr))
        cols = np.concatenate((cols, mc))
        vals = np.concatenate((vals, mv))

    return Matrix.from_coo(rows, cols, vals, nrows, ncols,
                           dup_op=grb.binary.PLUS)


def mmwrite(a: Matrix, path_or_file, comment: str = "") -> None:
    """Write a :class:`grb.Matrix` in Matrix Market coordinate format.

    The field is chosen from the matrix type: BOOL → ``pattern``,
    integers → ``integer``, floats → ``real``.  Always written as
    ``general`` symmetry (no structure detection, as in the C library's
    default path).
    """
    if a.type.is_boolean:
        field = "pattern"
    elif a.type.is_integral:
        field = "integer"
    else:
        field = "real"
    rows, cols, vals = a.to_coo()
    f, should_close = _open(path_or_file, "w")
    try:
        f.write(_HEADER.format(field=field, symmetry="general"))
        for line in comment.splitlines():
            f.write(f"%{line}\n")
        f.write(f"{a.nrows} {a.ncols} {a.nvals}\n")
        if field == "pattern":
            np.savetxt(f, np.column_stack((rows + 1, cols + 1)), fmt="%d %d")
        elif field == "integer":
            np.savetxt(f, np.column_stack((rows + 1, cols + 1, vals)),
                       fmt="%d %d %d")
        else:
            out = np.column_stack((rows + 1, cols + 1, vals))
            np.savetxt(f, out, fmt="%d %d %.17g")
    finally:
        if should_close:
            f.close()
