"""Binary matrix I/O (``LAGraph_BinRead`` / ``LAGraph_BinWrite``).

The C library serialises the raw CSR arrays for fast reload of benchmark
graphs; we do the same through NumPy's ``.npz`` container (no pickling, so
files are portable and safe to load).
"""

from __future__ import annotations

import numpy as np

from ...grb.matrix import Matrix
from ...grb.types import from_dtype
from ..errors import IOError_

__all__ = ["binwrite", "binread"]

_MAGIC = "lagraph-csr-v1"


def binwrite(a: Matrix, path) -> None:
    """Serialise a matrix's CSR arrays to ``path`` (``.npz``)."""
    np.savez(
        path,
        magic=np.array(_MAGIC),
        shape=np.array([a.nrows, a.ncols], dtype=np.int64),
        indptr=a.indptr,
        indices=a.indices,
        values=a.values,
    )


def binread(path) -> Matrix:
    """Load a matrix previously written by :func:`binwrite`."""
    with np.load(path, allow_pickle=False) as z:
        if "magic" not in z or str(z["magic"]) != _MAGIC:
            raise IOError_(f"{path}: not an LAGraph binary matrix file")
        nrows, ncols = (int(x) for x in z["shape"])
        m = Matrix(from_dtype(z["values"].dtype), nrows, ncols)
        m.indptr = z["indptr"].astype(np.int64)
        m.indices = z["indices"].astype(np.int64)
        m.values = z["values"]
    return m
