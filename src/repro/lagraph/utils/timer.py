"""Portable timers (``LAGraph_Tic`` / ``LAGraph_Toc``)."""

from __future__ import annotations

import time

__all__ = ["Timer", "tic", "toc"]


class Timer:
    """A restartable wall-clock timer.

    >>> t = Timer()
    >>> t.tic()
    >>> elapsed = t.toc()   # seconds since the matching tic
    """

    __slots__ = ("_start",)

    def __init__(self):
        self._start = time.perf_counter()

    def tic(self):
        """Start (or restart) the timer."""
        self._start = time.perf_counter()

    def toc(self) -> float:
        """Seconds elapsed since the last :meth:`tic`."""
        return time.perf_counter() - self._start


_GLOBAL = Timer()


def tic():
    """Module-level convenience timer start."""
    _GLOBAL.tic()


def toc() -> float:
    """Seconds since the module-level :func:`tic`."""
    return _GLOBAL.toc()
