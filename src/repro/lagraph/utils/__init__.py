"""LAGraph utility functions (Sec. V of the paper).

================================  =========================================
paper name                        here
================================  =========================================
``LAGraph_Property_*``            methods on :class:`repro.lagraph.Graph`
``LAGraph_DeleteProperties``      :meth:`Graph.invalidate_properties`
``LAGraph_CheckGraph``            :meth:`Graph.check`
``LAGraph_DisplayGraph``          :meth:`Graph.display`
``LAGraph_MMRead/MMWrite``        :func:`mmread` / :func:`mmwrite`
``LAGraph_BinRead/BinWrite``      :func:`binread` / :func:`binwrite`
``LAGraph_Pattern``               :func:`pattern`
``LAGraph_IsEqual/IsAll``         :func:`isequal` / :func:`isall`
``LAGraph_SortByDegree``          :func:`sort_by_degree`
``LAGraph_SampleDegree``          :func:`sample_degree`
``LAGraph_Tic/Toc``               :class:`Timer` / :func:`tic` / :func:`toc`
``LAGraph_Sort1/2/3``             :func:`sort1` / :func:`sort2` / :func:`sort3`
``LAGraph_TypeName``              :func:`repro.grb.type_name`
``LAGraph_KindName``              :func:`repro.lagraph.kinds.kind_name`
================================  =========================================

Memory-management wrappers (malloc/calloc/realloc/free) have no Python
equivalent and are intentionally omitted.
"""

from .degree import sample_degree, sort_by_degree
from .io_bin import binread, binwrite
from .io_mm import mmread, mmwrite
from .matrixops import isall, isequal, pattern
from .sorting import sort1, sort2, sort3
from .timer import Timer, tic, toc

__all__ = [
    "sample_degree", "sort_by_degree",
    "binread", "binwrite", "mmread", "mmwrite",
    "isall", "isequal", "pattern",
    "sort1", "sort2", "sort3",
    "Timer", "tic", "toc",
]
