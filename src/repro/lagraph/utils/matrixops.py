"""Matrix utilities (``LAGraph_Pattern`` / ``IsEqual`` / ``IsAll``)."""

from __future__ import annotations

import numpy as np

from ...grb import binary
from ...grb.matrix import Matrix
from ...grb.ops.binary import BinaryOp

__all__ = ["pattern", "isequal", "isall"]


def pattern(a: Matrix) -> Matrix:
    """Boolean matrix containing the structure of ``a`` (values all true)."""
    return a.pattern()


def isall(a: Matrix, b: Matrix, op: BinaryOp) -> bool:
    """False if the patterns differ; else whether ``op`` holds on all pairs.

    This is the C library's ``LAGraph_IsAll``: compare structure first, then
    apply a comparator to every aligned value pair and AND the results.
    """
    if a.shape != b.shape or a.nvals != b.nvals:
        return False
    if not (np.array_equal(a.indptr, b.indptr)
            and np.array_equal(a.indices, b.indices)):
        return False
    if a.nvals == 0:
        return True
    return bool(np.all(op(a.values, b.values)))


def isequal(a: Matrix, b: Matrix) -> bool:
    """``LAGraph_IsEqual``: same type domain, same structure, equal values.

    Selects the EQ comparator matching the matrix type (the C version picks
    ``GrB_EQ_T``) and defers to :func:`isall`.
    """
    if a.dtype != b.dtype and not (
        np.issubdtype(a.dtype, np.number) and np.issubdtype(b.dtype, np.number)
    ):
        return False
    return isall(a, b, binary.EQ)
