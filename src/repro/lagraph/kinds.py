"""Graph kinds (the ``LAGraph_Kind`` enumeration from Listing 1)."""

from __future__ import annotations

from enum import Enum

__all__ = ["Kind", "ADJACENCY_UNDIRECTED", "ADJACENCY_DIRECTED", "kind_name"]


class Kind(Enum):
    """How a Graph's adjacency matrix should be interpreted.

    The paper defines exactly two kinds in the first release (Sec. II-A),
    with more planned; we mirror that.
    """

    ADJACENCY_UNDIRECTED = "undirected"
    ADJACENCY_DIRECTED = "directed"


ADJACENCY_UNDIRECTED = Kind.ADJACENCY_UNDIRECTED
ADJACENCY_DIRECTED = Kind.ADJACENCY_DIRECTED


def kind_name(kind: Kind) -> str:
    """``LAGraph_KindName``: printable name of a graph kind."""
    return kind.value
