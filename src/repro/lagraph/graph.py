"""The ``LAGraph_Graph`` data structure (Listing 1 of the paper).

A :class:`Graph` bundles the adjacency matrix with *cached properties*:
values derivable from ``A`` that algorithms need repeatedly — the transpose,
row/column degrees, pattern symmetry, and the number of stored diagonal
entries.  Caching them on the graph keeps algorithm signatures small and
avoids recomputation (Sec. II-A).

Design points mirrored from the paper:

* **Non-opaque.**  Every field is publicly readable *and writable*.  Code
  that computes a property as a by-product may install it directly
  (``G.AT = ...``).  The flip side of the contract: whoever modifies ``A``
  must call :meth:`Graph.invalidate_properties` (the convention all LAGraph
  implementers follow).
* **Move construction.**  :meth:`Graph.new` takes ownership of the matrix
  through a one-element list ("pointer"), clearing the caller's reference —
  the C API's trick for preventing double-free, kept here for fidelity and
  exercised by the compat layer.
* **Unknown states.**  Missing properties are ``None``; the unknown diagonal
  count is ``-1``, exactly as in Listing 1.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import grb
from ..grb.matrix import Matrix
from ..grb.vector import Vector
from .errors import InvalidGraph, Status
from .kinds import Kind

__all__ = ["Graph", "BOOLEAN_UNKNOWN"]

#: Sentinel mirroring ``LAGRAPH_BOOLEAN_UNKNOWN``.
BOOLEAN_UNKNOWN = None


class Graph:
    """An LAGraph graph: primary components plus cached properties."""

    __slots__ = ("A", "kind", "AT", "row_degree", "col_degree",
                 "A_pattern_is_symmetric", "ndiag", "version")

    def __init__(self, A: Matrix, kind: Kind):
        if not isinstance(A, Matrix):
            raise InvalidGraph("Graph requires a grb.Matrix adjacency")
        if not isinstance(kind, Kind):
            raise InvalidGraph(f"invalid graph kind {kind!r}")
        if A.nrows != A.ncols:
            raise InvalidGraph(
                f"adjacency matrix must be square, got {A.shape}")
        #: primary components (Listing 1, lines 3-4)
        self.A = A
        self.kind = kind
        #: cached properties (Listing 1, lines 6-11)
        self.AT: Optional[Matrix] = None
        self.row_degree: Optional[Vector] = None
        self.col_degree: Optional[Vector] = None
        self.A_pattern_is_symmetric: Optional[bool] = BOOLEAN_UNKNOWN
        self.ndiag: int = -1
        #: monotone content version: bumped by :meth:`invalidate_properties`,
        #: i.e. whenever ``A`` is (declared) mutated.  Derived results — e.g.
        #: entries in :mod:`repro.serve`'s memo cache — keyed by
        #: ``(graph, version)`` die with the adjacency they were computed on.
        self.version: int = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def new(cls, matrix_ref: list, kind: Kind) -> "Graph":
        """``LAGraph_New``: move-construct a graph from ``matrix_ref[0]``.

        ``matrix_ref`` is a one-element list acting as ``GrB_Matrix *``.
        On return the list slot is ``None`` — the graph owns the matrix.
        """
        if not (isinstance(matrix_ref, list) and len(matrix_ref) == 1):
            raise InvalidGraph("Graph.new expects a one-element list (a 'pointer')")
        g = cls(matrix_ref[0], kind)
        matrix_ref[0] = None  # move semantics: caller's reference dies
        return g

    @classmethod
    def from_matrix(cls, A: Matrix, kind: Kind) -> "Graph":
        """Pythonic constructor (shares the matrix, no move)."""
        return cls(A, kind)

    @classmethod
    def from_coo(cls, rows, cols, values, n: int, kind: Kind,
                 dup_op=grb.binary.PLUS) -> "Graph":
        """Convenience: build the adjacency from COO triples."""
        A = Matrix.from_coo(rows, cols, values, n, n, dup_op=dup_op)
        return cls(A, kind)

    # ------------------------------------------------------------------
    # cached-property management (the LAGraph_Property_* utilities)
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.A.nrows

    @property
    def nvals(self) -> int:
        """Number of stored entries of ``A``."""
        return self.A.nvals

    def cache_at(self) -> int:
        """``LAGraph_Property_AT``: compute & cache the transpose.

        For undirected graphs (symmetric pattern by definition) the cache
        aliases ``A`` itself, as the C library does.  Returns a status code
        (warning if already cached).
        """
        if self.AT is not None:
            return Status.CACHE_ALREADY_PRESENT
        if self.kind is Kind.ADJACENCY_UNDIRECTED:
            self.AT = self.A
        else:
            self.AT = self.A.T
        return Status.SUCCESS

    def cache_row_degree(self) -> int:
        """``LAGraph_Property_RowDegree``: out-degrees of ``A`` (dense INT64)."""
        if self.row_degree is not None:
            return Status.CACHE_ALREADY_PRESENT
        self.row_degree = self.A.row_degrees()
        return Status.SUCCESS

    def cache_col_degree(self) -> int:
        """``LAGraph_Property_ColDegree``: in-degrees of ``A`` (dense INT64)."""
        if self.col_degree is not None:
            return Status.CACHE_ALREADY_PRESENT
        self.col_degree = self.A.col_degrees()
        return Status.SUCCESS

    def cache_symmetric_pattern(self) -> int:
        """``LAGraph_Property_ASymmetricPattern``: test structure symmetry."""
        if self.A_pattern_is_symmetric is not BOOLEAN_UNKNOWN:
            return Status.CACHE_ALREADY_PRESENT
        if self.kind is Kind.ADJACENCY_UNDIRECTED:
            self.A_pattern_is_symmetric = True
        else:
            self.A_pattern_is_symmetric = self.A.is_symmetric_pattern()
        return Status.SUCCESS

    def cache_ndiag(self) -> int:
        """Count stored diagonal entries (-1 means unknown)."""
        if self.ndiag != -1:
            return Status.CACHE_ALREADY_PRESENT
        self.ndiag = self.A.ndiag()
        return Status.SUCCESS

    def cache_all(self):
        """Compute every cached property (Basic-mode convenience)."""
        self.cache_at()
        self.cache_row_degree()
        self.cache_col_degree()
        self.cache_symmetric_pattern()
        self.cache_ndiag()
        return Status.SUCCESS

    def invalidate_properties(self) -> int:
        """``LAGraph_DeleteProperties``: drop all cached properties.

        Must be called by any code that mutates ``G.A`` (the consistency
        convention of Sec. II-A).  Also bumps :attr:`version`, so externally
        memoized results keyed by the old version can never be served for the
        mutated graph.
        """
        self.AT = None
        self.row_degree = None
        self.col_degree = None
        self.A_pattern_is_symmetric = BOOLEAN_UNKNOWN
        self.ndiag = -1
        self.version += 1
        return Status.SUCCESS

    # alias matching the C name
    delete_properties = invalidate_properties

    # ------------------------------------------------------------------
    # consistency checking (LAGraph_CheckGraph)
    # ------------------------------------------------------------------
    def check(self) -> int:
        """Validate the graph and its cached properties.

        Because the object is non-opaque a user may have put it in an
        inconsistent state; this verifies every cached property against a
        fresh computation (Sec. V, "Display and debug").
        Raises :class:`InvalidGraph` on the first violation.
        """
        A = self.A
        if not isinstance(A, Matrix):
            raise InvalidGraph("G.A is not a grb.Matrix")
        if A.nrows != A.ncols:
            raise InvalidGraph(f"G.A must be square, got {A.shape}")
        if not isinstance(self.kind, Kind):
            raise InvalidGraph(f"invalid kind {self.kind!r}")
        # CSR structural invariants
        if A.indptr.size != A.nrows + 1 or A.indptr[0] != 0:
            raise InvalidGraph("corrupt indptr")
        if A.indptr[-1] != A.indices.size or A.indices.size != A.values.size:
            raise InvalidGraph("indptr/indices/values lengths disagree")
        if np.any(np.diff(A.indptr) < 0):
            raise InvalidGraph("indptr not monotone")
        if A.indices.size and (A.indices.min() < 0 or A.indices.max() >= A.ncols):
            raise InvalidGraph("column index out of range")
        # per-row sortedness: within each row indices strictly increase
        d = np.diff(A.indices)
        interior = np.ones(d.size + 1, dtype=bool)
        row_starts = A.indptr[1:-1]
        interior[row_starts[row_starts <= d.size]] = False
        if d.size and np.any(d[interior[1:]] <= 0):
            raise InvalidGraph("row indices not strictly sorted")
        # cached-property consistency
        if self.kind is Kind.ADJACENCY_UNDIRECTED and not A.is_symmetric_pattern():
            raise InvalidGraph("undirected graph with asymmetric pattern")
        if self.AT is not None:
            expect = A if self.kind is Kind.ADJACENCY_UNDIRECTED else A.T
            if not self.AT.isequal(expect):
                raise InvalidGraph("cached AT does not match A transpose")
        if self.row_degree is not None:
            if not self.row_degree.isequal(A.row_degrees()):
                raise InvalidGraph("cached row_degree is stale")
        if self.col_degree is not None:
            if not self.col_degree.isequal(A.col_degrees()):
                raise InvalidGraph("cached col_degree is stale")
        if self.A_pattern_is_symmetric is not BOOLEAN_UNKNOWN:
            if bool(self.A_pattern_is_symmetric) != A.is_symmetric_pattern():
                raise InvalidGraph("cached symmetry flag is wrong")
        if self.ndiag != -1 and self.ndiag != A.ndiag():
            raise InvalidGraph("cached ndiag is wrong")
        return Status.SUCCESS

    # ------------------------------------------------------------------
    # display
    # ------------------------------------------------------------------
    def display(self, level: int = 1) -> str:
        """``LAGraph_DisplayGraph``: a human-readable summary string."""
        lines = [
            f"LAGraph.Graph: {self.kind.value}, n={self.n}, nvals={self.nvals}, "
            f"type={self.A.type.name}",
            f"  cached: AT={'yes' if self.AT is not None else 'no'} "
            f"row_degree={'yes' if self.row_degree is not None else 'no'} "
            f"col_degree={'yes' if self.col_degree is not None else 'no'} "
            f"symmetric={self.A_pattern_is_symmetric} ndiag={self.ndiag} "
            f"version={self.version}",
        ]
        if level >= 2 and self.n <= 16:
            lines.append(str(self.A.to_dense()))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Graph(kind={self.kind.value}, n={self.n}, "
                f"nvals={self.nvals})")
