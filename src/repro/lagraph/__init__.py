"""``repro.lagraph`` — the paper's contribution: LAGraph in Python.

A library of production-worthy graph algorithms built on the GraphBLAS
substrate (:mod:`repro.grb`), organised exactly as the paper describes:

* :class:`Graph` — the non-opaque graph object with cached properties
  (Listing 1);
* :mod:`~repro.lagraph.algorithms` — the stable tier: the six GAP kernels
  in Basic and Advanced user modes (Secs. II-B, IV);
* :mod:`~repro.lagraph.experimental` — the experimental tier (Sec. II-E);
* :mod:`~repro.lagraph.utils` — utility functions (Sec. V);
* :mod:`~repro.lagraph.compat` — the C calling convention, status codes,
  message buffer and TRY/CATCH helpers (Secs. II-C/D).
"""

from . import algorithms, compat, experimental, utils
from .algorithms import (
    bfs,
    bfs_level,
    bfs_parent_auto,
    bfs_parent_do,
    bfs_parent_fused,
    bfs_parent_push,
    betweenness_centrality,
    betweenness_centrality_batch,
    connected_components,
    fastsv,
    msbfs,
    msbfs_levels,
    msbfs_parents,
    pagerank,
    pagerank_gap,
    pagerank_gx,
    sssp,
    sssp_batch,
    sssp_bellman_ford,
    sssp_delta_stepping,
    triangle_count,
    triangle_count_basic,
    triangle_count_method,
)
from .errors import (
    LAGraphError,
    InvalidGraph,
    InvalidKind,
    MsgBuffer,
    MSG_LEN,
    PropertyMissing,
    Status,
)
from .graph import BOOLEAN_UNKNOWN, Graph
from .kinds import ADJACENCY_DIRECTED, ADJACENCY_UNDIRECTED, Kind, kind_name

__all__ = [
    "Graph", "Kind", "ADJACENCY_DIRECTED", "ADJACENCY_UNDIRECTED",
    "kind_name", "BOOLEAN_UNKNOWN",
    "algorithms", "experimental", "utils", "compat",
    "bfs", "bfs_level", "bfs_parent_auto", "bfs_parent_do", "bfs_parent_fused",
    "bfs_parent_push",
    "betweenness_centrality", "betweenness_centrality_batch",
    "connected_components", "fastsv",
    "msbfs", "msbfs_levels", "msbfs_parents",
    "pagerank", "pagerank_gap", "pagerank_gx",
    "sssp", "sssp_batch", "sssp_bellman_ford", "sssp_delta_stepping",
    "triangle_count", "triangle_count_basic", "triangle_count_method",
    "LAGraphError", "InvalidGraph", "InvalidKind", "PropertyMissing",
    "MsgBuffer", "MSG_LEN", "Status",
]
