"""LAGraph return codes, message buffer, and error types (Sec. II-C/D).

The paper's calling convention: every algorithm returns an ``int`` —
``0`` success, ``<0`` error, ``>0`` warning — and takes a caller-owned
message buffer of ``LAGRAPH_MSG_LEN`` chars as its last argument.

The pythonic API raises :class:`LAGraphError` subclasses carrying the
matching status code; the C-style layer (:mod:`repro.lagraph.compat`)
catches them and translates back to ``(status, msg)`` pairs.
"""

from __future__ import annotations

__all__ = [
    "Status",
    "MSG_LEN",
    "MsgBuffer",
    "LAGraphError",
    "InvalidGraph",
    "InvalidKind",
    "PropertyMissing",
    "IOError_",
    "NotImplementedError_",
]

#: Size of the message buffer (``LAGRAPH_MSG_LEN``).
MSG_LEN = 256


class Status:
    """Integer status codes following the paper's sign convention."""

    SUCCESS = 0
    # warnings (> 0)
    CACHE_ALREADY_PRESENT = 1001
    # errors (< 0); the -1000 block is reserved for LAGraph itself,
    # mirroring how the C library keeps clear of GrB_Info values.
    INVALID_GRAPH = -1002
    INVALID_KIND = -1003
    PROPERTY_MISSING = -1004
    IO_ERROR = -1005
    NOT_IMPLEMENTED = -1006
    INVALID_VALUE = -1007


class MsgBuffer:
    """A caller-owned message holder standing in for ``char msg[MSG_LEN]``.

    Algorithms clear it on success and write a diagnostic on error/warning,
    truncated to :data:`MSG_LEN` characters exactly like the C buffer.
    """

    __slots__ = ("value",)

    def __init__(self):
        self.value = ""

    def set(self, text: str):
        self.value = text[: MSG_LEN - 1]

    def clear(self):
        self.value = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class LAGraphError(Exception):
    """Base LAGraph error; ``status`` holds the C-convention code."""

    status = Status.INVALID_VALUE

    def __init__(self, message: str = "", status: int | None = None):
        super().__init__(message or self.__class__.__name__)
        if status is not None:
            self.status = status


class InvalidGraph(LAGraphError):
    """The Graph object violates an invariant (``LAGraph_CheckGraph``)."""

    status = Status.INVALID_GRAPH


class InvalidKind(LAGraphError):
    """An algorithm received a graph of the wrong kind (Advanced mode)."""

    status = Status.INVALID_KIND


class PropertyMissing(LAGraphError):
    """An Advanced-mode algorithm needs a cached property that is absent.

    Advanced algorithms never compute properties themselves (Sec. II-B) —
    the caller must opt in by calling the ``cache_*`` methods first.
    """

    status = Status.PROPERTY_MISSING


class IOError_(LAGraphError):
    status = Status.IO_ERROR


class NotImplementedError_(LAGraphError):
    status = Status.NOT_IMPLEMENTED
