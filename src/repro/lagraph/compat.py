"""C-style calling-convention layer (Sec. II-C/D of the paper).

The paper's API contract — mirrored here verbatim for every wrapped
function:

* outputs first, then input/outputs, then inputs, then the ``msg`` buffer;
* the return value is an int: ``0`` success, ``< 0`` error, ``> 0`` warning;
* on error a diagnostic is placed in the caller-owned ``msg`` buffer;
* on success the buffer is cleared.

Because Python can't return through pointer arguments, outputs are returned
as a tuple *after* the status code: ``(status, out1, out2, ...)``.

The ``LAGraph_TRY`` / ``GrB_TRY`` macros become the :func:`lagraph_try` /
:func:`grb_try` helpers: they check a status value and invoke a registered
"catch" callback before raising, which is how the C macros let callers free
memory on the error path.
"""

from __future__ import annotations

import functools
from typing import Callable, Optional

from ..grb.errors import GraphBLASError
from . import algorithms as _alg
from .errors import LAGraphError, MsgBuffer, Status
from .graph import Graph
from .kinds import Kind

__all__ = [
    "MsgBuffer", "lagraph_try", "grb_try",
    "LAGraph_New", "LAGraph_Delete", "LAGraph_DeleteProperties",
    "LAGraph_Property_AT", "LAGraph_Property_RowDegree",
    "LAGraph_Property_ColDegree", "LAGraph_Property_ASymmetricPattern",
    "LAGraph_Property_NDiag", "LAGraph_CheckGraph",
    "LAGraph_BreadthFirstSearch", "LAGraph_VertexCentrality_Betweenness",
    "LAGraph_PageRank", "LAGraph_SingleSourceShortestPath",
    "LAGraph_TriangleCount", "LAGraph_ConnectedComponents",
    "LAGraph_KTruss", "LAGraph_LCC", "LAGraph_MaximalIndependentSet",
    "LAGraph_CDLP", "LAGraph_MSF",
]


def _c_call(fn: Callable, msg: Optional[MsgBuffer], *args, **kwargs):
    """Run ``fn``; translate exceptions into (status, ...) + msg text."""
    if msg is not None:
        msg.clear()
    try:
        out = fn(*args, **kwargs)
    except LAGraphError as e:
        if msg is not None:
            msg.set(str(e))
        return (e.status,)
    except GraphBLASError as e:
        if msg is not None:
            msg.set(str(e))
        return (e.info,)
    except (ValueError, TypeError) as e:
        if msg is not None:
            msg.set(str(e))
        return (Status.INVALID_VALUE,)
    if out is None:
        return (Status.SUCCESS,)
    if isinstance(out, tuple):
        return (Status.SUCCESS, *out)
    return (Status.SUCCESS, out)


def c_style(fn: Callable) -> Callable:
    """Decorator producing a C-convention wrapper of a pythonic function.

    The wrapped function takes ``msg`` as its *last* positional argument
    (or omits it), exactly like the C prototypes.
    """

    @functools.wraps(fn)
    def wrapper(*args, msg: Optional[MsgBuffer] = None, **kwargs):
        return _c_call(fn, msg, *args, **kwargs)

    return wrapper


# ---------------------------------------------------------------------------
# TRY / CATCH
# ---------------------------------------------------------------------------

def lagraph_try(status: int, catch: Optional[Callable[[int], None]] = None,
                msg: Optional[MsgBuffer] = None) -> int:
    """``LAGraph_TRY``: raise on error status, after invoking ``catch``.

    Warnings (``status > 0``) pass through, as in the C macro.
    """
    if status < 0:
        if catch is not None:
            catch(status)
        text = msg.value if msg is not None else ""
        raise LAGraphError(text or f"LAGraph error {status}", status=status)
    return status


def grb_try(status: int, catch: Optional[Callable[[int], None]] = None,
            msg: Optional[MsgBuffer] = None) -> int:
    """``GrB_TRY``: raise on any GraphBLAS status except SUCCESS/NO_VALUE."""
    if status not in (0, 1):  # GrB_SUCCESS, GrB_NO_VALUE
        if catch is not None:
            catch(status)
        text = msg.value if msg is not None else ""
        raise GraphBLASError(text or f"GraphBLAS error {status}", info=status)
    return status


# ---------------------------------------------------------------------------
# graph construction / properties
# ---------------------------------------------------------------------------

def LAGraph_New(matrix_ref: list, kind: Kind, msg: Optional[MsgBuffer] = None):
    """``(status, G)`` — move-construct a Graph; ``matrix_ref[0]`` becomes None."""
    return _c_call(Graph.new, msg, matrix_ref, kind)


def LAGraph_Delete(graph_ref: list, msg: Optional[MsgBuffer] = None):
    """Free the graph held in a one-element list (sets the slot to None)."""
    if msg is not None:
        msg.clear()
    if not (isinstance(graph_ref, list) and len(graph_ref) == 1):
        if msg is not None:
            msg.set("LAGraph_Delete expects a one-element list")
        return (Status.INVALID_VALUE,)
    graph_ref[0] = None
    return (Status.SUCCESS,)


def _c_status(fn: Callable, msg: Optional[MsgBuffer], *args):
    """Like :func:`_c_call` but the function's int return IS the status."""
    result = _c_call(fn, msg, *args)
    if len(result) == 2 and isinstance(result[1], int):
        return (result[1],)
    return result


def LAGraph_DeleteProperties(g: Graph, msg: Optional[MsgBuffer] = None):
    return _c_status(g.invalidate_properties, msg)


def LAGraph_Property_AT(g: Graph, msg: Optional[MsgBuffer] = None):
    return _c_status(g.cache_at, msg)


def LAGraph_Property_RowDegree(g: Graph, msg: Optional[MsgBuffer] = None):
    return _c_status(g.cache_row_degree, msg)


def LAGraph_Property_ColDegree(g: Graph, msg: Optional[MsgBuffer] = None):
    return _c_status(g.cache_col_degree, msg)


def LAGraph_Property_ASymmetricPattern(g: Graph, msg: Optional[MsgBuffer] = None):
    return _c_status(g.cache_symmetric_pattern, msg)


def LAGraph_Property_NDiag(g: Graph, msg: Optional[MsgBuffer] = None):
    return _c_status(g.cache_ndiag, msg)


def LAGraph_CheckGraph(g: Graph, msg: Optional[MsgBuffer] = None):
    return _c_status(g.check, msg)


# ---------------------------------------------------------------------------
# algorithms
# ---------------------------------------------------------------------------

def LAGraph_BreadthFirstSearch(g: Graph, source: int,
                               msg: Optional[MsgBuffer] = None):
    """``(status, level, parent)`` — Basic-mode BFS."""
    def run():
        p, lv = _alg.bfs(g, source, parent=True, level=True)
        return lv, p
    return _c_call(run, msg)


def LAGraph_VertexCentrality_Betweenness(g: Graph, sources,
                                         msg: Optional[MsgBuffer] = None):
    """``(status, centrality)``."""
    return _c_call(_alg.betweenness_centrality, msg, g, sources)


def LAGraph_PageRank(g: Graph, damping: float = 0.85, tol: float = 1e-4,
                     itermax: int = 100, msg: Optional[MsgBuffer] = None):
    """``(status, rank, iterations)``."""
    return _c_call(_alg.pagerank, msg, g, damping=damping, tol=tol,
                   itermax=itermax)


def LAGraph_SingleSourceShortestPath(g: Graph, source: int,
                                     delta: float | None = None,
                                     msg: Optional[MsgBuffer] = None):
    """``(status, distances)``."""
    return _c_call(_alg.sssp, msg, g, source, delta)


def LAGraph_TriangleCount(g: Graph, msg: Optional[MsgBuffer] = None):
    """``(status, ntriangles)`` — Basic-mode triangle count."""
    return _c_call(_alg.triangle_count_basic, msg, g)


def LAGraph_ConnectedComponents(g: Graph, msg: Optional[MsgBuffer] = None):
    """``(status, components)``."""
    return _c_call(_alg.connected_components, msg, g)


# ---------------------------------------------------------------------------
# experimental tier (Sec. II-E): faster cadence, same convention
# ---------------------------------------------------------------------------

def LAGraph_KTruss(g: Graph, k: int, msg: Optional[MsgBuffer] = None):
    """``(status, truss_matrix)``."""
    from . import experimental as _exp
    return _c_call(_exp.ktruss, msg, g, k)


def LAGraph_LCC(g: Graph, msg: Optional[MsgBuffer] = None):
    """``(status, coefficients)``."""
    from . import experimental as _exp
    return _c_call(_exp.local_clustering_coefficient, msg, g)


def LAGraph_MaximalIndependentSet(g: Graph, seed: int = 0,
                                  msg: Optional[MsgBuffer] = None):
    """``(status, iset)``."""
    from . import experimental as _exp
    return _c_call(_exp.maximal_independent_set, msg, g, seed)


def LAGraph_CDLP(g: Graph, iterations: int = 10,
                 msg: Optional[MsgBuffer] = None):
    """``(status, labels)``."""
    from . import experimental as _exp
    return _c_call(_exp.cdlp, msg, g, iterations)


def LAGraph_MSF(g: Graph, msg: Optional[MsgBuffer] = None):
    """``(status, forest, total_weight)``."""
    from . import experimental as _exp
    return _c_call(_exp.minimum_spanning_forest, msg, g)
