"""Multi-source BFS with a batched matrix frontier (the Alg. 3 trick, alone).

The paper's batched betweenness centrality (Sec. IV-B) runs ``ns`` BFS
sweeps simultaneously by stacking the per-source frontiers as the rows of an
``ns × n`` matrix, turning each level's expansion into one masked
matrix-matrix multiply.  This module extracts that trick as a standalone
service kernel: answer many independent BFS queries with one ``mxm`` per
level instead of one ``vxm`` per level *per source*.

Semantics match the single-source algorithms row by row — bit for bit:

* :func:`msbfs_parents` — row ``k`` equals ``bfs_parent_push(g, sources[k])``.
  The ``any`` monoid of Alg. 1 picks the first candidate in storage order,
  which (the frontier being sorted) is the *smallest* frontier node adjacent
  to the discovered node.  Both execution strategies below preserve exactly
  that choice.
* :func:`msbfs_levels` — row ``k`` equals ``bfs_level(g, sources[k])``.

Two execution strategies:

``method="mxm"``
    The literal batched Alg. 1: one ``any.secondi`` (parents) or
    ``any.pair`` (levels) masked ``mxm`` per level.  Runs on the flop-order
    expansion kernel, which takes a sort-free dense-scatter path for ``any``
    reductions on tall frontier matrices (see
    :mod:`repro.grb._kernels.matmul`).

``method="pair"`` (parents: ``"probe"``)
    Frontier expansion as a structural ``plus.pair`` product — algebraically
    the same pattern, but ``plus.pair`` is SciPy-reducible so each level
    rides the compiled CSR matmul.  For parents, the witness (which frontier
    node discovered each new node) is recovered *after* the masked product,
    only for the newly discovered entries: the parent of ``(i, j)`` is the
    first in-neighbour of ``j`` (ascending, i.e. ``Aᵀ`` row order) present in
    row ``i``'s frontier — identical to the ``any.secondi`` pick.  A few
    vectorised probe rounds against a dense frontier bitmap resolve almost
    all entries (the early-exit that makes pull steps cheap, Sec. VI-A);
    stragglers fall back to one ragged gather.

``method="auto"`` picks ``"pair"``/``"probe"`` — the fast path — unless the
batch is trivially small.  Duplicate sources are allowed (rows are computed
independently).  Advanced mode: nothing is cached on the graph (``Aᵀ`` for
the probe comes from the matrix's own transpose cache, or ``G.AT`` when
already present).

Level fusion: whatever the method, frontiers under
:data:`repro.grb.engine.cost.MSBFS_FUSE_FRONTIER_K`
live entries skip the matrix machinery — consecutive near-empty levels run
as raw-array neighbour expansions against a dense discovered-set bitmap,
and their discoveries merge into the output once per fused run.  This is
what makes the high-diameter road regime cheap (hundreds of slim levels,
each previously paying mxm + mask materialisation + an O(nvals) output
rebuild); results are bit-identical at every threshold.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ... import grb
from ...grb import Matrix, complement, structure
from ...grb import cancel as _cancel
from ...grb.engine import cost as _cost
from ...grb._kernels.gather import csr_gather_rows
from ..graph import Graph

__all__ = ["msbfs_levels", "msbfs_parents", "msbfs"]

_ANY_SECONDI = grb.semiring("any", "secondi")
_ANY_PAIR = grb.semiring("any", "pair")
_PLUS_PAIR = grb.semiring("plus", "pair")

#: Probe rounds against the frontier bitmap before the ragged fallback
#: (a kernel-mechanism cap; the *chooser* constants live in the engine's
#: unified cost model — ``MSBFS_AUTO_BATCH_THRESHOLD``,
#: ``MSBFS_PROBE_DENSITY`` and ``MSBFS_FUSE_FRONTIER_K`` in
#: :mod:`repro.grb.engine.cost` — read at call time, monkeypatchable like
#: every other planner tunable).  The fusion threshold is the ROADMAP
#: road-graph follow-up: a high-diameter batch spends hundreds of levels
#: on slim frontiers, and per-level mxm + mask-write + output-rebuild
#: overhead dominates the actual expansion work (~13× on the small road
#: grid, 64 sources); low-diameter graphs blow past the threshold after a
#: level or two and keep the compiled product.
PROBE_ROUNDS = 16


def _check_sources(g: Graph, sources) -> np.ndarray:
    sources = np.asarray(sources, dtype=np.int64)
    if sources.ndim != 1:
        raise grb.InvalidValue("sources must be a 1-D sequence of node ids")
    if sources.size and (sources.min() < 0 or sources.max() >= g.n):
        raise grb.IndexOutOfBounds(
            f"source out of range [0, {g.n}): {sources}")
    return sources


def _transpose_of(g: Graph) -> Matrix:
    """``Aᵀ`` without mutating the graph: the cached property when present
    (aliases ``A`` for undirected graphs), else the matrix's own cache."""
    return g.AT if g.AT is not None else g.A.T


def _fused_expand(a: Matrix, f_keys: np.ndarray, n: int,
                  visited_bits: np.ndarray):
    """Direct neighbour expansion of a tiny raw-array frontier.

    ``f_keys`` are the frontier's sorted ``i * n + j`` keys;
    ``visited_bits`` the dense discovered-set bitmap.  Returns
    ``(new_keys, new_parents)``: the undiscovered keys reached, each with
    the smallest frontier entry of its row that reaches it — the same pick
    the ``any.secondi`` masked mxm makes, so fused and unfused levels
    interleave bit for bit.
    """
    rows = f_keys // np.int64(n)
    cols = f_keys - rows * np.int64(n)
    rep, j, _ = csr_gather_rows(a.indptr, a.indices, None, cols)
    keys = rows[rep] * np.int64(n) + j
    par = cols[rep]
    # frontier entries are enumerated in storage order (k ascending within a
    # row), so the stable sort keeps the smallest k first within each key —
    # exactly Monoid.reduce_groups' "any" pick
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    par = par[order]
    first = np.ones(keys.size, dtype=bool)
    first[1:] = keys[1:] != keys[:-1]
    keys = keys[first]
    par = par[first]
    fresh = ~visited_bits[keys]
    return keys[fresh], par[fresh]


def _merge_disjoint(out: Matrix, new_keys, new_vals):
    """Merge (sorted, disjoint) new entries into ``out`` in one pass."""
    keys = out.keys()
    pos = np.searchsorted(keys, new_keys)
    out._set_from_keys(np.insert(keys, pos, new_keys),
                       np.insert(out.values, pos, new_vals))


def _flush_fused(out: Matrix, acc_keys, acc_vals):
    """Merge the entries accumulated over a fused run into ``out``.

    One sorted merge for the whole run — that, not the skipped mxm alone,
    is what makes hundreds of near-empty levels cheap: the O(nvals) output
    rebuild is paid once per *run* instead of once per *level*.
    """
    if not acc_keys:
        return
    keys = np.concatenate(acc_keys)
    vals = np.concatenate(acc_vals)
    order = np.argsort(keys, kind="stable")   # levels are pairwise disjoint
    _merge_disjoint(out, keys[order], vals[order])
    acc_keys.clear()
    acc_vals.clear()


# ---------------------------------------------------------------------------
# parents
# ---------------------------------------------------------------------------

def _first_frontier_in_neighbor(at_indptr, at_indices, frontier_bits,
                                row_base, j, probe_rounds=PROBE_ROUNDS):
    """Parent of each new entry: first in-neighbour of ``j`` in the frontier.

    ``frontier_bits`` is the dense ``ns × n`` frontier bitmap (flattened);
    ``row_base[e] = i_e * n``.  Every entry is guaranteed a hit (it was just
    discovered *from* the frontier), so the probe cursors never run past the
    end of their ``Aᵀ`` rows while unresolved.
    """
    m = j.size
    parent = np.empty(m, dtype=np.int64)
    unresolved = np.arange(m, dtype=np.int64)
    cur = at_indptr[j].copy()
    for _ in range(probe_rounds):  # cancel: checkpoint-exempt (bounded by PROBE_ROUNDS; caller checkpoints at level boundaries)
        if unresolved.size == 0:
            return parent
        k = at_indices[cur[unresolved]]
        hit = frontier_bits[row_base[unresolved] + k]
        res = unresolved[hit]
        parent[res] = k[hit]
        cur[unresolved] += 1
        unresolved = unresolved[~hit]
    if unresolved.size:
        # ragged fallback: scan the full in-neighbour lists of the stragglers
        ent_rep, kcand, _ = csr_gather_rows(at_indptr, at_indices, None,
                                            j[unresolved])
        valid = np.flatnonzero(frontier_bits[row_base[unresolved][ent_rep]
                                             + kcand])
        ents = ent_rep[valid]
        first = np.ones(ents.size, dtype=bool)
        first[1:] = ents[1:] != ents[:-1]
        parent[unresolved[ents[first]]] = kcand[valid[first]]
    return parent


def _msbfs_parents_probe(g: Graph, sources: np.ndarray) -> Matrix:
    """Adaptive strategy: push sparse levels, probe dense ones.

    Sparse frontiers expand through the ``any.secondi`` flop kernel (cost ∝
    frontier out-degrees — cheap exactly when the frontier is light).  Dense
    frontiers run the compiled ``plus.pair`` structural product and recover
    each new node's witness by probing its in-neighbours against a frontier
    bitmap (a hit lands within a couple of rounds exactly when the frontier
    is heavy).  Frontiers below ``MSBFS_FUSE_FRONTIER_K`` live entries leave
    the matrix machinery entirely: consecutive near-empty levels run as
    raw-array neighbour expansions (fused run) and merge into ``P`` once at
    the end of the run.  All three legs pick the smallest frontier
    in-neighbour, so the output is independent of every switch point.
    """
    a = g.A
    at = _transpose_of(g)
    n = g.n
    ns = sources.size
    grid = ns * n
    batch = np.arange(ns, dtype=np.int64)
    p = Matrix.from_coo(batch, sources, sources, ns, n, typ=grb.INT64,
                        dup_op=grb.binary.FIRST)
    f = p.dup()
    bits = np.zeros(grid, dtype=bool)          # current frontier bitmap
    prev_keys = batch * np.int64(n) + sources
    bits[prev_keys] = True
    vbits = np.zeros(grid, dtype=bool)         # discovered-set bitmap
    vbits[prev_keys] = True
    f_keys = None        # raw-mode frontier keys (fused run in progress)
    f_vals = None
    acc_keys: list = []  # discoveries accumulated over the fused run
    acc_vals: list = []
    for _level in range(1, n):
        _cancel.checkpoint()        # deadline/cancel at the level boundary
        cur_nvals = f.nvals if f_keys is None else f_keys.size
        if 0 < cur_nvals < _cost.MSBFS_FUSE_FRONTIER_K:
            # fused level: no mxm, no mask-write, no per-level P rebuild
            fk = f.keys() if f_keys is None else f_keys
            new_keys, new_par = _fused_expand(a, fk, n, vbits)
            if new_keys.size == 0:
                break
            vbits[new_keys] = True
            acc_keys.append(new_keys)
            acc_vals.append(new_par)
            f_keys, f_vals = new_keys, new_par
            continue
        if f_keys is not None:
            # frontier grew back: leave the fused run, restore matrix state
            _flush_fused(p, acc_keys, acc_vals)
            f = Matrix(grb.INT64, ns, n)
            f._set_from_keys(f_keys, f_vals)
            bits[prev_keys] = False
            prev_keys = f_keys
            bits[prev_keys] = True
            f_keys = f_vals = None
        probe = f.nvals >= _cost.MSBFS_PROBE_DENSITY * grid
        if probe:
            # F⟨¬s(P), r⟩ = F plus.pair A — new-frontier *structure* only;
            # witnesses recovered below at output scale
            grb.mxm(f, f, a, _PLUS_PAIR,
                    mask=complement(structure(p)), replace=True)
        else:
            # F⟨¬s(P), r⟩ = F any.secondi A — push, values are the parents
            grb.mxm(f, f, a, _ANY_SECONDI,
                    mask=complement(structure(p)), replace=True)
        if f.nvals == 0:
            break
        i = f._S().entry_rows()
        j = f.indices
        row_base = i * np.int64(n)
        if probe:
            parents = _first_frontier_in_neighbor(at.indptr, at.indices,
                                                  bits, row_base, j)
            t = Matrix(grb.INT64, ns, n)
            t._set_from_keys(row_base + j, parents)
            grb.update(p, t, mask=structure(t))
        else:
            grb.update(p, f, mask=structure(f))
        # clear only last level's bits: O(frontier), not O(grid), per level
        bits[prev_keys] = False
        prev_keys = row_base + j
        bits[prev_keys] = True
        vbits[prev_keys] = True
    _flush_fused(p, acc_keys, acc_vals)
    return p


def _msbfs_parents_mxm(g: Graph, sources: np.ndarray) -> Matrix:
    """Literal batched Alg. 1: one ``any.secondi`` masked mxm per level."""
    a = g.A
    n = g.n
    ns = sources.size
    batch = np.arange(ns, dtype=np.int64)
    p = Matrix.from_coo(batch, sources, sources, ns, n, typ=grb.INT64,
                        dup_op=grb.binary.FIRST)
    f = p.dup()
    for _level in range(1, n):
        _cancel.checkpoint()        # deadline/cancel at the level boundary
        # F⟨¬s(P), r⟩ = F any.secondi A   (secondi = frontier node = parent)
        grb.mxm(f, f, a, _ANY_SECONDI,
                mask=complement(structure(p)), replace=True)
        if f.nvals == 0:
            break
        grb.update(p, f, mask=structure(f))
    return p


def msbfs_parents(g: Graph, sources: Sequence[int], *,
                  method: str = "auto") -> Matrix:
    """Batched parents BFS: ``P[k, v]`` is the BFS-tree parent of ``v`` in
    the sweep rooted at ``sources[k]`` (``P[k, sources[k]] == sources[k]``);
    unreached ``(k, v)`` pairs have no entry.

    Returns an ``ns × n`` INT64 matrix whose row ``k`` is identical to
    ``bfs_parent_push(g, sources[k])``, whichever ``method`` runs.
    """
    sources = _check_sources(g, sources)
    if method == "auto":
        method = "probe" if sources.size >= _cost.MSBFS_AUTO_BATCH_THRESHOLD \
            else "mxm"
    if sources.size == 0:
        return Matrix(grb.INT64, 0, g.n)
    if method == "probe":
        return _msbfs_parents_probe(g, sources)
    if method == "mxm":
        return _msbfs_parents_mxm(g, sources)
    raise grb.InvalidValue(f"unknown msbfs method {method!r}")


# ---------------------------------------------------------------------------
# levels
# ---------------------------------------------------------------------------

def msbfs_levels(g: Graph, sources: Sequence[int], *,
                 method: str = "auto") -> Matrix:
    """Batched level BFS: ``L[k, v]`` is the BFS depth of ``v`` from
    ``sources[k]`` (source depth 0); unreached pairs have no entry.

    Returns an ``ns × n`` INT64 matrix whose row ``k`` is identical to
    ``bfs_level(g, sources[k])``.
    """
    sources = _check_sources(g, sources)
    if method == "auto":
        method = "pair" if sources.size >= _cost.MSBFS_AUTO_BATCH_THRESHOLD \
            else "any"
    if method == "pair":
        semiring = _PLUS_PAIR      # SciPy-reducible: compiled CSR product
    elif method == "any":
        semiring = _ANY_PAIR       # sort-free dense-scatter expansion
    else:
        raise grb.InvalidValue(f"unknown msbfs method {method!r}")
    a = g.A
    n = g.n
    ns = sources.size
    batch = np.arange(ns, dtype=np.int64)
    lvl = Matrix.from_coo(batch, sources, np.zeros(ns, dtype=np.int64),
                          ns, n, typ=grb.INT64, dup_op=grb.binary.FIRST)
    if ns == 0:
        return lvl
    f = Matrix.from_coo(batch, sources, np.ones(ns, dtype=np.bool_),
                        ns, n, dup_op=grb.binary.LOR)
    vbits = np.zeros(ns * n, dtype=bool)       # discovered-set bitmap
    vbits[batch * np.int64(n) + sources] = True
    f_keys = None        # raw-mode frontier keys (fused run in progress)
    acc_keys: list = []  # discoveries accumulated over the fused run
    acc_vals: list = []
    for depth in range(1, n):
        _cancel.checkpoint()        # deadline/cancel at the level boundary
        cur_nvals = f.nvals if f_keys is None else f_keys.size
        if 0 < cur_nvals < _cost.MSBFS_FUSE_FRONTIER_K:
            # fused level (see MSBFS_FUSE_FRONTIER_K): one gather per level, one
            # sorted merge per *run* — no mxm, no pattern stamp, no masked
            # update, no per-level L rebuild
            fk = f.keys() if f_keys is None else f_keys
            new_keys, _ = _fused_expand(a, fk, n, vbits)
            if new_keys.size == 0:
                break
            vbits[new_keys] = True
            acc_keys.append(new_keys)
            acc_vals.append(np.full(new_keys.size, depth, dtype=np.int64))
            f_keys = new_keys
            continue
        if f_keys is not None:
            # frontier grew back: leave the fused run, restore matrix state
            _flush_fused(lvl, acc_keys, acc_vals)
            f = Matrix(grb.BOOL, ns, n)
            f._set_from_keys(f_keys, np.ones(f_keys.size, dtype=np.bool_))
            f_keys = None
        # F⟨¬s(L), r⟩ = F ⊕.pair A — only the pattern is consumed
        grb.mxm(f, f, a, semiring,
                mask=complement(structure(lvl)), replace=True)
        if f.nvals == 0:
            break
        vbits[f.keys()] = True
        # L⟨s(F)⟩ = depth: stamp the depth on the new frontier's pattern
        # (sparse analogue of bfs_level's assign_scalar, which would expand
        # the full ns × n key grid per level).
        t = f.pattern(grb.INT64)
        t.values[:] = depth
        grb.update(lvl, t, mask=structure(t))
    _flush_fused(lvl, acc_keys, acc_vals)
    return lvl


def msbfs(g: Graph, sources: Sequence[int], *,
          parent: bool = True, level: bool = False,
          ) -> Tuple[Matrix | None, Matrix | None]:
    """Basic-mode batched BFS: returns ``(parents, levels)`` matrices
    (``None`` for whichever was not requested), one row per source.
    """
    p = msbfs_parents(g, sources) if parent else None
    lv = msbfs_levels(g, sources) if level else None
    return p, lv
