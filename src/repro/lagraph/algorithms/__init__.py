"""The six GAP-benchmark algorithms (Sec. IV of the paper) — stable tier.

Every algorithm comes in the two user modes of Sec. II-B:

* **Basic** entry points (`bfs`, `pagerank`, `betweenness_centrality`,
  `sssp`, `triangle_count_basic`, `connected_components`) "just work":
  they may inspect the graph, compute & cache properties, and pick an
  implementation.
* **Advanced** entry points (`bfs_parent_push`, `bfs_parent_do`,
  `pagerank_gap`, `pagerank_gx`, `betweenness_centrality_batch`,
  `sssp_delta_stepping`, `sssp_bellman_ford`, `triangle_count`, `fastsv`)
  never compute cached properties and raise
  :class:`~repro.lagraph.errors.PropertyMissing` /
  :class:`~repro.lagraph.errors.InvalidKind` when preconditions are unmet.
"""

from .bc import betweenness_centrality, betweenness_centrality_batch
from .bfs import (bfs, bfs_level, bfs_parent_auto, bfs_parent_do,
                  bfs_parent_fused, bfs_parent_push)
from .cc import connected_components, fastsv
from .msbfs import msbfs, msbfs_levels, msbfs_parents
from .pagerank import pagerank, pagerank_gap, pagerank_gx
from .sssp import sssp, sssp_batch, sssp_bellman_ford, sssp_delta_stepping
from .tc import (
    METHODS as TC_METHODS,
    triangle_count,
    triangle_count_basic,
    triangle_count_method,
)

__all__ = [
    "bfs", "bfs_level", "bfs_parent_auto", "bfs_parent_do", "bfs_parent_fused",
    "bfs_parent_push",
    "betweenness_centrality", "betweenness_centrality_batch",
    "connected_components", "fastsv",
    "msbfs", "msbfs_levels", "msbfs_parents",
    "pagerank", "pagerank_gap", "pagerank_gx",
    "sssp", "sssp_batch", "sssp_bellman_ford", "sssp_delta_stepping",
    "triangle_count", "triangle_count_basic", "triangle_count_method",
    "TC_METHODS",
]
