"""Connected components — FastSV (Sec. IV-F; Algorithm 7 of the paper).

Zhang, Azad & Buluç's FastSV maintains a forest as a parent vector ``f``
and repeats five steps until the grandparent vector stops changing:

1. *stochastic hooking* — ``mngf = A min.second gf`` pulls the minimum
   grandparent among each node's neighbours (one ``mxv`` on the
   ``min.second`` semiring), then hooks each node's tree root onto it:
   ``f(x) = f(x) min mngf`` where ``x`` is the parents array;
2. *aggressive hooking* — ``f = f min mngf``;
3. *shortcutting* — ``f = f min gf``;
4. *grandparent recomputation* — ``gf = f(f)`` (an ``extract``);
5. *termination* — stop when ``gf`` is unchanged.

The hooking scatter (``f(x) min= mngf`` with duplicate targets) relies on
the duplicate-tolerant min-assign that SS:GrB provides; here it is an
explicit ``np.minimum.at`` scatter, documented as such.

The component label of a node is the minimum node id of its component.
"""

from __future__ import annotations

import numpy as np

from ... import grb
from ...grb import Vector, engine
from ...grb import cancel as _cancel
from ..errors import InvalidKind
from ..graph import Graph
from ..kinds import Kind

__all__ = ["connected_components", "fastsv"]

_MIN_SECOND = grb.semiring("min", "second")


def fastsv(g: Graph) -> Vector:
    """Advanced mode: FastSV on an undirected graph.

    Requires ``g`` to be undirected, or directed with a cached
    ``A_pattern_is_symmetric == True`` (Sec. II-B strictness).  Returns a
    dense INT64 vector mapping every node to its component's minimum id.
    """
    if g.kind is not Kind.ADJACENCY_UNDIRECTED:
        if not g.A_pattern_is_symmetric:
            raise InvalidKind(
                "fastsv requires an undirected graph (or a cached symmetric "
                "pattern)")
    a = g.A
    n = g.n
    f = np.arange(n, dtype=np.int64)       # parent vector
    gf = f.copy()                          # grandparents

    while True:
        _cancel.checkpoint()        # deadline/cancel at the round boundary
        # Step 1a: mngf(i) = min over neighbours j of gf(j) — raw kernel
        # output scattered over the grandparent array (isolated nodes keep
        # gf), no intermediate vector or bitmap materialised
        idx, vals = engine.execute(
            engine.plan_mxv(None, a, Vector.from_dense(gf), _MIN_SECOND))
        mngf = gf.copy()
        mngf[idx] = vals
        # Step 1b: stochastic hooking — duplicate-tolerant min scatter
        x = f.copy()
        np.minimum.at(f, x, mngf)
        # Step 2: aggressive hooking
        np.minimum(f, mngf, out=f)
        # Step 3: shortcutting
        np.minimum(f, gf, out=f)
        # Step 4: grandparents
        new_gf = f[f]
        # Step 5: termination
        if np.array_equal(new_gf, gf):
            break
        gf = new_gf

    # full pointer jumping to canonical roots (FastSV leaves height ≤ 2)
    while True:
        _cancel.checkpoint()        # deadline/cancel between jumping rounds
        ff = f[f]
        if np.array_equal(ff, f):
            break
        f = ff
    return Vector.from_dense(f)


def connected_components(g: Graph) -> Vector:
    """Basic mode: symmetrises a directed graph's pattern, then FastSV.

    For directed inputs this computes *weakly* connected components, as the
    GAP benchmark's CC kernel does.
    """
    if g.kind is Kind.ADJACENCY_UNDIRECTED:
        return fastsv(g)
    sym = g.A.pattern().ewise_add(g.A.T.pattern(), grb.binary.LOR)
    h = Graph(sym, Kind.ADJACENCY_UNDIRECTED)
    return fastsv(h)
