"""Batched betweenness centrality (Sec. IV-B; Algorithm 3 of the paper).

Brandes' algorithm over a batch of ``ns`` sources at once: the per-source
BFS frontiers become the rows of an ``ns × n`` matrix, so every step is one
masked matrix-matrix multiply over the ``plus.first`` semiring.

Forward (BFS) phase — per level ``d``::

    S[d] = pattern of F                (which nodes sit at depth d, per source)
    P += F                             (accumulate shortest-path counts)
    F⟨¬s(P), r⟩ = F plus.first A       (expand to unvisited nodes)

Backward (dependency) phase — descending ``i``::

    W⟨s(S[i]),   r⟩ = B div∩ P         (δ+1 scaled by path counts)
    W⟨s(S[i-1]), r⟩ = W plus.first Aᵀ  (pull dependencies one level up)
    B += W ×∩ P

    centrality = [+ᵢ B(i, :)] − ns

(The paper's Alg. 3 writes the backward loop down to 0 referencing
``S[i-1]``; as in the C implementation the loop body is only defined down
to ``i = 1``.)

The GAP benchmark uses ``ns = 4`` sources per batch.

Both phases lean on the mask-driven SpGEMM engine
(:mod:`repro.grb._kernels.masked_matmul`) with zero call-site changes: the
backward ``W⟨s(S[i-1])⟩`` levels are dot-eligible (structural,
non-complemented masks), and the forward ``⟨¬s(P)⟩`` expansion gets the
complemented-mask row restriction — rows whose ``P`` row is already full
(a source that reached the whole graph) are never multiplied.  Results are
bit-identical to the unmasked-then-write reference.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ... import grb
from ...grb import Matrix, Vector, complement, structure
from ...grb import cancel as _cancel
from ..errors import PropertyMissing
from ..graph import Graph

__all__ = ["betweenness_centrality", "betweenness_centrality_batch"]

_PLUS_FIRST = grb.semiring("plus", "first")


def betweenness_centrality_batch(g: Graph, sources: Sequence[int]) -> Vector:
    """Advanced mode: batched BC contribution of ``sources``.

    Requires ``G.AT`` cached (the backward phase pulls through ``Aᵀ``);
    raises :class:`PropertyMissing` otherwise.  Returns the dense FP64
    centrality vector ``Σ_s δ_s(v)`` summed over the batch.
    """
    if g.AT is None:
        raise PropertyMissing("betweenness_centrality_batch requires cached G.AT")
    a = g.A
    at = g.AT
    n = g.n
    sources = np.asarray(sources, dtype=np.int64)
    ns = sources.size
    if ns == 0:
        return Vector.from_dense(np.zeros(n))
    if sources.min() < 0 or sources.max() >= n:
        raise grb.IndexOutOfBounds("BC source out of range")

    batch = np.arange(ns, dtype=np.int64)
    # P(k, j): number of shortest paths from source k to node j.
    p = Matrix.from_coo(batch, sources, np.ones(ns), ns, n)
    # First frontier: F⟨¬s(P)⟩ = P plus.first A
    f = Matrix(grb.FP64, ns, n)
    grb.mxm(f, p, a, _PLUS_FIRST, mask=complement(structure(p)))

    # Forward phase: one boolean pattern matrix per BFS level.
    levels = []
    while f.nvals:
        _cancel.checkpoint()        # deadline/cancel at the level boundary
        levels.append(f.pattern())
        grb.update(p, f, accum=grb.binary.PLUS)
        grb.mxm(f, f, a, _PLUS_FIRST,
                mask=complement(structure(p)), replace=True)

    # Backward phase.
    b = Matrix.from_dense(np.ones((ns, n)))
    w = Matrix(grb.FP64, ns, n)
    for i in range(len(levels) - 1, 0, -1):
        _cancel.checkpoint()        # deadline/cancel at the level boundary
        grb.ewise_mult(w, b, p, grb.binary.DIV,
                       mask=structure(levels[i]), replace=True)
        grb.mxm(w, w, at, _PLUS_FIRST,
                mask=structure(levels[i - 1]), replace=True)
        grb.ewise_add(b, b, w.ewise_mult(p, grb.binary.TIMES),
                      op=grb.binary.PLUS)

    # centrality(j) = Σᵢ (B(i, j) − 1)
    centrality = Vector.from_dense(np.full(n, -float(ns)))
    grb.reduce_colwise(centrality, b, grb.monoid.PLUS_MONOID,
                       accum=grb.binary.PLUS)
    return centrality


def betweenness_centrality(g: Graph, sources: Sequence[int] | None = None,
                           batch_size: int = 4, seed: int = 0) -> Vector:
    """Basic mode: "just works" BC.

    * caches ``G.AT`` if absent (Basic algorithms may compute properties);
    * ``sources=None`` draws GAP-style random sources (``batch_size`` of
      them); passing an explicit list computes the exact contribution of
      those sources (use ``range(n)`` for exact BC);
    * batches the sources ``batch_size`` at a time and sums the results.
    """
    g.cache_at()
    n = g.n
    if sources is None:
        rng = np.random.default_rng(seed)
        sources = rng.integers(0, n, size=batch_size)
    sources = np.asarray(sources, dtype=np.int64)
    total = Vector.from_dense(np.zeros(n))
    for start in range(0, sources.size, batch_size):
        _cancel.checkpoint()        # deadline/cancel at the batch boundary
        chunk = sources[start:start + batch_size]
        part = betweenness_centrality_batch(g, chunk)
        grb.ewise_add(total, total, part, op=grb.binary.PLUS)
    return total
