"""Triangle counting (Sec. IV-E; Algorithm 6 of the paper).

The headline method is the GAP one (``sandia_lut``): sort-by-degree
heuristic, split into lower/upper triangles, then one masked multiply on
the ``plus.pair`` semiring::

    C⟨s(L)⟩ = L plus.pair Uᵀ ;  t = [+ᵢⱼ C(i, j)]

``pair`` ignores the values (structure-only counting) and the structural
mask keeps only wedge closures that are actual edges — each triangle is
counted exactly once.

The other LAGraph methods are provided too (they differ in which triangle/
transpose combination feeds the multiply, trading flops for mask
selectivity):

===========  =====================================
burkhardt    ``t = Σ (A² .*∩ A) / 6``
cohen        ``t = Σ (L·U .*∩ A) / 2``
sandia_ll    ``C⟨s(L)⟩ = L plus.pair L``   (saxpy style)
sandia_uu    ``C⟨s(U)⟩ = U plus.pair U``   (saxpy style)
sandia_lut   ``C⟨s(L)⟩ = L plus.pair Uᵀ``  (dot style; GAP / Alg. 6)
sandia_ult   ``C⟨s(U)⟩ = U plus.pair Lᵀ``  (dot style)
===========  =====================================

All methods require an undirected graph (symmetric pattern) with an empty
diagonal; Advanced mode raises, Basic mode fixes the input up.

Every method's masked multiply runs on the mask-driven SpGEMM engine
(:mod:`repro.grb._kernels.masked_matmul`): when the cost model favours it,
``C⟨s(L)⟩ = L plus.pair Uᵀ`` is computed as one sorted-intersection dot
product per stored edge of the mask — the way SS:GrB executes Alg. 6 —
instead of materialising the full wedge product and discarding non-edges.
For the ``transpose_b`` dot-style methods the kernel reads the second
operand's own CSR arrays as ``Bᵀ``, so no transpose is ever built.  The
counts are bit-identical either way; ``benchmarks/bench_masked_mxm.py``
carries the ≥3× acceptance guard against the expand path.
"""

from __future__ import annotations


from ... import grb
from ...grb import Matrix, engine, structure
from ..errors import InvalidKind, PropertyMissing
from ..graph import Graph
from ..kinds import Kind
from ..utils.degree import sample_degree, sort_by_degree

__all__ = ["triangle_count", "triangle_count_method", "METHODS"]

_PLUS_PAIR = grb.semiring("plus", "pair")
_PLUS = grb.monoid.PLUS_MONOID

METHODS = ("burkhardt", "cohen", "sandia_ll", "sandia_uu",
           "sandia_lut", "sandia_ult")


def _masked_pair_count(left: Matrix, right: Matrix, mask: Matrix,
                       transpose_b: bool) -> int:
    # one fused plan: the masked multiply's raw ``T⟨M⟩`` arrays feed the
    # scalar reduction as an epilogue — the intermediate count matrix is
    # never materialised, and its masked write-back is never paid (with
    # ``cost.FUSION_ENABLED`` off this decomposes into the seed's
    # build-then-reduce sequence, bit-identically)
    total = engine.execute(
        engine.plan_mxm(None, left, right, _PLUS_PAIR,
                        mask=structure(mask), transpose_b=transpose_b)
        .then_reduce_scalar(_PLUS))
    return int(total)


def triangle_count_method(a: Matrix, method: str = "sandia_lut") -> int:
    """Count triangles of a symmetric, zero-diagonal pattern matrix.

    ``a`` is used structurally; values are ignored (that is the point of
    ``plus.pair``).  See the module docstring for the method catalogue.
    """
    if method not in METHODS:
        raise ValueError(f"unknown TC method {method!r}; one of {METHODS}")
    if method == "burkhardt":
        return _masked_pair_count(a, a, a, transpose_b=False) // 6
    if method == "cohen":
        l = a.tril(-1)
        u = a.triu(1)
        return _masked_pair_count(l, u, a, transpose_b=False) // 2
    l = a.tril(-1)
    u = a.triu(1)
    if method == "sandia_ll":
        return _masked_pair_count(l, l, l, transpose_b=False)
    if method == "sandia_uu":
        return _masked_pair_count(u, u, u, transpose_b=False)
    if method == "sandia_lut":
        return _masked_pair_count(l, u, l, transpose_b=True)
    # sandia_ult
    return _masked_pair_count(u, l, u, transpose_b=True)


def triangle_count(g: Graph, method: str = "sandia_lut",
                   presort: str | None = "auto") -> int:
    """Alg. 6 — triangle count with the degree-sort heuristic.

    Advanced-mode contract: ``g`` must be undirected (or have a cached
    symmetric pattern) with ``ndiag == 0`` known; ``presort="auto"``
    additionally needs ``row_degree`` cached.  Use
    :func:`triangle_count_basic` via ``presort=None``/basic wrapper when
    you just want an answer.

    ``presort``: ``"auto"`` applies Alg. 6's rule (permute ascending by
    degree when sampled ``mean > 4 × median``), ``"ascending"`` /
    ``"descending"`` force it, ``None`` disables it.
    """
    if g.kind is not Kind.ADJACENCY_UNDIRECTED:
        if g.A_pattern_is_symmetric is None:
            raise InvalidKind(
                "triangle_count requires an undirected graph (or cached "
                "symmetric-pattern property)")
        if not g.A_pattern_is_symmetric:
            raise InvalidKind("triangle_count requires a symmetric pattern")
    if g.ndiag == -1:
        raise PropertyMissing("triangle_count requires cached ndiag")
    if g.ndiag != 0:
        raise InvalidKind("triangle_count requires an empty diagonal "
                          "(use Basic mode to strip self-edges)")

    a = g.A.pattern()
    if presort == "auto":
        if g.row_degree is None:
            raise PropertyMissing("presort='auto' requires cached row_degree")
        mean, median = sample_degree(g, byrow=True)
        do_sort = mean > 4.0 * median
        direction = "ascending"
    elif presort in ("ascending", "descending"):
        if g.row_degree is None:
            raise PropertyMissing("explicit presort requires cached row_degree")
        do_sort = True
        direction = presort
    elif presort is None:
        do_sort = False
        direction = "ascending"
    else:
        raise ValueError(f"bad presort {presort!r}")

    if do_sort:
        perm = sort_by_degree(g, byrow=True, ascending=direction == "ascending")
        a = a.extract(perm, perm)
    return triangle_count_method(a, method)


def triangle_count_basic(g: Graph, method: str = "sandia_lut") -> int:
    """Basic mode: symmetrise if needed, drop self-edges, cache, count."""
    a = g.A
    if g.kind is not Kind.ADJACENCY_UNDIRECTED:
        # symmetrise the pattern: A ∨ Aᵀ
        a = a.pattern().ewise_add(a.T.pattern(), grb.binary.LOR)
    if a.ndiag() != 0:
        a = a.offdiag()
    h = Graph(a, Kind.ADJACENCY_UNDIRECTED)
    h.cache_row_degree()
    h.cache_ndiag()
    return triangle_count(h, method=method, presort="auto")
