"""Breadth-first search (Sec. IV-A; Algorithms 1 and 2 of the paper).

The parent BFS rests on the ``any.secondi`` semiring: one ``vxm`` computes
``qᵀ⟨¬s(pᵀ), r⟩ = qᵀ any.secondi A`` — the frontier expansion, parent
selection (``secondi`` yields the id of the frontier node that discovered
each neighbour) and de-duplication (``any`` resolves the benign race by
picking one parent) in a single step.  The follow-up
``p⟨s(q)⟩ = q`` writes the new parents.

Direction optimisation (Alg. 2): a *push* step costs the total out-degree
of the frontier; a *pull* step (``AT any.secondi q`` restricted to the
unvisited rows by the complemented structural mask) costs the total
in-degree of the unvisited set.  The per-level push/pull decision is the
Beamer-style heuristic the GAP benchmark uses, now resident in the
execution engine's rule registry
(:func:`repro.grb.engine.choose_direction`; constants
``PUSHPULL_ALPHA`` / ``PUSHPULL_BETA`` in :mod:`repro.grb.engine.cost`),
so it is forceable and telemetry-observable like every other planner
decision.

Advanced entry points follow Sec. II-B strictly: they never compute cached
properties (``bfs_parent`` with ``direction_optimizing=True`` demands a
cached ``G.AT``) and raise :class:`PropertyMissing` otherwise.  The Basic
entry point computes whatever it needs and caches it on the graph.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ... import grb
from ...grb import Vector, complement, engine, structure
from ...grb import cancel as _cancel
from ...grb.engine import cost as _cost
from ..errors import PropertyMissing
from ..graph import Graph

__all__ = ["bfs", "bfs_parent_push", "bfs_parent_do", "bfs_parent_auto",
           "bfs_parent_fused", "bfs_level"]

_ANY_SECONDI = grb.semiring("any", "secondi")
_ANY_PAIR = grb.semiring("any", "pair")


def _check_source(g: Graph, source: int):
    if not 0 <= source < g.n:
        raise grb.IndexOutOfBounds(
            f"source {source} out of range [0, {g.n})")


def bfs_parent_push(g: Graph, source: int) -> Vector:
    """Alg. 1 — push-only parents BFS (Advanced mode; needs nothing cached).

    Returns the INT64 parent vector: ``p[v]`` is the BFS-tree parent of
    ``v``, with ``p[source] == source``; unreached nodes have no entry.
    """
    _check_source(g, source)
    a = g.A
    n = g.n
    p = Vector(grb.INT64, n)
    q = Vector(grb.INT64, n)
    p[source] = source
    q[source] = source
    for _level in range(1, n):
        _cancel.checkpoint()        # deadline/cancel at the level boundary
        grb.vxm(q, q, a, _ANY_SECONDI,
                mask=complement(structure(p)), replace=True)
        if q.nvals == 0:
            break
        grb.update(p, q, mask=structure(q))
    return p


def bfs_parent_do(g: Graph, source: int) -> Vector:
    """Alg. 2 — direction-optimising parents BFS (Advanced mode).

    Requires ``G.AT`` and ``G.row_degree`` to be cached; raises
    :class:`PropertyMissing` otherwise (Advanced algorithms never compute
    properties, Sec. II-B).
    """
    _check_source(g, source)
    if g.AT is None:
        raise PropertyMissing("bfs_parent_do requires cached G.AT")
    if g.row_degree is None:
        raise PropertyMissing("bfs_parent_do requires cached G.row_degree")
    a = g.A
    at = g.AT
    n = g.n
    out_deg = g.row_degree.to_dense()
    total_edges = float(out_deg.sum())

    p = Vector(grb.INT64, n)
    q = Vector(grb.INT64, n)
    p[source] = source
    q[source] = source
    scanned = float(out_deg[source])
    for _level in range(1, n):
        _cancel.checkpoint()        # deadline/cancel at the level boundary
        frontier_edges = float(out_deg[q.indices].sum())
        unexplored = max(total_edges - scanned, 0.0)
        push = engine.choose_direction(frontier_edges, unexplored,
                                       q.nvals, n) == "push"
        if push:
            grb.vxm(q, q, a, _ANY_SECONDI,
                    mask=complement(structure(p)), replace=True)
        else:
            grb.mxv(q, at, q, _ANY_SECONDI,
                    mask=complement(structure(p)), replace=True)
        if q.nvals == 0:
            break
        scanned += float(out_deg[q.indices].sum())
        grb.update(p, q, mask=structure(q))
    return p


def bfs_parent_auto(g: Graph, source: int) -> Vector:
    """Storage-engine direction-optimised parents BFS (Basic-mode worker).

    The step chooser of Alg. 2 running directly on the storage layer:

    * **push** levels (sparse frontier) expand through the ``any.secondi``
      gather kernel — cost ∝ frontier out-degrees;
    * **pull** levels (heavy frontier) probe each unvisited node's
      in-neighbours against a *bitmap frontier*, reading ``Aᵀ`` from the
      store's cached CSC arrays (free when ``A`` is pinned to CSC, computed
      once otherwise) — cost ∝ a few probes per unvisited node;
    * the visited set and parents live in dense arrays for the whole sweep,
      so no per-level masked write-back is paid at all.

    Both step kinds pick the smallest frontier in-neighbour as the parent,
    so the result is identical — entry for entry — to
    :func:`bfs_parent_push`, whatever sequence of directions runs.  Unlike
    :func:`bfs_parent_do` it never demands cached graph properties: the
    transpose view comes from ``G.AT`` when present, else from the
    adjacency's own storage.
    """
    _check_source(g, source)
    from ...grb._kernels.matmul import mxv_pull_probe, vxm_sparse

    a = g.A
    n = g.n
    at = g.AT if g.AT is not None else None
    if at is not None:
        at_indptr, at_indices = at.indptr, at.indices
    else:
        at_indptr, at_indices, _ = a._S().transpose_csr()
    if g.row_degree is not None:
        out_deg = g.row_degree.to_dense()
    else:
        out_deg = np.diff(a.indptr).astype(np.int64)
    total_edges = float(out_deg.sum())

    visited = np.zeros(n, dtype=bool)
    visited[source] = True
    parent_dense = np.full(n, -1, dtype=np.int64)
    parent_dense[source] = source
    frontier = np.array([source], dtype=np.int64)
    frontier_bits = np.zeros(n, dtype=bool)
    scanned = float(out_deg[source])
    for _level in range(1, n):
        _cancel.checkpoint()        # deadline/cancel at the level boundary
        frontier_edges = float(out_deg[frontier].sum())
        unexplored = max(total_edges - scanned, 0.0)
        push = engine.choose_direction(frontier_edges, unexplored,
                                       frontier.size, n) == "push"
        if push:
            idx, par = vxm_sparse(frontier,
                                  np.zeros(frontier.size, dtype=np.int64),
                                  a.indptr, a.indices, None, _ANY_SECONDI)
            fresh = ~visited[idx]
            idx, par = idx[fresh], par[fresh]
        else:
            frontier_bits[frontier] = True
            idx, par = mxv_pull_probe(at_indptr, at_indices, frontier_bits,
                                      np.flatnonzero(~visited))
            frontier_bits[frontier] = False
        if idx.size == 0:
            break
        visited[idx] = True
        parent_dense[idx] = par
        frontier = idx
        scanned += float(out_deg[idx].sum())
    reached = np.flatnonzero(visited).astype(np.int64)
    return Vector.from_coo(reached, parent_dense[reached], n)


def bfs_parent_fused(g: Graph, source: int) -> Vector:
    """The fused frontier step the paper anticipates (Sec. VI-B, item 2).

    The spec's non-blocking mode lets an implementation run ``GrB_vxm``
    and the follow-up parent assign as one pass.  This variant *is* that
    mode: each level records the two calls of Alg. 1 into a
    :func:`repro.grb.deferred` scope, and the scope's flush hands the pair
    to the engine as a MultiPlan, where the ``fused-frontier-parent``
    multi-output rule executes the frontier expansion and the parent
    update in the producing kernel's single output pass — no intermediate
    masked write-back for ``q``, no second mask resolution for ``p``.
    (Earlier revisions hand-fused the two calls outside the plan layer;
    the engine rule replaces that.)  Results are identical to
    :func:`bfs_parent_push` — with ``cost.FUSION_ENABLED`` or
    ``cost.MULTI_FUSION_ENABLED`` off, each level decomposes into exactly
    that two-call sequence; the ablation benchmark measures what the
    fusion buys.
    """
    _check_source(g, source)
    a = g.A
    n = g.n
    p = Vector(grb.INT64, n)
    q = Vector(grb.INT64, n)
    p[source] = source
    q[source] = source
    # masks hold object references, not snapshots: resolution happens at
    # execution time against the level's current state, so both can be
    # hoisted out of the loop
    unvisited = complement(structure(p))
    s_q = structure(q)
    for _level in range(1, n):
        _cancel.checkpoint()        # deadline/cancel at the level boundary
        with grb.deferred():
            grb.vxm(q, q, a, _ANY_SECONDI, mask=unvisited, replace=True)
            grb.update(p, q, mask=s_q)
        if q.nvals == 0:
            break
    return p


def bfs_level(g: Graph, source: int) -> Vector:
    """Level BFS: ``level[v]`` = BFS depth from the source (source = 0).

    Uses the ``any.pair`` semiring — the structural analogue of
    ``any.secondi`` when only reachability per level is needed.
    """
    _check_source(g, source)
    a = g.A
    n = g.n
    level = Vector(grb.INT64, n)
    q = Vector(grb.BOOL, n)
    level[source] = 0
    q[source] = True
    for depth in range(1, n):
        _cancel.checkpoint()        # deadline/cancel at the level boundary
        grb.vxm(q, q, a, _ANY_PAIR,
                mask=complement(structure(level)), replace=True)
        if q.nvals == 0:
            break
        grb.assign_scalar(level, depth, mask=structure(q))
    return level


def bfs(g: Graph, source: int, *,
        parent: bool = True, level: bool = False,
        direction_optimizing: Optional[bool] = None,
        ) -> Tuple[Optional[Vector], Optional[Vector]]:
    """Basic-mode BFS: "just works" (Sec. II-B).

    Inspects the graph, computes & caches any properties the best advanced
    variant needs, picks the variant, and returns ``(parent, level)``
    vectors (``None`` for whichever was not requested).

    ``direction_optimizing=None`` lets the heuristic decide (it opts in for
    graphs with enough edges to amortise the transpose); ``True``/``False``
    force the choice.
    """
    _check_source(g, source)
    p = lv = None
    if parent:
        use_do = direction_optimizing
        if use_do is None:
            # dense enough for pull (and the transpose build) to pay off
            use_do = g.nvals >= _cost.BFS_DO_MIN_AVG_DEGREE * g.n
        if use_do:
            g.cache_at()          # Basic mode may compute properties
            g.cache_row_degree()
            p = bfs_parent_auto(g, source)
        else:
            p = bfs_parent_push(g, source)
    if level:
        lv = bfs_level(g, source)
    return p, lv
