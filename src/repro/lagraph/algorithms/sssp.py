"""Single-source shortest paths (Sec. IV-D; Algorithm 5 of the paper).

Delta-stepping over the ``min.plus`` semiring, following Sridhar et al.
(GrAPL'19, the paper's ref. [21]).  Edges are split once into *light*
(``0 < w ≤ Δ``) and *heavy* (``w > Δ``) matrices using ``select``.  Nodes
are processed bucket by bucket: bucket ``i`` holds tentative distances in
``[iΔ, (i+1)Δ)``.  Light edges are relaxed to a fixed point inside the
bucket; heavy edges are relaxed once per bucket, from every node that was
ever a member (the ``e`` accumulator of Alg. 5).

A Bellman-Ford fallback (:func:`sssp_bellman_ford`) is provided both as the
simplest possible min.plus iteration and as an internal cross-check.

Fused hot loops
---------------
Every relaxation round ends with the same question — *which tentative
distances strictly improve on the current ones?* — so the relaxation
``vxm``/``mxm`` plans carry a fused ``select`` epilogue
(:mod:`repro.grb.engine`): the improvement predicate runs inside the
kernel's output pass, against the distance vector's bitmap (O(1)
membership per candidate instead of the seed's sorted ``isin`` probe), and
the rejected candidates never materialise an intermediate object.
Results are bit-identical; ``cost.FUSION_ENABLED = False`` restores the
materialised sequence.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ... import grb
from ...grb import Matrix, Vector, engine
from ...grb import cancel as _cancel
from ...grb._kernels.apply_select import SelectOp
from ..graph import Graph

__all__ = ["sssp_delta_stepping", "sssp_bellman_ford", "sssp", "sssp_batch"]

_MIN_PLUS = grb.semiring("min", "plus")


def _improves_vec(v, i, j, thunk):
    """Keep candidates strictly below the current distance at their index.

    ``thunk`` is the distance vector's ``(present, dense)`` bitmap — absent
    positions count as +inf, exactly the seed's ``isin``-based probe.
    """
    present, dense = thunk
    return v < np.where(present[i], dense[i], np.inf)


def _improves_mat(v, i, j, thunk):
    """Matrix twin of :func:`_improves_vec` for the batched frontier.

    ``thunk`` is ``(ncols, d_keys, d_vals)``: current distances as sorted
    linearised keys (the ``ns × n`` bitmap would be the whole grid).
    Keyed predicate: when fused it receives the kernel's linearised keys
    directly (``j=None``) — no div/mod coordinate round-trip."""
    ncols, dkeys, dvals = thunk
    keys = i if j is None else i * np.int64(ncols) + j
    pos = np.searchsorted(dkeys, keys)
    pos_in = np.minimum(pos, max(dkeys.size - 1, 0))
    present = (pos < dkeys.size) & (dkeys[pos_in] == keys) \
        if dkeys.size else np.zeros(keys.size, dtype=bool)
    old = np.where(present, dvals[pos_in] if dvals.size else 0.0, np.inf)
    return v < old


def _improves_bucket(v, i, j, thunk):
    """Delta-stepping's inner-frontier predicate: strictly improving AND
    still inside bucket ``i`` — ``thunk`` is ``(present, dense, lo, hi)``
    with the distance bitmap snapshotted *before* the round's min-merge
    (exactly the seed's ordering: the improvement test reads the old
    distances)."""
    present, dense, lo, hi = thunk
    old = np.where(present[i], dense[i], np.inf)
    return (v < old) & (v >= lo) & (v < hi)


_IMPROVES_VEC = SelectOp("__sssp_improves", _improves_vec)
_IMPROVES_MAT = SelectOp("__sssp_improves_mat", _improves_mat, keyed=True)
_IMPROVES_BUCKET = SelectOp("__sssp_improves_bucket", _improves_bucket)


def _check_weights(g: Graph):
    if g.A.nvals and float(g.A.values.min()) < 0:
        raise grb.InvalidValue("SSSP requires non-negative edge weights")


def sssp_delta_stepping(g: Graph, source: int, delta: float = 2.0) -> Vector:
    """Advanced mode: delta-stepping SSSP from ``source``.

    Returns a sparse FP64 distance vector (entries only for reached nodes).
    ``delta`` is the bucket width Δ; the Basic wrapper picks a default from
    the weight distribution.
    """
    if not 0 <= source < g.n:
        raise grb.IndexOutOfBounds(f"source {source} out of range")
    _check_weights(g)
    a = g.A
    n = g.n
    delta = float(delta)
    if delta <= 0:
        raise grb.InvalidValue("delta must be positive")

    # AL = A⟨0 < A ≤ Δ⟩ ; AH = A⟨Δ < A⟩   (zero-weight edges are light too:
    # the spec's guard is about self-distance, harmless for simple graphs)
    al = a.select("valuele", delta)
    ah = a.select("valuegt", delta)

    t = Vector(grb.FP64, n)
    t[source] = 0.0
    treq = Vector(grb.FP64, n)
    i = 0
    while True:
        _cancel.checkpoint()    # deadline/cancel at the bucket boundary
        # smallest non-empty bucket among unsettled nodes
        unsettled = t.select("valuege", i * delta)
        if unsettled.nvals == 0:
            break
        i = int(float(unsettled.values.min()) // delta)
        lo, hi = i * delta, (i + 1) * delta

        tbi = t.select("valuege", lo).select("valuelt", hi)
        ever = np.zeros(n, dtype=bool)  # the "e" accumulator of Alg. 5
        while tbi.nvals:
            _cancel.checkpoint()    # deadline/cancel per light relaxation
            ever[tbi.indices] = True
            # one lazy round: the light-edge relaxation with its TWO
            # consumers — the improve-filter picking the next inner
            # frontier and the min-merge folding tReq into t — recorded
            # into a deferred scope and flushed as one MultiPlan, where
            # the fused-improve-merge rule runs both consumers on the
            # relaxation kernel's single output pass.  The filter's thunk
            # snapshots t's bitmap BEFORE the merge (Alg. 5 reads the old
            # distances), which record-time evaluation gives for free.
            nxt = Vector(grb.FP64, n)
            with grb.deferred():
                grb.vxm(treq, tbi, al, _MIN_PLUS, replace=True)
                grb.select(nxt, treq, _IMPROVES_BUCKET,
                           t.bitmap() + (lo, hi))
                # t = t min∪ tReq (the full relaxation, as Alg. 5 requires)
                grb.ewise_add(t, t, treq, grb.binary.MIN)
            tbi = nxt
        # heavy-edge relaxation from every node that visited bucket i
        th_idx = np.flatnonzero(ever).astype(np.int64)
        if th_idx.size:
            _, t_dense = t.bitmap()
            th = Vector.from_coo(th_idx, t_dense[th_idx], n)
            grb.vxm(treq, th, ah, _MIN_PLUS, replace=True)
            grb.ewise_add(t, t, treq, grb.binary.MIN)
        i += 1
    return t


def sssp_bellman_ford(g: Graph, source: int) -> Vector:
    """Bellman-Ford as a pure ``min.plus`` fixed-point iteration.

    ``dᵀ = dᵀ min.plus A`` (with ``d min∪`` accumulation) until no distance
    changes.  Simple, and the reference the delta-stepping tests compare
    against.
    """
    if not 0 <= source < g.n:
        raise grb.IndexOutOfBounds(f"source {source} out of range")
    _check_weights(g)
    a = g.A
    n = g.n
    d = Vector(grb.FP64, n)
    d[source] = 0.0
    frontier = d.dup()
    for _ in range(n):
        _cancel.checkpoint()    # deadline/cancel at the round boundary
        if frontier.nvals == 0:
            break
        # the improvement filter rides the relaxation kernel's output pass:
        # rejected candidates never materialise an intermediate vector
        f_idx, f_vals = engine.execute(
            engine.plan_vxm(None, frontier, a, _MIN_PLUS)
                  .then_select(_IMPROVES_VEC, d.bitmap()))
        frontier = Vector.from_coo(f_idx, f_vals, n)
        grb.ewise_add(d, d, frontier, grb.binary.MIN)
    return d


def sssp_batch(g: Graph, sources: Sequence[int]) -> Matrix:
    """Batched multi-source SSSP: Bellman-Ford over a matrix frontier.

    The matrix analogue of :func:`sssp_bellman_ford`, using the same trick
    the paper's batched BC uses for BFS (Sec. IV-B): the per-source distance
    frontiers are the rows of an ``ns × n`` matrix ``F``, so each relaxation
    round is a single ``min.plus`` ``mxm`` instead of one ``vxm`` per
    source.  Rows converge independently; a row whose frontier empties stops
    contributing work.

    Returns the ``ns × n`` FP64 distance matrix: ``D[k, v]`` is the shortest
    distance from ``sources[k]`` to ``v``, with entries only for reached
    nodes.  Row ``k`` is identical to ``sssp_bellman_ford(g, sources[k])``
    (both converge to the exact ``min`` over all paths, accumulating edge
    weights in path order).
    """
    sources = np.asarray(sources, dtype=np.int64)
    if sources.ndim != 1:
        raise grb.InvalidValue("sources must be a 1-D sequence of node ids")
    if sources.size and (sources.min() < 0 or sources.max() >= g.n):
        raise grb.IndexOutOfBounds("SSSP source out of range")
    _check_weights(g)
    a = g.A
    n = g.n
    ns = sources.size
    batch = np.arange(ns, dtype=np.int64)
    d = Matrix.from_coo(batch, sources, np.zeros(ns), ns, n, typ=grb.FP64,
                        dup_op=grb.binary.FIRST)
    if ns == 0:
        return d
    f = d.dup()
    for _ in range(n):
        _cancel.checkpoint()    # deadline/cancel at the round boundary
        if f.nvals == 0:
            break
        # step = F min.plus A with the strict-improvement filter fused onto
        # the kernel's output pass (sorted-key probe against d — the vector
        # version's dense bitmap would be ns × n here); the unimproved
        # relaxations never materialise a step matrix
        keys, vals = engine.execute(
            engine.plan_mxm(None, f, a, _MIN_PLUS)
                  .then_select(_IMPROVES_MAT, (n, d.keys(), d.values)))
        f = Matrix(grb.FP64, ns, n)
        f._set_from_keys(keys, vals)
        # d = d min∪ f
        grb.ewise_add(d, d, f, grb.binary.MIN)
    return d


def sssp(g: Graph, source: int, delta: float | None = None) -> Vector:
    """Basic mode: SSSP that "just works".

    Picks Δ from the edge-weight distribution when not given (mean weight,
    the usual delta-stepping rule of thumb) and falls back to Bellman-Ford
    for unweighted/boolean adjacencies (where every edge is light anyway).
    """
    a = g.A
    if a.type.is_boolean or a.nvals == 0:
        return sssp_bellman_ford(g, source)
    if delta is None:
        delta = max(float(a.values.mean()), 1e-12)
    return sssp_delta_stepping(g, source, delta)
