"""PageRank (Sec. IV-C; Algorithm 4 of the paper).

Two variants, exactly as the paper ships them:

* :func:`pagerank_gap` — the GAP-benchmark specification.  It uses the
  ``plus.second`` semiring so edge weights are ignored, pre-scales the
  out-degrees by the damping factor, and — faithfully — does **not** handle
  dangling nodes (their rank mass leaks; Sec. IV-C notes this).
* :func:`pagerank_gx` — the LDBC Graphalytics variant, which redistributes
  the dangling mass uniformly each iteration, included by the paper for
  comparison with ``pr.cc``.

Both iterate until the L1 norm of the rank change drops below ``tol``.

Fused hot loop
--------------
The iteration runs on the execution engine's fused plans
(:mod:`repro.grb.engine`):

* the ``mxv`` accumulate step hits the ``mxv-fused-dense-accum`` rule —
  the rank vector is *full* after the teleport assign, so the spec's
  union-merge write-back degenerates to one dense add and the structural
  counts product of the SciPy path is dead work (skipped);
* the convergence check is a ``reduce_scalar`` epilogue riding on the
  ``t − r`` merge — the L1 delta is computed from the merge's output pass
  and no difference vector is ever materialised (its seed counterpart was
  written and immediately overwritten);
* the Graphalytics variant fuses its damping ``apply`` onto the
  out-degree-division merge (one output pass instead of two).

With :data:`repro.grb.engine.cost.FUSION_ENABLED` off, every fused plan
decomposes into the seed sequence — that is the baseline
``benchmarks/bench_fused_epilogue.py`` measures against, and results are
bit-identical either way.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ... import grb
from ...grb import Vector, engine
from ...grb import cancel as _cancel
from ..errors import PropertyMissing
from ..graph import Graph

__all__ = ["pagerank_gap", "pagerank_gx", "pagerank"]

_PLUS_SECOND = grb.semiring("plus", "second")
_PR_SCALE = grb.unary.unary_op("__pr_scale", lambda x, damping: x / damping)
_GX_DAMP = grb.unary.unary_op("__gx_damp", lambda x, damping: x * damping)


def _require(g: Graph):
    if g.AT is None:
        raise PropertyMissing("pagerank requires cached G.AT")
    if g.row_degree is None:
        raise PropertyMissing("pagerank requires cached G.row_degree")


def _l1_delta(t: Vector, r: Vector) -> float:
    """``‖t − r‖₁`` as a fused merge + reduce (no difference vector)."""
    return float(engine.execute(
        engine.plan_ewise_mult(None, t, r, grb.binary.MINUS)
              .then_reduce_scalar(grb.monoid.PLUS_MONOID, absolute=True)))


def pagerank_gap(g: Graph, damping: float = 0.85, tol: float = 1e-4,
                 itermax: int = 100) -> Tuple[Vector, int]:
    """Advanced mode: PageRank exactly as specified in the GAP benchmark.

    Returns ``(rank vector, iterations run)``.  Requires cached ``G.AT``
    and ``G.row_degree``.
    """
    _require(g)
    n = g.n
    at = g.AT
    teleport = (1.0 - damping) / n

    # d = rowdegree / damping, entries only where degree > 0 — dangling
    # nodes have no entry, so their mass silently vanishes (GAP behaviour).
    dout = g.row_degree.select("valuegt", 0)
    d = dout.apply(_PR_SCALE, damping)

    r = Vector.from_dense(np.full(n, 1.0 / n))
    t = Vector(grb.FP64, n)
    w = Vector(grb.FP64, n)
    iters = 0
    for _k in range(itermax):
        _cancel.checkpoint()    # deadline/cancel at the iteration boundary
        iters += 1
        t, r = r, t                       # swap: t is now the prior rank
        # the whole iteration records lazily (non-blocking mode): the
        # convergence check below is the read boundary that hands the
        # three-call chain to the engine in one go.  At execution the
        # mxv's plus-accum write still fuses into the multiply's output
        # pass (mxv-fused-dense-accum — r is full after the assign).
        with grb.deferred():
            grb.ewise_mult(w, t, d, grb.binary.DIV)
            grb.assign_scalar(r, teleport)
            grb.mxv(r, at, w, _PLUS_SECOND, accum=grb.binary.PLUS)
        delta = _l1_delta(t, r)
        if delta < tol:
            break
    return r, iters


def pagerank_gx(g: Graph, damping: float = 0.85, tol: float = 1e-4,
                itermax: int = 100) -> Tuple[Vector, int]:
    """Advanced mode: the Graphalytics PageRank (dangling-safe).

    Identical iteration, except the rank mass sitting on dangling nodes
    (out-degree 0) is redistributed uniformly — the fix the GAP variant
    omits.  Returns ``(rank vector, iterations run)``.
    """
    _require(g)
    n = g.n
    at = g.AT
    teleport = (1.0 - damping) / n

    dout = g.row_degree.select("valuegt", 0)
    deg_dense = g.row_degree.to_dense()
    dangling = np.flatnonzero(deg_dense == 0)

    r = Vector.from_dense(np.full(n, 1.0 / n))
    t = Vector(grb.FP64, n)
    w = Vector(grb.FP64, n)
    iters = 0
    for _k in range(itermax):
        _cancel.checkpoint()    # deadline/cancel at the iteration boundary
        iters += 1
        t, r = r, t
        # w = damping * t / outdegree, entries only for non-dangling nodes;
        # the damping apply rides the division merge's output pass
        engine.execute(
            engine.plan_ewise_mult(w, t, dout, grb.binary.DIV)
                  .then_apply(_GX_DAMP, damping))
        _, t_dense = t.bitmap()
        redistributed = damping * float(t_dense[dangling].sum()) / n
        with grb.deferred():    # teleport + accumulate, forced by the delta
            grb.assign_scalar(r, teleport + redistributed)
            grb.mxv(r, at, w, _PLUS_SECOND, accum=grb.binary.PLUS)
        delta = _l1_delta(t, r)
        if delta < tol:
            break
    return r, iters


def pagerank(g: Graph, variant: str = "gap", **kw) -> Tuple[Vector, int]:
    """Basic mode: caches required properties, then dispatches by variant.

    ``variant`` is ``"gap"`` (Alg. 4) or ``"graphalytics"``.
    """
    g.cache_at()
    g.cache_row_degree()
    if variant == "gap":
        return pagerank_gap(g, **kw)
    if variant in ("graphalytics", "gx"):
        return pagerank_gx(g, **kw)
    raise ValueError(f"unknown PageRank variant {variant!r}")
