"""PageRank (Sec. IV-C; Algorithm 4 of the paper).

Two variants, exactly as the paper ships them:

* :func:`pagerank_gap` — the GAP-benchmark specification.  It uses the
  ``plus.second`` semiring so edge weights are ignored, pre-scales the
  out-degrees by the damping factor, and — faithfully — does **not** handle
  dangling nodes (their rank mass leaks; Sec. IV-C notes this).
* :func:`pagerank_gx` — the LDBC Graphalytics variant, which redistributes
  the dangling mass uniformly each iteration, included by the paper for
  comparison with ``pr.cc``.

Both iterate until the L1 norm of the rank change drops below ``tol``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ... import grb
from ...grb import Vector
from ..errors import PropertyMissing
from ..graph import Graph

__all__ = ["pagerank_gap", "pagerank_gx", "pagerank"]

_PLUS_SECOND = grb.semiring("plus", "second")


def _require(g: Graph):
    if g.AT is None:
        raise PropertyMissing("pagerank requires cached G.AT")
    if g.row_degree is None:
        raise PropertyMissing("pagerank requires cached G.row_degree")


def pagerank_gap(g: Graph, damping: float = 0.85, tol: float = 1e-4,
                 itermax: int = 100) -> Tuple[Vector, int]:
    """Advanced mode: PageRank exactly as specified in the GAP benchmark.

    Returns ``(rank vector, iterations run)``.  Requires cached ``G.AT``
    and ``G.row_degree``.
    """
    _require(g)
    n = g.n
    at = g.AT
    teleport = (1.0 - damping) / n

    # d = rowdegree / damping, entries only where degree > 0 — dangling
    # nodes have no entry, so their mass silently vanishes (GAP behaviour).
    dout = g.row_degree.select("valuegt", 0)
    d = dout.apply(grb.unary.unary_op("__pr_scale", lambda x: x / damping))

    r = Vector.from_dense(np.full(n, 1.0 / n))
    t = Vector(grb.FP64, n)
    w = Vector(grb.FP64, n)
    iters = 0
    for _k in range(itermax):
        iters += 1
        t, r = r, t                       # swap: t is now the prior rank
        grb.ewise_mult(w, t, d, grb.binary.DIV)
        grb.assign_scalar(r, teleport)
        grb.mxv(r, at, w, _PLUS_SECOND, accum=grb.binary.PLUS)
        # t = |t - r|; 1-norm of the change
        grb.ewise_mult(t, t, r, grb.binary.MINUS)
        delta = float(np.abs(t.values).sum())
        if delta < tol:
            break
    return r, iters


def pagerank_gx(g: Graph, damping: float = 0.85, tol: float = 1e-4,
                itermax: int = 100) -> Tuple[Vector, int]:
    """Advanced mode: the Graphalytics PageRank (dangling-safe).

    Identical iteration, except the rank mass sitting on dangling nodes
    (out-degree 0) is redistributed uniformly — the fix the GAP variant
    omits.  Returns ``(rank vector, iterations run)``.
    """
    _require(g)
    n = g.n
    at = g.AT
    teleport = (1.0 - damping) / n

    dout = g.row_degree.select("valuegt", 0)
    deg_dense = g.row_degree.to_dense()
    dangling = np.flatnonzero(deg_dense == 0)

    r = Vector.from_dense(np.full(n, 1.0 / n))
    t = Vector(grb.FP64, n)
    w = Vector(grb.FP64, n)
    iters = 0
    for _k in range(itermax):
        iters += 1
        t, r = r, t
        # w = damping * t / outdegree, entries only for non-dangling nodes
        grb.ewise_mult(w, t, dout, grb.binary.DIV)
        grb.apply(w, w, grb.unary.unary_op(
            "__gx_damp", lambda x, dmp=damping: x * dmp))
        _, t_dense = t.bitmap()
        redistributed = damping * float(t_dense[dangling].sum()) / n
        grb.assign_scalar(r, teleport + redistributed)
        grb.mxv(r, at, w, _PLUS_SECOND, accum=grb.binary.PLUS)
        grb.ewise_mult(t, t, r, grb.binary.MINUS)
        delta = float(np.abs(t.values).sum())
        if delta < tol:
            break
    return r, iters


def pagerank(g: Graph, variant: str = "gap", **kw) -> Tuple[Vector, int]:
    """Basic mode: caches required properties, then dispatches by variant.

    ``variant`` is ``"gap"`` (Alg. 4) or ``"graphalytics"``.
    """
    g.cache_at()
    g.cache_row_degree()
    if variant == "gap":
        return pagerank_gap(g, **kw)
    if variant in ("graphalytics", "gx"):
        return pagerank_gx(g, **kw)
    raise ValueError(f"unknown PageRank variant {variant!r}")
