"""Community detection by label propagation (CDLP, experimental tier).

The Graphalytics kernel the paper targets for end-to-end workflows
(Sec. VII): every node repeatedly adopts the most frequent label among its
neighbours, ties broken toward the smallest label, for a fixed number of
synchronous rounds.

The per-node mode computation is expressed as a grouped reduction over the
gathered neighbour labels — the same gather/group-reduce machinery the
semiring kernels use (LAGraph's C implementation likewise drops to a sort
within ``GxB_*`` extensions here, since "most frequent" is not a semiring).
"""

from __future__ import annotations

import numpy as np

from ...grb import Vector
from ...grb import cancel as _cancel
from ...grb._kernels.gather import expand_rows
from ..graph import Graph
from ..kinds import Kind

__all__ = ["cdlp"]


def cdlp(g: Graph, iterations: int = 10) -> Vector:
    """Synchronous label propagation; returns the INT64 label vector.

    Directed graphs follow Graphalytics semantics: both in- and
    out-neighbours vote (an edge in either direction contributes one vote
    each way it exists).
    """
    a = g.A
    if g.kind is Kind.ADJACENCY_UNDIRECTED:
        rows = expand_rows(a.indptr, a.nrows)
        cols = a.indices
    else:
        at = g.AT if g.AT is not None else a.T
        rows = np.concatenate((expand_rows(a.indptr, a.nrows),
                               expand_rows(at.indptr, at.nrows)))
        cols = np.concatenate((a.indices, at.indices))
    n = g.n
    labels = np.arange(n, dtype=np.int64)

    for _ in range(max(0, int(iterations))):
        _cancel.checkpoint()        # deadline/cancel at the iteration boundary
        votes = labels[cols]
        # count (node, label) pairs; then per node pick (max count, min label)
        order = np.lexsort((votes, rows))
        r = rows[order]
        v = votes[order]
        if r.size == 0:
            break
        new_group = np.empty(r.size, dtype=bool)
        new_group[0] = True
        new_group[1:] = (r[1:] != r[:-1]) | (v[1:] != v[:-1])
        starts = np.flatnonzero(new_group)
        counts = np.diff(np.append(starts, r.size))
        gr = r[starts]          # node of each (node, label) group
        gv = v[starts]          # label of each group (ascending per node)
        # per node: argmax count, ties to smallest label — groups are
        # label-ascending within a node, so a strict '>' keeps the smallest
        best = np.lexsort((gv, -counts, gr))
        node_first = np.empty(best.size, dtype=bool)
        sorted_nodes = gr[best]
        node_first[0] = True
        node_first[1:] = sorted_nodes[1:] != sorted_nodes[:-1]
        pick = best[node_first]
        new_labels = labels.copy()
        new_labels[gr[pick]] = gv[pick]
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    return Vector.from_dense(labels)
