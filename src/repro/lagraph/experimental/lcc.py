"""Local clustering coefficient (experimental tier, Sec. II-E).

For each node ``v`` with degree ``d(v) ≥ 2``::

    lcc(v) = 2 · tri(v) / (d(v) · (d(v) − 1))

where ``tri(v)`` is the number of triangles through ``v``.  The triangle
counts per node come from the row-wise reduction of the masked
``plus.pair`` product — the same product triangle counting uses, served by
the same mask-driven SpGEMM engine
(:mod:`repro.grb._kernels.masked_matmul`) — this is the Graphalytics LCC
kernel, one of the end-to-end workloads the paper names as future work
(Sec. VII).
"""

from __future__ import annotations

import numpy as np

from ... import grb
from ...grb import Vector, engine, structure
from ..graph import Graph
from ..kinds import Kind

__all__ = ["local_clustering_coefficient"]

_PLUS_PAIR = grb.semiring("plus", "pair")


def local_clustering_coefficient(g: Graph) -> Vector:
    """Dense FP64 vector of per-node clustering coefficients.

    Directed inputs are symmetrised first (Graphalytics treats the graph as
    undirected for LCC); self-edges are ignored.  Nodes with degree < 2
    get coefficient 0.

    The per-node triangle counts ride the masked multiply as a fused
    ``reduce_rowwise`` epilogue: the row sums are taken from the masked
    SpGEMM kernel's output pass, and the ``n × n`` triangle matrix the seed
    materialised is never built.
    """
    a = g.A.pattern(grb.INT64)
    if g.kind is not Kind.ADJACENCY_UNDIRECTED:
        a = a.ewise_add(a.T, grb.binary.LOR).pattern(grb.INT64)
    if a.ndiag():
        a = a.offdiag()
    n = a.nrows
    # triangles through each edge, reduced per node inside the multiply's
    # output pass
    rows, sums = engine.execute(
        engine.plan_mxm(None, a, a, _PLUS_PAIR, mask=structure(a))
              .then_reduce_rowwise(grb.monoid.PLUS_MONOID))
    tri = np.zeros(n, dtype=np.float64)
    tri[rows] = sums
    tri_per_node = tri / 2.0
    deg = a.row_degrees().to_dense().astype(np.float64)
    denom = deg * (deg - 1.0) / 2.0
    with np.errstate(divide="ignore", invalid="ignore"):
        lcc = np.where(denom > 0, tri_per_node / denom, 0.0)
    return Vector.from_dense(lcc)
