"""k-truss decomposition (experimental tier, Sec. II-E).

The k-truss of a graph is the maximal subgraph in which every edge
participates in at least ``k − 2`` triangles.  In linear algebra (following
LAGraph's experimental ``LAGraph_KTruss``)::

    repeat:
        C⟨s(A)⟩ = A plus.pair A      # support: triangles through each edge
        A = C⟨C ≥ k − 2⟩             # keep edges with enough support
    until the edge set stops shrinking

Experimental algorithms ship faster and with fewer guarantees than the
stable tier — mirrored here by a lighter precondition story (the function
symmetrises and cleans its input itself).

The per-iteration support product ``C⟨s(A)⟩ = A plus.pair A`` rides the
mask-driven SpGEMM engine (:mod:`repro.grb._kernels.masked_matmul`): one
edge-wise neighbourhood intersection per surviving edge, which keeps
shrinking as the truss does.
"""

from __future__ import annotations

from ... import grb
from ...grb import Matrix, structure
from ...grb import cancel as _cancel
from ..graph import Graph
from ..kinds import Kind

__all__ = ["ktruss"]

_PLUS_PAIR = grb.semiring("plus", "pair")


def ktruss(g: Graph, k: int) -> Matrix:
    """Return the k-truss subgraph's adjacency (INT64 support values).

    Entry ``(i, j)`` of the result holds the number of triangles the edge
    supports within the truss.  ``k >= 3``.
    """
    if k < 3:
        raise grb.InvalidValue(f"k-truss needs k >= 3, got {k}")
    a = g.A.pattern(grb.INT64)
    if g.kind is not Kind.ADJACENCY_UNDIRECTED:
        a = a.ewise_add(a.T, grb.binary.LOR).pattern(grb.INT64)
    if a.ndiag():
        a = a.offdiag()
    support = k - 2
    last_nvals = -1
    while a.nvals != last_nvals:
        _cancel.checkpoint()        # deadline/cancel at the peel boundary
        last_nvals = a.nvals
        c = Matrix(grb.INT64, a.nrows, a.ncols)
        grb.mxm(c, a, a, _PLUS_PAIR, mask=structure(a))
        a = c.select("valuege", support)
    return a
