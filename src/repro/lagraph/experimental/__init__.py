"""Experimental algorithm tier (Sec. II-E of the paper).

New algorithms land here first: faster release cadence, no bug-free
guarantee, preconditions enforced loosely.  Graduation to
:mod:`repro.lagraph.algorithms` requires the stable tier's testing bar.
"""

from .cdlp import cdlp
from .ktruss import ktruss
from .lcc import local_clustering_coefficient
from .mis import maximal_independent_set
from .msf import minimum_spanning_forest

__all__ = ["cdlp", "ktruss", "local_clustering_coefficient",
           "maximal_independent_set", "minimum_spanning_forest"]
