"""Maximal independent set — Luby's algorithm (experimental tier).

Classic GraphBLAS showcase (it ships in LAGraph's experimental folder):
each round every candidate draws a random score; nodes whose score beats
every neighbour's join the set, and they and their neighbours leave the
candidate pool.  The neighbour maximum is one ``mxv`` on the
``max.second`` semiring; the pool bookkeeping is mask algebra.
"""

from __future__ import annotations

import numpy as np

from ... import grb
from ...grb import Vector
from ...grb import cancel as _cancel
from ..errors import InvalidKind
from ..graph import Graph
from ..kinds import Kind

__all__ = ["maximal_independent_set"]

_MAX_SECOND = grb.semiring("max", "second")


def maximal_independent_set(g: Graph, seed: int = 0) -> Vector:
    """A maximal independent set of an undirected graph.

    Returns a BOOL vector with an entry (True) for every member.
    Deterministic for a fixed ``seed``.  Isolated nodes always join.
    Self-edges are ignored (a node is not its own neighbour).
    """
    if g.kind is not Kind.ADJACENCY_UNDIRECTED:
        if not g.A_pattern_is_symmetric:
            raise InvalidKind("maximal_independent_set requires an "
                              "undirected graph (or cached symmetric pattern)")
    a = g.A.offdiag() if g.A.ndiag() else g.A
    n = g.n
    rng = np.random.default_rng(seed)
    deg = np.diff(a.indptr)

    in_set = np.zeros(n, dtype=bool)
    in_set[deg == 0] = True           # isolated nodes join immediately
    candidate = deg > 0

    while candidate.any():
        _cancel.checkpoint()        # deadline/cancel at the round boundary
        cand_idx = np.flatnonzero(candidate).astype(np.int64)
        # random score per candidate, weighted against high degree as in
        # Luby's analysis (score ~ U(0,1) / deg keeps hubs humble)
        score = rng.random(cand_idx.size) / deg[cand_idx]
        s = Vector.from_coo(cand_idx, score, n)
        # neighbour maximum among candidates: nbmax = A max.second s
        nbmax = Vector(grb.FP64, n)
        grb.mxv(nbmax, a, s, _MAX_SECOND, replace=True)
        _, nb_dense = nbmax.bitmap()
        nb_present, _ = nbmax.bitmap()
        winners = cand_idx[(score > nb_dense[cand_idx]) |
                           ~nb_present[cand_idx]]
        if winners.size == 0:
            # ties can stall in pathological draws; break them by node id
            winners = np.array([cand_idx[int(np.argmax(score))]],
                               dtype=np.int64)
        in_set[winners] = True
        # winners and their neighbourhoods leave the pool
        candidate[winners] = False
        w = Vector.from_coo(winners, np.ones(winners.size, bool), n)
        touched = Vector(grb.BOOL, n)
        grb.mxv(touched, a, w, grb.semiring("any", "pair"), replace=True)
        candidate[touched.indices] = False
    return Vector.from_coo(np.flatnonzero(in_set).astype(np.int64),
                           np.ones(int(in_set.sum()), dtype=np.bool_), n)
