"""Minimum spanning forest — Borůvka's algorithm (experimental tier).

LAGraph's experimental folder carries an ``LAGraph_msf``; this is the same
component-contraction scheme: every round, each component selects its
cheapest outgoing edge (a grouped min-reduction), those edges join the
forest, and components merge until no inter-component edges remain.

Ties are broken by (weight, source, destination) so the forest is
deterministic and — for distinct weights — unique.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ... import grb
from ...grb import Matrix
from ...grb import cancel as _cancel
from ...grb._kernels.gather import expand_rows
from ..errors import InvalidKind
from ..graph import Graph
from ..kinds import Kind

__all__ = ["minimum_spanning_forest"]


def minimum_spanning_forest(g: Graph) -> Tuple[Matrix, float]:
    """Returns ``(forest, total_weight)`` for a weighted undirected graph.

    ``forest`` is a symmetric FP64 matrix holding the selected edges (both
    directions).  Works per connected component (hence *forest*).
    """
    if g.kind is not Kind.ADJACENCY_UNDIRECTED:
        if not g.A_pattern_is_symmetric:
            raise InvalidKind("minimum_spanning_forest requires an "
                              "undirected graph (or cached symmetric pattern)")
    a = g.A
    n = g.n
    src = expand_rows(a.indptr, a.nrows)
    dst = a.indices.copy()
    w = a.values.astype(np.float64)
    keep = src != dst
    src, dst, w = src[keep], dst[keep], w[keep]

    # A strict total order on undirected edges: rank by (weight, lo, hi),
    # identical for both stored directions.  Borůvka is cycle-free only
    # under distinct edge keys; this is the standard tie-breaking fix.
    lo_all = np.minimum(src, dst)
    hi_all = np.maximum(src, dst)
    order_all = np.lexsort((hi_all, lo_all, w))
    rank = np.empty(src.size, dtype=np.int64)
    rank[order_all] = np.arange(src.size, dtype=np.int64)
    # both directions of an edge must share one rank: take the min per pair
    pair_key = lo_all * np.int64(n) + hi_all
    uniq_keys, inv = np.unique(pair_key, return_inverse=True)
    pair_rank = np.full(uniq_keys.size, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(pair_rank, inv, rank)
    rank = pair_rank[inv]

    comp = np.arange(n, dtype=np.int64)
    chosen_src = []
    chosen_dst = []
    chosen_w = []

    while True:
        _cancel.checkpoint()        # deadline/cancel at the round boundary
        cs, cd = comp[src], comp[dst]
        external = cs != cd
        if not external.any():
            break
        es, ed, ew = src[external], dst[external], w[external]
        er = rank[external]
        ecs = cs[external]
        # cheapest outgoing edge per component: minimum rank
        order = np.lexsort((er, ecs))
        ecs_o = ecs[order]
        first = np.empty(ecs_o.size, dtype=bool)
        first[0] = True
        first[1:] = ecs_o[1:] != ecs_o[:-1]
        pick = order[first]
        ps, pd, pw = es[pick], ed[pick], ew[pick]
        # de-duplicate edges chosen from both endpoints' components
        lo = np.minimum(ps, pd)
        hi = np.maximum(ps, pd)
        key = lo * np.int64(n) + hi
        _, uniq = np.unique(key, return_index=True)
        ps, pd, pw = ps[uniq], pd[uniq], pw[uniq]
        chosen_src.append(ps)
        chosen_dst.append(pd)
        chosen_w.append(pw)
        # union the chosen root pairs (a plain union-find: minimum.at-style
        # hooking can drop one of two hooks aimed at the same root and
        # leave joined components unmerged)
        parent = np.arange(n, dtype=np.int64)
        for s_, d_ in zip(comp[ps].tolist(), comp[pd].tolist()):  # cancel: checkpoint-exempt (scalar union-find over picked roots; outer round loop checkpoints)
            while parent[s_] != s_:  # cancel: checkpoint-exempt (path compression halves chain depth each step)
                parent[s_] = parent[parent[s_]]
                s_ = parent[s_]
            while parent[d_] != d_:  # cancel: checkpoint-exempt (path compression halves chain depth each step)
                parent[d_] = parent[parent[d_]]
                d_ = parent[d_]
            if s_ != d_:
                if s_ < d_:
                    parent[d_] = s_
                else:
                    parent[s_] = d_
        while True:  # cancel: checkpoint-exempt (pointer jumping converges in O(log n) rounds; outer round loop checkpoints)
            pp = parent[parent]
            if np.array_equal(pp, parent):
                break
            parent = pp
        comp = parent[comp]

    if chosen_src:
        fs = np.concatenate(chosen_src)
        fd = np.concatenate(chosen_dst)
        fw = np.concatenate(chosen_w)
        forest = Matrix.from_coo(
            np.concatenate((fs, fd)), np.concatenate((fd, fs)),
            np.concatenate((fw, fw)), n, n, dup_op=grb.binary.MIN)
        total = float(fw.sum())
    else:
        forest = Matrix(grb.FP64, n, n)
        total = 0.0
    return forest, total
