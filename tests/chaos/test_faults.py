"""Unit semantics of the fault-injection harness itself.

The chaos suite (``test_chaos.py``) trusts the harness to be scoped,
seeded, and invisible when idle; this module is where that trust is
earned.
"""

import threading
import time

import pytest

from repro.testing import faults


@pytest.fixture(autouse=True)
def _no_leaks():
    """A failing test must not leak injectors into its neighbours."""
    yield
    faults.clear()
    assert not faults.ACTIVE


class TestInstallation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            faults.Injector("network", lambda info: None)

    def test_active_flag_tracks_installs(self):
        assert not faults.ACTIVE
        inj = faults.latency("kernel", 0.0)
        with faults.installed(inj):
            assert faults.ACTIVE
        assert not faults.ACTIVE

    def test_installed_scope_removes_on_exception(self):
        inj = faults.latency("kernel", 0.0)
        with pytest.raises(RuntimeError):
            with faults.installed(inj):
                raise RuntimeError("test body died")
        assert not faults.ACTIVE

    def test_fire_without_injectors_is_silent(self):
        faults.fire("kernel", op="mxv")     # no-op, no error

    def test_remove_is_idempotent(self):
        inj = faults.latency("kernel", 0.0)
        inj.install()
        inj.remove()
        inj.remove()
        assert not faults.ACTIVE

    def test_wildcard_site_matches_everything(self):
        seen = []
        inj = faults.Injector("*", lambda info: seen.append(info["_nth"]))
        with faults.installed(inj):
            faults.fire("kernel", op="mxv")
            faults.fire("storage", fmt="csr")
        assert seen == [1, 2]

    def test_site_filter(self):
        inj = faults.latency("storage", 0.0)
        with faults.installed(inj):
            faults.fire("kernel", op="mxv")
            assert inj.calls == 0
            faults.fire("storage", fmt="csr")
            assert inj.calls == 1


class TestRaiseOnNth:
    def test_fires_only_on_nth(self):
        inj = faults.raise_on_nth("kernel", 3)
        with faults.installed(inj):
            faults.fire("kernel", op="mxv")
            faults.fire("kernel", op="mxv")
            with pytest.raises(faults.TransientFault) as ei:
                faults.fire("kernel", op="mxv")
            faults.fire("kernel", op="mxv")     # quiet again
        assert ei.value.site == "kernel" and ei.value.nth == 3
        assert inj.fired == 1

    def test_repeat_extends_the_window(self):
        inj = faults.raise_on_nth("kernel", 2, repeat=2)
        with faults.installed(inj):
            faults.fire("kernel")
            for _ in range(2):
                with pytest.raises(faults.TransientFault):
                    faults.fire("kernel")
            faults.fire("kernel")
        assert inj.fired == 2

    def test_match_narrows_the_count(self):
        inj = faults.raise_on_nth(
            "kernel", 2, match=lambda info: info.get("op") == "mxv")
        with faults.installed(inj):
            faults.fire("kernel", op="mxv")
            faults.fire("kernel", op="vxm")     # not counted
            with pytest.raises(faults.TransientFault):
                faults.fire("kernel", op="mxv")

    def test_exception_instance_passthrough(self):
        boom = KeyError("exact object")
        inj = faults.raise_on_nth("kernel", 1, exc=boom)
        with faults.installed(inj):
            with pytest.raises(KeyError) as ei:
                faults.fire("kernel")
        assert ei.value is boom


class TestRaiseWhen:
    def test_predicate_gates_every_call(self):
        inj = faults.raise_when(
            "drain", lambda info: info.get("graph") == "poisoned")
        with faults.installed(inj):
            faults.fire("drain", graph="healthy")
            with pytest.raises(faults.FaultInjected):
                faults.fire("drain", graph="poisoned")
            with pytest.raises(faults.FaultInjected):
                faults.fire("drain", graph="poisoned")
        assert inj.fired == 2

    def test_default_exception_is_permanent(self):
        inj = faults.raise_when("kernel", lambda info: True)
        with faults.installed(inj):
            with pytest.raises(faults.FaultInjected) as ei:
                faults.fire("kernel")
        assert not ei.value.retryable


class TestLatency:
    def test_sleeps_for_the_budget(self):
        inj = faults.latency("storage", 0.05)
        with faults.installed(inj):
            t0 = time.perf_counter()
            faults.fire("storage")
            assert time.perf_counter() - t0 >= 0.05
        assert inj.fired == 1

    def test_seeded_jitter_replays(self, monkeypatch):
        def schedule(seed):
            slept = []
            monkeypatch.setattr(faults.time, "sleep", slept.append)
            inj = faults.latency("kernel", 0.01, jitter=0.05, seed=seed)
            with faults.installed(inj):
                for _ in range(8):
                    faults.fire("kernel")
            monkeypatch.undo()
            return slept

        assert schedule(5) == schedule(5)
        assert schedule(5) != schedule(6)


class TestMemoryPressure:
    def test_allocates_and_releases(self):
        inj = faults.memory_pressure("storage", 1 << 20)
        with faults.installed(inj):
            faults.fire("storage", fmt="csr")
        assert inj.fired == 1


class TestSeededFaults:
    def test_same_seed_same_schedule(self):
        def run(seed):
            inj = faults.seeded_faults("kernel", seed=seed, rate=0.5)
            hits = []
            with faults.installed(inj):
                for k in range(32):
                    try:
                        faults.fire("kernel", op="mxv")
                        hits.append(False)
                    except faults.TransientFault:
                        hits.append(True)
            return hits

        assert run(11) == run(11)
        assert run(11) != run(12)       # astronomically unlikely to match

    def test_rate_zero_never_fires(self):
        inj = faults.seeded_faults("kernel", seed=0, rate=0.0)
        with faults.installed(inj):
            for _ in range(64):
                faults.fire("kernel")
        assert inj.fired == 0

    def test_default_is_retryable(self):
        inj = faults.seeded_faults("kernel", seed=0, rate=1.0)
        with faults.installed(inj):
            with pytest.raises(faults.TransientFault) as ei:
                faults.fire("kernel")
        assert ei.value.retryable


class TestConcurrency:
    def test_counters_are_race_free(self):
        inj = faults.latency("kernel", 0.0)
        with faults.installed(inj):
            threads = [threading.Thread(
                target=lambda: [faults.fire("kernel") for _ in range(100)])
                for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert inj.calls == 800
