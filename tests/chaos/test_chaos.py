"""The chaos suite: seeded faults driven through the full serving stack.

Every test follows the same shape — install a seeded injector at a real
hook site (kernel dispatch, storage build, drain worker, serve kernel
unit), fire a realistic workload, and assert the three resilience
contracts:

1. **Progress** — every submitted future resolves (result or definite
   error) within the timeout; nothing hangs.
2. **Isolation** — a poisoned query fails alone; its batch siblings get
   correct answers.
3. **Identity for survivors** — whatever completes matches the direct
   ``repro.lagraph`` call bit for bit, faults notwithstanding.

Knobs (read once at import, for the CI matrix):

``REPRO_CHAOS_SEED``
    Seed for every seeded injector and retry-jitter RNG in the run
    (default 0).  Same seed → same fault schedule → same outcome.
``REPRO_CHAOS_DISABLE_ISOLATION=1``
    Builds services with ``isolation=False`` (no bisection).  The
    isolation tests then FAIL — CI runs this configuration expecting a
    non-zero exit, proving the suite actually detects broken isolation
    (same pattern as ``bench_compare.py --inject-slowdown``).
"""

import os
import time

import numpy as np
import pytest

from helpers import random_graph_np
from repro import lagraph as lg
from repro import serve
from repro.serve import resilience
from repro.testing import faults

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
ISOLATION = os.environ.get("REPRO_CHAOS_DISABLE_ISOLATION", "") != "1"


@pytest.fixture(autouse=True)
def _no_leaks():
    yield
    faults.clear()
    assert not faults.ACTIVE


@pytest.fixture
def graph():
    return random_graph_np(np.random.default_rng(SEED), n=40, p=0.1)


def _service(**kw):
    kw.setdefault("max_workers", 4)
    kw.setdefault("isolation", ISOLATION)
    kw.setdefault("retry_policy", resilience.RetryPolicy(seed=SEED))
    return serve.GraphService(**kw)


def _collect(futs, timeout=30):
    """Every future must resolve within ``timeout`` — the no-hung-futures
    assertion lives here."""
    outcomes = []
    for f in futs:
        try:
            outcomes.append(("ok", f.result(timeout=timeout)))
        except Exception as exc:
            outcomes.append(("err", exc))
    assert all(f.done() for f in futs), "chaos run left unresolved futures"
    return outcomes


# ---------------------------------------------------------------------------
# transient faults: retries clear them
# ---------------------------------------------------------------------------
class TestTransientFaults:
    def test_single_transient_fault_is_retried_to_success(self, graph):
        svc = _service()
        try:
            svc.register("g", graph)
            inj = faults.raise_on_nth("serve-kernel", 1)
            with faults.installed(inj):
                fut = svc.submit("g", serve.BFSLevels(0))
                [(kind, got)] = _collect([fut])
            assert inj.fired == 1
            assert kind == "ok" and got.isequal(lg.bfs_level(graph, 0))
            assert svc.stats().retries == 1
        finally:
            svc.shutdown()

    def test_seeded_fault_storm_every_future_resolves(self, graph):
        """20% of serve kernel units fail transiently; retries and
        bisection keep every future live, and survivors are exact."""
        svc = _service()
        try:
            svc.register("g", graph)
            inj = faults.seeded_faults("serve-kernel", seed=SEED, rate=0.2)
            with faults.installed(inj):
                futs = svc.submit_many(
                    "g", [serve.BFSLevels(s % graph.n) for s in range(48)])
                outcomes = _collect(futs, timeout=60)
            assert len(outcomes) == 48
            for (kind, got), s in zip(outcomes, range(48)):
                if kind == "ok":
                    assert got.isequal(lg.bfs_level(graph, s % graph.n))
                else:
                    assert isinstance(got, faults.TransientFault)
        finally:
            svc.shutdown()

    def test_same_seed_same_fault_schedule(self, graph):
        """The whole chaos run replays: same seed, same per-future
        outcome kinds."""
        def run():
            svc = _service(max_workers=1)
            try:
                svc.register("g", graph)
                inj = faults.seeded_faults("serve-kernel", seed=SEED,
                                           rate=0.3)
                with faults.installed(inj):
                    futs = svc.submit_many(
                        "g", [serve.BFSLevels(s % graph.n)
                              for s in range(24)])
                    return [kind for kind, _ in _collect(futs, timeout=60)]
            finally:
                svc.shutdown()

        assert run() == run()

    def test_kernel_site_transients_inside_engine(self, graph):
        """Faults at the engine dispatch site (inside the kernel, below
        the serve layer) still resolve every future."""
        svc = _service()
        try:
            svc.register("g", graph)
            inj = faults.seeded_faults("kernel", seed=SEED, rate=0.05)
            with faults.installed(inj):
                futs = svc.submit_many(
                    "g", [serve.BFSLevels(s % graph.n) for s in range(16)])
                outcomes = _collect(futs, timeout=60)
            for (kind, got), s in zip(outcomes, range(16)):
                if kind == "ok":
                    assert got.isequal(lg.bfs_level(graph, s % graph.n))
        finally:
            svc.shutdown()


# ---------------------------------------------------------------------------
# failure isolation (the CI self-check flips ISOLATION off and expects
# these to fail)
# ---------------------------------------------------------------------------
class TestIsolation:
    POISON = 13

    def _poison(self):
        """Permanent fault for any serve kernel unit containing the
        poisoned source — batched, bisected halves, or singleton."""
        return faults.raise_when(
            "serve-kernel",
            lambda info: any(getattr(q, "source", None) == self.POISON
                             for q in info.get("queries", ())),
            exc=faults.FaultInjected)

    def test_poisoned_query_fails_alone(self, graph):
        svc = _service()
        try:
            svc.register("g", graph)
            sources = [3, 7, self.POISON, 21, 28, 35, 5, 11]
            with faults.installed(self._poison()):
                futs = svc.submit_many(
                    "g", [serve.BFSLevels(s) for s in sources])
                outcomes = _collect(futs, timeout=60)
            for (kind, got), s in zip(outcomes, sources):
                if s == self.POISON:
                    assert kind == "err", \
                        "poisoned query must fail"
                    assert isinstance(got, faults.FaultInjected)
                else:
                    assert kind == "ok", \
                        f"innocent sibling {s} caught the poison"
                    assert got.isequal(lg.bfs_level(graph, s))
            assert svc.stats().quarantined == 1
        finally:
            svc.shutdown()

    def test_poison_quarantined_across_waves(self, graph):
        """Repeated batches with the poison present: siblings keep
        answering every wave (memo cache off-path via invalidate)."""
        svc = _service()
        try:
            svc.register("g", graph)
            with faults.installed(self._poison()):
                for _wave in range(3):
                    svc.invalidate("g")
                    futs = svc.submit_many(
                        "g", [serve.BFSLevels(s)
                              for s in (2, self.POISON, 31)])
                    outcomes = _collect(futs, timeout=60)
                    kinds = [k for k, _ in outcomes]
                    assert kinds == ["ok", "err", "ok"]
        finally:
            svc.shutdown()


# ---------------------------------------------------------------------------
# deadlines under latency chaos
# ---------------------------------------------------------------------------
class TestDeadlineChaos:
    def test_slow_kernels_expire_cleanly(self, graph):
        """100ms injected kernel latency against 30ms budgets: requests
        resolve with DeadlineExceeded on time, nothing hangs."""
        svc = _service(max_workers=2)
        try:
            svc.register("g", graph)
            with faults.installed(
                    faults.latency("serve-kernel", 0.1)):
                futs = svc.submit_many(
                    "g", [serve.BFSLevels(s) for s in range(8)],
                    deadline=0.03)
                t0 = time.monotonic()
                outcomes = _collect(futs, timeout=30)
                elapsed = time.monotonic() - t0
            assert any(kind == "err" and
                       isinstance(got, serve.DeadlineExceeded)
                       for kind, got in outcomes)
            # the reaper honoured the budgets: nowhere near 8 × 100ms
            assert elapsed < 5.0
        finally:
            svc.shutdown()

    def test_generous_deadlines_survive_latency(self, graph):
        svc = _service(max_workers=2)
        try:
            svc.register("g", graph)
            with faults.installed(
                    faults.latency("serve-kernel", 0.02)):
                futs = svc.submit_many(
                    "g", [serve.BFSLevels(s) for s in range(6)],
                    deadline=30.0)
                outcomes = _collect(futs, timeout=60)
            for (kind, got), s in zip(outcomes, range(6)):
                assert kind == "ok"
                assert got.isequal(lg.bfs_level(graph, s))
        finally:
            svc.shutdown()


# ---------------------------------------------------------------------------
# circuit breaker under sustained failure
# ---------------------------------------------------------------------------
class TestBreakerChaos:
    def test_breaker_opens_then_recovers(self, graph):
        svc = _service(breaker_threshold=2, breaker_reset_timeout=0.2,
                       isolation=True)
        try:
            svc.register("g", graph)
            permafault = faults.raise_when(
                "serve-kernel",
                lambda info: info.get("kernel") == "TriangleCount",
                exc=faults.FaultInjected)
            with faults.installed(permafault):
                for _ in range(2):
                    svc.invalidate("g")
                    with pytest.raises(faults.FaultInjected):
                        svc.query("g", serve.TriangleCount())
                assert svc.stats().breaker_states["g/TriangleCount"] \
                    == resilience.BREAKER_OPEN
                # open: fail fast, no kernel run (no stale entry yet)
                svc.invalidate("g")
                with pytest.raises(serve.CircuitOpen):
                    svc.query("g", serve.TriangleCount())
            # fault gone; after the reset timeout the half-open trial
            # succeeds and the breaker closes
            time.sleep(0.25)
            got = svc.query("g", serve.TriangleCount())
            assert got == lg.triangle_count_basic(graph)
            assert svc.stats().breaker_states["g/TriangleCount"] \
                == resilience.BREAKER_CLOSED
        finally:
            svc.shutdown()

    def test_healthy_kernels_unaffected_by_open_breaker(self, graph):
        """Breakers are per-(graph, kernel): TriangleCount being fused
        off must not block BFS."""
        svc = _service(breaker_threshold=1, breaker_reset_timeout=3600.0)
        try:
            svc.register("g", graph)
            with faults.installed(faults.raise_when(
                    "serve-kernel",
                    lambda info: info.get("kernel") == "TriangleCount",
                    exc=faults.FaultInjected)):
                with pytest.raises(faults.FaultInjected):
                    svc.query("g", serve.TriangleCount())
                got = svc.query("g", serve.BFSLevels(0))
            assert got.isequal(lg.bfs_level(graph, 0))
        finally:
            svc.shutdown()


# ---------------------------------------------------------------------------
# admission shedding under load
# ---------------------------------------------------------------------------
class TestSheddingChaos:
    def test_overload_sheds_and_recovers(self, graph):
        """Slow kernels + a tiny queue: the service sheds instead of
        queueing unboundedly, flags /healthz, and every future resolves."""
        svc = _service(max_workers=1, max_queue=4,
                       admission_policy="reject")
        try:
            svc.register("g", graph)
            with faults.installed(faults.latency("serve-kernel", 0.03)):
                futs = [svc.submit("g", serve.BFSLevels(s % graph.n))
                        for s in range(32)]
                outcomes = _collect(futs, timeout=60)
            kinds = [k for k, _ in outcomes]
            assert "err" in kinds       # something was shed...
            assert "ok" in kinds        # ...but the service kept serving
            for kind, got in outcomes:
                if kind == "err":
                    assert isinstance(got, serve.ServiceOverloaded)
            assert svc.stats().shed == kinds.count("err")
            ok, payload = svc._healthz()
            assert not ok and payload["reason"] == "shedding"
        finally:
            svc.shutdown()


# ---------------------------------------------------------------------------
# storage / drain / memory-pressure sites
# ---------------------------------------------------------------------------
class TestOtherSites:
    def test_storage_fault_does_not_hang(self, rng):
        svc = _service()
        try:
            g = random_graph_np(rng, n=40, p=0.1, weighted=True)
            svc.register("w", g)
            inj = faults.seeded_faults("storage", seed=SEED, rate=0.1)
            with faults.installed(inj):
                futs = svc.submit_many(
                    "w", [serve.SSSP(s % g.n) for s in range(12)])
                outcomes = _collect(futs, timeout=60)
            for (kind, got), s in zip(outcomes, range(12)):
                if kind == "ok":
                    assert got.isequal(lg.sssp_bellman_ford(g, s % g.n))
        finally:
            svc.shutdown()

    def test_drain_fault_fails_whole_batch_with_definite_error(self, graph):
        """A drain-infrastructure fault has no per-query blame: the batch
        fails together — but resolves together, too."""
        svc = _service(retry_policy=None)
        try:
            svc.register("g", graph)
            inj = faults.raise_when("drain", lambda info: True,
                                    exc=faults.FaultInjected)
            with faults.installed(inj):
                futs = svc.submit_many(
                    "g", [serve.BFSLevels(s) for s in range(6)])
                outcomes = _collect(futs, timeout=30)
            for kind, got in outcomes:
                assert kind == "err"
                assert isinstance(got, faults.FaultInjected)
        finally:
            svc.shutdown()

    def test_memory_pressure_leaves_results_exact(self, graph):
        svc = _service()
        try:
            svc.register("g", graph)
            inj = faults.memory_pressure("serve-kernel", 4 << 20)
            with faults.installed(inj):
                futs = svc.submit_many(
                    "g", [serve.BFSLevels(s) for s in range(6)])
                outcomes = _collect(futs, timeout=60)
            assert inj.fired >= 1
            for (kind, got), s in zip(outcomes, range(6)):
                assert kind == "ok"
                assert got.isequal(lg.bfs_level(graph, s))
        finally:
            svc.shutdown()


# ---------------------------------------------------------------------------
# the no-fault overhead contract
# ---------------------------------------------------------------------------
class TestNoFaultOverhead:
    def test_disabled_harness_never_enters_fire(self, graph, monkeypatch):
        """With no injector installed, hook sites must not even call
        ``faults.fire`` — the disabled path is one module-global bool
        read, which is how the ≤2% no-fault overhead budget is kept."""
        assert not faults.ACTIVE

        def tripwire(site, **info):     # pragma: no cover - must not run
            raise AssertionError(
                f"faults.fire({site!r}) called with no injector installed")

        monkeypatch.setattr(faults, "fire", tripwire)
        svc = serve.GraphService(max_workers=2)
        try:
            svc.register("g", graph)
            got = svc.query("g", serve.BFSLevels(0))
            assert got.isequal(lg.bfs_level(graph, 0))
        finally:
            svc.shutdown()

    def test_unscoped_checkpoint_cost_is_bounded(self):
        """The cancellation checkpoint with no token is a ContextVar read
        plus a None check — cheap enough for per-iteration use.  Bound it
        loosely (100 ns × 10⁵ calls ≪ 1 s even on a loaded CI box)."""
        from repro.grb import cancel
        t0 = time.perf_counter()
        for _ in range(100_000):
            cancel.checkpoint()
        assert time.perf_counter() - t0 < 1.0


# ---------------------------------------------------------------------------
# pool worker chaos: hard process death under the serving stack
# ---------------------------------------------------------------------------
class TestPoolChaos:
    """Crash injection at the ``pool-task`` site — a worker process dies
    mid-block (``os._exit``, the segfault/OOM-kill model) while the full
    serving stack is answering a mixed workload."""

    @pytest.fixture(autouse=True)
    def _pool_on(self, monkeypatch):
        from repro.grb.engine import cost
        monkeypatch.setenv("REPRO_POOL_WORKERS", "2")
        monkeypatch.setattr(cost, "POOL_MIN_WORK", 0)
        monkeypatch.setattr(cost, "PLAN_CACHE_ENABLED", False)

    def test_worker_death_quarantines_pool_query_siblings_answer(self, graph):
        """A permanently crashing pool poisons only the queries that
        route through it (TriangleCount's masked pair-count mxm); mxv
        traffic on the same service answers bit-for-bit, and once the
        faults clear the replacement workers serve the same query."""
        from repro.grb import pool as grbpool
        svc = _service()
        try:
            svc.register("g", graph, place="shm")
            sources = [2, 9, 17, 30]
            inj = faults.crash("pool-task", nth=1, repeat=10 ** 6)
            with faults.installed(inj):
                futs = svc.submit_many(
                    "g", [serve.BFSLevels(s) for s in sources])
                tc_fut = svc.submit("g", serve.TriangleCount())
                outcomes = _collect(futs + [tc_fut], timeout=60)
            kind, got = outcomes[-1]
            assert kind == "err", "pool-routed query must fail"
            assert isinstance(got, grbpool.PoolTaskError)
            # non-retryable: the retry ladder must not spin on a task
            # that killed two processes
            assert got.retryable is False
            for (kind, got), s in zip(outcomes, sources):
                assert kind == "ok", f"sibling {s} caught the pool poison"
                assert got.isequal(lg.bfs_level(graph, s))
            assert svc.stats().quarantined == 1
            # faults cleared: replacements resync to the empty spec list
            # and the very same query answers correctly
            assert (svc.query("g", serve.TriangleCount())
                    == lg.triangle_count_basic(graph))
        finally:
            svc.shutdown()

    def test_pool_transient_storm_survivors_exact(self, graph):
        """Seeded transient faults inside the workers: the serve retry
        ladder re-runs hit units (the flag survives the pickle trip
        home), every query resolves, and every success is exact."""
        svc = _service()
        try:
            svc.register("g", graph, place="shm")
            want = lg.triangle_count_basic(graph)
            inj = faults.seeded_faults("pool-task", seed=SEED, rate=0.3,
                                       exc=faults.TransientFault)
            ok = 0
            with faults.installed(inj):
                for _wave in range(6):
                    svc.invalidate("g")  # memo off-path: recompute for real
                    try:
                        assert svc.query("g", serve.TriangleCount()) == want
                        ok += 1
                    except faults.TransientFault:
                        pass             # retry budget exhausted — definite
            assert ok >= 1, "no wave survived a 0.3-rate storm"
            # storm over: the pool answers immediately and exactly
            svc.invalidate("g")
            assert svc.query("g", serve.TriangleCount()) == want
        finally:
            svc.shutdown()
