"""Shared fixtures and the project-wide hypothesis profile.

Strategies and plain graph builders live in :mod:`helpers`
(``tests/helpers.py``); test modules import them with
``from helpers import ...``.  The ``sys.path`` insert below makes that (and
``dense_model``) importable from any test module regardless of pytest's
import mode.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

# make tests/helpers.py and tests/dense_model.py importable from any module
sys.path.insert(0, str(Path(__file__).resolve().parent))
import pytest
from hypothesis import HealthCheck, settings

from repro import grb

# Project-wide hypothesis profile: modest example counts keep the suite fast.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


# ---------------------------------------------------------------------------
# fixtures
# ---------------------------------------------------------------------------

@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_directed_graph():
    """The 4-node diamond used across the docs: 0→1, 0→2, 1→3, 2→3."""
    from repro import lagraph as lg

    A = grb.Matrix.from_coo([0, 0, 1, 2], [1, 2, 3, 3],
                            np.ones(4, dtype=np.bool_), 4, 4)
    return lg.Graph(A, lg.ADJACENCY_DIRECTED)


@pytest.fixture
def triangle_graph():
    """Undirected triangle plus a pendant node."""
    from repro import lagraph as lg

    r = np.array([0, 1, 1, 2, 0, 2, 2, 3])
    c = np.array([1, 0, 2, 1, 2, 0, 3, 2])
    A = grb.Matrix.from_coo(r, c, np.ones(r.size, dtype=np.bool_), 4, 4)
    return lg.Graph(A, lg.ADJACENCY_UNDIRECTED)
