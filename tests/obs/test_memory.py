"""repro.obs.memory: store-footprint gauges and the tracemalloc deep tier.

ISSUE 7 tentpole layer 1:

* every Matrix/Vector mutation boundary folds the store's authoritative
  ``nbytes()`` into ``grb_store_bytes{format}`` / ``grb_store_count{format}``,
  maintained by delta — format flips move the contribution between labels,
  garbage collection retires it;
* ``nbytes_components()`` / ``cache_nbytes()`` split authoritative arrays
  from materialised derived views (the hypersparse CSR cache aliases the
  authoritative triple, so only the expanded indptr may count);
* ``profiling(memory=True)`` arms tracemalloc and lands per-kernel
  ``mem_alloc`` / ``mem_peak`` columns;
* ``format_audit()`` estimates every candidate format's footprint.
"""

import gc
import tracemalloc

import numpy as np
import pytest

from repro import grb, obs
from repro.obs import memory, metrics


@pytest.fixture(autouse=True)
def _clean_slate():
    gc.collect()
    obs.reset()          # resync gauges to whatever stores are still live
    yield
    gc.collect()
    obs.reset()


def _mat(n=10, nnz=20, seed=0):
    rng = np.random.default_rng(seed)
    keys = rng.choice(n * n, size=min(nnz, n * n), replace=False)
    r, c = np.divmod(keys, n)
    return grb.Matrix.from_coo(r, c, np.ones(r.size), n, n)


def _tc_graph(rng, n=60, p=0.15, seed=9):
    from helpers import random_graph_np

    g = random_graph_np(rng, n=n, p=p, directed=False, seed=seed)
    g.cache_all()
    return g


class TestComponentAccounting:
    def test_csr_components_sum_to_nbytes(self):
        m = _mat()
        st = m._store
        comps = st.nbytes_components()
        assert set(comps) == {"indptr", "indices", "values"}
        assert st.nbytes() == sum(comps.values())
        assert st.nbytes() == (st.indptr.nbytes + st.indices.nbytes
                               + st.values.nbytes)

    def test_cache_bytes_excluded_from_authoritative(self):
        m = _mat()
        st = m._store
        base = st.nbytes()
        assert st.cache_nbytes() == 0
        st.transpose_csr()       # materialise the derived CSC view
        assert st.cache_nbytes() > 0
        assert st.nbytes() == base          # authoritative side unchanged

    def test_hypersparse_cache_dedups_aliased_arrays(self):
        m = _mat(n=1000, nnz=30)
        m.set_format("hypersparse")
        st = m._store
        st.csr()                            # materialise the CSR cache
        # the cached CSR triple aliases the authoritative indices/values;
        # only the expanded indptr may be charged to the cache
        assert 0 < st.cache_nbytes() <= 2 * (st.nrows + 1) * 8

    def test_vector_components(self):
        v = grb.Vector.from_coo([1, 5, 7], [1.0, 2.0, 3.0], 10)
        st = v._st
        assert st.nbytes() == sum(st.nbytes_components().values())


class TestFootprintGauges:
    def test_new_store_lands_in_snapshot(self):
        m = _mat()
        snap = memory.snapshot()
        fmt = m.format
        assert snap[fmt]["count"] >= 1
        assert snap[fmt]["bytes"] >= m._store.nbytes()

    def test_format_change_moves_between_labels(self):
        m = _mat()
        before = memory.snapshot()
        m.set_format("bitmap")
        after = memory.snapshot()
        assert after.get("bitmap", {"count": 0})["count"] == \
            before.get("bitmap", {"count": 0}).get("count", 0) + 1
        assert after.get("csr", {"count": 0}).get("count", 0) == \
            before["csr"]["count"] - 1
        assert after["bitmap"]["bytes"] >= m._store.nbytes()

    def test_gc_retires_contribution(self):
        before = memory.live_count()
        m = _mat(n=50, nnz=200)
        assert memory.live_count() == before + 1
        del m
        gc.collect()
        assert memory.live_count() == before

    def test_mutation_updates_bytes_delta(self):
        m = _mat(n=30, nnz=10)
        b0 = memory.snapshot()[m.format]["bytes"]
        for j in range(20):       # grow the structure: bytes must move
            m[29, j] = 7.0
        assert m.store_version >= 0   # force the pending-write flush
        b1 = memory.snapshot()[m.format]["bytes"]
        assert b1 > b0

    def test_disabled_kill_switch_skips_accounting(self):
        metrics.ENABLED = False
        try:
            before = memory.live_count()
            m = _mat()
            assert memory.live_count() == before
        finally:
            metrics.ENABLED = True
        # resync repairs the drift once re-enabled and re-accounted
        m.set_format("bitmap")
        assert memory.live_count() > before

    def test_resync_restores_after_metrics_reset(self):
        m = _mat()
        fmt = m.format
        metrics.reset()                     # zeroes the gauge children
        assert memory.snapshot().get(fmt, {"bytes": 0})["bytes"] == 0
        memory.resync()
        assert memory.snapshot()[fmt]["bytes"] >= m._store.nbytes()

    def test_dup_accounts_the_copy(self):
        m = _mat()
        before = memory.snapshot()[m.format]["count"]
        d = m.dup()
        assert memory.snapshot()[m.format]["count"] == before + 1
        assert d is not None


class TestReportTier:
    def test_top_stores_ranked_and_shaped(self):
        small = _mat(n=10, nnz=5, seed=1)
        big = _mat(n=200, nnz=2000, seed=2)
        rows = memory.top_stores(5)
        assert rows == sorted(rows, key=lambda r: r["nbytes"], reverse=True)
        assert rows[0]["nbytes"] >= big._store.nbytes()
        for row in rows:
            assert {"kind", "shape", "format", "nvals", "nbytes",
                    "cache_nbytes", "graph"} <= set(row)
        assert small.nvals >= 0   # keep operands alive through the walk

    def test_format_audit_flags_wasteful_format(self):
        m = _mat(n=400, nnz=10, seed=4)
        m.set_format("bitmap")              # 160k cells for 10 entries
        rows = [r for r in memory.format_audit()
                if r["shape"] == (400, 400) and r["format"] == "bitmap"]
        assert rows
        row = rows[0]
        assert row["best"] in ("csr", "csc", "hypersparse")
        assert row["savings_bytes"] > 0
        assert set(row["estimates"]) == {"csr", "csc", "bitmap",
                                         "hypersparse"}

    def test_json_snapshot_and_report_have_memory_sections(self):
        m = _mat()
        snap = obs.json_snapshot()
        assert m.format in snap["memory"]["stores"]
        assert snap["memory"]["live_owners"] >= 1
        text = obs.report()
        assert "memory" in text
        assert "grb_store_bytes" in text or "bytes=" in text


class TestDeepMemoryTier:
    def test_profiling_memory_records_kernel_columns(self, rng):
        from repro import lagraph as lg

        g = _tc_graph(rng, seed=9)
        obs.profile.reset()
        assert not tracemalloc.is_tracing()
        with obs.profiling(memory=True):
            assert obs.memory_active()
            assert tracemalloc.is_tracing()
            lg.algorithms.triangle_count(g, presort=None)
        assert not tracemalloc.is_tracing()   # disarmed on exit
        table = obs.profile.kernel_table()
        assert table
        assert any(row["mem_peak"] > 0 for row in table.values())
        for row in table.values():
            assert "mem_alloc" in row and "mem_peak" in row

    def test_profiling_without_memory_leaves_tracemalloc_off(self, rng):
        from repro import lagraph as lg

        g = _tc_graph(rng, n=40, p=0.1, seed=10)
        obs.profile.reset()
        with obs.profiling():
            assert not obs.memory_active()
            assert not tracemalloc.is_tracing()
            lg.algorithms.triangle_count(g, presort=None)
        assert all(row["mem_peak"] == 0
                   for row in obs.profile.kernel_table().values())

    def test_memory_spans_emitted_when_tracing(self, rng):
        from repro import lagraph as lg

        g = _tc_graph(rng, seed=11)
        with obs.tracing() as tr:
            with obs.profiling(memory=True):
                lg.algorithms.triangle_count(g, presort=None)
        assert tr.find("memory:")
