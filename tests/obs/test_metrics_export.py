"""repro.obs.metrics + export: registry semantics and exposition formats."""

import json

import pytest

from repro import obs
from repro.obs import metrics


@pytest.fixture
def registry():
    return metrics.Registry()


class TestCounters:
    def test_inc_and_value(self, registry):
        c = registry.counter("t_ops_total", "ops")
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_labels_children_independent(self, registry):
        c = registry.counter("t_by_rule_total", labels=("rule",))
        c.labels("dot").inc()
        c.labels("dot").inc()
        c.labels("expand").inc()
        assert c.labels("dot").value == 2
        assert c.labels("expand").value == 1

    def test_label_arity_checked(self, registry):
        c = registry.counter("t_l_total", labels=("a", "b"))
        with pytest.raises(ValueError):
            c.labels("only-one")

    def test_get_or_create_returns_same(self, registry):
        a = registry.counter("t_same_total")
        b = registry.counter("t_same_total")
        assert a is b

    def test_kind_collision_rejected(self, registry):
        registry.counter("t_kind_total")
        with pytest.raises(ValueError):
            registry.gauge("t_kind_total")

    def test_reset_zeroes_but_keeps_registration(self, registry):
        c = registry.counter("t_reset_total", labels=("k",))
        c.labels("x").inc(5)
        registry.reset()
        assert c.labels("x").value == 0
        assert registry.get("t_reset_total") is c


class TestGaugeHistogram:
    def test_gauge_set_inc_dec(self, registry):
        g = registry.gauge("t_depth")
        g.set(7)
        g.inc()
        g.dec(3)
        assert g.value == 5

    def test_histogram_buckets(self, registry):
        h = registry.histogram("t_lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        snap = h.labels().snapshot()
        assert snap["count"] == 4
        assert snap["counts"] == [1, 2, 1]   # ≤0.1, ≤1.0, +Inf
        assert snap["sum"] == pytest.approx(6.05)


class TestKillSwitch:
    def test_disabled_bumps_are_noops(self, registry, monkeypatch):
        c = registry.counter("t_off_total")
        h = registry.histogram("t_off_lat")
        g = registry.gauge("t_off_depth")
        monkeypatch.setattr(metrics, "ENABLED", False)
        c.inc()
        h.observe(1.0)
        g.set(9)
        assert c.value == 0
        assert h.labels().snapshot()["count"] == 0
        assert g.value == 0


class TestPrometheusText:
    def test_counter_and_labels(self, registry):
        c = registry.counter("t_req_total", "requests", labels=("op",))
        c.labels("mxm").inc(2)
        text = obs.prometheus_text(registry)
        assert "# HELP t_req_total requests" in text
        assert "# TYPE t_req_total counter" in text
        assert 't_req_total{op="mxm"} 2' in text

    def test_histogram_series_cumulative(self, registry):
        h = registry.histogram("t_sec", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        text = obs.prometheus_text(registry)
        assert 't_sec_bucket{le="0.1"} 1' in text
        assert 't_sec_bucket{le="1.0"} 2' in text
        assert 't_sec_bucket{le="+Inf"} 2' in text
        assert "t_sec_count 2" in text

    def test_histogram_label_merge(self, registry):
        h = registry.histogram("t_lbl_sec", labels=("k",), buckets=(1.0,))
        h.labels("a").observe(0.5)
        text = obs.prometheus_text(registry)
        assert 't_lbl_sec_bucket{k="a", le="1.0"} 1' in text


class TestJsonSnapshot:
    def test_snapshot_is_json_serialisable(self, registry):
        registry.counter("t_js_total", labels=("x",)).labels("v").inc()
        registry.histogram("t_js_sec").observe(0.2)
        snap = obs.json_snapshot(registry)
        text = json.dumps(snap)
        back = json.loads(text)
        assert back["metrics"]["t_js_total"]["kind"] == "counter"
        sample = back["metrics"]["t_js_total"]["samples"][0]
        assert sample == {"labels": {"x": "v"}, "value": 1}

    def test_snapshot_includes_plan_cache(self):
        # the engine is imported by the suite; global snapshot carries it
        snap = obs.json_snapshot()
        assert "plan_cache" in snap
        assert set(snap["plan_cache"]) >= {"hits", "misses", "invalidations"}


class TestGlobalRegistryWiring:
    def test_engine_dispatch_counter_registered(self):
        # importing the engine registers the always-on dispatch counter
        import repro.grb  # noqa: F401
        assert metrics.REGISTRY.get("grb_dispatch_total") is not None
        assert metrics.REGISTRY.get("grb_plan_cache_total") is not None

    def test_dispatch_bumps_counter(self, rng):
        import numpy as np

        from repro import grb
        c = metrics.REGISTRY.get("grb_dispatch_total")
        before = sum(ch.value for _, ch in c.samples())
        v = grb.Vector.from_coo([0, 2], np.array([1.0, 2.0]), 5)
        w = grb.Vector(grb.FP64, 5)
        grb.ewise_add(w, v, v, grb.binary.PLUS)
        after = sum(ch.value for _, ch in c.samples())
        assert after > before

    def test_report_returns_text(self):
        text = obs.report(file=False)
        assert text.startswith("== repro.obs report ==")
