"""repro.obs.http + GraphService.serve_telemetry: the telemetry endpoint.

ISSUE 7 tentpole layer 2 and satellite 3 (endpoint smoke): a stdlib HTTP
exporter on a daemon thread serving ``/metrics`` (Prometheus text),
``/healthz`` (drain-pool liveness + queue-depth threshold), ``/stats``
(:meth:`GraphService.stats` as JSON) and ``/trace`` (a bounded ring of
recent request span trees as Chrome trace JSON).  The acceptance test
scrapes **all four** routes from a live service and validates each
payload's schema.
"""

import json
import urllib.error
import urllib.request

import pytest

from helpers import random_graph_np
from repro import obs, serve
from repro.obs import http as obshttp
from repro.obs import metrics, trace


def _get(url, timeout=5):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read()


@pytest.fixture
def server():
    srv = obshttp.start_server()
    yield srv
    srv.stop()


class TestStandaloneServer:
    def test_ephemeral_port_and_url(self, server):
        assert server.port > 0
        assert server.url == f"http://127.0.0.1:{server.port}"

    def test_metrics_route_serves_prometheus_text(self, server):
        c = metrics.counter("t_http_route_total", "route hits")
        c.inc(3)
        status, ctype, body = _get(server.url + "/metrics")
        assert status == 200
        assert ctype == obshttp.PROMETHEUS_CONTENT_TYPE
        text = body.decode()
        assert "# TYPE t_http_route_total counter" in text
        assert "t_http_route_total 3" in text

    def test_healthz_default_is_ok(self, server):
        status, ctype, body = _get(server.url + "/healthz")
        assert status == 200
        assert ctype.startswith("application/json")
        assert json.loads(body)["status"] == "ok"

    def test_healthz_unhealthy_is_503(self):
        srv = obshttp.start_server(
            healthz=lambda: (False, {"status": "overloaded"}))
        try:
            with pytest.raises(urllib.error.HTTPError) as exc:
                _get(srv.url + "/healthz")
            assert exc.value.code == 503
            assert json.loads(exc.value.read())["status"] == "overloaded"
        finally:
            srv.stop()

    def test_stats_route_serves_json_snapshot(self, server):
        status, _, body = _get(server.url + "/stats")
        assert status == 200
        snap = json.loads(body)
        assert "metrics" in snap and "memory" in snap

    def test_trace_route_empty_without_ring(self, server):
        status, _, body = _get(server.url + "/trace")
        assert status == 200
        assert json.loads(body)["traceEvents"] == []

    def test_trace_route_serves_ring(self):
        ring = obshttp.TraceRing()
        srv = obshttp.start_server(trace_ring=ring)
        try:
            with trace.tracing() as coll:
                with trace.span("unit:outer", cat="test"):
                    trace.instant("unit:mark", "test")
            ring.push(coll.records())
            status, _, body = _get(srv.url + "/trace")
            assert status == 200
            doc = json.loads(body)
            names = {ev["name"] for ev in doc["traceEvents"]}
            assert {"unit:outer", "unit:mark"} <= names
        finally:
            srv.stop()

    def test_index_and_404(self, server):
        status, _, body = _get(server.url + "/")
        assert status == 200
        assert set(json.loads(body)["routes"]) == {
            "/metrics", "/healthz", "/stats", "/trace"}
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(server.url + "/nope")
        assert exc.value.code == 404


class TestTraceRing:
    def test_bounded_capacity(self):
        ring = obshttp.TraceRing(capacity=3)
        for i in range(5):
            with trace.tracing() as coll:
                trace.instant(f"ring:{i}", "test")
            ring.push(coll.records())
        assert len(ring) == 3
        names = {ev["name"]
                 for ev in ring.to_chrome_trace()["traceEvents"]}
        assert names == {"ring:2", "ring:3", "ring:4"}

    def test_empty_pushes_ignored(self):
        ring = obshttp.TraceRing()
        ring.push([])
        assert len(ring) == 0


@pytest.fixture
def service(rng):
    svc = serve.GraphService(max_workers=2, cache_capacity=64, max_batch=8)
    svc.register("g", random_graph_np(rng, n=40, p=0.1, seed=5))
    yield svc
    svc.shutdown()


class TestServeTelemetry:
    def test_scrape_all_four_routes_live(self, service):
        """The ISSUE acceptance: all four endpoints answer from a running
        service with schema-valid payloads."""
        server = service.serve_telemetry()
        assert service.serve_telemetry() is server      # idempotent
        futs = service.submit_many("g", [serve.BFSLevels(s)
                                         for s in (0, 1, 2, 3)])
        for f in futs:
            f.result(timeout=30)

        status, ctype, body = _get(server.url + "/metrics")
        assert status == 200 and ctype == obshttp.PROMETHEUS_CONTENT_TYPE
        assert "serve_requests_total" in body.decode()

        status, _, body = _get(server.url + "/healthz")
        health = json.loads(body)
        assert status == 200 and health["status"] == "ok"
        assert "queue_depth" in health

        status, _, body = _get(server.url + "/stats")
        stats = json.loads(body)
        assert status == 200
        assert stats["submitted"] >= 4 and stats["completed"] >= 4
        assert {"queue_depth", "batches", "latency_p95",
                "plan_cache"} <= set(stats)

        status, _, body = _get(server.url + "/trace")
        doc = json.loads(body)
        assert status == 200
        names = {ev["name"] for ev in doc["traceEvents"]}
        assert any(n.startswith("serve:batch") for n in names)

    def test_untraced_submitters_feed_the_ring_only_while_live(self, service):
        """Batches run under a service-owned collector only once the
        exporter is up; a submitter's own sink still wins (no double
        capture, spans stay in the submitter's tree)."""
        service.query("g", serve.BFSLevels(0))
        assert service._trace_ring is None              # not serving yet
        service.serve_telemetry()
        service.query("g", serve.BFSLevels(1))
        assert len(service._trace_ring) >= 1
        before = len(service._trace_ring)
        with obs.tracing() as tr:
            service.query("g", serve.BFSLevels(2))
        assert tr.find("serve:batch")                   # submitter's tree
        assert len(service._trace_ring) == before       # ring untouched

    def test_healthz_queue_depth_limit_and_shutdown(self, rng):
        svc = serve.GraphService(max_workers=1)
        svc.register("g", random_graph_np(rng, n=20, p=0.1, seed=6))
        server = svc.serve_telemetry(queue_depth_limit=2)
        ok, payload = svc._healthz()
        assert ok and payload["queue_depth_limit"] == 2
        svc.shutdown()
        ok, payload = svc._healthz()
        assert not ok and payload["status"] == "shutdown"
        assert svc._telemetry_server is None            # stopped with it
        assert server.port                              # object survives
