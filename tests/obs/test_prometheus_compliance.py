"""Prometheus exposition compliance: a strict line parser round-trips
everything :func:`repro.obs.prometheus_text` emits.

ISSUE 7 satellite 3.  The parser below implements the text exposition
format rules that scrapers actually enforce — ``# HELP`` / ``# TYPE``
headers, label-value escaping (``\\\\``, ``\\"``, ``\\n``), cumulative
``le`` histogram series ending in ``+Inf``, ``_count``/``_sum``
consistency — and the suite feeds it adversarial metric content (label
values containing every escapable character, custom bucket boundaries,
multi-label children).
"""

import json
import re
import urllib.request

import pytest

from repro.obs import export, http as obshttp, metrics

# one sample line: name{labels} value   (no timestamps emitted)
_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>.*)\})? '
    r'(?P<value>[^ ]+)$')
# one escaped label pair within {}: key="value"
_LABEL_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>(?:[^"\\]|\\.)*)"')


def _unescape(v: str) -> str:
    out, i = [], 0
    while i < len(v):
        ch = v[i]
        if ch == "\\":
            nxt = v[i + 1]
            out.append({"\\": "\\", '"': '"', "n": "\n"}[nxt])
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def parse_exposition(text: str) -> dict:
    """``{family: {"type": str, "help": str, "samples": [...]}}`` — raises
    AssertionError on any line a strict scraper would reject."""
    families = {}
    current = None
    assert text.endswith("\n"), "exposition must end with a newline"
    for line in text.splitlines():
        assert line == line.strip(), f"stray whitespace: {line!r}"
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(name, {"type": None, "help": None,
                                       "samples": []})["help"] = help_text
            current = name
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert kind in ("counter", "gauge", "histogram", "untyped")
            families.setdefault(name, {"type": None, "help": None,
                                       "samples": []})["type"] = kind
            current = name
        else:
            m = _SAMPLE_RE.match(line)
            assert m, f"malformed sample line: {line!r}"
            name = m.group("name")
            base = re.sub(r"_(bucket|sum|count)$", "", name)
            assert current in (name, base), (
                f"sample {name!r} outside its family block ({current!r})")
            labels = {}
            raw = m.group("labels")
            if raw:
                consumed = ", ".join(
                    f'{k}="{v}"' for k, v in _LABEL_RE.findall(raw))
                assert consumed == raw, f"malformed labels: {raw!r}"
                labels = {k: _unescape(v)
                          for k, v in _LABEL_RE.findall(raw)}
            family = families[current]
            family["samples"].append(
                {"name": name, "labels": labels,
                 "value": float(m.group("value"))})
    return families


def _histogram_series(family: dict, base: str) -> dict:
    """Group a histogram family's samples by non-le label set."""
    series = {}
    for s in family["samples"]:
        key = tuple(sorted((k, v) for k, v in s["labels"].items()
                           if k != "le"))
        entry = series.setdefault(key, {"buckets": [], "sum": None,
                                        "count": None})
        if s["name"] == f"{base}_bucket":
            entry["buckets"].append((s["labels"]["le"], s["value"]))
        elif s["name"] == f"{base}_sum":
            entry["sum"] = s["value"]
        elif s["name"] == f"{base}_count":
            entry["count"] = s["value"]
    return series


@pytest.fixture
def registry():
    return metrics.Registry()


class TestRoundTrip:
    def test_counter_gauge_families(self, registry):
        registry.counter("c_total", "plain counter").inc(7)
        registry.gauge("g_bytes", "plain gauge").set(123.5)
        fams = parse_exposition(export.prometheus_text(registry))
        assert fams["c_total"]["type"] == "counter"
        assert fams["c_total"]["samples"][0]["value"] == 7
        assert fams["g_bytes"]["type"] == "gauge"
        assert fams["g_bytes"]["samples"][0]["value"] == 123.5

    def test_label_value_escaping_round_trips(self, registry):
        evil = 'back\\slash "quoted"\nnewline'
        c = registry.counter("c_evil_total", "escapes", labels=("path",))
        c.labels(evil).inc()
        c.labels("plain").inc(2)
        fams = parse_exposition(export.prometheus_text(registry))
        by_label = {s["labels"]["path"]: s["value"]
                    for s in fams["c_evil_total"]["samples"]}
        assert by_label[evil] == 1          # decoded back to the original
        assert by_label["plain"] == 2

    def test_help_escaping(self, registry):
        registry.counter("c_help_total", "line1\nline2 with \\slash")
        text = export.prometheus_text(registry)
        fams = parse_exposition(text)
        assert fams["c_help_total"]["help"] == "line1\\nline2 with \\\\slash"
        assert "\nline2" not in text.split("# TYPE")[0][7:]

    def test_histogram_cumulative_le_and_count_sum(self, registry):
        h = registry.histogram("h_lat_seconds", "latency",
                               buckets=(0.1, 1.0, 5.0))
        for v in (0.05, 0.5, 0.5, 3.0, 99.0):
            h.observe(v)
        fams = parse_exposition(export.prometheus_text(registry))
        series = _histogram_series(fams["h_lat_seconds"], "h_lat_seconds")
        entry = series[()]
        les = [le for le, _ in entry["buckets"]]
        assert les == ["0.1", "1.0", "5.0", "+Inf"]
        counts = [c for _, c in entry["buckets"]]
        assert counts == [1, 3, 4, 5]                  # cumulative
        assert counts == sorted(counts)
        assert entry["count"] == 5 == counts[-1]       # _count == +Inf
        assert entry["sum"] == pytest.approx(103.05)

    def test_custom_integer_buckets_keep_le_strings(self, registry):
        h = registry.histogram("h_batch_size", "batch", buckets=(1, 2, 4))
        h.observe(3)
        fams = parse_exposition(export.prometheus_text(registry))
        series = _histogram_series(fams["h_batch_size"], "h_batch_size")
        les = [le for le, _ in series[()]["buckets"]]
        assert les == ["1", "2", "4", "+Inf"]          # ints stay ints

    def test_labelled_histogram_children_independent(self, registry):
        h = registry.histogram("h_by_op_seconds", "per-op",
                               labels=("op",), buckets=(0.5, 1.0))
        h.labels("mxm").observe(0.2)
        h.labels("mxv").observe(2.0)
        fams = parse_exposition(export.prometheus_text(registry))
        series = _histogram_series(fams["h_by_op_seconds"],
                                   "h_by_op_seconds")
        mxm = series[(("op", "mxm"),)]
        mxv = series[(("op", "mxv"),)]
        assert mxm["count"] == 1 and mxv["count"] == 1
        assert mxm["buckets"][-1][1] == 1
        assert mxv["buckets"][0][1] == 0               # 2.0 > every bound

    def test_global_registry_parses_clean(self):
        # whatever the process accumulated so far must round-trip too
        parse_exposition(export.prometheus_text())


class TestBucketConfiguration:
    def test_explicit_buckets_sorted_and_deduped(self):
        h = metrics.Histogram("h_cfg_seconds", buckets=(5.0, 0.1, 1.0, 0.1))
        assert h.buckets == (0.1, 1.0, 5.0)

    def test_default_buckets_used_when_unspecified(self):
        h = metrics.Histogram("h_dflt_seconds")
        assert h.buckets == metrics.DEFAULT_BUCKETS

    def test_empty_or_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            metrics.Histogram("h_bad_seconds", buckets=())
        with pytest.raises(ValueError):
            metrics.Histogram("h_inf_seconds", buckets=(1.0, float("inf")))

    def test_conflicting_reregistration_rejected(self, registry):
        registry.histogram("h_pin_seconds", buckets=(0.1, 1.0))
        registry.histogram("h_pin_seconds")                 # None accepts
        registry.histogram("h_pin_seconds", buckets=(1.0, 0.1))  # same set
        with pytest.raises(ValueError):
            registry.histogram("h_pin_seconds", buckets=(0.2, 1.0))

    def test_serve_latency_buckets_are_wired(self):
        from repro.serve import service as serve_service

        reg = metrics.REGISTRY
        h = reg.get("serve_request_latency_seconds")
        if h is None:           # registered at serve import in some orders
            pytest.skip("latency histogram not registered in this process")
        assert tuple(map(float, h.buckets)) == tuple(
            map(float, serve_service.SERVE_LATENCY_BUCKETS))


class TestEndpointExposition:
    def test_scraped_metrics_parse_strict(self):
        srv = obshttp.start_server()
        try:
            with urllib.request.urlopen(srv.url + "/metrics",
                                        timeout=5) as resp:
                assert resp.headers.get("Content-Type") == \
                    obshttp.PROMETHEUS_CONTENT_TYPE
                fams = parse_exposition(resp.read().decode())
            with urllib.request.urlopen(srv.url + "/healthz",
                                        timeout=5) as resp:
                assert json.loads(resp.read())["status"] == "ok"
        finally:
            srv.stop()
        for name, family in fams.items():
            assert family["type"] is not None, f"{name} missing # TYPE"
