"""repro.obs.trace: span structure, context isolation, export formats."""

import json
import threading

from repro import obs
from repro.obs import trace


class TestSpanStructure:
    def test_no_sink_returns_shared_null_span(self):
        a = obs.span("x")
        b = obs.span("y")
        assert a is b                 # the fast path allocates nothing
        with a as sp:
            assert sp.set(k=1) is sp  # attribute setting is a no-op

    def test_parent_child_ids(self):
        with obs.tracing() as tr:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        by_name = {r["name"]: r for r in tr.records()}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["parent_id"] is None

    def test_span_tree_nesting(self):
        with obs.tracing() as tr:
            with obs.span("a"):
                with obs.span("b"):
                    obs.instant("mark")
                with obs.span("c"):
                    pass
        roots = tr.span_tree()
        assert [r["record"]["name"] for r in roots] == ["a"]
        names = sorted(ch["record"]["name"] for ch in roots[0]["children"])
        assert names == ["b", "c"]
        b = next(ch for ch in roots[0]["children"]
                 if ch["record"]["name"] == "b")
        assert b["children"][0]["record"]["name"] == "mark"

    def test_attrs_and_error_recorded(self):
        with obs.tracing() as tr:
            try:
                with obs.span("boom", cat="test", op="mxm") as sp:
                    sp.set(rows=3)
                    raise ValueError("x")
            except ValueError:
                pass
        (rec,) = tr.records()
        assert rec["args"] == {"op": "mxm", "rows": 3}
        assert rec["error"] == "ValueError"
        assert rec["dur"] >= 0

    def test_nested_tracing_restores_outer_sink(self):
        with obs.tracing() as outer:
            with obs.tracing() as inner:
                with obs.span("in-inner"):
                    pass
            with obs.span("in-outer"):
                pass
        assert inner.names() == ["in-inner"]
        assert outer.names() == ["in-outer"]


class TestThreadIsolation:
    def test_plain_thread_has_no_sink(self):
        seen = []

        def worker():
            seen.append(trace.active())
        with obs.tracing():
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen == [False]

    def test_propagate_carries_sink(self):
        from repro.grb import telemetry
        with obs.tracing() as tr:
            t = threading.Thread(target=telemetry.propagate(
                lambda: obs.instant("from-thread")))
            t.start()
            t.join()
        assert tr.names() == ["from-thread"]


class TestChromeExport:
    def _validate(self, doc):
        """The Chrome trace-event schema subset we emit."""
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        for ev in doc["traceEvents"]:
            assert ev["ph"] in ("X", "i")
            assert isinstance(ev["name"], str) and ev["name"]
            assert isinstance(ev["cat"], str)
            assert isinstance(ev["pid"], int)
            assert isinstance(ev["tid"], int)
            assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0
            assert isinstance(ev["args"], dict)
            assert isinstance(ev["args"]["span_id"], int)
            if ev["ph"] == "X":
                assert isinstance(ev["dur"], (int, float)) and ev["dur"] >= 0
            else:
                assert ev["s"] == "t"

    def test_chrome_trace_schema(self):
        with obs.tracing() as tr:
            with obs.span("outer", cat="plan", op="mxm"):
                with obs.span("inner", cat="kernel"):
                    pass
                obs.instant("note", detail="x")
        doc = tr.to_chrome_trace()
        self._validate(doc)
        # round-trips through JSON text
        doc2 = json.loads(tr.to_chrome_json())
        self._validate(doc2)
        # parent/child structure survives in args
        by_name = {e["name"]: e for e in doc2["traceEvents"]}
        assert (by_name["inner"]["args"]["parent_id"]
                == by_name["outer"]["args"]["span_id"])

    def test_jsonl_round_trip(self):
        with obs.tracing() as tr:
            with obs.span("a"):
                obs.instant("b")
        lines = tr.to_jsonl().splitlines()
        records = [json.loads(line) for line in lines]
        assert {r["name"] for r in records} == {"a", "b"}
        assert {r["type"] for r in records} == {"span", "instant"}


class TestInstantOverrides:
    def test_explicit_sink_and_parent(self):
        tr = trace.TraceCollector()
        with obs.tracing(tr):
            with obs.span("root"):
                parent = trace.current_span_id()
        # no sink installed here — explicit delivery still lands
        obs.instant("late", sink=tr, parent_id=parent, outcome="done")
        by_name = {r["name"]: r for r in tr.records()}
        assert by_name["late"]["parent_id"] == by_name["root"]["span_id"]
        assert by_name["late"]["args"]["outcome"] == "done"
