"""tools/check_obs_gating.py: the lint-time observability cost contract."""

import importlib.util
from pathlib import Path

import pytest

_TOOL = Path(__file__).resolve().parents[2] / "tools" / "check_obs_gating.py"


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location("check_obs_gating", _TOOL)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_repository_sources_pass(checker):
    for path in checker.iter_default_files(_TOOL.parents[1]):
        assert checker.check_file(path) == [], str(path)


def test_obs_package_is_exempt(checker):
    paths = list(checker.iter_default_files(_TOOL.parents[1]))
    assert paths
    assert not any(p.parent.name == "obs" for p in paths)


def test_ungated_record_flagged(checker, tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def f(plan):\n"
        "    telemetry.record({'op': plan.op})\n")
    (violation,) = checker.check_file(bad)
    assert violation == (2, "telemetry.record")


def test_guarded_record_passes(checker, tmp_path):
    good = tmp_path / "good.py"
    good.write_text(
        "def f(plan):\n"
        "    if telemetry.active():\n"
        "        telemetry.record({'op': plan.op})\n")
    assert checker.check_file(good) == []


def test_compound_guard_passes(checker, tmp_path):
    good = tmp_path / "good2.py"
    good.write_text(
        "def f(x):\n"
        "    if x is not None and _telemetry.active():\n"
        "        _telemetry.record(x)\n")
    assert checker.check_file(good) == []


def test_pragma_waives(checker, tmp_path):
    waived = tmp_path / "waived.py"
    waived.write_text(
        "def _emit(event):\n"
        "    # obs: gated-by-caller (sites guard on telemetry.active())\n"
        "    telemetry.record(event)\n")
    assert checker.check_file(waived) == []


def test_ungated_metric_bump_flagged(checker, tmp_path):
    bad = tmp_path / "bump.py"
    bad.write_text(
        "def f(op, rule):\n"
        "    _DISPATCHES.labels(op, rule).inc()\n")
    (violation,) = checker.check_file(bad)
    assert violation[0] == 2 and "inc" in violation[1]


def test_enabled_flag_guard_passes(checker, tmp_path):
    good = tmp_path / "flag.py"
    good.write_text(
        "def f(op, rule):\n"
        "    if _metrics.ENABLED:\n"
        "        _DISPATCHES.labels(op, rule).inc()\n")
    assert checker.check_file(good) == []


def test_lowercase_set_not_flagged(checker, tmp_path):
    ok = tmp_path / "lower.py"
    ok.write_text(
        "def f(msg, e):\n"
        "    msg.set(str(e))\n")
    assert checker.check_file(ok) == []


def test_ungated_instant_flagged(checker, tmp_path):
    bad = tmp_path / "inst.py"
    bad.write_text(
        "def f(name):\n"
        "    _trace.instant('x:' + name)\n")
    (violation,) = checker.check_file(bad)
    assert violation == (2, "_trace.instant")


def test_stripped_real_source_is_flagged(checker, tmp_path):
    """Self-test against a real engine module: stripping its guards must
    make the checker fire — proves the check still *sees* the tree's
    actual call-site idioms, not just synthetic fixtures."""
    real = _TOOL.parents[1] / "src" / "repro" / "grb" / "engine" / "multiplan.py"
    source = real.read_text()
    assert "if _metrics.ENABLED:" in source
    assert checker.check_file(real) == []         # shipped file is gated
    stripped = source.replace("if _metrics.ENABLED:", "if _unguarded:")
    stripped = stripped.replace("obs: gated-by-caller", "obs pragma removed")
    variant = tmp_path / "multiplan_stripped.py"
    variant.write_text(stripped)
    violations = checker.check_file(variant)
    assert violations, "stripping guards must surface the metric bumps"
    assert all(isinstance(line, int) and isinstance(label, str)
               for line, label in violations)


def test_main_exit_codes(checker, tmp_path, capsys):
    good = tmp_path / "g.py"
    good.write_text("x = 1\n")
    bad = tmp_path / "b.py"
    bad.write_text("telemetry.record({})\n")
    assert checker.main([str(good)]) == 0
    assert checker.main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "ungated observability call" in out
