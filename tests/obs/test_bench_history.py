"""benchmarks/history.py + tools/bench_compare.py: the regression tracker.

ISSUE 7 tentpole layer 3.  The history module's record schema and atomic
append, and the compare tool's full CLI surface: baseline write,
self-compare (must pass), injected synthetic slowdown (must fail), noise
tolerance, size-tier guard.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parents[2]


def _load(path, name):
    spec = importlib.util.spec_from_file_location(name, path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture(scope="module")
def history():
    return _load(_ROOT / "benchmarks" / "history.py", "bench_history_t")


@pytest.fixture(scope="module")
def compare():
    return _load(_ROOT / "tools" / "bench_compare.py", "bench_compare_t")


def _session(history, mins, size="tiny", sha="abc123"):
    entries = [history.make_entry(tid, group="g", min_s=m, mean_s=m * 1.1,
                                  stddev_s=m * 0.05, rounds=9)
               for tid, m in mins.items()]
    return history.make_session(entries, size=size, sha=sha,
                                recorded_at="2026-08-08T00:00:00+00:00")


class TestHistoryModule:
    def test_entry_schema_and_graph_extraction(self, history):
        e = history.make_entry(
            "bench_x.py::test_tc[masked-kron]", group="tc", min_s=0.5)
        assert e["graph"] == "kron"
        assert e["group"] == "tc"
        assert e["rounds"] == 1
        assert history.graph_of("bench_x.py::test_plain") is None
        assert history.graph_of("b.py::t[web-small]") == "web"

    def test_append_and_load_round_trip(self, history, tmp_path):
        path = tmp_path / "BENCH_HISTORY.json"
        assert history.load(path) == []
        s1 = _session(history, {"a": 1.0})
        s2 = _session(history, {"a": 1.1}, sha="def456")
        assert history.append(path, s1) == 1
        assert history.append(path, s2) == 2
        sessions = history.load(path)
        assert [s["git_sha"] for s in sessions] == ["abc123", "def456"]
        assert sessions[0]["schema"] == history.SCHEMA_VERSION
        assert history.latest(path)["git_sha"] == "def456"

    def test_append_rejects_non_list_file(self, history, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"not": "a list"}')
        with pytest.raises(ValueError):
            history.append(path, _session(history, {"a": 1.0}))

    def test_entries_sorted_by_id(self, history):
        s = _session(history, {"z": 1.0, "a": 2.0, "m": 3.0})
        assert [e["id"] for e in s["entries"]] == ["a", "m", "z"]


class TestCompareLogic:
    def test_regression_detected_beyond_tolerance(self, history, compare):
        base = compare.baseline_from_session(_session(history, {"t": 1.0}))
        res = compare.compare(_session(history, {"t": 1.5}), base,
                              tolerance=0.25, abs_floor=0.0)
        assert [r["id"] for r in res["regressions"]] == ["t"]
        assert res["regressions"][0]["ratio"] == pytest.approx(1.5)

    def test_tolerance_and_floor_absorb_noise(self, history, compare):
        base = compare.baseline_from_session(
            _session(history, {"fast": 0.001, "slow": 1.0}))
        cur = _session(history, {"fast": 0.004, "slow": 1.2})
        res = compare.compare(cur, base, tolerance=0.25, abs_floor=0.005)
        assert res["regressions"] == []     # 4x but under the 5ms floor;
        assert res["checked"] == 2          # 1.2x but under 25%

    def test_new_missing_and_improved(self, history, compare):
        base = compare.baseline_from_session(
            _session(history, {"gone": 1.0, "kept": 1.0}))
        cur = _session(history, {"kept": 0.5, "fresh": 9.9})
        res = compare.compare(cur, base, tolerance=0.25, abs_floor=0.0)
        assert res["missing"] == ["gone"]
        assert res["new"] == ["fresh"]
        assert [r["id"] for r in res["improved"]] == ["kept"]


class TestCompareCLI:
    @pytest.fixture
    def hist_file(self, history, tmp_path):
        path = tmp_path / "BENCH_HISTORY.json"
        history.append(path, _session(history, {"t1": 1.0, "t2": 0.5}))
        return path

    def test_write_baseline_then_self_compare_passes(self, compare,
                                                     hist_file, tmp_path,
                                                     capsys):
        base = tmp_path / "base.json"
        assert compare.main([str(hist_file),
                             "--write-baseline", str(base)]) == 0
        doc = json.loads(base.read_text())
        assert doc["entries"] == {"t1": 1.0, "t2": 0.5}
        assert compare.main([str(hist_file), "--baseline", str(base)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_injected_slowdown_fails(self, compare, hist_file, tmp_path,
                                     capsys):
        base = tmp_path / "base.json"
        compare.main([str(hist_file), "--write-baseline", str(base)])
        rc = compare.main([str(hist_file), "--baseline", str(base),
                           "--inject-slowdown", "3.0"])
        assert rc == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_previous_session_is_default_baseline(self, compare, history,
                                                  hist_file):
        history.append(hist_file, _session(history, {"t1": 5.0, "t2": 0.5}))
        assert compare.main([str(hist_file), "--abs-floor", "0.0"]) == 1

    def test_single_session_without_baseline_is_clean(self, compare,
                                                      hist_file):
        assert compare.main([str(hist_file)]) == 0

    def test_size_tier_mismatch_refused(self, compare, history, hist_file,
                                        tmp_path):
        base = tmp_path / "base.json"
        compare.main([str(hist_file), "--write-baseline", str(base)])
        history.append(hist_file, _session(history, {"t1": 1.0},
                                           size="small"))
        assert compare.main([str(hist_file), "--baseline", str(base)]) == 2

    def test_missing_or_empty_history_is_usage_error(self, compare,
                                                     tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text("[]")
        assert compare.main([str(empty)]) == 2
