"""Serve-stack observability: span isolation, extended stats, attribution.

Satellite coverage for ISSUE 6:

* two parallel ``submit_many`` bursts under separate trace sinks capture
  *disjoint* span trees (the contextvars-isolation guarantee, extended
  from telemetry to obs),
* ``GraphService.stats()`` — the locked snapshot with queue/batch/latency
  extensions,
* plan-cache invalidation events carry ``graph``/``shape_key``.
"""

import threading

import numpy as np
import pytest

from helpers import random_graph_np
from repro import grb, obs, serve
from repro import lagraph as lg
from repro.grb import telemetry
from repro.grb.engine import plancache
from repro.obs import identity


@pytest.fixture
def service():
    svc = serve.GraphService(max_workers=4, cache_capacity=256, max_batch=16)
    yield svc
    svc.flush()
    svc.shutdown()


class TestConcurrentSpanIsolation:
    def test_parallel_submit_many_disjoint_span_trees(self, service, rng):
        g1 = random_graph_np(rng, n=50, p=0.1, seed=1)
        g2 = random_graph_np(rng, n=50, p=0.1, seed=2)
        # separate graph names: coalescing groups by (graph, tag), so the
        # two submitters' requests can never merge into one batch (a
        # merged batch runs under its FIRST requester's context by design)
        service.register("iso1", g1)
        service.register("iso2", g2)
        collectors = {}
        errs = []

        def client(name, graph):
            try:
                with obs.tracing() as tr:
                    collectors[name] = tr
                    futs = service.submit_many(
                        name, [serve.BFSLevels(s) for s in range(8)])
                    for s, f in enumerate(futs):
                        assert f.result(30).isequal(lg.bfs_level(graph, s))
                    service.flush(timeout=30)
            except Exception as e:  # pragma: no cover
                errs.append(e)

        t1 = threading.Thread(target=client, args=("iso1", g1))
        t2 = threading.Thread(target=client, args=("iso2", g2))
        t1.start(); t2.start()
        t1.join(30); t2.join(30)
        assert not errs

        tr1, tr2 = collectors["iso1"], collectors["iso2"]
        assert len(tr1) and len(tr2)
        # disjoint: no record object (or span id) appears in both trees
        ids1 = {r["span_id"] for r in tr1.records()}
        ids2 = {r["span_id"] for r in tr2.records()}
        assert not (ids1 & ids2)
        # and every serve-layer record is attributed to the right graph
        for tr, own in ((tr1, "iso1"), (tr2, "iso2")):
            serve_recs = [r for r in tr.records()
                          if r["cat"] == "serve" and "graph" in r["args"]]
            assert serve_recs
            assert {r["args"]["graph"] for r in serve_recs} == {own}

    def test_request_lifecycle_spans(self, service, rng):
        g = random_graph_np(rng, n=40, p=0.1)
        service.register("life", g)
        with obs.tracing() as tr:
            futs = service.submit_many(
                "life", [serve.BFSLevels(s) for s in range(4)])
            for f in futs:
                f.result(30)
            service.flush(timeout=30)
        names = set(tr.names())
        assert "serve:enqueue" in names
        assert "serve:batch" in names     # kernel ran under submitter ctx
        assert "serve:answer" in names
        batch = tr.find("serve:batch")[0]
        assert batch["args"]["coalesced"] is True
        assert batch["args"]["sources"] == 4
        # memo hits also mark themselves
        with obs.tracing() as tr2:
            service.submit("life", serve.BFSLevels(0)).result(30)
        assert "serve:memo-hit" in tr2.names()

    def test_engine_spans_nest_under_serve_batch(self, service, rng):
        g = random_graph_np(rng, n=40, p=0.15, directed=False)
        service.register("nest", g)
        with obs.tracing() as tr:
            service.submit("nest", serve.TriangleCount()).result(30)
            service.flush(timeout=30)
        (batch,) = tr.find("serve:batch")
        assert batch["args"]["coalesced"] is False
        # every engine span the kernel opened hangs beneath the serve
        # span, in this submitter's trace
        def descendants(node, out):
            for ch in node["children"]:
                out.append(ch["record"]["name"])
                descendants(ch, out)
        node = next(n for n in self._walk(tr.span_tree())
                    if n["record"]["name"] == "serve:batch")
        names = []
        descendants(node, names)
        assert any(n.startswith("plan:") for n in names)
        assert any(n.startswith("kernel:") for n in names)

    @staticmethod
    def _walk(nodes):
        for n in nodes:
            yield n
            yield from TestConcurrentSpanIsolation._walk(n["children"])


class TestExtendedStats:
    def test_snapshot_fields(self, service, rng):
        g = random_graph_np(rng, n=40, p=0.1)
        service.register("st", g)
        futs = service.submit_many(
            "st", [serve.BFSLevels(s) for s in range(6)])
        for f in futs:
            f.result(30)
        service.flush(timeout=30)
        # one memo hit on top
        service.query("st", serve.BFSLevels(0))
        s = service.stats()
        assert s.submitted == 7 and s.completed == 7 and s.failed == 0
        assert s.queue_depth == 0
        assert s.queue_depth_peak >= 1
        assert sum(s.batch_size_hist.values()) == s.batches
        assert s.latency_count >= 6
        assert 0 <= s.latency_p50 <= s.latency_p95 <= s.latency_p99
        assert s.plan_cache is not None and s.plan_cache.misses >= 0
        assert 0.0 < s.memo_hit_rate < 1.0
        assert s.coalescing_ratio > 1.0   # 6 sources in one kernel call
        assert s.kernel_calls_saved == s.coalesced_sources - s.coalesced_calls

    def test_stats_returns_independent_snapshot(self, service, rng):
        g = random_graph_np(rng, n=20, p=0.1)
        service.register("snap", g)
        service.query("snap", serve.BFSLevels(0))
        a = service.stats()
        service.query("snap", serve.BFSLevels(1))
        b = service.stats()
        assert b.submitted == a.submitted + 1   # a is unaffected
        a.batch_size_hist[99] = 1               # mutating a copy is safe
        assert 99 not in service.stats().batch_size_hist


class TestPlanCacheAttribution:
    def test_invalidation_event_carries_graph_and_shape_key(self, rng):
        identity.clear()
        plancache.clear()
        g = random_graph_np(rng, n=40, p=0.15, directed=False)
        svc = serve.GraphService(cache_capacity=0)   # memo off: recompute
        events = []
        try:
            svc.register("attrib", g)
            # both queries run under ONE telemetry state: the active-bit
            # is part of the plan-cache cost fingerprint, so flipping it
            # between queries would change the shape (a miss, not an
            # invalidation)
            with telemetry.capture(events.append):
                svc.query("attrib", serve.TriangleCount())
                # mutate the adjacency (kept symmetric): versions move,
                # shapes stay — the next identical query invalidates its
                # cached plans
                g.A[0, 1] = 1.0
                g.A[1, 0] = 1.0
                svc.invalidate("attrib")
                svc.query("attrib", serve.TriangleCount())
        finally:
            svc.flush()
            svc.shutdown()
            identity.clear()
        inval = [e for e in events
                 if e.kind == "plancache" and e["event"] == "invalidate"]
        assert inval, "mutated operands should invalidate cached plans"
        assert any(e["graph"] == "attrib" for e in inval)
        for e in inval:
            assert isinstance(e["shape_key"], str) and len(e["shape_key"]) == 12
            int(e["shape_key"], 16)   # hex fingerprint

    def test_store_labels_entries_from_registered_identity(self):
        identity.clear()
        plancache.clear()
        try:
            a = grb.Matrix.from_coo([0, 1, 2], [1, 2, 0],
                                    np.ones(3, bool), 3, 3)
            identity.register(a._plan_sig()[0], "labelled")
            c = grb.Matrix(grb.INT64, 3, 3)
            sr = grb.semiring_by_name("plus.pair")
            grb.mxm(c, a, a, sr, mask=grb.structure(a))
            entries = [e for e in plancache._entries.values()
                       if e.graph == "labelled"]
            assert entries
        finally:
            identity.clear()
            plancache.clear()

    def test_queue_depth_gauge_returns_to_zero(self, service, rng):
        from repro.obs import metrics
        g = random_graph_np(rng, n=30, p=0.1)
        service.register("qd", g)
        futs = service.submit_many(
            "qd", [serve.BFSLevels(s) for s in range(5)])
        for f in futs:
            f.result(30)
        service.flush(timeout=30)
        gauge = metrics.REGISTRY.get("serve_queue_depth")
        assert gauge is not None and gauge.value == 0
