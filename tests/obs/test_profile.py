"""Deep profiling + the engine trace acceptance path.

The headline test here is the ISSUE's acceptance criterion: one traced
``triangle_count`` run yields a span tree containing plan-choose, kernel
and epilogue spans, and that tree round-trips through the Chrome
trace-event exporter intact.
"""

import json

import numpy as np
import pytest

from helpers import random_graph_np
from repro import grb, obs
from repro import lagraph as lg
from repro.grb import telemetry
from repro.grb.engine import cost
from repro.obs import profile


@pytest.fixture(autouse=True)
def fresh_tables():
    profile.reset()
    yield
    profile.reset()


@pytest.fixture
def tc_graph(rng):
    g = random_graph_np(rng, n=80, p=0.08, directed=False)
    g.cache_ndiag()
    g.cache_row_degree()
    return g


class TestProfiledDecorator:
    def test_off_by_default(self):
        assert not obs.deep_active()
        calls = []

        @obs.profiled("t_noop")
        def kern(x):
            calls.append(1)
            return x
        arr = np.arange(4)
        assert kern(arr) is arr
        assert calls == [1]
        assert "t_noop" not in profile.kernel_table()

    def test_records_when_active(self):
        @obs.profiled("t_kern")
        def kern(x):
            return x * 2, x
        arr = np.arange(8, dtype=np.int64)
        with obs.profiling():
            kern(arr)
            kern(arr)
        row = profile.kernel_table()["t_kern"]
        assert row["calls"] == 2
        assert row["nnz_in"] == 16        # one array argument, twice
        assert row["nnz_out"] == 32       # tuple output counted per array
        assert row["bytes"] == 2 * arr.nbytes
        assert row["wall_s"] >= 0 and row["cpu_s"] >= 0

    def test_context_local(self):
        import threading
        seen = []

        def worker():
            seen.append(obs.deep_active())
        with obs.profiling():
            t = threading.Thread(target=worker)
            t.start()
            t.join()
            assert obs.deep_active()
        assert seen == [False]


class TestEngineProfiling:
    def test_tc_populates_kernel_and_rule_tables(self, tc_graph):
        with obs.profiling():
            lg.triangle_count(tc_graph, presort=None)
        rules = profile.rule_table()
        assert any(key.startswith("mxm/") for key in rules)
        (rule_row,) = [v for k, v in rules.items() if k.startswith("mxm/")]
        assert rule_row["calls"] >= 1 and rule_row["nnz_in"] > 0
        assert profile.kernel_table()   # hot primitives reported too

    def test_profiling_activates_telemetry_fields(self):
        # deep profiling must make telemetry.active() true: decision
        # events (and their exact-count fields) flow to the profiler
        assert not telemetry.active()
        with obs.profiling():
            assert telemetry.active()
        assert not telemetry.active()

    def test_chooser_decisions_judged(self, tc_graph, monkeypatch):
        monkeypatch.setattr(cost, "MASKED_MIN_NNZ", 0)
        with obs.profiling():
            lg.triangle_count(tc_graph, presort=None)
        decisions = profile.decision_table()
        judged = sum(row["judged"] for row in decisions.values())
        assert judged >= 1      # the masked-mxm chooser was re-judged
        for row in decisions.values():
            assert 0.0 <= row["misprediction_rate"] <= 1.0

    def test_hook_still_receives_typed_events(self, tc_graph):
        events = []
        with telemetry.capture(events.append):
            lg.triangle_count(tc_graph, presort=None)
        assert events
        assert all(isinstance(e, telemetry.Event) for e in events)
        mxm = [e for e in events if e.kind == "mxm"]
        assert mxm and all(isinstance(e.rule, str) for e in mxm)


class TestTraceAcceptance:
    """ISSUE 6 acceptance: TC trace → span tree → Chrome round trip."""

    def _span_names(self, node, out):
        out.append(node["record"]["name"])
        for ch in node["children"]:
            self._span_names(ch, out)

    def test_tc_span_tree_and_chrome_round_trip(self, tc_graph):
        with obs.tracing() as tr:
            expected = lg.triangle_count(tc_graph, presort=None)
        names = set(tr.names())
        assert "plan-choose" in names
        assert any(n.startswith("kernel:") for n in names)
        assert any(n.startswith("epilogue:") for n in names)

        # the tree is rooted at plan spans; plan-choose/kernel/epilogue
        # all hang beneath one plan:mxm root
        roots = tr.span_tree()
        plan_roots = [r for r in roots
                      if r["record"]["name"].startswith("plan:")]
        assert plan_roots
        flat = []
        self._span_names(plan_roots[0], flat)
        assert "plan-choose" in flat
        assert any(n.startswith("kernel:") for n in flat)
        assert any(n.startswith("epilogue:") for n in flat)

        # Chrome round trip preserves every span and the parent links
        doc = json.loads(tr.to_chrome_json())
        events = {e["args"]["span_id"]: e for e in doc["traceEvents"]}
        assert len(events) == len(tr.records())
        for rec in tr.records():
            ev = events[rec["span_id"]]
            assert ev["name"] == rec["name"]
            assert ev["args"].get("parent_id") == (
                rec["parent_id"] if rec["parent_id"] is not None else None)

        # and tracing never changed the answer
        assert lg.triangle_count(tc_graph, presort=None) == expected

    def test_epilogue_span_covers_fused_and_decomposed(self, tc_graph,
                                                       monkeypatch):
        monkeypatch.setattr(cost, "FUSION_ENABLED", False)
        with obs.tracing() as tr:
            lg.triangle_count(tc_graph, presort=None)
        eps = tr.find("epilogue:")
        assert eps and all(r["args"]["fused"] is False for r in eps)

    def test_multiplan_spans_under_deferred(self, rng):
        g = random_graph_np(rng, n=40, p=0.1)
        with obs.tracing() as tr:
            lg.bfs_parent_fused(g, 0)  # records levels in deferred scopes
        assert tr.find("multiplan")
        assert tr.find("record:")


class TestTcFusedReduction:
    """The TC refactor: masked multiply + scalar reduce as one fused plan."""

    def test_methods_agree_with_reference(self, tc_graph, monkeypatch):
        expected = {m: lg.triangle_count(tc_graph, method=m, presort=None)
                    for m in lg.algorithms.tc.METHODS}
        # decomposed (fusion off) is the bit-identity reference
        monkeypatch.setattr(cost, "FUSION_ENABLED", False)
        for m, want in expected.items():
            assert lg.triangle_count(tc_graph, method=m, presort=None) == want

    def test_single_dispatch_carries_reduce_epilogue(self, tc_graph):
        events = []
        with telemetry.capture(events.append):
            lg.triangle_count(tc_graph, presort=None)
        mxm = [e for e in events if e.kind == "mxm"]
        # describe() reports the epilogue-chain length as ``fused``: the
        # TC multiply now carries its scalar reduction as an epilogue
        assert mxm and any(e["fused"] >= 1 for e in mxm)
