"""Tests for the suite registry and the Table III / IV harness."""

import numpy as np
import pytest

from repro import lagraph as lg
from repro.gap import datasets, harness


class TestDatasets:
    def test_suite_has_all_table4_graphs(self):
        assert set(datasets.SUITE) == {"kron", "urand", "twitter", "web",
                                       "road"}

    @pytest.mark.parametrize("name", sorted(datasets.SUITE))
    def test_build_tiny(self, name):
        g = datasets.build(name, "tiny")
        g.check()
        assert g.n > 0 and g.nvals > 0

    def test_kind_matches_table4(self):
        # Table IV: Kron/Urand undirected; Twitter/Web/Road directed
        assert datasets.build("kron", "tiny").kind is lg.ADJACENCY_UNDIRECTED
        assert datasets.build("urand", "tiny").kind is lg.ADJACENCY_UNDIRECTED
        assert datasets.build("twitter", "tiny").kind is lg.ADJACENCY_DIRECTED
        assert datasets.build("web", "tiny").kind is lg.ADJACENCY_DIRECTED
        assert datasets.build("road", "tiny").kind is lg.ADJACENCY_DIRECTED

    def test_sizes_ordered(self):
        tiny = datasets.build("kron", "tiny")
        small = datasets.build("kron", "small")
        assert small.n > tiny.n

    def test_weighted(self):
        g = datasets.build("urand", "tiny", weighted=True)
        assert g.A.dtype == np.float64

    def test_unknown_graph(self):
        with pytest.raises(ValueError):
            datasets.build("orkut")

    def test_unknown_size(self):
        with pytest.raises(KeyError):
            datasets.build("kron", "galactic")

    def test_suite_table_rows(self):
        rows = datasets.suite_table("tiny")
        assert len(rows) == 5
        for name, n, nvals, kind in rows:
            assert n > 0 and nvals > 0
            assert kind in ("directed", "undirected")


class TestHarness:
    def test_table4_format(self):
        text = harness.format_table4(harness.run_table4("tiny"))
        assert "graph" in text and "kron" in text and "entries" in text

    @pytest.mark.parametrize("algo", harness.ALGORITHMS)
    def test_each_algorithm_runs_and_verifies(self, algo):
        """One kernel, two graphs, with the verifier enabled (checks output)."""
        results = harness.run_table3(
            "tiny", algorithms=[algo], graphs=["kron", "road"], check=True)
        assert set(results[algo]) == {"kron", "road"}
        for cell in results[algo].values():
            assert cell["gap"] > 0 and cell["lagraph"] > 0

    def test_format_table3_layout(self):
        results = {"BFS": {"kron": {"gap": 0.001, "lagraph": 0.002}}}
        text = harness.format_table3(results, graphs=["kron"])
        assert "BFS : GAP" in text and "BFS : LAGr" in text
        assert "Algorithm : graph" in text

    def test_sources_avoid_isolated_nodes(self):
        g = datasets.build("road", "tiny")
        srcs = harness._sources(g, k=4)
        deg = np.diff(g.A.indptr)
        assert (deg[srcs] > 0).all()
