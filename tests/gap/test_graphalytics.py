"""Tests for the Graphalytics end-to-end workflow."""

import numpy as np
import pytest

from repro.gap import datasets, graphalytics


@pytest.fixture(scope="module")
def graphs():
    g = datasets.build("kron", "tiny")
    gw = datasets.build("kron", "tiny", weighted=True)
    g.cache_all()
    gw.cache_all()
    return g, gw


class TestKernels:
    @pytest.mark.parametrize("kernel", graphalytics.KERNELS)
    def test_kernel_runs_and_self_checks(self, graphs, kernel):
        g, gw = graphs
        result = graphalytics.run_kernel(kernel, g, gw, source=0, check=True)
        assert result is not None

    def test_unknown_kernel(self, graphs):
        g, gw = graphs
        with pytest.raises(ValueError):
            graphalytics.run_kernel("APSP", g, gw)

    def test_bfs_levels_from_given_source(self, graphs):
        g, gw = graphs
        level = graphalytics.run_kernel("BFS", g, gw, source=1)
        assert level.get(1) == 0

    def test_pr_mass_conserved(self, graphs):
        g, gw = graphs
        rank = graphalytics.run_kernel("PR", g, gw)
        assert float(rank.to_dense().sum()) == pytest.approx(1.0, abs=1e-6)


class TestWorkflow:
    def test_full_workflow_structure(self):
        results = graphalytics.run_workflow("road", "tiny")
        assert set(results) == {"_ingest"} | set(graphalytics.KERNELS)
        assert results["_ingest"]["generate"] > 0
        for kernel in graphalytics.KERNELS:
            assert results[kernel]["run"] > 0

    def test_kernel_subset(self):
        results = graphalytics.run_workflow("urand", "tiny",
                                            kernels=["BFS", "WCC"])
        assert set(results) == {"_ingest", "BFS", "WCC"}

    def test_format_mentions_ingestion_share(self):
        results = graphalytics.run_workflow("kron", "tiny",
                                            kernels=["BFS"])
        text = graphalytics.format_workflow("kron", results)
        assert "ingestion" in text and "BFS" in text and "%" in text
