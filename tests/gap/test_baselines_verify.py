"""Tests for the reference baselines and the GAP-style verifiers."""

import numpy as np
import pytest

from helpers import random_graph_np
from repro import grb
from repro import lagraph as lg
from repro.gap import baselines, verify

nx = pytest.importorskip("networkx")


def _to_nx(g, weighted=False):
    r, c, v = g.A.to_coo()
    G = nx.DiGraph()
    G.add_nodes_from(range(g.n))
    if weighted:
        G.add_weighted_edges_from(zip(r.tolist(), c.tolist(), v.tolist()))
    else:
        G.add_edges_from(zip(r.tolist(), c.tolist()))
    return G


class TestBaselineBFS:
    def test_parent_tree_valid(self, rng):
        g = random_graph_np(rng, n=60, p=0.06)
        parent = baselines.bfs_parent(g, 0)
        level = baselines.bfs_level(g, 0)
        assert parent[0] == 0
        reached = np.flatnonzero(parent >= 0)
        np.testing.assert_array_equal(reached, np.flatnonzero(level >= 0))
        for v in reached:
            if v != 0:
                assert level[parent[v]] == level[v] - 1

    def test_level_matches_networkx(self, rng):
        g = random_graph_np(rng, n=50, p=0.08)
        level = baselines.bfs_level(g, 0)
        ref = nx.single_source_shortest_path_length(_to_nx(g), 0)
        for v, d in ref.items():
            assert level[v] == d
        assert (level >= 0).sum() == len(ref)

    def test_pull_path_taken_on_dense_graph(self, rng):
        # high density forces the heuristic into the pull branch at least once
        g = random_graph_np(rng, n=40, p=0.5)
        parent = baselines.bfs_parent(g, 0)
        assert (parent >= 0).sum() == 40


class TestBaselinePR:
    def test_matches_networkx_when_no_dangling(self, rng):
        n = 12
        A = grb.Matrix.from_coo(range(n), np.roll(range(n), -1),
                                np.ones(n, bool), n, n)
        g = lg.Graph(A, lg.ADJACENCY_DIRECTED)
        rank, _ = baselines.pagerank(g, tol=1e-13, itermax=500)
        ref = nx.pagerank(_to_nx(g), alpha=0.85, tol=1e-14, max_iter=1000)
        np.testing.assert_allclose(rank, [ref[i] for i in range(n)],
                                   atol=1e-9)


class TestBaselineBC:
    def test_matches_networkx(self, rng):
        g = random_graph_np(rng, n=25, p=0.15)
        ref = nx.betweenness_centrality(_to_nx(g), normalized=False)
        ours = baselines.betweenness_centrality(g, range(25))
        np.testing.assert_allclose(ours, [ref[i] for i in range(25)],
                                   atol=1e-9)


class TestBaselineSSSPandCC:
    def test_dijkstra_vs_networkx(self, rng):
        g = random_graph_np(rng, n=40, p=0.1, weighted=True)
        dist = baselines.sssp_dijkstra(g, 0)
        ref = nx.single_source_dijkstra_path_length(_to_nx(g, weighted=True), 0)
        for v, d in ref.items():
            assert dist[v] == pytest.approx(d)

    def test_delta_numpy_matches_dijkstra(self, rng):
        g = random_graph_np(rng, n=40, p=0.1, weighted=True)
        d1 = baselines.sssp_delta_numpy(g, 0, delta=2.0)
        d2 = baselines.sssp_dijkstra(g, 0)
        np.testing.assert_allclose(d1, d2)

    def test_cc_labels_min_normalised(self, rng):
        g = random_graph_np(rng, n=30, p=0.05, directed=False)
        labels = baselines.connected_components(g)
        for comp_id in np.unique(labels):
            members = np.flatnonzero(labels == comp_id)
            assert members.min() == comp_id


class TestVerifiers:
    """The verifiers must catch corrupted outputs, not just bless good ones."""

    def test_bfs_verifier_rejects_wrong_parent(self, small_directed_graph):
        p = lg.bfs_parent_push(small_directed_graph, 0)
        p[3] = 0   # 0 is not 3's parent (no edge 0→3)
        with pytest.raises(AssertionError):
            verify.verify_bfs_parent(small_directed_graph, 0, p)

    def test_bfs_verifier_rejects_missing_node(self, small_directed_graph):
        p = lg.bfs_parent_push(small_directed_graph, 0)
        p.remove_element(3)
        with pytest.raises(AssertionError):
            verify.verify_bfs_parent(small_directed_graph, 0, p)

    def test_level_verifier_rejects_off_by_one(self, small_directed_graph):
        lv = lg.bfs_level(small_directed_graph, 0)
        lv[3] = 5
        with pytest.raises(AssertionError):
            verify.verify_bfs_level(small_directed_graph, 0, lv)

    def test_sssp_verifier_rejects_wrong_distance(self):
        A = grb.Matrix.from_coo([0], [1], [2.0], 2, 2)
        g = lg.Graph(A, lg.ADJACENCY_DIRECTED)
        d = lg.sssp(g, 0)
        d[1] = 1.0
        with pytest.raises(AssertionError):
            verify.verify_sssp(g, 0, d)

    def test_cc_verifier_rejects_merged_components(self):
        A = grb.Matrix.from_coo([0, 1], [1, 0], np.ones(2, bool), 4, 4)
        g = lg.Graph(A, lg.ADJACENCY_UNDIRECTED)
        comp = lg.fastsv(g)
        comp[3] = 0  # wrongly merge node 3 into component 0
        with pytest.raises(AssertionError):
            verify.verify_cc(g, comp)

    def test_pr_verifier_rejects_garbage(self, rng):
        g = random_graph_np(rng, n=20, p=0.2)
        rank, _ = lg.pagerank(g)
        bad = grb.Vector.from_dense(np.zeros(20))
        with pytest.raises(AssertionError):
            verify.verify_pr(g, bad)
        assert verify.verify_pr(g, rank, tol=1e-3)

    def test_tc_verifier(self, rng):
        g = random_graph_np(rng, n=20, p=0.2, directed=False)
        count = lg.triangle_count_basic(g)
        assert verify.verify_tc(g, count)
        with pytest.raises(AssertionError):
            verify.verify_tc(g, count + 1)

    def test_bc_verifier(self, rng):
        g = random_graph_np(rng, n=15, p=0.2)
        cent = lg.betweenness_centrality(g, sources=[0, 1])
        assert verify.verify_bc(g, [0, 1], cent)
