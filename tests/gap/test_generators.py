"""Tests for the GAP graph generators (Table IV stand-ins)."""

import numpy as np
import pytest

from repro import lagraph as lg
from repro.gap import generators as gen
from repro.gap.generators.rmat import GRAPH500_ABCD, rmat_edges


class TestRmat:
    def test_edge_count_and_range(self):
        src, dst = rmat_edges(scale=6, edge_factor=8, seed=1)
        assert src.size == dst.size == 8 * 64
        assert src.min() >= 0 and src.max() < 64
        assert dst.min() >= 0 and dst.max() < 64

    def test_deterministic_per_seed(self):
        a = rmat_edges(5, 4, seed=3)
        b = rmat_edges(5, 4, seed=3)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])
        c = rmat_edges(5, 4, seed=4)
        assert not np.array_equal(a[0], c[0])

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            rmat_edges(4, 4, abcd=(0.5, 0.5, 0.5, 0.5))

    def test_skew_produces_heavy_tail(self):
        """RMAT must have a fatter degree tail than uniform sampling."""
        src, _ = rmat_edges(10, 16, GRAPH500_ABCD, seed=2)
        deg = np.bincount(src, minlength=1 << 10)
        rng = np.random.default_rng(2)
        usrc = rng.integers(0, 1 << 10, size=src.size)
        udeg = np.bincount(usrc, minlength=1 << 10)
        assert deg.max() > 2 * udeg.max()


class TestGenerators:
    @pytest.mark.parametrize("name,kind", [
        ("kron", lg.ADJACENCY_UNDIRECTED),
        ("urand", lg.ADJACENCY_UNDIRECTED),
        ("twitter", lg.ADJACENCY_DIRECTED),
        ("web", lg.ADJACENCY_DIRECTED),
    ])
    def test_kind_and_scale(self, name, kind):
        g = gen.make_graph(name, scale=8)
        assert g.kind is kind
        assert g.n == 256
        g.check()

    def test_road_shape(self):
        g = gen.make_graph("road", side=10)
        assert g.n == 100
        assert g.kind is lg.ADJACENCY_DIRECTED
        g.check()

    def test_undirected_graphs_symmetric(self):
        for name in ("kron", "urand"):
            g = gen.make_graph(name, scale=7)
            assert g.A.is_symmetric_pattern(), name

    def test_no_self_loops(self):
        for name in ("kron", "urand", "twitter", "web"):
            assert gen.make_graph(name, scale=7).A.ndiag() == 0, name
        assert gen.make_graph("road", side=8).A.ndiag() == 0

    def test_weighted_variant(self):
        g = gen.kron(scale=7, weighted=True)
        assert g.A.dtype == np.float64
        assert g.A.values.min() >= 1 and g.A.values.max() <= 255
        # symmetric weights for undirected graphs
        assert g.A.isequal(g.A.T)

    def test_road_weighted_by_default(self):
        g = gen.road(side=8)
        assert g.A.dtype == np.float64

    def test_road_high_diameter(self):
        """The Road graph's defining property (Sec. VI-B discussion)."""
        from repro.gap.baselines import bfs_level
        g = gen.road(side=16, diag_fraction=0.0, weighted=False)
        level = bfs_level(g, 0)
        assert level.max() >= 30   # corner-to-corner ≈ 2·(side−1)

    def test_kron_heavier_tail_than_urand(self):
        k = gen.kron(scale=9)
        u = gen.urand(scale=9)
        kd = np.diff(k.A.indptr)
        ud = np.diff(u.A.indptr)
        assert kd.max() > 2 * ud.max()

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            gen.make_graph("facebook")

    def test_twitter_asymmetric(self):
        g = gen.twitter(scale=7)
        assert not g.A.is_symmetric_pattern()
