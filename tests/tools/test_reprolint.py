"""tools/reprolint: the pluggable AST invariant checker (docs/LINTING.md).

Three layers of coverage:

* the fixture corpus — every bad snippet yields *exactly* its expected
  diagnostic, every good twin passes (so a checker regression shows up
  as a one-line diff against ``EXPECTED_BAD``);
* the framework contract — pragma opt-outs (reason required, universal
  ``reprolint: disable=`` form), rule filtering, JSON schema, CLI exit
  codes;
* the shipped tree — ``src/repro`` lints clean with every rule on (the
  CI gate, pinned here so a local run catches it before the lint job).
"""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint import (all_checkers, checkers_by_id,  # noqa: E402
                             iter_python_files, run_files)
from tools.reprolint.cli import main  # noqa: E402
from tools.reprolint.core import JSON_SCHEMA_VERSION  # noqa: E402

FIXTURES = Path(__file__).resolve().parent / "fixtures"
BAD = FIXTURES / "bad"
GOOD = FIXTURES / "good"

#: bad fixture → (rule, line) of the one diagnostic it must yield.
EXPECTED_BAD = {
    "ungated_record.py": ("obs-gating", 5),
    "ungated_fire.py": ("fault-gating", 5),
    "lagraph/algorithms/while_loop.py": ("cancel-checkpoint", 5),
    "lagraph/algorithms/for_loop.py": ("cancel-checkpoint", 5),
    "grb/engine/inline_tunable.py": ("cost-constants", 3),
    "serve/held_lock_dispatch.py": ("lock-discipline", 8),
    "serve/held_lock_wait.py": ("lock-discipline", 7),
    "gc/finalizer_lock.py": ("lock-discipline", 14),
    "atexit_unbounded.py": ("lock-discipline", 11),
    "pool/lambda_spec.py": ("pool-pickle", 5),
}


def _lint(paths):
    return run_files(iter_python_files([Path(p) for p in paths]),
                     all_checkers(), relative_to=REPO_ROOT)


# ---------------------------------------------------------------------------
# fixture corpus
# ---------------------------------------------------------------------------

def test_bad_corpus_is_exhaustive():
    on_disk = {p.relative_to(BAD).as_posix()
               for p in BAD.rglob("*.py")}
    assert on_disk == set(EXPECTED_BAD)


@pytest.mark.parametrize("rel", sorted(EXPECTED_BAD))
def test_bad_fixture_fires_exactly_its_diagnostic(rel):
    rule, line = EXPECTED_BAD[rel]
    diags = _lint([BAD / rel])
    assert [(d.rule, d.line) for d in diags] == [(rule, line)], \
        [d.render() for d in diags]


def test_every_rule_has_a_bad_fixture():
    covered = {rule for rule, _ in EXPECTED_BAD.values()}
    assert covered == set(checkers_by_id())


def test_good_corpus_is_clean():
    diags = _lint([GOOD])
    assert diags == [], [d.render() for d in diags]


# ---------------------------------------------------------------------------
# pragma opt-outs
# ---------------------------------------------------------------------------

def _algorithm_file(tmp_path, body):
    d = tmp_path / "lagraph" / "algorithms"
    d.mkdir(parents=True)
    f = d / "snippet.py"
    f.write_text(body)
    return f


def test_pragma_without_reason_does_not_waive(tmp_path):
    f = _algorithm_file(tmp_path,
                        "def go(x, step):\n"
                        "    while x.nvals:  # cancel: checkpoint-exempt\n"
                        "        x = step(x)\n")
    assert [d.rule for d in _lint([f])] == ["cancel-checkpoint"]


def test_pragma_with_reason_waives(tmp_path):
    f = _algorithm_file(
        tmp_path,
        "def go(x, step):\n"
        "    while x.nvals:  # cancel: checkpoint-exempt (bounded)\n"
        "        x = step(x)\n")
    assert _lint([f]) == []


def test_pragma_on_line_above_header_waives(tmp_path):
    f = _algorithm_file(
        tmp_path,
        "def go(x, step):\n"
        "    # cancel: checkpoint-exempt (bounded by construction)\n"
        "    while x.nvals:\n"
        "        x = step(x)\n")
    assert _lint([f]) == []


def test_inner_pragma_does_not_waive_outer_loop(tmp_path):
    f = _algorithm_file(
        tmp_path,
        "def go(x, step, items):\n"
        "    while x.nvals:\n"
        "        for i in items:  # cancel: checkpoint-exempt (tiny scan)\n"
        "            step(i)\n")
    assert [d.line for d in _lint([f]) if d.rule == "cancel-checkpoint"] \
        == [2]


def test_universal_disable_pragma(tmp_path):
    f = tmp_path / "snippet.py"
    f.write_text(
        "def emit(event, telemetry):\n"
        "    # reprolint: disable=obs-gating (callers hold the guard)\n"
        "    telemetry.record(event)\n")
    assert _lint([f]) == []


def test_universal_disable_is_per_rule(tmp_path):
    f = tmp_path / "snippet.py"
    f.write_text(
        "def emit(event, telemetry):\n"
        "    # reprolint: disable=fault-gating (wrong rule named)\n"
        "    telemetry.record(event)\n")
    assert [d.rule for d in _lint([f])] == ["obs-gating"]


# ---------------------------------------------------------------------------
# CLI: exit codes, rule filtering, JSON report
# ---------------------------------------------------------------------------

def test_cli_exit_codes(capsys):
    assert main([str(GOOD)]) == 0
    assert main([str(BAD)]) == 1
    assert main([str(BAD / "nope.py")]) == 2
    assert main([str(GOOD), "--rules=no-such-rule"]) == 2
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in checkers_by_id():
        assert rule in out


def test_cli_rule_filter(capsys):
    assert main([str(BAD), "--rules=obs-gating"]) == 1
    out = capsys.readouterr().out
    assert "obs-gating:" in out
    assert "cancel-checkpoint:" not in out


def test_cli_syntax_error_is_analysis_error(tmp_path, capsys):
    f = tmp_path / "broken.py"
    f.write_text("def f(:\n")
    assert main([str(f)]) == 2
    assert "syntax error" in capsys.readouterr().err


def test_json_report_schema(tmp_path, capsys):
    out_file = tmp_path / "report.json"
    assert main([str(BAD), "--format=json",
                 "--output", str(out_file)]) == 1
    printed = capsys.readouterr().out
    report = json.loads(out_file.read_text())
    assert json.loads(printed) == report
    assert report["schema"] == JSON_SCHEMA_VERSION
    assert report["tool"] == "reprolint"
    assert report["rules"] == sorted(checkers_by_id(),
                                     key=report["rules"].index)
    assert report["files_checked"] == len(EXPECTED_BAD)
    assert report["violations"] == len(EXPECTED_BAD)
    assert sum(report["counts_by_rule"].values()) == report["violations"]
    for d in report["diagnostics"]:
        assert set(d) == {"rule", "path", "line", "col", "message",
                          "detail"}
        assert d["rule"] in report["counts_by_rule"]


def test_diagnostics_are_stable_strings(capsys):
    main([str(BAD / "ungated_record.py")])
    out = capsys.readouterr().out.splitlines()[0]
    assert out.startswith("obs-gating:")
    head, _, _ = out.partition(": ")
    rule, path, line = head.rsplit(":", 2)
    assert rule == "obs-gating" and line == "5"
    assert path.endswith("ungated_record.py")


# ---------------------------------------------------------------------------
# the shipped tree
# ---------------------------------------------------------------------------

def test_shipped_tree_is_clean():
    diags = _lint([REPO_ROOT / "src" / "repro"])
    assert diags == [], [d.render() for d in diags]
