"""cancel-checkpoint bad fixture: data-dependent for without a checkpoint."""


def relax_all(levels, relax):
    for level in levels:
        relax(level)
