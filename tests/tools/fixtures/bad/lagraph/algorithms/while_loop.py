"""cancel-checkpoint bad fixture: unbounded while without a checkpoint."""


def iterate(frontier, step):
    while frontier.nvals:
        frontier = step(frontier)
    return frontier
