"""lock-discipline bad fixture: unbounded lock acquire at interpreter exit."""

import atexit
import threading

_lock = threading.Lock()
_POOL = []


def _shutdown():
    _lock.acquire()
    try:
        _POOL.clear()
    finally:
        _lock.release()


atexit.register(_shutdown)
