"""cost-constants bad fixture: chooser threshold defined outside cost.py."""

FRONTIER_DENSE_CUTOFF = 1 << 12


def choose(frontier):
    return "dense" if frontier.nvals > FRONTIER_DENSE_CUTOFF else "sparse"
