"""pool-pickle bad fixture: a lambda smuggled into a worker task spec."""


def submit_all(pool):
    return pool.run_tasks([{"op": "mxm", "post": lambda r: r + 1}])
