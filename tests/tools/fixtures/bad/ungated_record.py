"""obs-gating bad fixture: event dict built before any guard check."""


def record_dispatch(plan, telemetry):
    telemetry.record({"op": plan.op, "rule": plan.rule})
