"""lock-discipline bad fixture: finalize callback takes a lock mid-GC."""

import threading
import weakref


class Segment:
    def __init__(self, buf):
        self._lock = threading.Lock()
        self._dead = False
        self._finalizer = weakref.finalize(buf, self._on_dead)

    def _on_dead(self):
        with self._lock:
            self._dead = True
