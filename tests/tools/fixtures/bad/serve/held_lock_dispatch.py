"""lock-discipline bad fixture: kernel dispatch inside a lock body."""


class Service:
    def submit(self, plan, dispatch):
        with self._lock:
            self._inflight += 1
            result = dispatch(plan)
        return result
