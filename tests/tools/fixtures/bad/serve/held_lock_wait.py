"""lock-discipline bad fixture: blocking wait while holding the lock."""


class Service:
    def drain(self):
        with self._lock:
            self._cond.wait()
