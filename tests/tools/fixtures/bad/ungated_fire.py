"""fault-gating bad fixture: fire() pays the injector lock on every call."""


def dispatch(plan, _faults):
    _faults.fire("kernel", op=plan.op)
