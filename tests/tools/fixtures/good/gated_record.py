"""obs-gating good fixture: guard first, event dict only when active."""


def record_dispatch(plan, telemetry):
    if telemetry.active():
        telemetry.record({"op": plan.op, "rule": plan.rule})
