"""lock-discipline good fixture: bounded acquire at interpreter exit."""

import atexit
import threading

_lock = threading.Lock()
_POOL = []


def _shutdown():
    if not _lock.acquire(timeout=2.0):
        return
    try:
        _POOL.clear()
    finally:
        _lock.release()


atexit.register(_shutdown)
