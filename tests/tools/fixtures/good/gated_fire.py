"""fault-gating good fixture: one bool read when no injector is installed."""


def dispatch(plan, _faults):
    if _faults.ACTIVE:
        _faults.fire("kernel", op=plan.op)
