"""obs-gating good fixture: structurally-gated site with a pragma reason."""


def _emit(event, telemetry):
    # obs: gated-by-caller (every caller guards on telemetry.active())
    telemetry.record(event)
