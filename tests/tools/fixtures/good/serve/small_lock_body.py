"""lock-discipline good fixture: bookkeeping under the lock, work outside."""


class Service:
    def submit(self, plan, dispatch):
        with self._lock:
            self._inflight += 1
        return dispatch(plan)
