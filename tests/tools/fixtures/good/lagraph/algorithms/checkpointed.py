"""cancel-checkpoint good fixtures: checkpoint, bounded range, pragma."""


def iterate(frontier, step, _cancel):
    while frontier.nvals:
        _cancel.checkpoint()
        frontier = step(frontier)
    return frontier


def constant_rounds(poke):
    for _ in range(4):
        poke()


def jump(parent, chase):
    while chase(parent):  # cancel: checkpoint-exempt (pointer jumping is log-bounded)
        parent = chase(parent)
    return parent
