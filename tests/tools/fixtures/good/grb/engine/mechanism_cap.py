"""cost-constants good fixtures: pragma'd mechanism cap, non-numeric CAPS."""

GATHER_TILE_ROWS = 1 << 14  # cost: mechanism-cap (tunes how the gather kernel tiles, not which kernel runs)

_RULE_NAMES = ("dot", "expand", "pull")
