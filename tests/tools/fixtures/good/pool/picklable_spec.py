"""pool-pickle good fixture: task specs built from picklable pieces."""


def submit_all(pool, blocks):
    tasks = [{"op": "mxm", "block": i} for i in range(4)]
    return pool.run_tasks(tasks)
