"""lock-discipline good fixture: finalize callback appends lock-free."""

import collections
import weakref

_DEAD = collections.deque()


class Segment:
    def __init__(self, buf):
        self._finalizer = weakref.finalize(buf, self._on_dead)

    def _on_dead(self):
        _DEAD.append(id(self))   # swept by the next lock-holding caller
