"""End-to-end integration tests: the full pipeline the paper evaluates.

Generate a benchmark graph → run every LAGraph kernel (Basic mode) →
verify each output with the GAP-style verifier, plus I/O round trips and
the C-convention surface, all in one flow.
"""

import numpy as np
import pytest

from repro import grb
from repro import lagraph as lg
from repro.gap import datasets, verify
from repro.lagraph import compat
from repro.lagraph.utils import binread, binwrite, mmread, mmwrite


@pytest.fixture(scope="module", params=["kron", "twitter", "road"])
def suite_graph(request):
    return request.param, datasets.build(request.param, "tiny")


class TestFullPipeline:
    def test_bfs(self, suite_graph):
        name, g = suite_graph
        src = int(np.flatnonzero(np.diff(g.A.indptr) > 0)[0])
        p, lv = lg.bfs(g, src, parent=True, level=True)
        verify.verify_bfs_parent(g, src, p)
        verify.verify_bfs_level(g, src, lv)

    def test_pagerank(self, suite_graph):
        _, g = suite_graph
        rank, iters = lg.pagerank(g)
        verify.verify_pr(g, rank, tol=1e-4)
        assert 0 < iters <= 100

    def test_bc(self, suite_graph):
        _, g = suite_graph
        sources = [1, 2, 3, 4]
        cent = lg.betweenness_centrality(g, sources=sources)
        verify.verify_bc(g, sources, cent, tol=1e-6)

    def test_sssp(self, suite_graph):
        name, g = suite_graph
        gw = datasets.build(name, "tiny", weighted=True)
        src = int(np.flatnonzero(np.diff(gw.A.indptr) > 0)[0])
        dist = lg.sssp(gw, src)
        verify.verify_sssp(gw, src, dist)

    def test_tc(self, suite_graph):
        _, g = suite_graph
        count = lg.triangle_count_basic(g)
        verify.verify_tc(g, count)

    def test_cc(self, suite_graph):
        _, g = suite_graph
        comp = lg.connected_components(g)
        verify.verify_cc(g, comp)


class TestIORoundTrips:
    def test_graph_survives_matrix_market(self, tmp_path):
        g = datasets.build("kron", "tiny", weighted=True)
        path = tmp_path / "kron.mtx"
        mmwrite(g.A, path)
        g2 = lg.Graph(mmread(path), lg.ADJACENCY_UNDIRECTED)
        assert g2.A.isequal(g.A)
        # algorithms give identical answers on the round-tripped graph
        assert lg.triangle_count_basic(g2) == lg.triangle_count_basic(g)

    def test_graph_survives_binary(self, tmp_path):
        g = datasets.build("road", "tiny")
        path = tmp_path / "road.npz"
        binwrite(g.A, path)
        g2 = lg.Graph(binread(path), lg.ADJACENCY_DIRECTED)
        assert g2.A.isequal(g.A)
        p1, _ = lg.bfs(g, 0)
        p2, _ = lg.bfs(g2, 0)
        np.testing.assert_array_equal(p1.indices, p2.indices)


class TestCConventionPipeline:
    def test_c_style_full_run(self):
        """The paper's Listing-1 usage pattern, end to end."""
        g_src = datasets.build("web", "tiny")
        box = [g_src.A]
        msg = lg.MsgBuffer()
        status, g = compat.LAGraph_New(box, lg.ADJACENCY_DIRECTED, msg=msg)
        compat.lagraph_try(status, msg=msg)
        assert box[0] is None

        compat.lagraph_try(compat.LAGraph_Property_AT(g, msg=msg)[0], msg=msg)
        compat.lagraph_try(compat.LAGraph_Property_RowDegree(g, msg=msg)[0],
                           msg=msg)
        compat.lagraph_try(compat.LAGraph_CheckGraph(g, msg=msg)[0], msg=msg)

        status, level, parent = compat.LAGraph_BreadthFirstSearch(g, 0,
                                                                  msg=msg)
        compat.lagraph_try(status, msg=msg)
        assert parent.get(0) == 0

        status, rank, _ = compat.LAGraph_PageRank(g, msg=msg)
        compat.lagraph_try(status, msg=msg)
        assert rank.size == g.n

        status, comp = compat.LAGraph_ConnectedComponents(g, msg=msg)
        compat.lagraph_try(status, msg=msg)
        verify.verify_cc(g, comp)


class TestConsistencyAcrossModes:
    def test_basic_and_advanced_agree(self):
        g = datasets.build("urand", "tiny")
        # Basic caches, Advanced then runs on the same cached properties
        p_basic, _ = lg.bfs(g, 5, direction_optimizing=True)
        p_adv = lg.bfs_parent_do(g, 5)
        np.testing.assert_array_equal(p_basic.indices, p_adv.indices)

    def test_property_caching_is_idempotent_for_results(self):
        g = datasets.build("kron", "tiny")
        r1, _ = lg.pagerank(g)         # caches AT + row_degree
        r2, _ = lg.pagerank(g)         # reuses them
        np.testing.assert_allclose(r1.to_dense(), r2.to_dense())
        g.check()                       # caches still consistent
