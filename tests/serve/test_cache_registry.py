"""Unit tests for the serving engine's building blocks:
LRU cache, versioned registry, and the coalescing planner."""

import threading

import numpy as np
import pytest

from repro import grb
from repro import lagraph as lg
from repro import serve
from repro.serve.coalesce import PendingRequest, plan_batches


def _graph(n=4):
    A = grb.Matrix.from_coo([0, 0, 1, 2], [1, 2, 3, 3],
                            np.ones(4, dtype=np.bool_), n, n)
    return lg.Graph(A, lg.ADJACENCY_DIRECTED)


class TestLRUCache:
    def test_get_put_roundtrip(self):
        c = serve.LRUCache(4)
        c.put("a", 1)
        assert c.get("a") == 1
        assert c.get("b", "dflt") == "dflt"

    def test_eviction_is_lru(self):
        c = serve.LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")            # refresh a: b becomes LRU
        c.put("c", 3)
        assert c.get("a") == 1 and c.get("c") == 3
        assert c.get("b") is None
        assert c.stats().evictions == 1

    def test_zero_capacity_disables(self):
        c = serve.LRUCache(0)
        c.put("a", 1)
        assert c.get("a") is None and len(c) == 0

    def test_stats_and_hit_rate(self):
        c = serve.LRUCache(4)
        c.put("k", 1)
        c.get("k"); c.get("k"); c.get("missing")
        s = c.stats()
        assert (s.hits, s.misses) == (2, 1)
        assert s.hit_rate == pytest.approx(2 / 3)

    def test_peek_leaves_no_trace(self):
        c = serve.LRUCache(4)
        c.put("k", 1)
        assert c.peek("k") == 1 and c.peek("x", 0) == 0
        assert c.stats().hits == 0 and c.stats().misses == 0

    def test_purge_below_version(self):
        c = serve.LRUCache(8)
        c.put(("g", 1, 0, "q1"), "old")
        c.put(("g", 1, 2, "q2"), "new")
        c.put(("h", 1, 0, "q3"), "other-graph")
        assert c.purge_below("g", 2) == 1
        assert c.peek(("g", 1, 0, "q1")) is None
        assert c.peek(("g", 1, 2, "q2")) == "new"
        assert c.peek(("h", 1, 0, "q3")) == "other-graph"

    def test_threaded_hammer(self):
        c = serve.LRUCache(32)
        errs = []

        def worker(seed):
            try:
                rng = np.random.default_rng(seed)
                for _ in range(300):
                    k = int(rng.integers(0, 64))
                    if rng.random() < 0.5:
                        c.put(k, k)
                    else:
                        v = c.get(k)
                        assert v is None or v == k
            except Exception as e:  # pragma: no cover
                errs.append(e)
        threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errs and len(c) <= 32


class TestGraphRegistry:
    def test_register_get(self):
        r = serve.GraphRegistry()
        g = _graph()
        r.register("g", g)
        assert r.get("g") is g and "g" in r and r.names() == ["g"]

    def test_unknown_graph(self):
        r = serve.GraphRegistry()
        with pytest.raises(serve.UnknownGraph):
            r.get("missing")

    def test_key_tracks_version(self):
        r = serve.GraphRegistry()
        g = _graph()
        r.register("g", g)
        k0 = r.key("g", "q")
        r.invalidate("g")
        k1 = r.key("g", "q")
        assert k0 != k1 and k1[2] == k0[2] + 1

    def test_rebinding_changes_epoch(self):
        r = serve.GraphRegistry()
        r.register("g", _graph())
        k0 = r.key("g", "q")
        r.register("g", _graph())    # fresh graph, version 0 again
        k1 = r.key("g", "q")
        assert k0 != k1              # epoch differs even though version ties

    def test_update_mutates_and_bumps(self):
        r = serve.GraphRegistry()
        g = _graph()
        g.cache_all()
        r.register("g", g)

        def add_edge(gr):
            gr.A[3, 0] = True
        v = r.update("g", add_edge)
        assert v == 1 and g.AT is None        # properties dropped
        assert g.A.get(3, 0)

    def test_requires_graph_type(self):
        with pytest.raises(TypeError):
            serve.GraphRegistry().register("g", object())


class TestPlanBatches:
    def _reqs(self, specs):
        return [PendingRequest(name, q) for name, q in specs]

    def test_same_group_coalesces(self):
        reqs = self._reqs([("g", serve.BFSLevels(0)),
                           ("g", serve.BFSLevels(1)),
                           ("g", serve.BFSLevels(2))])
        batches = plan_batches(reqs)
        assert len(batches) == 1
        assert batches[0].group == "bfs_levels"
        assert batches[0].sources == [0, 1, 2]

    def test_groups_do_not_mix(self):
        reqs = self._reqs([("g", serve.BFSLevels(0)),
                           ("g", serve.BFSParents(0)),
                           ("h", serve.BFSLevels(0)),
                           ("g", serve.TriangleCount())])
        batches = plan_batches(reqs)
        assert len(batches) == 4
        assert {b.group for b in batches} == {"bfs_levels", "bfs_parents", None}

    def test_duplicates_share_one_row(self):
        reqs = self._reqs([("g", serve.SSSP(3)), ("g", serve.SSSP(3)),
                           ("g", serve.SSSP(5))])
        (b,) = plan_batches(reqs)
        assert b.sources == [3, 5]
        assert len(b.requests_by_query[serve.SSSP(3)]) == 2

    def test_max_batch_chunks(self):
        reqs = self._reqs([("g", serve.BFSLevels(s)) for s in range(10)])
        batches = plan_batches(reqs, max_batch=4)
        assert [len(b.queries) for b in batches] == [4, 4, 2]
        assert [s for b in batches for s in b.sources] == list(range(10))

    def test_non_coalescible_distinct_queries_split(self):
        reqs = self._reqs([("g", serve.PageRank()),
                           ("g", serve.PageRank(damping=0.9)),
                           ("g", serve.PageRank())])
        batches = plan_batches(reqs)
        assert len(batches) == 2
        assert len(batches[0].requests) == 2    # the two identical PageRanks
